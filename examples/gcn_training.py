"""End-to-end GCN training with the FlashSparse backend (the paper's case study).

Run with::

    python examples/gcn_training.py

Trains a 3-layer GCN on a synthetic citation-style dataset under three sparse
backends — FlashSparse FP16, FlashSparse TF32 and a DGL-like FP32 baseline —
and reports test accuracy (Table 8's comparison) plus the estimated per-epoch
time of each backend on an H100 (Figure 16's comparison).
"""

from __future__ import annotations

from repro.gnn import estimate_epoch_time, make_dataset
from repro.gnn.train import train_gcn_accuracy
from repro.gpu.device import H100_PCIE


def main() -> None:
    dataset = make_dataset("cora")
    print(
        f"dataset: {dataset.name} — {dataset.num_nodes} nodes, "
        f"{dataset.adjacency.nnz} edges, {dataset.num_classes} classes"
    )

    backends = ("flashsparse-fp16", "flashsparse-tf32", "dgl")
    print("\n=== accuracy (GCN, 80 epochs) ===")
    for backend in backends:
        result = train_gcn_accuracy(dataset, backend, epochs=80, hidden=32, num_layers=3)
        print(
            f"{result.backend:18s} train {result.train_accuracy:5.1%}  "
            f"val {result.val_accuracy:5.1%}  test {result.test_accuracy:5.1%}"
        )

    print("\n=== estimated per-epoch time on H100 (hidden = 128) ===")
    adjacency = dataset.normalized_adjacency()
    times = {}
    for backend in ("flashsparse-fp16", "flashsparse-tf32", "dgl", "pyg", "tcgnn"):
        estimate = estimate_epoch_time("gcn", adjacency, backend, H100_PCIE, hidden=128)
        times[backend] = estimate.total_time_s
        print(
            f"{estimate.backend:18s} total {estimate.total_time_s * 1e3:7.3f} ms "
            f"(sparse {estimate.sparse_time_s * 1e3:6.3f} ms, "
            f"dense {estimate.dense_time_s * 1e3:6.3f} ms)"
        )
    print(
        f"\nFlashSparse-FP16 speedup over DGL : "
        f"{times['dgl'] / times['flashsparse-fp16']:.2f}x"
    )


if __name__ == "__main__":
    main()
