"""Quickstart: SpMM and SDDMM with FlashSparse on a random sparse matrix.

Run with::

    python examples/quickstart.py

The example builds a sparse matrix, runs the FlashSparse SpMM and SDDMM
kernels (simulated tensor cores), verifies the results against a dense
reference, and prints the simulated hardware cost and the estimated runtime /
throughput on an RTX 4090-class device.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import FlashSparseMatrix, sddmm, spmm


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A sparse matrix (e.g. a graph adjacency) and dense feature matrices.
    n_rows, n_cols, n_features = 2048, 2048, 128
    adjacency = sp.random(n_rows, n_cols, density=0.004, format="csr", random_state=0)
    features = rng.standard_normal((n_cols, n_features))

    # 2. Translate once into ME-BCRS (FlashSparse's storage format).
    matrix = FlashSparseMatrix.from_scipy(adjacency)
    print(f"matrix: {matrix}")
    mebcrs = matrix.mebcrs("fp16")
    print(
        f"ME-BCRS: {mebcrs.num_nonzero_vectors} nonzero 8x1 vectors, "
        f"{mebcrs.num_tc_blocks} TC blocks, "
        f"{mebcrs.memory_footprint_bytes() / 1e6:.2f} MB"
    )

    # 3. SpMM: aggregate features through the sparse matrix.
    result = spmm(matrix, features, precision="fp16", device="rtx4090")
    reference = adjacency @ features
    error = np.abs(result.values - reference).max()
    print("\n=== SpMM (C = A @ B) ===")
    print(f"max abs error vs FP64 reference : {error:.3e}")
    print(f"MMA instructions                : {result.counter.total_mma}")
    print(f"data access (MB)                : {result.counter.data_access_bytes / 1e6:.2f}")
    print(f"estimated kernel time           : {result.estimate.total_time_s * 1e6:.1f} us")
    print(f"estimated throughput            : {result.gflops:.0f} GFLOPS")

    # 4. SDDMM: sampled dot products on the sparse pattern (attention scores).
    queries = rng.standard_normal((n_rows, 32))
    keys = rng.standard_normal((n_cols, 32))
    attention = sddmm(matrix, queries, keys, precision="fp16", device="rtx4090")
    print("\n=== SDDMM (edge scores) ===")
    print(f"output nonzeros                 : {attention.to_csr().nnz}")
    print(f"MMA instructions                : {attention.counter.total_mma}")
    print(f"estimated kernel time           : {attention.estimate.total_time_s * 1e6:.1f} us")
    print(f"estimated throughput            : {attention.gflops:.0f} GFLOPS")


if __name__ == "__main__":
    main()
