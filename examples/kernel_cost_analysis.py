"""Kernel cost analysis: why the 8x1 granularity wins (Figures 1, 12, 14, 15).

Run with::

    python examples/kernel_cost_analysis.py

For a Reddit-like power-law graph, this example compares FlashSparse's 8x1
swap-and-transpose SpMM against the 16x1 granularity of TC-GNN / DTC-SpMM and
against the CUDA-core state of the art (RoDe), reporting MMA counts, data
access, memory transactions and the estimated runtime on both GPUs.
"""

from __future__ import annotations

from repro.baselines import get_baseline
from repro.datasets import make_graph
from repro.formats.stats import vector_stats
from repro.gpu.device import H100_PCIE, RTX4090
from repro.kernels import FLASH_SPMM_PROFILE, spmm_flash_cost, spmm_tcu16_cost
from repro.kernels.common import FlashSparseConfig
from repro.perfmodel import estimate_time, gflops, spmm_useful_flops
from repro.utils.tables import format_table

N_DENSE = 128


def main() -> None:
    graph = make_graph("reddit")
    print(f"graph: Reddit stand-in — {graph.n_rows} nodes, {graph.nnz} edges")

    # --- vector statistics (Table 2's view) ----------------------------------
    s8 = vector_stats(graph, 8)
    s16 = vector_stats(graph, 16)
    print("\nnonzero-vector statistics:")
    print(f"  16x1: {s16.num_nonzero_vectors} vectors, {s16.zero_fill} stored zeros")
    print(f"   8x1: {s8.num_nonzero_vectors} vectors, {s8.zero_fill} stored zeros "
          f"({100 * (1 - s8.zero_fill / s16.zero_fill):.1f}% fewer zeros)")

    # --- kernel cost comparison ----------------------------------------------
    flash = spmm_flash_cost(graph, N_DENSE, FlashSparseConfig(precision="fp16"))
    flash_direct = spmm_flash_cost(
        graph, N_DENSE, FlashSparseConfig(precision="fp16", coalesced=False)
    )
    v16 = spmm_tcu16_cost(
        graph, N_DENSE, FlashSparseConfig(precision="fp16", swap_and_transpose=False)
    )
    rode = get_baseline("RoDe")
    dtc = get_baseline("DTC-SpMM")
    useful = spmm_useful_flops(graph.nnz, N_DENSE)

    rows = []
    for label, counter, profile in (
        ("FlashSparse 8x1 (coalesced)", flash, FLASH_SPMM_PROFILE),
        ("FlashSparse 8x1 (direct map)", flash_direct, FLASH_SPMM_PROFILE),
        ("16x1 granularity (ablation)", v16, FLASH_SPMM_PROFILE),
        ("DTC-SpMM (TF32, 16x1)", dtc.spmm_cost(graph, N_DENSE), dtc.profile),
        ("RoDe (FP32, CUDA cores)", rode.spmm_cost(graph, N_DENSE), rode.profile),
    ):
        t_h100 = estimate_time(counter, H100_PCIE, profile).total_time_s
        t_4090 = estimate_time(counter, RTX4090, profile).total_time_s
        rows.append(
            [
                label,
                counter.total_mma,
                counter.data_access_bytes / 1e6,
                counter.total_load_transactions,
                gflops(useful, t_h100),
                gflops(useful, t_4090),
            ]
        )
    print()
    print(
        format_table(
            ["kernel", "MMAs", "data access (MB)", "load transactions", "H100 GFLOPS", "RTX4090 GFLOPS"],
            rows,
            title=f"SpMM cost comparison (N={N_DENSE}, FP16 unless noted)",
        )
    )


if __name__ == "__main__":
    main()
