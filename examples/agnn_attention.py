"""AGNN attention: the SDDMM -> edge-softmax -> SpMM pipeline of Section 3.4.

Run with::

    python examples/agnn_attention.py

Builds a small attention-based GNN (AGNN), trains it briefly with the
FlashSparse FP16 backend, and then shows the raw operator pipeline on one
attention layer: computing edge attention scores with SDDMM, normalising them
with an edge softmax, and aggregating the features with an SpMM whose edge
values are the attention coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.gnn import AGNN, make_backend, make_dataset, train_node_classifier
from repro.gnn import autograd as ag
from repro.gnn.autograd import Tensor


def main() -> None:
    dataset = make_dataset("questions")
    adjacency = dataset.normalized_adjacency()
    backend = make_backend("flashsparse-fp16", adjacency)
    print(
        f"dataset: {dataset.name} — {dataset.num_nodes} nodes, "
        f"{adjacency.nnz} (normalised) edges"
    )

    # --- train a small AGNN end to end --------------------------------------
    model = AGNN(
        in_features=dataset.num_features,
        hidden_features=16,
        num_classes=dataset.num_classes,
        num_attention_layers=2,
        seed=0,
    )
    result = train_node_classifier(model, dataset, backend, epochs=25, lr=0.01)
    print(f"\nAGNN test accuracy after {result.epochs} epochs: {result.test_accuracy:.1%}")
    print(
        f"sparse operator calls served by the backend: "
        f"{backend.stats.spmm_calls} SpMM, {backend.stats.sddmm_calls} SDDMM"
    )

    # --- one attention layer, spelled out ------------------------------------
    print("\n=== one attention layer, operator by operator ===")
    h = Tensor(dataset.features[:, :16].copy())
    h_norm = ag.row_l2_normalize(h)
    scores = ag.sddmm(backend, h_norm, h_norm)          # SDDMM: cosine per edge
    attention = ag.edge_softmax(backend, scores)        # softmax over each row
    aggregated = ag.spmm(backend, attention, h)         # SpMM with edge values
    print(f"edge scores        : {scores.shape[0]} values (one per stored edge)")
    print(f"attention rows sum : {float(np.round(attention.data[:adjacency.indptr[1]].sum(), 4))} (first node)")
    print(f"aggregated features: shape {aggregated.shape}")


if __name__ == "__main__":
    main()
