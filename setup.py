"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so the package can be installed in environments whose tooling predates
PEP 660 editable installs (e.g. ``python setup.py develop`` in offline
containers without the ``wheel`` package).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
