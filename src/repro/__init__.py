"""FlashSparse reproduction package.

This package reproduces *FlashSparse: Minimizing Computation Redundancy for
Fast Sparse Matrix Multiplications on Tensor Cores* (PPoPP 2025) as a pure
Python / NumPy library.  Because no GPU is available, the Tensor Core Units
(TCUs), the warp-level MMA instructions, and the global-memory transaction
behaviour are *simulated*: numeric results are produced exactly, and every
kernel reports the hardware cost it would incur (MMA invocations, memory
transactions, bytes moved), which an analytic performance model converts to
estimated runtimes on H100 / RTX 4090 class devices.

Public entry points live in :mod:`repro.core`:

>>> import numpy as np
>>> from repro import FlashSparseMatrix, spmm
>>> import scipy.sparse as sp
>>> a = sp.random(64, 64, density=0.05, format="csr", random_state=0)
>>> fsm = FlashSparseMatrix.from_scipy(a)
>>> b = np.random.default_rng(0).standard_normal((64, 16))
>>> out = spmm(fsm, b)
>>> np.allclose(out.values, a @ b, atol=1e-2)
True
"""

from repro.core.api import (
    FlashSparseMatrix,
    start_server,
    spmm,
    sddmm,
    SpmmResult,
    SddmmResult,
    KernelConfig,
)
from repro.core.version import __version__

__all__ = [
    "FlashSparseMatrix",
    "start_server",
    "spmm",
    "sddmm",
    "SpmmResult",
    "SddmmResult",
    "KernelConfig",
    "__version__",
]
