"""16×1-vector TCU SDDMM — the granularity used by TC-GNN.

Without the swap-and-transpose strategy the sparse output TC block is 16×8:
a 16-row window times 8 nonzero-vector columns.  Per output block the kernel
issues ``ceil(K / k)`` MMAs whose left operand is the 16×k slice of the dense
matrix A and whose right operand is the k×8 gathered slice of Bᵀ.  The 8×1
FlashSparse variant covers twice as many vectors per block, which is where
the SDDMM ablation gains of Figure 14 come from.
"""

from __future__ import annotations

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.gpu.counters import CostCounter
from repro.gpu.mma import MMA_M16N8K8_FP16, MMA_M16N8K8_TF32, MMAShape, mma_execute
from repro.kernels.common import FlashSparseConfig, SddmmKernelResult, resolve_tcu16_format
from repro.kernels.engine import sddmm_batched
from repro.perfmodel.model import KernelProfile, sddmm_useful_flops
from repro.precision.types import Precision, element_bytes, quantize
from repro.utils.validation import check_dense_matrix

#: Profile of the 16x1 SDDMM kernel (ablation baseline).
TCU16_SDDMM_PROFILE = KernelProfile(
    name="TCU-16x1-SDDMM",
    tcu_efficiency=0.30,
    cuda_efficiency=0.60,
    memory_efficiency=0.70,
    mma_issue_ns=1.0,
    index_op_weight=2.0,
    notes="16x1 vector granularity SDDMM",
)

#: Nonzero vectors covered by one sparse output TC block (the tile is 16×8).
VECTORS_PER_OUTPUT_BLOCK = 8
#: Auxiliary index work per (output block, K-chunk).
INDEX_OPS_PER_BLOCK_CHUNK = 16


def _ceil_div(a: int, b: int) -> int:
    return -(-int(a) // int(b))


def _instruction_for(precision: Precision) -> MMAShape:
    if precision is Precision.FP16:
        return MMA_M16N8K8_FP16
    if precision is Precision.TF32:
        return MMA_M16N8K8_TF32
    raise ValueError(f"unsupported precision {precision}")


def _as_sgt16(mask: SGT16Matrix | BlockedVectorFormat | CSRMatrix, precision: Precision) -> BlockedVectorFormat:
    return resolve_tcu16_format(mask, precision, "SDDMM")


def _set_footprints(
    counter: CostCounter,
    fmt: BlockedVectorFormat,
    n_rows: int,
    n_cols: int,
    k_dense: int,
    precision: Precision,
) -> None:
    """Record the unique DRAM footprint: both dense inputs + the sparse structure."""
    elem = element_bytes(precision)
    dense_bytes = (n_rows + n_cols) * k_dense * elem
    structure_bytes = (fmt.num_windows + 1 + fmt.num_nonzero_vectors) * 4
    read_fp = min(counter.bytes_read, dense_bytes + structure_bytes)
    counter.set_read_footprint(read_fp)
    counter.set_write_footprint(counter.bytes_written)


def sddmm_tcu16_execute(
    mask: SGT16Matrix | BlockedVectorFormat | CSRMatrix,
    a: np.ndarray,
    b: np.ndarray,
    config: FlashSparseConfig | None = None,
    scale_by_mask: bool = False,
) -> SddmmKernelResult:
    """Execute SDDMM at 16×1 granularity (see :func:`sddmm_flash_execute`)."""
    config = config or FlashSparseConfig(swap_and_transpose=False)
    precision = config.precision
    shape = _instruction_for(precision)
    fmt = _as_sgt16(mask, precision)
    n_rows, n_cols = fmt.shape
    a = check_dense_matrix(a, "a", n_rows=n_rows)
    b = check_dense_matrix(b, "b", n_rows=n_cols)
    if a.shape[1] != b.shape[1]:
        raise ValueError("a and b must share the inner dimension K")
    k_dense = a.shape[1]
    mma_k = shape.k
    n_chunks = _ceil_div(k_dense, mma_k)
    elem = element_bytes(precision)

    a_q = quantize(a, precision).astype(np.float32)
    b_q = quantize(b, precision).astype(np.float32)
    if config.engine == "batched" and k_dense > 0:
        out_values = sddmm_batched(
            fmt,
            a_q,
            b_q,
            precision,
            VECTORS_PER_OUTPUT_BLOCK,
            scale_by_mask=scale_by_mask,
            **config.engine_stream_kwargs,
        )
        counter = sddmm_tcu16_cost(fmt, k_dense, config)
    else:
        out_values, counter = _sddmm_reference(fmt, a_q, b_q, config, shape, scale_by_mask)
    output = BlockedVectorFormat(
        partition=fmt.partition,
        vector_values=out_values,
        k=fmt.k,
        precision=Precision.FP32,
        format_name=f"{fmt.format_name}-sddmm-out",
    )
    useful = sddmm_useful_flops(fmt.nnz, k_dense)
    return SddmmKernelResult(
        output=output,
        counter=counter,
        kernel="tcu16_sddmm",
        useful_flops=useful,
        meta={
            "precision": precision.value,
            "vector_size": 16,
            "mma_shape": shape.name,
            "k_dense": k_dense,
            "scale_by_mask": scale_by_mask,
            "engine": config.engine if k_dense > 0 else "reference",
        },
    )


def _sddmm_reference(
    fmt: BlockedVectorFormat,
    a_q: np.ndarray,
    b_q: np.ndarray,
    config: FlashSparseConfig,
    shape: MMAShape,
    scale_by_mask: bool,
) -> tuple[np.ndarray, CostCounter]:
    """The per-(window, block, chunk) emulation loop — the engine's oracle."""
    precision = config.precision
    n_rows, n_cols = fmt.shape
    k_dense = a_q.shape[1]
    mma_k = shape.k
    n_chunks = _ceil_div(k_dense, mma_k)
    elem = element_bytes(precision)
    counter = CostCounter()
    out_values = np.zeros_like(fmt.vector_values, dtype=np.float32)
    mask_pattern = np.asarray(fmt.vector_values, dtype=np.float64) != 0.0

    for w in range(fmt.num_windows):
        row0, row1 = fmt.partition.window_row_range(w)
        rows_here = row1 - row0
        start, end = fmt.window_vector_range(w)
        if start == end:
            continue
        a_rows = np.zeros((16, k_dense), dtype=np.float32)
        a_rows[:rows_here] = a_q[row0:row1]
        n_vecs = end - start
        for blk_start in range(0, n_vecs, VECTORS_PER_OUTPUT_BLOCK):
            vec_lo = start + blk_start
            vec_hi = min(vec_lo + VECTORS_PER_OUTPUT_BLOCK, end)
            cols = fmt.partition.vector_cols[vec_lo:vec_hi].astype(np.int64)
            width = cols.shape[0]
            b_rows = np.zeros((VECTORS_PER_OUTPUT_BLOCK, k_dense), dtype=np.float32)
            b_rows[:width] = b_q[cols]
            acc = np.zeros((16, VECTORS_PER_OUTPUT_BLOCK), dtype=np.float32)
            for c in range(n_chunks):
                k0 = c * mma_k
                k1 = min(k0 + mma_k, k_dense)
                a_tile = np.zeros((16, mma_k), dtype=np.float64)
                a_tile[:, : k1 - k0] = a_rows[:, k0:k1]
                b_tile = np.zeros((mma_k, VECTORS_PER_OUTPUT_BLOCK), dtype=np.float64)
                b_tile[: k1 - k0, :] = b_rows[:, k0:k1].T
                acc = mma_execute(a_tile, b_tile, acc, shape, counter=None)
            block_pattern = mask_pattern[vec_lo:vec_hi].T  # (16, width)
            sampled = np.where(block_pattern, acc[:, :width], 0.0)
            if scale_by_mask:
                sampled = sampled * np.asarray(fmt.vector_values[vec_lo:vec_hi], dtype=np.float32).T
            out_values[vec_lo:vec_hi] = sampled.T

            counter.add_mma(shape.name, precision.value, n_chunks)
            a_row_bytes = mma_k * elem
            counter.add_load(
                32,
                _ceil_div(a_row_bytes, 32) * 16 * n_chunks,
                useful_bytes=a_row_bytes * 16 * n_chunks,
            )
            counter.add_load(
                32,
                _ceil_div(a_row_bytes, 32) * width * n_chunks,
                useful_bytes=a_row_bytes * width * n_chunks,
            )
            counter.add_index_ops(INDEX_OPS_PER_BLOCK_CHUNK * n_chunks)
            out_bytes = width * 16 * 4
            counter.add_store(32, _ceil_div(out_bytes, 32), useful_bytes=out_bytes)
        counter.add_warps(_ceil_div(n_vecs, VECTORS_PER_OUTPUT_BLOCK))

    _set_footprints(counter, fmt, n_rows, n_cols, k_dense, precision)
    return out_values, counter


def sddmm_tcu16_cost(
    mask: SGT16Matrix | BlockedVectorFormat | CSRMatrix,
    k_dense: int,
    config: FlashSparseConfig | None = None,
) -> CostCounter:
    """Analytic cost of the 16×1 SDDMM (matches the execute path)."""
    config = config or FlashSparseConfig(swap_and_transpose=False)
    precision = config.precision
    shape = _instruction_for(precision)
    fmt = _as_sgt16(mask, precision)
    mma_k = shape.k
    k_dense = int(k_dense)
    if k_dense <= 0:
        raise ValueError("k_dense must be positive")
    n_chunks = _ceil_div(k_dense, mma_k)
    elem = element_bytes(precision)

    counts = fmt.partition.vectors_per_window.astype(np.int64)
    nonempty = counts > 0
    widths, _, first_block = fmt.partition.block_widths(VECTORS_PER_OUTPUT_BLOCK)
    blocks_per_window = np.diff(first_block)
    num_blocks = widths.shape[0]
    total_vectors = int(counts.sum())

    counter = CostCounter()
    counter.add_mma(shape.name, precision.value, num_blocks * n_chunks)

    a_row_bytes = mma_k * elem
    a_row_tx = _ceil_div(a_row_bytes, 32)
    counter.add_load(
        32,
        a_row_tx * 16 * num_blocks * n_chunks,
        useful_bytes=a_row_bytes * 16 * num_blocks * n_chunks,
    )
    counter.add_load(
        32,
        a_row_tx * total_vectors * n_chunks,
        useful_bytes=a_row_bytes * total_vectors * n_chunks,
    )
    counter.add_index_ops(INDEX_OPS_PER_BLOCK_CHUNK * num_blocks * n_chunks)

    store_bytes = widths * 16 * 4
    if total_vectors:
        counter.add_store_bulk(32, -(-store_bytes // 32), store_bytes)

    counter.add_warps(int(blocks_per_window[nonempty].sum()))
    _set_footprints(counter, fmt, fmt.shape[0], fmt.shape[1], k_dense, precision)
    return counter
