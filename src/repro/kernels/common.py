"""Shared kernel configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs, cached_sgt16
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import CostCounter
from repro.precision.types import Precision

#: Execution engines accepted by :class:`FlashSparseConfig`.
ENGINES: tuple[str, ...] = ("batched", "reference")


@dataclass(frozen=True)
class FlashSparseConfig:
    """Configuration of a FlashSparse (or 16×1 baseline) kernel invocation.

    Attributes
    ----------
    precision:
        Tensor-core precision (``fp16`` or ``tf32``).
    coalesced:
        Use the memory-efficient thread mapping of Section 3.3 (Figure 7c).
        ``False`` selects the direct mapping (Figure 7b) — the ablation mode
        of Figure 15.
    swap_and_transpose:
        Use the 8×1 swap-and-transpose strategy.  ``False`` selects the 16×1
        vector granularity (the ablation baseline of Figure 14).
    engine:
        ``"batched"`` (default) runs the vectorized execution engine of
        :mod:`repro.kernels.engine`; ``"reference"`` runs the per-(window,
        block, tile) emulation loop that mirrors the CUDA kernel
        instruction-for-instruction.  Both produce the same cost counters
        exactly and the same values up to FP32 round-off.
    block_chunk:
        Stream the batched engine over block-range slices of this many TC
        blocks instead of materialising the full ``(n_blocks, v, N)``
        intermediate; peak intermediate memory becomes O(block_chunk · v · N).
        ``None`` (default) runs one-shot.  Values agree with the one-shot run
        to FP32 round-off and cost counters are exactly unchanged.
    max_intermediate_bytes:
        Byte budget the streaming chunk size is derived from when
        ``block_chunk`` is not given (``chunk = budget // bytes_per_block``,
        floored at one block).
    workers:
        Shard independent window-aligned chunk ranges of the batched engine
        across this many threads (BLAS matmuls release the GIL).  1 (default)
        stays single-threaded.
    """

    precision: Precision = Precision.FP16
    coalesced: bool = True
    swap_and_transpose: bool = True
    engine: str = "batched"
    block_chunk: int | None = None
    max_intermediate_bytes: int | None = None
    workers: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "precision", Precision(self.precision))
        if self.precision is Precision.FP32:
            raise ValueError(
                "tensor-core kernels support fp16/tf32 only; "
                "use the CUDA-core baselines for fp32"
            )
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.block_chunk is not None and int(self.block_chunk) < 1:
            raise ValueError("block_chunk must be a positive block count or None")
        if self.max_intermediate_bytes is not None and int(self.max_intermediate_bytes) < 1:
            raise ValueError("max_intermediate_bytes must be a positive byte budget or None")
        if int(self.workers) < 1:
            raise ValueError("workers must be >= 1")

    @property
    def engine_stream_kwargs(self) -> dict:
        """The streaming knobs, in the keyword form the engine functions take."""
        return {
            "block_chunk": self.block_chunk,
            "max_intermediate_bytes": self.max_intermediate_bytes,
            "workers": self.workers,
        }

    @classmethod
    def from_plan(cls, plan, **overrides) -> "FlashSparseConfig":
        """Config whose streaming knobs come from a derived
        :class:`~repro.serve.planner.ServePlan`.

        The plan supplies ``precision``, ``block_chunk``,
        ``max_intermediate_bytes`` and ``workers``; keyword ``overrides``
        win over the plan (e.g. ``engine="reference"`` for oracle runs).
        """
        kwargs = {
            "precision": plan.precision,
            "block_chunk": plan.block_chunk,
            "max_intermediate_bytes": plan.max_intermediate_bytes,
            "workers": plan.workers,
        }
        kwargs.update(overrides)
        return cls(**kwargs)

    @property
    def vector_size(self) -> int:
        """Nonzero-vector granularity implied by the strategy."""
        return 8 if self.swap_and_transpose else 16


def resolve_flash_format(
    matrix: BlockedVectorFormat | CSRMatrix, config: FlashSparseConfig, kernel: str
) -> BlockedVectorFormat:
    """The 8-row blocked form of ``matrix`` (CSR translated via the LRU cache)."""
    if isinstance(matrix, BlockedVectorFormat):
        if matrix.vector_size != 8:
            raise ValueError(
                f"FlashSparse {kernel} requires an 8-row vector format (ME-BCRS); "
                f"got vector_size={matrix.vector_size}"
            )
        return matrix
    return cached_mebcrs(matrix, config.precision)


def resolve_tcu16_format(
    matrix: BlockedVectorFormat | CSRMatrix, precision: Precision, kernel: str
) -> BlockedVectorFormat:
    """The 16-row blocked form of ``matrix`` (CSR translated via the LRU cache)."""
    if isinstance(matrix, BlockedVectorFormat):
        if matrix.vector_size != 16:
            raise ValueError(
                f"the 16x1 {kernel} needs a 16-row vector format, "
                f"got vector_size={matrix.vector_size}"
            )
        return matrix
    return cached_sgt16(matrix, precision)


@dataclass
class SpmmKernelResult:
    """Output of a simulated SpMM kernel."""

    #: Dense output matrix C = A @ B, shape (M, N), float32.
    values: np.ndarray
    #: Hardware cost the kernel would incur.
    counter: CostCounter
    #: Name of the kernel that produced the result.
    kernel: str
    #: Useful FLOPs of the operation (2 * nnz * N).
    useful_flops: int
    #: Extra metadata (precision, mapping, vector size, ...).
    meta: dict = field(default_factory=dict)


@dataclass
class SddmmKernelResult:
    """Output of a simulated SDDMM kernel."""

    #: Sparse output in the same blocked format as the input mask (values
    #: replaced by the sampled dot products).
    output: BlockedVectorFormat
    #: Hardware cost the kernel would incur.
    counter: CostCounter
    #: Name of the kernel that produced the result.
    kernel: str
    #: Useful FLOPs of the operation (2 * nnz * K).
    useful_flops: int
    #: Extra metadata.
    meta: dict = field(default_factory=dict)

    def to_csr(self):
        """The sparse output as a CSR matrix."""
        return self.output.to_csr()
