"""Thread-to-data mappings for loading the dense TC block B (Section 3.3).

In the swap-and-transpose SpMM the dense TC block B (``k`` rows × 16 dense
columns for FP16) becomes the *left* MMA operand after transposition.  The
PTX fragment layout of the left operand makes each thread responsible for
four FP16 elements; how those logical fragment slots are bound to physical
columns of B decides how the warp's loads coalesce:

* the **direct mapping** (Figure 7b) binds thread ``T(g, t)`` to physical
  columns ``g`` and ``g + 8``.  Each 8-thread group then touches only 16
  contiguous bytes per load instruction, so every 32-byte transaction is half
  wasted — 16 transactions per 8×16 FP16 tile;
* the **memory-efficient mapping** (Figure 7c) shuffles the columns so the
  same thread reads the adjacent columns ``2g`` and ``2g + 1``; the four
  elements form a 2×2 block, the two elements of a row are read as one
  packed 32-bit access, and each 8-thread group fills a full 32-byte
  transaction — 8 transactions per tile.

Because the accumulator C^T shares the B^T fragment layout, the same column
shuffle is applied to the output tile and undone at store time, so the
numeric result is unchanged — only the coalescing differs.  This module
provides both mappings, address generation, and the transaction counting
helpers the kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import WARP_SIZE
from repro.gpu.memory import MemoryTransactionModel, TransactionReport, WarpAccess
from repro.precision.types import Precision, element_bytes


@dataclass(frozen=True)
class ThreadMapping:
    """Mapping from warp lanes to (row, column) coordinates of the B tile.

    ``rows``/``cols`` have shape ``(32, elements_per_thread)`` and address the
    *logical* dense TC block B of shape ``(k, dense_cols)``; ``column_perm``
    records the physical→logical column permutation the mapping applies (the
    identity for the direct mapping), so the kernel can permute the output
    tile back.
    """

    name: str
    precision: Precision
    k: int
    dense_cols: int
    rows: np.ndarray
    cols: np.ndarray
    column_perm: np.ndarray

    @property
    def elements_per_thread(self) -> int:
        """Register elements each thread loads for the B tile."""
        return int(self.rows.shape[1])

    def thread_addresses(
        self,
        row_base_addresses: np.ndarray,
        col_offset_bytes: int = 0,
    ) -> list[WarpAccess]:
        """Per-instruction warp accesses for loading the tile.

        ``row_base_addresses`` gives, for each of the ``k`` tile rows, the
        byte address in global memory where that row's tile segment starts
        (rows of B selected by the sparse column indices are not contiguous).
        Elements accessed as an adjacent pair by one thread (the coalesced
        2×2 block) are merged into a single wider access.
        """
        row_base_addresses = np.asarray(row_base_addresses, dtype=np.int64)
        if row_base_addresses.shape[0] != self.k:
            raise ValueError(f"expected {self.k} row addresses, got {row_base_addresses.shape[0]}")
        elem = element_bytes(self.precision)
        accesses: list[WarpAccess] = []
        e = 0
        while e < self.elements_per_thread:
            # Detect a packed pair: same row, adjacent columns for every lane.
            packed = (
                e + 1 < self.elements_per_thread
                and np.array_equal(self.rows[:, e], self.rows[:, e + 1])
                and np.array_equal(self.cols[:, e] + 1, self.cols[:, e + 1])
            )
            width = 2 * elem if packed else elem
            addrs = (
                row_base_addresses[self.rows[:, e]]
                + col_offset_bytes
                + self.cols[:, e] * elem
            )
            accesses.append(WarpAccess(tuple(int(a) for a in addrs), int(width)))
            e += 2 if packed else 1
        return accesses


def _fp16_b_tile_geometry() -> tuple[int, int]:
    # FP16 swap-and-transpose: B tile is k=8 rows by 16 dense columns.
    return 8, 16


def _tf32_b_tile_geometry() -> tuple[int, int]:
    # TF32 swap-and-transpose (m16n8k4): B tile is k=4 rows by 16 dense columns.
    return 4, 16


def direct_mapping(precision: Precision | str = Precision.FP16) -> ThreadMapping:
    """The direct thread mapping of Figure 7(b)."""
    precision = Precision(precision)
    lanes = np.arange(WARP_SIZE)
    group = lanes // 4
    tig = lanes % 4
    if precision is Precision.FP16:
        k, dense_cols = _fp16_b_tile_geometry()
        # Left-operand (B^T) fragment: a0/a1 at B rows 2t/2t+1 column g,
        # a2/a3 at B rows 2t/2t+1 column g+8.
        rows = np.stack([2 * tig, 2 * tig + 1, 2 * tig, 2 * tig + 1], axis=1)
        cols = np.stack([group, group, group + 8, group + 8], axis=1)
    elif precision is Precision.TF32:
        k, dense_cols = _tf32_b_tile_geometry()
        # m16n8k4 left operand: a0 at B row t column g, a1 at row t column g+8.
        rows = np.stack([tig, tig], axis=1)
        cols = np.stack([group, group + 8], axis=1)
    else:  # pragma: no cover - config validation rejects fp32 earlier
        raise ValueError("thread mappings exist for fp16/tf32 only")
    return ThreadMapping(
        name="direct",
        precision=precision,
        k=k,
        dense_cols=dense_cols,
        rows=rows,
        cols=cols,
        column_perm=np.arange(dense_cols),
    )


def coalesced_mapping(precision: Precision | str = Precision.FP16) -> ThreadMapping:
    """The memory-efficient (coalesced) thread mapping of Figure 7(c).

    For FP16 the logical column ``g`` is re-bound to physical column ``2g``
    and logical ``g + 8`` to physical ``2g + 1``, turning each thread's four
    elements into a 2×2 block of adjacent memory.  For TF32 the direct
    mapping is already fully coalesced (each element is 4 bytes, so an
    8-thread group spans a whole 32-byte sector), and the same mapping is
    returned under the coalesced name.
    """
    precision = Precision(precision)
    base = direct_mapping(precision)
    if precision is Precision.TF32:
        return ThreadMapping(
            name="coalesced",
            precision=precision,
            k=base.k,
            dense_cols=base.dense_cols,
            rows=base.rows,
            cols=base.cols,
            column_perm=base.column_perm,
        )
    # FP16: permutation sigma(logical col) -> physical col, which turns each
    # thread's four elements into a 2x2 block of adjacent memory.  The element
    # order below lists the block row-major so that adjacent register slots
    # can be fetched as one packed 32-bit access.
    dense_cols = base.dense_cols
    perm = np.empty(dense_cols, dtype=np.int64)
    half = dense_cols // 2
    perm[:half] = 2 * np.arange(half)
    perm[half:] = 2 * np.arange(half) + 1
    lanes = np.arange(WARP_SIZE)
    group = lanes // 4
    tig = lanes % 4
    rows = np.stack([2 * tig, 2 * tig, 2 * tig + 1, 2 * tig + 1], axis=1)
    cols = np.stack([2 * group, 2 * group + 1, 2 * group, 2 * group + 1], axis=1)
    return ThreadMapping(
        name="coalesced",
        precision=precision,
        k=base.k,
        dense_cols=dense_cols,
        rows=rows,
        cols=cols,
        column_perm=perm,
    )


def get_mapping(precision: Precision | str, coalesced: bool) -> ThreadMapping:
    """Select the mapping for a kernel configuration."""
    return coalesced_mapping(precision) if coalesced else direct_mapping(precision)


def b_tile_transactions(
    mapping: ThreadMapping,
    row_stride_bytes: int,
    row_indices: np.ndarray | None = None,
    col_offset: int = 0,
    model: MemoryTransactionModel | None = None,
) -> TransactionReport:
    """Coalesce the loads of one dense TC block B under ``mapping``.

    ``row_indices`` are the rows of the dense matrix B selected by the sparse
    block's column indices (defaults to ``0..k-1``); ``row_stride_bytes`` is
    the byte stride between consecutive rows of B (``N * element_bytes``);
    ``col_offset`` is the first dense column of the tile.
    """
    model = model or MemoryTransactionModel()
    if row_indices is None:
        row_indices = np.arange(mapping.k)
    row_indices = np.asarray(row_indices, dtype=np.int64)
    if row_indices.shape[0] < mapping.k:
        # Residue block: missing rows are zero-filled registers, no loads.
        # Map missing tile rows onto the first row but mark them absent by
        # excluding their lanes; the simplest faithful treatment is to count
        # only the present rows' accesses.
        present = np.zeros(mapping.k, dtype=bool)
        present[: row_indices.shape[0]] = True
        padded = np.zeros(mapping.k, dtype=np.int64)
        padded[: row_indices.shape[0]] = row_indices
    else:
        present = np.ones(mapping.k, dtype=bool)
        padded = row_indices[: mapping.k]
    elem = element_bytes(mapping.precision)
    row_base = padded * row_stride_bytes
    accesses = mapping.thread_addresses(row_base, col_offset_bytes=col_offset * elem)
    if not np.all(present):
        # Rebuild the accesses, dropping the lanes whose tile row is absent
        # (their registers are zero-filled, no global load is issued).
        filtered: list[WarpAccess] = []
        e = 0
        idx = 0
        while e < mapping.elements_per_thread:
            packed = (
                e + 1 < mapping.elements_per_thread
                and np.array_equal(mapping.rows[:, e], mapping.rows[:, e + 1])
                and np.array_equal(mapping.cols[:, e] + 1, mapping.cols[:, e + 1])
            )
            lanes_present = present[mapping.rows[:, e]]
            original = accesses[idx]
            addrs = tuple(a for a, keep in zip(original.addresses, lanes_present) if keep)
            if addrs:
                filtered.append(WarpAccess(addrs, original.access_bytes))
            e += 2 if packed else 1
            idx += 1
        accesses = filtered
    return model.coalesce_many(accesses)


def output_tile_store_transactions(
    rows: int,
    cols: int,
    value_bytes: int = 4,
    model: MemoryTransactionModel | None = None,
) -> TransactionReport:
    """Transactions for writing a dense output tile back to global memory.

    The output C^T shares the coalesced layout of B^T, so consecutive lanes
    write consecutive addresses within each row; the store of an
    ``rows × cols`` FP32 tile therefore moves ``rows`` fully-used segments of
    ``cols * value_bytes`` bytes.
    """
    model = model or MemoryTransactionModel()
    accesses = []
    row_bytes = cols * value_bytes
    for r in range(rows):
        start = r * 4096  # distinct rows of C live far apart; stride is irrelevant
        addrs = tuple(range(start, start + row_bytes, 4))
        accesses.append(WarpAccess(addrs, 4))
    return model.coalesce_many(accesses)
