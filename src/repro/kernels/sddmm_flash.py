"""FlashSparse SDDMM with the swap-and-transpose MMA strategy (Section 3.4).

SDDMM computes, for every nonzero position ``(i, j)`` of a sparse sampling
matrix S, the dot product of row ``i`` of a dense matrix A (shape ``M × K``)
and row ``j`` of a dense matrix B (shape ``Ncols × K`` — i.e. the column-major
layout of ``K × Ncols`` the paper requires).  In attention-based GNNs this is
the edge-attention computation whose output feeds the subsequent SpMM.

With the swap-and-transpose strategy the sparse output TC block is 8×16 — a
window of 8 rows times 16 nonzero-vector columns — instead of the 16×8 block
of the 16×1 approaches, which both halves the number of output blocks per
nonzero vector and doubles the dense columns amortised per MMA.  The result
tile arrives transposed/column-major in registers, so the kernel reproduces
Algorithm 1's output splitting into row-major 8×4 (TF32) or 8×8 (FP16)
sub-tiles that the subsequent SpMM can consume directly.
"""

from __future__ import annotations

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.gpu.counters import CostCounter
from repro.gpu.device import WARP_SIZE
from repro.gpu.mma import default_shape, mma_execute_swapped
from repro.kernels.common import FlashSparseConfig, SddmmKernelResult, resolve_flash_format
from repro.kernels.engine import sddmm_batched
from repro.perfmodel.model import KernelProfile, sddmm_useful_flops
from repro.precision.types import Precision, element_bytes, quantize
from repro.utils.validation import check_dense_matrix

#: Performance profile of the FlashSparse SDDMM kernel.
FLASH_SDDMM_PROFILE = KernelProfile(
    name="FlashSparse-SDDMM",
    tcu_efficiency=0.30,
    cuda_efficiency=0.60,
    memory_efficiency=0.70,
    l2_efficiency=0.70,
    mma_issue_ns=1.0,
    index_op_weight=2.0,
    notes="8x1 swap-and-transpose SDDMM with split output tiles",
)

#: Nonzero vectors covered by one sparse output TC block (the tile is 8×16).
VECTORS_PER_OUTPUT_BLOCK = 16
#: Auxiliary index work per (output block, K-chunk).
INDEX_OPS_PER_BLOCK_CHUNK = 16


def _ceil_div(a: int, b: int) -> int:
    return -(-int(a) // int(b))


def _as_mebcrs(mask: MEBCRSMatrix | BlockedVectorFormat | CSRMatrix, config: FlashSparseConfig) -> BlockedVectorFormat:
    return resolve_flash_format(mask, config, "SDDMM")


# ---------------------------------------------------------------------------
# Algorithm 1: output splitting
# ---------------------------------------------------------------------------
def algorithm1_offsets(tid: int, sub_block: str = "8x4") -> int:
    """Target offset of a thread's ``c0`` in the split output (Algorithm 1).

    Reproduces lines 2–8 of the paper's Algorithm 1: given the lane id, the
    linear offset (in elements) at which the thread writes its first
    accumulator value into the row-major split output.
    """
    if not 0 <= tid < WARP_SIZE:
        raise ValueError("tid must be a warp lane id (0..31)")
    if sub_block == "8x8":
        return (tid % 4) * 2 * 8 + (tid // 4)
    if sub_block == "8x4":
        k = 1 if tid > 15 else 0
        return (tid % 4) * 2 * 4 + (tid // 4) + (k * 32) - (k * 4)
    raise ValueError("sub_block must be '8x4' or '8x8'")


def split_output_tile(tile: np.ndarray, precision: Precision | str) -> list[np.ndarray]:
    """Split an 8×16 output TC block into the sub-tiles stored for SpMM.

    TF32 SpMM consumes 8×4 sparse blocks, so the tile is split into four 8×4
    tiles; FP16 SpMM consumes 8×8 blocks, giving two 8×8 tiles (Figure 9).
    """
    tile = np.asarray(tile)
    if tile.shape != (8, VECTORS_PER_OUTPUT_BLOCK):
        raise ValueError(f"output tile must be 8x{VECTORS_PER_OUTPUT_BLOCK}, got {tile.shape}")
    precision = Precision(precision)
    width = 8 if precision is Precision.FP16 else 4
    return [tile[:, j : j + width].copy() for j in range(0, VECTORS_PER_OUTPUT_BLOCK, width)]


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------
def _set_footprints(
    counter: CostCounter,
    fmt: BlockedVectorFormat,
    n_rows: int,
    n_cols: int,
    k_dense: int,
    precision: Precision,
) -> None:
    """Record the unique DRAM footprint: both dense inputs + the sparse structure."""
    elem = element_bytes(precision)
    dense_bytes = (n_rows + n_cols) * k_dense * elem
    structure_bytes = (fmt.num_windows + 1 + fmt.num_nonzero_vectors) * 4
    read_fp = min(counter.bytes_read, dense_bytes + structure_bytes)
    counter.set_read_footprint(read_fp)
    counter.set_write_footprint(counter.bytes_written)


def sddmm_flash_execute(
    mask: MEBCRSMatrix | BlockedVectorFormat | CSRMatrix,
    a: np.ndarray,
    b: np.ndarray,
    config: FlashSparseConfig | None = None,
    scale_by_mask: bool = False,
) -> SddmmKernelResult:
    """Execute SDDMM: ``out[i, j] = <a[i, :], b[j, :]>`` at the mask's nonzeros.

    Parameters
    ----------
    mask:
        Sparse sampling matrix (its nonzero pattern selects the outputs).
    a:
        Dense matrix of shape ``(mask.n_rows, K)`` (row-major).
    b:
        Dense matrix of shape ``(mask.n_cols, K)`` — the column-major layout
        of the paper's ``K × Ncols`` right operand.
    scale_by_mask:
        When set, each output is additionally multiplied by the mask's stored
        value at that position (the general SDDMM definition); by default the
        outputs are the raw sampled dot products, as used by GNN attention.
    """
    config = config or FlashSparseConfig()
    if not config.swap_and_transpose:
        raise ValueError("sddmm_flash_execute implements the 8x1 strategy; use sddmm_tcu16_execute for 16x1")
    fmt = _as_mebcrs(mask, config)
    n_rows, n_cols = fmt.shape
    a = check_dense_matrix(a, "a", n_rows=n_rows)
    b = check_dense_matrix(b, "b", n_rows=n_cols)
    if a.shape[1] != b.shape[1]:
        raise ValueError("a and b must share the inner dimension K")
    k_dense = a.shape[1]
    precision = config.precision
    shape = default_shape(precision.value)
    mma_k = shape.k
    n_chunks = _ceil_div(k_dense, mma_k)
    elem = element_bytes(precision)

    a_q = quantize(a, precision).astype(np.float32)
    b_q = quantize(b, precision).astype(np.float32)
    if config.engine == "batched" and k_dense > 0:
        out_values = sddmm_batched(
            fmt,
            a_q,
            b_q,
            precision,
            VECTORS_PER_OUTPUT_BLOCK,
            scale_by_mask=scale_by_mask,
            **config.engine_stream_kwargs,
        )
        counter = sddmm_flash_cost(fmt, k_dense, config)
    else:
        out_values, counter = _sddmm_reference(fmt, a_q, b_q, config, shape, scale_by_mask)
    output = BlockedVectorFormat(
        partition=fmt.partition,
        vector_values=out_values,
        k=fmt.k,
        precision=Precision.FP32,
        format_name=f"{fmt.format_name}-sddmm-out",
    )
    useful = sddmm_useful_flops(fmt.nnz, k_dense)
    return SddmmKernelResult(
        output=output,
        counter=counter,
        kernel="flashsparse_sddmm",
        useful_flops=useful,
        meta={
            "precision": precision.value,
            "vector_size": 8,
            "mma_shape": shape.name,
            "k_dense": k_dense,
            "scale_by_mask": scale_by_mask,
            "engine": config.engine if k_dense > 0 else "reference",
        },
    )


def _sddmm_reference(
    fmt: BlockedVectorFormat,
    a_q: np.ndarray,
    b_q: np.ndarray,
    config: FlashSparseConfig,
    shape,
    scale_by_mask: bool,
) -> tuple[np.ndarray, CostCounter]:
    """The per-(window, block, chunk) emulation loop — the engine's oracle."""
    precision = config.precision
    n_rows, n_cols = fmt.shape
    k_dense = a_q.shape[1]
    mma_k = shape.k
    n_chunks = _ceil_div(k_dense, mma_k)
    elem = element_bytes(precision)
    counter = CostCounter()
    out_values = np.zeros_like(fmt.vector_values, dtype=np.float32)
    mask_pattern = np.asarray(fmt.vector_values, dtype=np.float64) != 0.0

    for w in range(fmt.num_windows):
        row0, row1 = fmt.partition.window_row_range(w)
        rows_here = row1 - row0
        start, end = fmt.window_vector_range(w)
        if start == end:
            continue
        a_rows = np.zeros((8, k_dense), dtype=np.float32)
        a_rows[:rows_here] = a_q[row0:row1]
        n_vecs = end - start
        for blk_start in range(0, n_vecs, VECTORS_PER_OUTPUT_BLOCK):
            vec_lo = start + blk_start
            vec_hi = min(vec_lo + VECTORS_PER_OUTPUT_BLOCK, end)
            cols = fmt.partition.vector_cols[vec_lo:vec_hi].astype(np.int64)
            width = cols.shape[0]
            b_rows = np.zeros((VECTORS_PER_OUTPUT_BLOCK, k_dense), dtype=np.float32)
            b_rows[:width] = b_q[cols]
            acc = np.zeros((8, VECTORS_PER_OUTPUT_BLOCK), dtype=np.float32)
            for c in range(n_chunks):
                k0 = c * mma_k
                k1 = min(k0 + mma_k, k_dense)
                a_tile = np.zeros((8, mma_k), dtype=np.float64)
                a_tile[:, : k1 - k0] = a_rows[:, k0:k1]
                b_tile = np.zeros((mma_k, VECTORS_PER_OUTPUT_BLOCK), dtype=np.float64)
                b_tile[: k1 - k0, :] = b_rows[:, k0:k1].T
                acc = mma_execute_swapped(a_tile, b_tile, acc, shape, counter=None)
            # Algorithm 1: the accumulator arrives column-major; splitting it
            # into row-major sub-tiles is a pure layout change, verified here
            # by round-tripping through the split.
            sub_tiles = split_output_tile(acc, precision)
            acc = np.concatenate(sub_tiles, axis=1)
            # Write back only the sampled (nonzero) positions.
            block_pattern = mask_pattern[vec_lo:vec_hi].T  # (8, width)
            sampled = np.where(block_pattern, acc[:, :width], 0.0)
            if scale_by_mask:
                sampled = sampled * np.asarray(fmt.vector_values[vec_lo:vec_hi], dtype=np.float32).T
            out_values[vec_lo:vec_hi] = sampled.T

            # --- cost accounting per output block ---------------------------
            counter.add_mma(shape.name, precision.value, n_chunks)
            # Dense A tile: 8 rows of mma_k elements per chunk.
            a_row_bytes = mma_k * elem
            counter.add_load(
                32,
                _ceil_div(a_row_bytes, 32) * 8 * n_chunks,
                useful_bytes=a_row_bytes * 8 * n_chunks,
            )
            # Dense B tile: one gathered row per present vector per chunk.
            counter.add_load(
                32,
                _ceil_div(a_row_bytes, 32) * width * n_chunks,
                useful_bytes=a_row_bytes * width * n_chunks,
            )
            counter.add_index_ops(INDEX_OPS_PER_BLOCK_CHUNK * n_chunks)
            # Output store: the present vectors' 8 values each, FP32.
            out_bytes = width * 8 * 4
            counter.add_store(32, _ceil_div(out_bytes, 32), useful_bytes=out_bytes)
        counter.add_warps(_ceil_div(n_vecs, VECTORS_PER_OUTPUT_BLOCK))

    _set_footprints(counter, fmt, n_rows, n_cols, k_dense, precision)
    return out_values, counter


def sddmm_flash_cost(
    mask: MEBCRSMatrix | BlockedVectorFormat | CSRMatrix,
    k_dense: int,
    config: FlashSparseConfig | None = None,
) -> CostCounter:
    """Analytic cost of the FlashSparse SDDMM (matches the execute path)."""
    config = config or FlashSparseConfig()
    if not config.swap_and_transpose:
        raise ValueError("sddmm_flash_cost implements the 8x1 strategy; use sddmm_tcu16_cost for 16x1")
    fmt = _as_mebcrs(mask, config)
    precision = config.precision
    shape = default_shape(precision.value)
    mma_k = shape.k
    k_dense = int(k_dense)
    if k_dense <= 0:
        raise ValueError("k_dense must be positive")
    n_chunks = _ceil_div(k_dense, mma_k)
    elem = element_bytes(precision)

    counts = fmt.partition.vectors_per_window.astype(np.int64)
    nonempty = counts > 0
    widths, _, first_block = fmt.partition.block_widths(VECTORS_PER_OUTPUT_BLOCK)
    blocks_per_window = np.diff(first_block)
    num_blocks = widths.shape[0]
    total_vectors = int(counts.sum())

    counter = CostCounter()
    counter.add_mma(shape.name, precision.value, num_blocks * n_chunks)

    a_row_bytes = mma_k * elem
    a_row_tx = _ceil_div(a_row_bytes, 32)
    counter.add_load(
        32,
        a_row_tx * 8 * num_blocks * n_chunks,
        useful_bytes=a_row_bytes * 8 * num_blocks * n_chunks,
    )
    counter.add_load(
        32,
        a_row_tx * total_vectors * n_chunks,
        useful_bytes=a_row_bytes * total_vectors * n_chunks,
    )
    counter.add_index_ops(INDEX_OPS_PER_BLOCK_CHUNK * num_blocks * n_chunks)

    # Output stores: per block, the present vectors' 8 FP32 values — the
    # per-block byte counts come straight off the block-width histogram.
    store_bytes = widths * 8 * 4
    if total_vectors:
        counter.add_store_bulk(32, -(-store_bytes // 32), store_bytes)

    counter.add_warps(int(blocks_per_window[nonempty].sum()))
    _set_footprints(counter, fmt, fmt.shape[0], fmt.shape[1], k_dense, precision)
    return counter
