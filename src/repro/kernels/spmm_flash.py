"""FlashSparse SpMM with the swap-and-transpose MMA strategy (Section 3.3).

The kernel walks the ME-BCRS structure window by window.  For every sparse
TC block A (8 rows × ``k`` nonzero vectors) and every 16-column tile of the
dense matrix B it:

1. gathers the ``k`` rows of B addressed by the block's column indices
   (the dense TC block B, ``k × 16``),
2. issues one swap-and-transpose MMA — the hardware instruction sees
   ``Bᵀ`` (16×k) as its left operand and ``Aᵀ`` (k×8) as its right operand
   and produces ``Cᵀ`` (16×8) —,
3. accumulates the transposed result into the 8×16 output tile of C.

The cost accounting mirrors the CUDA kernel: one MMA per (block, tile), the
sparse block A and the gathered B rows are loaded per MMA, the output tile is
written once per (window, tile), and the number of 32-byte transactions per
gathered B row comes from the thread-mapping model (1 with the
memory-efficient mapping, 2 with the direct mapping, for FP16).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.gpu.counters import CostCounter
from repro.gpu.mma import default_shape, mma_execute_swapped
from repro.kernels.common import FlashSparseConfig, SpmmKernelResult, resolve_flash_format
from repro.kernels.engine import spmm_batched
from repro.kernels.thread_mapping import b_tile_transactions, get_mapping
from repro.perfmodel.model import KernelProfile, spmm_useful_flops
from repro.precision.types import Precision, element_bytes, quantize
from repro.utils.validation import check_dense_matrix

#: Performance profile of the FlashSparse SpMM kernel.
FLASH_SPMM_PROFILE = KernelProfile(
    name="FlashSparse-SpMM",
    tcu_efficiency=0.35,
    cuda_efficiency=0.60,
    memory_efficiency=0.72,
    l2_efficiency=0.70,
    mma_issue_ns=1.0,
    index_op_weight=2.0,
    notes="8x1 swap-and-transpose kernel with coalesced thread mapping; wide "
    "128-bit loads sustain a high fraction of L2 bandwidth",
)

#: Dense columns covered per MMA by the swap-and-transpose strategy.
DENSE_TILE_COLS = 16
#: Fixed auxiliary index work charged per (block, tile): residue modulo,
#: column-offset computation and the ME-BCRS pointer arithmetic.
INDEX_OPS_PER_BLOCK_TILE = 8


def _ceil_div(a: int, b: int) -> int:
    return -(-int(a) // int(b))


@lru_cache(maxsize=None)
def _b_row_transactions(precision: str, coalesced: bool) -> int:
    """32-byte transactions per gathered B row, from the thread-mapping model."""
    mapping = get_mapping(Precision(precision), coalesced)
    # Use well-separated synthetic rows so transactions never merge across rows.
    rows = np.arange(mapping.k, dtype=np.int64)
    report = b_tile_transactions(mapping, row_stride_bytes=1 << 16, row_indices=rows)
    assert report.num_transactions % mapping.k == 0
    return report.num_transactions // mapping.k


def _as_mebcrs(matrix: MEBCRSMatrix | BlockedVectorFormat | CSRMatrix, config: FlashSparseConfig) -> BlockedVectorFormat:
    return resolve_flash_format(matrix, config, "SpMM")


def _add_block_tile_costs(
    counter: CostCounter,
    shape_name: str,
    precision: Precision,
    width: int,
    n_tiles: int,
    coalesced: bool,
) -> None:
    """Charge the per-(block, all tiles) loads and MMAs to ``counter``."""
    elem = element_bytes(precision)
    tx_per_row = _b_row_transactions(precision.value, coalesced)
    # Sparse TC block A: 8 x width values, contiguous in ME-BCRS.
    a_bytes = 8 * width * elem
    a_tx = _ceil_div(a_bytes, 32)
    # Dense TC block B: width gathered rows of 16 columns.
    b_useful_row = DENSE_TILE_COLS * elem
    counter.add_mma(shape_name, precision.value, n_tiles)
    counter.add_load(32, a_tx * n_tiles, useful_bytes=a_bytes * n_tiles)
    counter.add_load(
        32,
        tx_per_row * width * n_tiles,
        useful_bytes=b_useful_row * width * n_tiles,
    )
    counter.add_index_ops(INDEX_OPS_PER_BLOCK_TILE * n_tiles)


def _add_output_costs(counter: CostCounter, rows: int, n_dense: int) -> None:
    """Charge the FP32 output write-back of one window across all tiles."""
    out_bytes = rows * n_dense * 4
    counter.add_store(32, _ceil_div(out_bytes, 32), useful_bytes=out_bytes)


def _set_footprints(
    counter: CostCounter,
    fmt: BlockedVectorFormat,
    n_cols: int,
    n_dense: int,
    precision: Precision,
) -> None:
    """Record the unique DRAM footprint: the ME-BCRS arrays plus the dense B.

    Rows of B gathered repeatedly across row windows stay L2-resident on the
    real device; only the unique data has to stream from DRAM.
    """
    b_array_bytes = n_cols * n_dense * element_bytes(precision)
    read_fp = min(counter.bytes_read, fmt.memory_footprint_bytes() + b_array_bytes)
    counter.set_read_footprint(read_fp)
    counter.set_write_footprint(counter.bytes_written)


def spmm_flash_execute(
    a: MEBCRSMatrix | BlockedVectorFormat | CSRMatrix,
    b: np.ndarray,
    config: FlashSparseConfig | None = None,
) -> SpmmKernelResult:
    """Execute C = A @ B with the FlashSparse SpMM kernel.

    Parameters
    ----------
    a:
        Sparse matrix, either already in ME-BCRS or as CSR (translated on the
        fly, as the paper's preprocessing kernel would).
    b:
        Dense matrix of shape ``(a.n_cols, N)``.
    config:
        Kernel configuration (precision and thread mapping).
    """
    config = config or FlashSparseConfig()
    if not config.swap_and_transpose:
        raise ValueError("spmm_flash_execute implements the 8x1 strategy; use spmm_tcu16_execute for 16x1")
    fmt = _as_mebcrs(a, config)
    n_rows, n_cols = fmt.shape
    b = check_dense_matrix(b, "b", n_rows=n_cols)
    n_dense = b.shape[1]
    precision = config.precision
    shape = default_shape(precision.value)
    k = shape.k
    if fmt.k != k:
        raise ValueError(
            f"format block width k={fmt.k} does not match precision {precision} (expects k={k})"
        )

    b_q = quantize(b, precision).astype(np.float32)
    if config.engine == "batched" and n_dense > 0:
        # One batched matmul over all TC blocks (streamed in block-range
        # chunks when the config bounds intermediate memory); the counter
        # comes from the closed-form cost pass, which is bit-identical to
        # the loop below and independent of the streaming knobs.
        out = spmm_batched(fmt, b_q, precision, **config.engine_stream_kwargs)
        counter = spmm_flash_cost(fmt, n_dense, config)
    else:
        out, counter = _spmm_reference(fmt, b_q, config, shape)
    useful = spmm_useful_flops(fmt.nnz, n_dense)
    return SpmmKernelResult(
        values=out,
        counter=counter,
        kernel="flashsparse_spmm",
        useful_flops=useful,
        meta={
            "precision": precision.value,
            "coalesced": config.coalesced,
            "vector_size": 8,
            "mma_shape": shape.name,
            "n_dense": n_dense,
            "engine": config.engine if n_dense > 0 else "reference",
        },
    )


def _spmm_reference(
    fmt: BlockedVectorFormat,
    b_q: np.ndarray,
    config: FlashSparseConfig,
    shape,
) -> tuple[np.ndarray, CostCounter]:
    """The per-(window, block, tile) emulation loop — the engine's oracle."""
    precision = config.precision
    k = shape.k
    n_rows, n_cols = fmt.shape
    n_dense = b_q.shape[1]
    counter = CostCounter()
    out = np.zeros((n_rows, n_dense), dtype=np.float32)
    n_tiles = _ceil_div(n_dense, DENSE_TILE_COLS)

    for w in range(fmt.num_windows):
        row0, row1 = fmt.partition.window_row_range(w)
        rows_here = row1 - row0
        start, end = fmt.window_vector_range(w)
        if start == end:
            continue
        window_acc = np.zeros((8, n_dense), dtype=np.float32)
        for blk in range(fmt.window_blocks(w)):
            cols = fmt.block_columns(w, blk).astype(np.int64)
            width = cols.shape[0]
            values = fmt.block_values(w, blk)  # (8, width)
            # Zero-fill the registers of the missing residue vectors.
            a_tile = np.zeros((8, k), dtype=np.float64)
            a_tile[:, :width] = values
            b_rows = np.zeros((k, n_dense), dtype=np.float32)
            b_rows[:width] = b_q[cols]
            # One swap-and-transpose MMA per 16-column tile of B.
            for t in range(n_tiles):
                j0 = t * DENSE_TILE_COLS
                j1 = min(j0 + DENSE_TILE_COLS, n_dense)
                b_tile = np.zeros((k, DENSE_TILE_COLS), dtype=np.float64)
                b_tile[:, : j1 - j0] = b_rows[:, j0:j1]
                acc = mma_execute_swapped(a_tile, b_tile, None, shape, counter=None)
                window_acc[:, j0:j1] += acc[:, : j1 - j0]
            _add_block_tile_costs(
                counter, shape.name, precision, width, n_tiles, config.coalesced
            )
        out[row0:row1] = window_acc[:rows_here]
        _add_output_costs(counter, rows_here, n_dense)
        counter.add_warps(n_tiles)

    _set_footprints(counter, fmt, n_cols, n_dense, precision)
    return out, counter


def spmm_flash_cost(
    a: MEBCRSMatrix | BlockedVectorFormat | CSRMatrix,
    n_dense: int,
    config: FlashSparseConfig | None = None,
) -> CostCounter:
    """Cost of the FlashSparse SpMM without computing the numeric result.

    Produces exactly the counter :func:`spmm_flash_execute` would produce,
    but vectorised over the block structure so large matrices are cheap to
    sweep.
    """
    config = config or FlashSparseConfig()
    if not config.swap_and_transpose:
        raise ValueError("spmm_flash_cost implements the 8x1 strategy; use spmm_tcu16_cost for 16x1")
    fmt = _as_mebcrs(a, config)
    precision = config.precision
    shape = default_shape(precision.value)
    k = shape.k
    if fmt.k != k:
        raise ValueError(
            f"format block width k={fmt.k} does not match precision {precision} (expects k={k})"
        )
    n_dense = int(n_dense)
    if n_dense <= 0:
        raise ValueError("n_dense must be positive")
    n_tiles = _ceil_div(n_dense, DENSE_TILE_COLS)
    elem = element_bytes(precision)
    tx_per_row = _b_row_transactions(precision.value, config.coalesced)

    counts = fmt.partition.vectors_per_window.astype(np.int64)
    nonempty = counts > 0
    widths, _, _ = fmt.partition.block_widths(k)
    num_blocks = widths.shape[0]
    total_vectors = int(counts.sum())

    counter = CostCounter()
    counter.add_mma(shape.name, precision.value, num_blocks * n_tiles)

    # Sparse TC block A loads: 8 * width values per block per tile, with
    # per-block transaction counts taken from the block-width histogram
    # (widths are k for full blocks, the residue for a window's last block).
    a_bytes = 8 * widths * elem
    counter.add_load_bulk(32, (-(-a_bytes // 32)) * n_tiles, a_bytes * n_tiles)

    # Dense TC block B loads: one gathered row per vector, per tile.
    b_useful_per_tile = total_vectors * DENSE_TILE_COLS * elem
    counter.add_load(
        32,
        tx_per_row * total_vectors * n_tiles,
        useful_bytes=b_useful_per_tile * n_tiles,
    )

    counter.add_index_ops(INDEX_OPS_PER_BLOCK_TILE * num_blocks * n_tiles)

    # Output write-back, one per non-empty window.
    window_rows = np.full(fmt.num_windows, 8, dtype=np.int64)
    if fmt.num_windows:
        last_rows = fmt.shape[0] - (fmt.num_windows - 1) * 8
        window_rows[-1] = last_rows
    out_bytes = window_rows[nonempty] * n_dense * 4
    if int(out_bytes.sum()):
        counter.add_store_bulk(32, -(-out_bytes // 32), out_bytes)

    counter.add_warps(int(nonempty.sum()) * n_tiles)
    _set_footprints(counter, fmt, fmt.shape[1], n_dense, precision)
    return counter
