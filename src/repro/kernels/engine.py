"""Batched vectorized execution engine shared by the four TCU kernels.

The reference kernels (``engine="reference"``) walk the TC-block structure
with a per-(window, block, tile) Python loop, issuing one emulated MMA per
tile.  That mirrors the CUDA kernel faithfully but is dominated by
interpreter overhead.  This module is the ``engine="batched"`` execution
path: it consumes the padded batch arrays of
:meth:`repro.formats.blocked.BlockedVectorFormat.blocks_as_arrays` and
replaces the whole loop nest with

1. one fancy-index gather of every dense row addressed by any block,
2. one batched matmul over all blocks (the zero-padded lanes of narrow
   residue blocks contribute exactly the zero register values the loop path
   feeds its MMAs), and
3. a segment reduction (:func:`repro.ops.segment_sum` over the window
   block offsets) plus one scatter into the output.

Memory-bounded streaming
------------------------
The one-shot SpMM path materialises an ``(n_blocks, vector_size, N)``
product (plus an equally shaped gather of B rows), which blows up on large
graphs × wide dense operands.  Passing ``block_chunk`` (a block count) or
``max_intermediate_bytes`` (a byte budget the chunk size is derived from)
streams the batch in block-range slices instead: each slice is multiplied,
reduced per window with :func:`repro.ops.segment_sum_runs`, and accumulated
into the output, so peak intermediate memory is O(chunk · v · N) while the
result stays within FP32 round-off of the one-shot run (a window whose
blocks span a chunk boundary is summed incrementally, which re-associates
the FP32 additions).  ``workers=K`` additionally shards independent chunk
ranges across a thread pool — the ranges are aligned to window boundaries
so no two workers touch the same output rows, and NumPy's BLAS matmuls
release the GIL, so the shards genuinely overlap.

Only the numerics live here.  Cost accounting is closed-form over the
block-width histogram and stays with each kernel's ``*_cost`` function,
which produces bit-identical counter state to the reference loop (the parity
tests assert exact ``CostCounter`` equality and value agreement) — and, by
construction, counter state that is *exactly* independent of the chunking
and worker knobs.

The engine is quantisation-faithful: the sparse values are re-quantised to
the target precision exactly where :func:`repro.gpu.mma.mma_execute` would
(FP16 storage is already exact; TF32 values are stored in FP32 containers
and rounded here), and all accumulation happens in FP32, matching
tensor-core accumulators.  Per-block products may sum the ``k`` dimension in
a different association order than the 16-column-tile loop, so values agree
to FP32 round-off, not bit-exactly.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.formats.blocked import BlockBatch, BlockedVectorFormat
from repro.ops import segment_ids, segment_softmax, segment_sum, segment_sum_runs
from repro.precision.types import Precision, quantize


def spmm_bytes_per_block(vector_size: int, group: int, n_dense: int) -> int:
    """Float32 intermediate bytes one SpMM block contributes to a chunk.

    The (v, N) product slab plus the (group, N) gathered B rows — the figure
    :func:`resolve_block_chunk` divides a byte budget by.  The serving
    planner uses the same formula so its budget math can never drift from
    the engine's.
    """
    return (int(vector_size) + int(group)) * int(n_dense) * 4


def sddmm_bytes_per_block(vector_size: int, group: int, k_dense: int) -> int:
    """Float32 intermediate bytes one SDDMM output block contributes.

    The gathered A window (v, K) and B rows (group, K) plus the (v, group)
    accumulator.
    """
    v, g = int(vector_size), int(group)
    return ((v + g) * int(k_dense) + v * g) * 4


def resolve_block_chunk(
    num_blocks: int,
    bytes_per_block: int,
    block_chunk: int | None,
    max_intermediate_bytes: int | None,
    workers: int = 1,
) -> int:
    """Blocks per streaming slice; ``num_blocks`` means the one-shot path.

    An explicit ``block_chunk`` wins; otherwise ``max_intermediate_bytes``
    is divided by the per-block intermediate footprint (never below one
    block — the floor under which no streaming granularity exists).  The
    byte budget covers the whole run: with ``workers`` threads each holding
    one chunk's intermediates concurrently, the per-chunk share is
    ``budget / workers``.
    """
    if block_chunk is not None:
        return max(1, int(block_chunk))
    if max_intermediate_bytes is not None:
        per_chunk_budget = int(max_intermediate_bytes) // max(1, int(workers))
        return max(1, per_chunk_budget // max(1, int(bytes_per_block)))
    return max(1, num_blocks)


def _worker_ranges(
    window_offsets: np.ndarray, num_blocks: int, workers: int
) -> list[tuple[int, int]]:
    """Split ``[0, num_blocks)`` into ≤ ``workers`` window-aligned shards.

    Shard boundaries snap to window starts so every window's blocks live in
    exactly one shard — the property that makes concurrent output writes
    race-free (each shard owns a disjoint set of output rows / vectors).
    """
    workers = max(1, int(workers))
    if workers == 1 or num_blocks == 0:
        return [(0, num_blocks)]
    bounds = [0]
    for i in range(1, workers):
        target = (i * num_blocks) // workers
        snapped = int(
            window_offsets[np.searchsorted(window_offsets, target, side="left")]
        )
        if bounds[-1] < snapped < num_blocks:
            bounds.append(snapped)
    bounds.append(num_blocks)
    return list(zip(bounds[:-1], bounds[1:]))


def _run_sharded(ranges: list[tuple[int, int]], body, workers: int) -> None:
    """Run ``body(lo, hi)`` over block ranges, threaded when it pays off."""
    if len(ranges) == 1 or workers <= 1:
        for lo, hi in ranges:
            body(lo, hi)
        return
    with ThreadPoolExecutor(max_workers=min(workers, len(ranges))) as pool:
        # list() re-raises the first worker exception instead of swallowing it.
        list(pool.map(lambda r: body(*r), ranges))


def spmm_batched(
    fmt: BlockedVectorFormat,
    b_q: np.ndarray,
    precision: Precision,
    block_chunk: int | None = None,
    max_intermediate_bytes: int | None = None,
    workers: int = 1,
) -> np.ndarray:
    """Numeric result of ``C = A @ B`` over the whole block batch.

    Parameters
    ----------
    fmt:
        The blocked sparse matrix (any vector size; the swap-and-transpose
        8×1 kernels and the 16×1 baselines share this path, since Equation (1)
        is a numeric identity).
    b_q:
        Dense operand already quantised to ``precision``, float32, of shape
        ``(fmt.shape[1], N)``.
    precision:
        Target precision; the stored sparse values are re-quantised to it.
    block_chunk, max_intermediate_bytes, workers:
        Memory-bounded streaming knobs (see the module docstring).  The
        defaults reproduce the one-shot batched path.
    """
    v = fmt.vector_size
    n_rows = fmt.shape[0]
    n_dense = b_q.shape[1]
    out = np.zeros((n_rows, n_dense), dtype=np.float32)
    batch = fmt.blocks_as_arrays()
    n_blocks = batch.num_blocks
    if n_blocks == 0 or n_dense == 0:
        return out

    bytes_per_block = spmm_bytes_per_block(v, batch.group, n_dense)
    chunk = resolve_block_chunk(
        n_blocks, bytes_per_block, block_chunk, max_intermediate_bytes, workers
    )

    if chunk >= n_blocks and workers <= 1:
        a_q = quantize(batch.values, precision).astype(np.float32)
        gathered = b_q[batch.columns]  # (n_blocks, k, N); padded lanes hit row 0,
        # which is harmless because the matching A lanes are exactly zero.
        prod = a_q @ gathered  # batched matmul, (n_blocks, v, N)
        win_sums = segment_sum(prod, batch.window_offsets)  # (num_windows, v, N)
        # Window w's sums are rows w*v .. w*v + v - 1 of C; the reshape lays
        # them out contiguously and the slice drops the partial last window's
        # out-of-range rows.
        out[:] = win_sums.reshape(-1, n_dense)[:n_rows]
        return out

    def body(lo: int, hi: int) -> None:
        for c_lo in range(lo, hi, chunk):
            c_hi = min(c_lo + chunk, hi)
            a_q = quantize(batch.values[c_lo:c_hi], precision).astype(np.float32)
            prod = a_q @ b_q[batch.columns[c_lo:c_hi]]
            run_windows, run_sums = segment_sum_runs(
                prod, batch.window_of_block[c_lo:c_hi]
            )
            rows = (run_windows[:, None] * v + np.arange(v)[None, :]).reshape(-1)
            flat = run_sums.reshape(-1, n_dense)
            keep = rows < n_rows
            # += (not =): a window split across chunk boundaries accumulates
            # its partial sums; each window lives in exactly one shard, so
            # no two workers ever touch the same rows.
            out[rows[keep]] += flat[keep]

    ranges = _worker_ranges(batch.window_offsets, n_blocks, workers)
    _run_sharded(ranges, body, workers)
    return out


def sddmm_batched(
    fmt: BlockedVectorFormat,
    a_q: np.ndarray,
    b_q: np.ndarray,
    precision: Precision,
    group: int,
    scale_by_mask: bool = False,
    block_chunk: int | None = None,
    max_intermediate_bytes: int | None = None,
    workers: int = 1,
) -> np.ndarray:
    """Numeric SDDMM output values over the whole output-block batch.

    Parameters
    ----------
    fmt:
        The blocked sampling mask.
    a_q, b_q:
        Dense operands already quantised to ``precision``, float32, of shapes
        ``(fmt.shape[0], K)`` and ``(fmt.shape[1], K)``.
    precision:
        Target precision (the dense operands are assumed pre-quantised; kept
        for signature symmetry and future per-chunk emulation hooks).
    group:
        Nonzero vectors covered by one sparse output TC block (16 for the 8×1
        swap-and-transpose kernel, 8 for the 16×1 baseline).
    scale_by_mask:
        Multiply each sampled dot product by the mask's stored value.
    block_chunk, max_intermediate_bytes, workers:
        Memory-bounded streaming knobs (see the module docstring).  SDDMM
        output blocks are independent, so chunked and sharded runs are
        bit-identical to the one-shot run (every nonzero vector is written
        by exactly one block).

    Returns
    -------
    ``(num_nonzero_vectors, vector_size)`` float32 array in the layout of
    ``fmt.vector_values``.
    """
    del precision
    v = fmt.vector_size
    n_rows = fmt.shape[0]
    k_dense = a_q.shape[1]
    out_values = np.zeros(fmt.vector_values.shape, dtype=np.float32)
    batch = fmt.blocks_as_arrays(group)
    n_blocks = batch.num_blocks
    if n_blocks == 0 or k_dense == 0:
        return out_values

    a_pad = np.zeros((fmt.num_windows * v, k_dense), dtype=np.float32)
    a_pad[:n_rows] = a_q
    a_win = a_pad.reshape(fmt.num_windows, v, k_dense)

    bytes_per_block = sddmm_bytes_per_block(v, group, k_dense)
    chunk = resolve_block_chunk(
        n_blocks, bytes_per_block, block_chunk, max_intermediate_bytes, workers
    )

    def body(lo: int, hi: int) -> None:
        for c_lo in range(lo, hi, chunk):
            c_hi = min(c_lo + chunk, hi)
            a_blocks = a_win[batch.window_of_block[c_lo:c_hi]]  # (chunk, v, K)
            b_blocks = b_q[batch.columns[c_lo:c_hi]]  # (chunk, group, K)
            acc = a_blocks @ b_blocks.transpose(0, 2, 1)  # (chunk, v, group)

            values = batch.values[c_lo:c_hi]
            sampled = np.where(values != 0.0, acc, 0.0)
            if scale_by_mask:
                sampled = sampled * values
            # Scatter each valid lane's column back to its nonzero vector;
            # every vector belongs to exactly one block, so the writes of
            # distinct chunks (and shards) are disjoint.
            lanes = batch.lane_valid[c_lo:c_hi]
            out_values[batch.vector_index[c_lo:c_hi][lanes]] = sampled.transpose(0, 2, 1)[lanes]

    ranges = _worker_ranges(batch.window_offsets, n_blocks, workers)
    _run_sharded(ranges, body, workers)
    return out_values


# ---------------------------------------------------------------------------
# Shard execution hooks (multi-process serving)
# ---------------------------------------------------------------------------
# The functions below are the per-shard numeric cores the serving scheduler
# (:mod:`repro.serve.scheduler`) runs inside worker *processes*.  They take
# plain ndarrays (cheap to pickle per shard; the large dense operands travel
# via shared memory) and reproduce the one-shot batched path bit-for-bit:
# a shard covers a *window-aligned* block range, so every window's reduceat
# segment is reduced whole, in the same association order as the full-batch
# reduction — no FP32 re-association, unlike the incremental chunk merge.


@dataclass(frozen=True)
class ShardRange:
    """One window-aligned unit of work: blocks ``[lo, hi)`` covering windows
    ``[w0, w1)`` of the batch."""

    lo: int
    hi: int
    w0: int
    w1: int

    @property
    def num_blocks(self) -> int:
        """Blocks in the shard."""
        return self.hi - self.lo


def window_aligned_ranges(
    window_offsets: np.ndarray, target_blocks: int
) -> list[ShardRange]:
    """Cut the block batch into window-aligned shards of ≈ ``target_blocks``.

    Every window's blocks land in exactly one shard (the race-freedom and
    bit-exactness invariant); a window with more than ``target_blocks``
    blocks becomes a shard of its own rather than being split.  The shards
    cover the windows gaplessly and in order — empty windows (zero blocks,
    zero output) are absorbed into the neighbouring shard — so consecutive
    shards satisfy ``prev.hi == next.lo`` and ``prev.w1 == next.w0``.  An
    all-empty batch yields no shards.
    """
    offsets = np.asarray(window_offsets, dtype=np.int64)
    n_windows = offsets.shape[0] - 1
    target = max(1, int(target_blocks))
    ranges: list[ShardRange] = []
    w0 = 0
    while w0 < n_windows:
        lo = int(offsets[w0])
        # Largest window end whose cumulative block count stays within target
        # (but always at least one window).
        w1 = int(np.searchsorted(offsets, lo + target, side="right")) - 1
        w1 = min(max(w1, w0 + 1), n_windows)
        hi = int(offsets[w1])
        while hi == lo and w1 < n_windows:  # leading empty windows: reach blocks
            w1 += 1
            hi = int(offsets[w1])
        while w1 < n_windows and int(offsets[w1 + 1]) == hi:  # trailing empties
            w1 += 1
        if hi > lo:
            ranges.append(ShardRange(lo=lo, hi=hi, w0=w0, w1=w1))
        w0 = w1
    return ranges


def sddmm_a_window(a_q: np.ndarray, w0: int, w1: int, v: int) -> np.ndarray:
    """The zero-padded ``(w1 - w0, v, K)`` slab of A rows for a window range.

    Identical to the slab the one-shot engine gathers for those windows, so
    every shard consumer — the in-process pool, the in-parent fallback and
    the cluster worker hosts — feeds :func:`sddmm_shard_values` bit-identical
    inputs.
    """
    k_dense = a_q.shape[1]
    a_win = np.zeros(((w1 - w0) * v, k_dense), dtype=np.float32)
    lo, hi = w0 * v, min(w1 * v, a_q.shape[0])
    a_win[: hi - lo] = a_q[lo:hi]
    return a_win.reshape(w1 - w0, v, k_dense)


def spmm_shard_rows(
    shard_values: np.ndarray,
    shard_columns: np.ndarray,
    local_offsets: np.ndarray,
    b_q: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    """Dense output rows of one window-aligned SpMM shard (one-shot order).

    ``shard_values`` / ``shard_columns`` are the batch slices of the shard's
    block range, ``local_offsets`` the shard-local window offsets
    (``window_offsets[w0:w1 + 1] - lo``).  Returns the ``(windows · v, N)``
    row block starting at matrix row ``w0 · v`` (the caller clips the tail
    window past ``n_rows``).
    """
    a_q = quantize(shard_values, precision).astype(np.float32)
    prod = a_q @ b_q[shard_columns]
    win_sums = segment_sum(prod, local_offsets)
    return win_sums.reshape(-1, b_q.shape[1])


def sddmm_shard_values(
    shard_values: np.ndarray,
    shard_columns: np.ndarray,
    shard_lane_valid: np.ndarray,
    shard_vector_index: np.ndarray,
    local_window_of_block: np.ndarray,
    a_win: np.ndarray,
    b_q: np.ndarray,
    scale_by_mask: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled values of one window-aligned SDDMM shard.

    ``a_win`` is the zero-padded ``(w1 - w0, v, K)`` slab of A rows for the
    shard's windows; ``local_window_of_block`` indexes into it.  Returns
    ``(vector_indices, values)`` — the flat scatter targets into
    ``fmt.vector_values`` and the ``(n, v)`` rows to store there.  Bit-
    identical to the one-shot path: every output block is independent.
    """
    acc = a_win[local_window_of_block] @ b_q[shard_columns].transpose(0, 2, 1)
    sampled = np.where(shard_values != 0.0, acc, 0.0)
    if scale_by_mask:
        sampled = sampled * shard_values
    lanes = shard_lane_valid
    return shard_vector_index[lanes], sampled.transpose(0, 2, 1)[lanes]


# ---------------------------------------------------------------------------
# Fused layer shard hook (one round trip per GNN layer)
# ---------------------------------------------------------------------------
# A GAT/AGNN-style attention layer is SDDMM → (scale) → edge softmax → SpMM.
# Served one kernel at a time that costs three request cycles per layer, each
# re-gathering dense operands and re-acquiring the translation.  The fused
# hook below executes the *whole* pipeline for one window-aligned shard.
#
# Why this is possible per shard, bit-identically: shard boundaries are
# window-aligned, windows are ``vector_size`` consecutive rows, so a shard
# owns whole CSR rows — every softmax segment (one CSR row) lies entirely
# inside one shard, and :func:`repro.ops.segment_softmax` computes each
# segment from its own elements only.  The SDDMM and SpMM stages were
# already shard-local.  The one representational hop — SDDMM emits values
# in nonzero-vector layout, the softmax wants CSR edge order, the SpMM
# wants the block batch again — is a pair of gathers/scatters through the
# shared :class:`~repro.formats.windows.WindowPartition`, computed locally
# by :func:`layer_softmax_mapping` from the partition + CSR indptr; nothing
# extra has to travel on the wire for the cluster's ``layer_task`` frames.
#
# The composed serving path additionally *translates* the attention CSR
# before the SpMM, which stores the values as ``dtype_for(precision)``.
# Skipping that round trip is exact because :func:`spmm_shard_rows` applies
# ``quantize`` anyway and quantisation is idempotent (an FP16 round trip
# and TF32 mantissa rounding are both projections), so the fused SpMM sees
# the same quantised values the composed one does.


def layer_softmax_mapping(
    indptr: np.ndarray,
    nnz_vector_of_entry: np.ndarray,
    window_ptr: np.ndarray,
    w0: int,
    w1: int,
    vector_size: int,
    n_rows: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Shard-local CSR ↔ nonzero-vector mapping for the fused softmax stage.

    For the window range ``[w0, w1)`` (rows ``[w0·v, min(w1·v, n_rows))``)
    returns ``(local_indptr, entry_vector, entry_lane, vec_lo, vec_count)``:
    ``local_indptr`` is the shard-local CSR row layout (softmax segments),
    ``entry_vector`` / ``entry_lane`` address each CSR entry's slot in the
    shard's ``(vec_count, v)`` nonzero-vector value slab (vector ids local
    to ``vec_lo = window_ptr[w0]``), exactly the scatter the translation
    performs — so a gather through them reads SDDMM outputs in CSR edge
    order and a scatter writes attention weights back into block-value
    layout.  Everything derives from the partition and the CSR ``indptr``;
    a cluster worker computes it locally per task.
    """
    v = int(vector_size)
    r0 = int(w0) * v
    r1 = min(int(w1) * v, int(n_rows))
    e0 = int(indptr[r0])
    e1 = int(indptr[r1])
    local_indptr = np.asarray(indptr[r0 : r1 + 1], dtype=np.int64) - e0
    vec_lo = int(window_ptr[w0])
    vec_count = int(window_ptr[w1]) - vec_lo
    entry_vector = np.asarray(nnz_vector_of_entry[e0:e1], dtype=np.int64) - vec_lo
    # Rows start at w0·v ≡ 0 (mod v), so the lane (row-in-window) of every
    # entry is just its shard-local row index modulo v.
    entry_lane = segment_ids(local_indptr) % v
    return local_indptr, entry_vector, entry_lane, vec_lo, vec_count


def layer_shard_rows(
    sddmm_values: np.ndarray,
    sddmm_columns: np.ndarray,
    sddmm_lane_valid: np.ndarray,
    sddmm_vector_index: np.ndarray,
    sddmm_local_window_of_block: np.ndarray,
    spmm_columns: np.ndarray,
    spmm_local_offsets: np.ndarray,
    spmm_lane_valid: np.ndarray,
    spmm_vector_index: np.ndarray,
    local_indptr: np.ndarray,
    entry_vector: np.ndarray,
    entry_lane: np.ndarray,
    vec_lo: int,
    vec_count: int,
    a_win: np.ndarray,
    b_q: np.ndarray,
    x_q: np.ndarray,
    precision: Precision,
    scale: float | None,
    scale_by_mask: bool,
) -> tuple[np.ndarray, dict]:
    """Dense output rows of one fused-layer shard, plus per-stage seconds.

    Executes SDDMM → (scale) → edge softmax → SpMM for one window-aligned
    shard without leaving the worker: the ``sddmm_*`` arguments are the
    shard's slices of the SDDMM-grouping block batch (as for
    :func:`sddmm_shard_values`), the ``spmm_*`` arguments the slices of the
    SpMM-grouping batch (as for :func:`spmm_shard_rows` — the two groupings
    cover the same windows but different block counts), and the mapping
    arguments come from :func:`layer_softmax_mapping`.  ``a_win`` / ``b_q``
    are the SDDMM operands, ``x_q`` the SpMM dense operand; ``scale``
    multiplies the edge logits in float32 before the softmax (the AGNN β).

    Returns ``(rows, timings)``: the ``(windows · v, N)`` output rows
    starting at matrix row ``w0 · v`` (caller clips the tail window) and a
    ``{"sddmm_s", "edge_softmax_s", "spmm_s"}`` wall-clock split.
    """
    t0 = time.perf_counter()
    idx, vals = sddmm_shard_values(
        sddmm_values,
        sddmm_columns,
        sddmm_lane_valid,
        sddmm_vector_index,
        sddmm_local_window_of_block,
        a_win,
        b_q,
        scale_by_mask,
    )
    t1 = time.perf_counter()
    # SDDMM output → CSR edge order → per-row softmax → block-value layout.
    v = a_win.shape[1]
    logits_vec = np.zeros((vec_count, v), dtype=np.float32)
    logits_vec[idx - vec_lo] = vals
    logits_csr = logits_vec[entry_vector, entry_lane]
    if scale is not None:
        logits_csr = logits_csr * np.float32(scale)
    attn_csr = segment_softmax(logits_csr, local_indptr)
    attn_vec = np.zeros_like(logits_vec)
    attn_vec[entry_vector, entry_lane] = attn_csr
    t2 = time.perf_counter()
    # Rebuild the shard's SpMM block values from the attention slab — the
    # same gather ``blocks_as_arrays`` performs, with padded lanes masked
    # *before* localising the vector ids (a padded lane's global id is 0,
    # which would go negative under ``- vec_lo``).
    safe = np.where(spmm_lane_valid, spmm_vector_index - vec_lo, 0)
    gathered = attn_vec[safe]  # (n_blocks, group, v)
    gathered[~spmm_lane_valid] = 0.0
    attn_values = np.ascontiguousarray(gathered.transpose(0, 2, 1))
    rows = spmm_shard_rows(attn_values, spmm_columns, spmm_local_offsets, x_q, precision)
    t3 = time.perf_counter()
    timings = {
        "sddmm_s": t1 - t0,
        "edge_softmax_s": t2 - t1,
        "spmm_s": t3 - t2,
    }
    return rows, timings
