"""Batched vectorized execution engine shared by the four TCU kernels.

The reference kernels (``engine="reference"``) walk the TC-block structure
with a per-(window, block, tile) Python loop, issuing one emulated MMA per
tile.  That mirrors the CUDA kernel faithfully but is dominated by
interpreter overhead.  This module is the ``engine="batched"`` execution
path: it consumes the padded batch arrays of
:meth:`repro.formats.blocked.BlockedVectorFormat.blocks_as_arrays` and
replaces the whole loop nest with

1. one fancy-index gather of every dense row addressed by any block,
2. one batched matmul over all blocks (the zero-padded lanes of narrow
   residue blocks contribute exactly the zero register values the loop path
   feeds its MMAs), and
3. a segment reduction (``np.add.reduceat`` over the window boundaries) plus
   one scatter into the output.

Only the numerics live here.  Cost accounting is closed-form over the
block-width histogram and stays with each kernel's ``*_cost`` function,
which produces bit-identical counter state to the reference loop (the parity
tests assert exact ``CostCounter`` equality and value agreement).

The engine is quantisation-faithful: the sparse values are re-quantised to
the target precision exactly where :func:`repro.gpu.mma.mma_execute` would
(FP16 storage is already exact; TF32 values are stored in FP32 containers
and rounded here), and all accumulation happens in FP32, matching
tensor-core accumulators.  Per-block products may sum the ``k`` dimension in
a different association order than the 16-column-tile loop, so values agree
to FP32 round-off, not bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.precision.types import Precision, quantize


def spmm_batched(
    fmt: BlockedVectorFormat,
    b_q: np.ndarray,
    precision: Precision,
) -> np.ndarray:
    """Numeric result of ``C = A @ B`` over the whole block batch at once.

    Parameters
    ----------
    fmt:
        The blocked sparse matrix (any vector size; the swap-and-transpose
        8×1 kernels and the 16×1 baselines share this path, since Equation (1)
        is a numeric identity).
    b_q:
        Dense operand already quantised to ``precision``, float32, of shape
        ``(fmt.shape[1], N)``.
    precision:
        Target precision; the stored sparse values are re-quantised to it.
    """
    v = fmt.vector_size
    n_rows = fmt.shape[0]
    n_dense = b_q.shape[1]
    out = np.zeros((n_rows, n_dense), dtype=np.float32)
    batch = fmt.blocks_as_arrays()
    if batch.num_blocks == 0 or n_dense == 0:
        return out

    a_q = quantize(batch.values, precision).astype(np.float32)
    gathered = b_q[batch.columns]  # (n_blocks, k, N); padded lanes hit row 0,
    # which is harmless because the matching A lanes are exactly zero.
    prod = a_q @ gathered  # batched matmul, (n_blocks, v, N)

    nonempty = np.nonzero(batch.blocks_per_window > 0)[0]
    seg_starts = batch.first_block_of_window[nonempty]
    win_sums = np.add.reduceat(prod, seg_starts, axis=0)  # (n_nonempty, v, N)

    out_rows = (nonempty[:, None] * v + np.arange(v)[None, :]).reshape(-1)
    flat = win_sums.reshape(-1, n_dense)
    keep = out_rows < n_rows
    out[out_rows[keep]] = flat[keep]
    return out


def sddmm_batched(
    fmt: BlockedVectorFormat,
    a_q: np.ndarray,
    b_q: np.ndarray,
    precision: Precision,
    group: int,
    scale_by_mask: bool = False,
) -> np.ndarray:
    """Numeric SDDMM output values over the whole output-block batch at once.

    Parameters
    ----------
    fmt:
        The blocked sampling mask.
    a_q, b_q:
        Dense operands already quantised to ``precision``, float32, of shapes
        ``(fmt.shape[0], K)`` and ``(fmt.shape[1], K)``.
    precision:
        Target precision (the dense operands are assumed pre-quantised; kept
        for signature symmetry and future per-chunk emulation hooks).
    group:
        Nonzero vectors covered by one sparse output TC block (16 for the 8×1
        swap-and-transpose kernel, 8 for the 16×1 baseline).
    scale_by_mask:
        Multiply each sampled dot product by the mask's stored value.

    Returns
    -------
    ``(num_nonzero_vectors, vector_size)`` float32 array in the layout of
    ``fmt.vector_values``.
    """
    del precision
    v = fmt.vector_size
    n_rows = fmt.shape[0]
    k_dense = a_q.shape[1]
    out_values = np.zeros(fmt.vector_values.shape, dtype=np.float32)
    batch = fmt.blocks_as_arrays(group)
    if batch.num_blocks == 0 or k_dense == 0:
        return out_values

    a_pad = np.zeros((fmt.num_windows * v, k_dense), dtype=np.float32)
    a_pad[:n_rows] = a_q
    a_win = a_pad.reshape(fmt.num_windows, v, k_dense)
    a_blocks = a_win[batch.window_of_block]  # (n_blocks, v, K)
    b_blocks = b_q[batch.columns]  # (n_blocks, group, K)
    acc = a_blocks @ b_blocks.transpose(0, 2, 1)  # (n_blocks, v, group)

    pattern = batch.values != 0.0
    sampled = np.where(pattern, acc, 0.0)
    if scale_by_mask:
        sampled = sampled * batch.values
    # Scatter each valid lane's column back to its nonzero vector.
    lanes = batch.lane_valid
    out_values[batch.vector_index[lanes]] = sampled.transpose(0, 2, 1)[lanes]
    return out_values
