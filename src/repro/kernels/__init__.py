"""Simulated FlashSparse kernels (SpMM / SDDMM) and the 16×1 TCU baselines.

Each kernel has two entry points:

* an ``execute`` function that produces the numeric result *and* the cost
  counter by walking the TC-block structure exactly the way the CUDA kernel
  would (used by tests, examples and GNN training);
* an ``estimate_cost`` function that produces the same cost counter directly
  from the format's block structure without touching the values (used by the
  per-matrix benchmark sweeps, where only costs are needed).

The two are cross-checked by tests on small matrices.
"""

from repro.kernels.common import (
    FlashSparseConfig,
    SpmmKernelResult,
    SddmmKernelResult,
)
from repro.kernels.thread_mapping import (
    ThreadMapping,
    direct_mapping,
    coalesced_mapping,
    b_tile_transactions,
)
from repro.kernels.spmm_flash import (
    spmm_flash_execute,
    spmm_flash_cost,
    FLASH_SPMM_PROFILE,
)
from repro.kernels.sddmm_flash import (
    sddmm_flash_execute,
    sddmm_flash_cost,
    FLASH_SDDMM_PROFILE,
)
from repro.kernels.spmm_tcu16 import (
    spmm_tcu16_execute,
    spmm_tcu16_cost,
    TCU16_SPMM_PROFILE,
)
from repro.kernels.sddmm_tcu16 import (
    sddmm_tcu16_execute,
    sddmm_tcu16_cost,
    TCU16_SDDMM_PROFILE,
)

__all__ = [
    "FlashSparseConfig",
    "SpmmKernelResult",
    "SddmmKernelResult",
    "ThreadMapping",
    "direct_mapping",
    "coalesced_mapping",
    "b_tile_transactions",
    "spmm_flash_execute",
    "spmm_flash_cost",
    "FLASH_SPMM_PROFILE",
    "sddmm_flash_execute",
    "sddmm_flash_cost",
    "FLASH_SDDMM_PROFILE",
    "spmm_tcu16_execute",
    "spmm_tcu16_cost",
    "TCU16_SPMM_PROFILE",
    "sddmm_tcu16_execute",
    "sddmm_tcu16_cost",
    "TCU16_SDDMM_PROFILE",
]
