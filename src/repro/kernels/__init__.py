"""Simulated FlashSparse kernels (SpMM / SDDMM) and the 16×1 TCU baselines.

Each kernel has two entry points:

* an ``execute`` function that produces the numeric result *and* the cost
  counter (used by tests, examples and GNN training);
* a ``cost`` function that produces the same cost counter directly from the
  format's block structure without touching the values (used by the
  per-matrix benchmark sweeps, where only costs are needed).

Execution engine architecture
-----------------------------
Every ``execute`` function dispatches on ``FlashSparseConfig.engine``:

* ``engine="reference"`` walks the TC-block structure with a per-(window,
  block, tile) Python loop, issuing one emulated MMA
  (:func:`repro.gpu.mma.mma_execute` / ``mma_execute_swapped``) per tile —
  a faithful, instruction-level mirror of the CUDA kernel and the oracle
  the batched engine is validated against;
* ``engine="batched"`` (the default) routes the numerics through
  :mod:`repro.kernels.engine`: the format's TC blocks are packed once into
  padded batch arrays (:meth:`~repro.formats.blocked.BlockedVectorFormat.
  blocks_as_arrays`), all dense rows are gathered with one fancy index, a
  single batched matmul replaces the whole MMA loop nest, and window
  accumulators are reduced with segment sums.

The reference/batched contract: both engines produce *exactly* the same
:class:`~repro.gpu.counters.CostCounter` state (the batched path takes its
counter from the closed-form ``cost`` functions, which are computed over the
block-width histogram with the bulk counter APIs and are asserted
field-for-field equal to the loop's counters), and the same numeric values
up to FP32 accumulation-order round-off (batched products may associate the
``k``/feature reduction differently than the per-tile loop).  CSR inputs are
translated to the blocked formats through the LRU cache of
:mod:`repro.formats.cache`, so sweeps and training loops that re-submit the
same matrix do not pay the translation twice.
"""

from repro.kernels.common import (
    FlashSparseConfig,
    SpmmKernelResult,
    SddmmKernelResult,
    resolve_flash_format,
    resolve_tcu16_format,
)
from repro.kernels.engine import sddmm_batched, spmm_batched
from repro.kernels.thread_mapping import (
    ThreadMapping,
    direct_mapping,
    coalesced_mapping,
    b_tile_transactions,
)
from repro.kernels.spmm_flash import (
    spmm_flash_execute,
    spmm_flash_cost,
    FLASH_SPMM_PROFILE,
)
from repro.kernels.sddmm_flash import (
    sddmm_flash_execute,
    sddmm_flash_cost,
    FLASH_SDDMM_PROFILE,
)
from repro.kernels.spmm_tcu16 import (
    spmm_tcu16_execute,
    spmm_tcu16_cost,
    TCU16_SPMM_PROFILE,
)
from repro.kernels.sddmm_tcu16 import (
    sddmm_tcu16_execute,
    sddmm_tcu16_cost,
    TCU16_SDDMM_PROFILE,
)

__all__ = [
    "FlashSparseConfig",
    "SpmmKernelResult",
    "SddmmKernelResult",
    "resolve_flash_format",
    "resolve_tcu16_format",
    "spmm_batched",
    "sddmm_batched",
    "ThreadMapping",
    "direct_mapping",
    "coalesced_mapping",
    "b_tile_transactions",
    "spmm_flash_execute",
    "spmm_flash_cost",
    "FLASH_SPMM_PROFILE",
    "sddmm_flash_execute",
    "sddmm_flash_cost",
    "FLASH_SDDMM_PROFILE",
    "spmm_tcu16_execute",
    "spmm_tcu16_cost",
    "TCU16_SPMM_PROFILE",
    "sddmm_tcu16_execute",
    "sddmm_tcu16_cost",
    "TCU16_SDDMM_PROFILE",
]
