"""16×1-vector TCU SpMM — the granularity used by TC-GNN and DTC-SpMM.

This kernel follows the design of Section 2.2 / Figure 2: the sparse matrix
is partitioned into 16×1 nonzero vectors (window height 16), every ``k``
vectors form a 16×k sparse TC block that is the *left* MMA operand, and each
MMA covers only ``n = 8`` columns of the dense matrix (16 with the WMMA
variant).  It serves two purposes:

* the ablation baseline of Figure 14 (same FlashSparse machinery, larger
  vector), and
* the computational core of the DTC-SpMM and TC-GNN baseline models in
  :mod:`repro.baselines`, which add their own overheads on top.
"""

from __future__ import annotations

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.gpu.counters import CostCounter
from repro.gpu.mma import (
    MMA_M16N8K8_FP16,
    MMA_M16N8K8_TF32,
    MMAShape,
    WMMA_M16N16K8_TF32,
    mma_execute,
)
from repro.kernels.common import FlashSparseConfig, SpmmKernelResult, resolve_tcu16_format
from repro.kernels.engine import spmm_batched
from repro.perfmodel.model import KernelProfile, spmm_useful_flops
from repro.precision.types import Precision, element_bytes, quantize
from repro.utils.validation import check_dense_matrix

#: Profile of the plain 16x1 kernel (ablation baseline).
TCU16_SPMM_PROFILE = KernelProfile(
    name="TCU-16x1-SpMM",
    tcu_efficiency=0.35,
    cuda_efficiency=0.60,
    memory_efficiency=0.72,
    mma_issue_ns=1.0,
    index_op_weight=2.0,
    notes="16x1 vector granularity, sparse block as the MMA left operand",
)

#: Auxiliary index work per (block, tile) — same bookkeeping as FlashSparse.
INDEX_OPS_PER_BLOCK_TILE = 8


def _ceil_div(a: int, b: int) -> int:
    return -(-int(a) // int(b))


def instruction_for(precision: Precision, api: str = "mma") -> MMAShape:
    """MMA/WMMA instruction used by the 16×1 approaches.

    DTC-SpMM uses ``mma.m16n8k8`` TF32, TC-GNN uses WMMA ``m16n16k8`` TF32;
    the FP16 ablation baseline uses ``mma.m16n8k8`` FP16.
    """
    if api == "wmma":
        if precision is not Precision.TF32:
            raise ValueError("the WMMA path models TC-GNN, which is TF32 only")
        return WMMA_M16N16K8_TF32
    if precision is Precision.FP16:
        return MMA_M16N8K8_FP16
    if precision is Precision.TF32:
        return MMA_M16N8K8_TF32
    raise ValueError(f"unsupported precision {precision}")


def _as_sgt16(matrix: SGT16Matrix | BlockedVectorFormat | CSRMatrix, precision: Precision) -> BlockedVectorFormat:
    return resolve_tcu16_format(matrix, precision, "kernel")


def _b_row_transactions(precision: Precision, dense_tile: int) -> tuple[int, int]:
    """(transactions, useful bytes) per gathered B row for a ``dense_tile`` wide tile.

    Without the swap-and-transpose trick the dense tile is only 8 columns
    wide, so an FP16 row segment is 16 bytes — half of the minimum 32-byte
    transaction is wasted.
    """
    useful = dense_tile * element_bytes(precision)
    transactions = _ceil_div(useful, 32)
    return transactions, useful


def _set_footprints(
    counter: CostCounter,
    fmt: BlockedVectorFormat,
    n_cols: int,
    n_dense: int,
    precision: Precision,
) -> None:
    """Record the unique DRAM footprint (format arrays + dense B + output)."""
    b_array_bytes = n_cols * n_dense * element_bytes(precision)
    read_fp = min(counter.bytes_read, fmt.memory_footprint_bytes() + b_array_bytes)
    counter.set_read_footprint(read_fp)
    counter.set_write_footprint(counter.bytes_written)


def spmm_tcu16_execute(
    a: SGT16Matrix | BlockedVectorFormat | CSRMatrix,
    b: np.ndarray,
    config: FlashSparseConfig | None = None,
    api: str = "mma",
) -> SpmmKernelResult:
    """Execute C = A @ B with the 16×1-vector TCU kernel."""
    config = config or FlashSparseConfig(swap_and_transpose=False)
    precision = config.precision
    shape = instruction_for(precision, api)
    fmt = _as_sgt16(a, precision)
    if fmt.k != shape.k:
        raise ValueError(
            f"format block width k={fmt.k} does not match instruction {shape.name} (k={shape.k})"
        )
    n_rows, n_cols = fmt.shape
    b = check_dense_matrix(b, "b", n_rows=n_cols)
    n_dense = b.shape[1]
    dense_tile = shape.n
    n_tiles = _ceil_div(n_dense, dense_tile)
    k = shape.k

    b_q = quantize(b, precision).astype(np.float32)
    if config.engine == "batched" and n_dense > 0:
        # The swap-and-transpose identity makes the 16×1 numerics identical
        # in shape to the 8×1 path, so both share the batched engine
        # (including its memory-bounded streaming knobs).
        out = spmm_batched(fmt, b_q, precision, **config.engine_stream_kwargs)
        counter = spmm_tcu16_cost(fmt, n_dense, config, api)
    else:
        out, counter = _spmm_reference(fmt, b_q, config, shape)
    useful = spmm_useful_flops(fmt.nnz, n_dense)
    return SpmmKernelResult(
        values=out,
        counter=counter,
        kernel="tcu16_spmm" if api == "mma" else "tcu16_wmma_spmm",
        useful_flops=useful,
        meta={
            "precision": precision.value,
            "vector_size": 16,
            "mma_shape": shape.name,
            "api": api,
            "n_dense": n_dense,
            "engine": config.engine if n_dense > 0 else "reference",
        },
    )


def _spmm_reference(
    fmt: BlockedVectorFormat,
    b_q: np.ndarray,
    config: FlashSparseConfig,
    shape: MMAShape,
) -> tuple[np.ndarray, CostCounter]:
    """The per-(window, block, tile) emulation loop — the engine's oracle."""
    precision = config.precision
    k = shape.k
    dense_tile = shape.n
    n_rows, n_cols = fmt.shape
    n_dense = b_q.shape[1]
    n_tiles = _ceil_div(n_dense, dense_tile)
    counter = CostCounter()
    out = np.zeros((n_rows, n_dense), dtype=np.float32)
    elem = element_bytes(precision)
    b_tx_per_row, b_useful_per_row = _b_row_transactions(precision, dense_tile)

    for w in range(fmt.num_windows):
        row0, row1 = fmt.partition.window_row_range(w)
        rows_here = row1 - row0
        start, end = fmt.window_vector_range(w)
        if start == end:
            continue
        window_acc = np.zeros((16, n_dense), dtype=np.float32)
        for blk in range(fmt.window_blocks(w)):
            cols = fmt.block_columns(w, blk).astype(np.int64)
            width = cols.shape[0]
            values = fmt.block_values(w, blk)  # (16, width)
            a_tile = np.zeros((16, k), dtype=np.float64)
            a_tile[:, :width] = values
            b_rows = np.zeros((k, n_dense), dtype=np.float32)
            b_rows[:width] = b_q[cols]
            for t in range(n_tiles):
                j0 = t * dense_tile
                j1 = min(j0 + dense_tile, n_dense)
                b_tile = np.zeros((k, dense_tile), dtype=np.float64)
                b_tile[:, : j1 - j0] = b_rows[:, j0:j1]
                acc = mma_execute(a_tile, b_tile, None, shape, counter=None)
                window_acc[:, j0:j1] += acc[:, : j1 - j0]
            # Cost accounting per block across all tiles.
            a_bytes = 16 * width * elem
            counter.add_mma(shape.name, precision.value, n_tiles)
            counter.add_load(32, _ceil_div(a_bytes, 32) * n_tiles, useful_bytes=a_bytes * n_tiles)
            counter.add_load(
                32,
                b_tx_per_row * width * n_tiles,
                useful_bytes=b_useful_per_row * width * n_tiles,
            )
            counter.add_index_ops(INDEX_OPS_PER_BLOCK_TILE * n_tiles)
        out[row0:row1] = window_acc[:rows_here]
        out_bytes = rows_here * n_dense * 4
        counter.add_store(32, _ceil_div(out_bytes, 32), useful_bytes=out_bytes)
        counter.add_warps(n_tiles)

    _set_footprints(counter, fmt, n_cols, n_dense, precision)
    return out, counter


def spmm_tcu16_cost(
    a: SGT16Matrix | BlockedVectorFormat | CSRMatrix,
    n_dense: int,
    config: FlashSparseConfig | None = None,
    api: str = "mma",
) -> CostCounter:
    """Analytic cost of the 16×1 SpMM (matches :func:`spmm_tcu16_execute`)."""
    config = config or FlashSparseConfig(swap_and_transpose=False)
    precision = config.precision
    shape = instruction_for(precision, api)
    fmt = _as_sgt16(a, precision)
    if fmt.k != shape.k:
        raise ValueError(
            f"format block width k={fmt.k} does not match instruction {shape.name} (k={shape.k})"
        )
    n_dense = int(n_dense)
    if n_dense <= 0:
        raise ValueError("n_dense must be positive")
    dense_tile = shape.n
    n_tiles = _ceil_div(n_dense, dense_tile)
    k = shape.k
    elem = element_bytes(precision)
    b_tx_per_row, b_useful_per_row = _b_row_transactions(precision, dense_tile)

    counts = fmt.partition.vectors_per_window.astype(np.int64)
    nonempty = counts > 0
    widths, _, _ = fmt.partition.block_widths(k)
    num_blocks = widths.shape[0]
    total_vectors = int(counts.sum())

    counter = CostCounter()
    counter.add_mma(shape.name, precision.value, num_blocks * n_tiles)

    a_bytes = 16 * widths * elem
    counter.add_load_bulk(32, (-(-a_bytes // 32)) * n_tiles, a_bytes * n_tiles)

    counter.add_load(
        32,
        b_tx_per_row * total_vectors * n_tiles,
        useful_bytes=b_useful_per_row * total_vectors * n_tiles,
    )
    counter.add_index_ops(INDEX_OPS_PER_BLOCK_TILE * num_blocks * n_tiles)

    window_rows = np.full(fmt.num_windows, 16, dtype=np.int64)
    if fmt.num_windows:
        window_rows[-1] = fmt.shape[0] - (fmt.num_windows - 1) * 16
    out_bytes_arr = window_rows[nonempty] * n_dense * 4
    if out_bytes_arr.size:
        counter.add_store_bulk(32, -(-out_bytes_arr // 32), out_bytes_arr)
    counter.add_warps(int(nonempty.sum()) * n_tiles)
    _set_footprints(counter, fmt, fmt.shape[1], n_dense, precision)
    return counter
