"""Memory-budget planner: GPUSpec + block histogram → streaming knobs.

PR 2 introduced ``block_chunk`` / ``max_intermediate_bytes`` / ``workers``
as caller-supplied knobs on :class:`~repro.kernels.common.FlashSparseConfig`.
This module derives them instead: given the device's declared memory
capacity (:attr:`~repro.gpu.device.GPUSpec.memory_bytes`), the planner

1. computes the *resident* footprint of the operation — the translated
   sparse format plus the dense operands and output, which must live in
   device memory for the whole run,
2. carves a workspace budget for streaming intermediates out of the
   remaining capacity (:func:`repro.gpu.memory.derive_budget`),
3. divides the workspace by the number of workers and by the per-block
   intermediate footprint (the same
   :func:`~repro.kernels.engine.spmm_bytes_per_block` /
   :func:`~repro.kernels.engine.sddmm_bytes_per_block` formulas the engine
   uses, so the two can never drift), and
4. snaps the resulting chunk target to the format's block-width histogram
   (:func:`repro.formats.stats.block_width_histogram`): shards are
   window-aligned, so a window with more blocks than the target becomes a
   shard of its own and the plan reports the true peak.

The planner is deliberately conservative — a serving process co-hosts
several in-flight requests — and fully deterministic: the same matrix,
dense width and device always produce the same plan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs
from repro.formats.csr import CSRMatrix
from repro.formats.stats import BlockHistogram, block_width_histogram
from repro.gpu.device import GPUSpec, get_device
from repro.gpu.memory import DEFAULT_WORKSPACE_FRACTION, MemoryBudget, derive_budget
from repro.kernels.engine import (
    sddmm_bytes_per_block,
    spmm_bytes_per_block,
    window_aligned_ranges,
)
from repro.kernels.sddmm_flash import VECTORS_PER_OUTPUT_BLOCK
from repro.precision.types import Precision, element_bytes

#: Upper bound on planner-chosen worker processes; beyond this the shard
#: dispatch overhead dominates for the matrix sizes the simulator handles.
MAX_PLANNED_WORKERS = 8


@dataclass(frozen=True)
class ServePlan:
    """Derived execution configuration for one serving operation.

    The three engine knobs (``workers``, ``block_chunk``,
    ``max_intermediate_bytes``) are what :class:`FlashSparseConfig` and the
    scheduler consume; the rest records how they were derived so tests and
    operators can audit the plan against the device budget.
    """

    op: str
    precision: Precision
    workers: int
    #: Hosts the memory budget was divided across (1 = single machine).
    hosts: int
    #: Window-aligned shard/chunk target in blocks (also the engine's
    #: ``block_chunk``); ``None`` means one-shot.
    block_chunk: int | None
    #: Per-run intermediate byte budget handed to the engine; ``None`` when
    #: no budget applies (one-shot).
    max_intermediate_bytes: int | None
    #: Float32 intermediate bytes per block (engine formula).
    bytes_per_block: int
    #: Total TC blocks of the operation.
    num_blocks: int
    #: Window-aligned shards the scheduler will dispatch.
    num_shards: int
    #: Worst-case concurrent intermediate bytes under this plan (accounts
    #: for windows larger than the chunk target, which cannot be split).
    expected_peak_bytes: int
    #: The device budget the plan was derived from (None with an explicit
    #: byte budget or no budget at all).
    budget: MemoryBudget | None = None
    meta: dict = field(default_factory=dict)

    @property
    def within_budget(self) -> bool:
        """Whether the expected peak fits the derived workspace budget."""
        if self.budget is None:
            return True
        return self.expected_peak_bytes <= self.budget.workspace_bytes

    def config_kwargs(self) -> dict:
        """The streaming knobs in :class:`FlashSparseConfig` keyword form."""
        return {
            "block_chunk": self.block_chunk,
            "max_intermediate_bytes": self.max_intermediate_bytes,
            "workers": self.workers,
        }


def _resolve_format(
    matrix: BlockedVectorFormat | CSRMatrix, precision: Precision
) -> BlockedVectorFormat:
    if isinstance(matrix, BlockedVectorFormat):
        return matrix
    # Serving path: content-hash keyed so request payloads deserialised
    # fresh per request still share one translation.
    return cached_mebcrs(matrix, precision, by_content=True)


def _default_workers(requested: int | None, num_shards: int) -> int:
    if requested is not None:
        workers = int(requested)
        if workers < 1:
            raise ValueError("workers must be >= 1")
    else:
        workers = min(os.cpu_count() or 1, MAX_PLANNED_WORKERS)
    # More workers than shards would idle from the first dispatch.
    return max(1, min(workers, num_shards))


def _plan(
    op: str,
    fmt: BlockedVectorFormat,
    bytes_per_block: int,
    resident_bytes: int,
    group: int,
    device: str | GPUSpec | None,
    workers: int | None,
    workspace_fraction: float,
    max_intermediate_bytes: int | None,
    hosts: int = 1,
) -> ServePlan:
    hist: BlockHistogram = block_width_histogram(fmt.partition, group)
    offsets = np.zeros(hist.num_windows + 1, dtype=np.int64)
    np.cumsum(hist.blocks_per_window, out=offsets[1:])
    num_blocks = hist.num_blocks
    hosts = max(1, int(hosts))

    budget: MemoryBudget | None = None
    workspace: int | None = max_intermediate_bytes
    if workspace is None and device is not None:
        spec = device if isinstance(device, GPUSpec) else get_device(device)
        budget = derive_budget(spec, resident_bytes, workspace_fraction)
        workspace = budget.workspace_bytes
    if workspace is not None and hosts > 1:
        # A cluster serves one request across `hosts` machines whose device
        # budgets the declared capacity stands for collectively: each host
        # gets an equal share, so no single host is planned past 1/hosts of
        # the workspace however the shards land.
        workspace = int(workspace) // hosts

    if workspace is None or num_blocks == 0:
        # No budget to honour: one-shot, single shard.
        ranges = window_aligned_ranges(offsets, max(1, num_blocks))
        peak = num_blocks * bytes_per_block
        plan_workers = _default_workers(workers, len(ranges))
        return ServePlan(
            op=op,
            precision=fmt.precision,
            workers=plan_workers,
            hosts=hosts,
            block_chunk=None,
            max_intermediate_bytes=None,
            bytes_per_block=bytes_per_block,
            num_blocks=num_blocks,
            num_shards=len(ranges),
            expected_peak_bytes=peak,
            budget=budget,
            meta={"resident_bytes": resident_bytes, "one_shot": True},
        )

    workspace = max(int(workspace), bytes_per_block)
    # First sizing pass assumes the full worker complement; the shard count
    # it implies may then cap the workers, which only widens the per-worker
    # share (never violating the budget).
    provisional_workers = _default_workers(workers, max(1, num_blocks))
    chunk = max(1, (workspace // provisional_workers) // bytes_per_block)
    ranges = window_aligned_ranges(offsets, chunk)
    plan_workers = _default_workers(workers, len(ranges))

    # True peak: workers × the largest shard actually produced (a window
    # wider than the chunk target cannot be split below one window).
    largest_shard = max((r.num_blocks for r in ranges), default=0)
    peak = plan_workers * largest_shard * bytes_per_block

    return ServePlan(
        op=op,
        precision=fmt.precision,
        workers=plan_workers,
        hosts=hosts,
        block_chunk=chunk,
        max_intermediate_bytes=int(workspace),
        bytes_per_block=bytes_per_block,
        num_blocks=num_blocks,
        num_shards=len(ranges),
        expected_peak_bytes=peak,
        budget=budget,
        meta={
            "resident_bytes": resident_bytes,
            "one_shot": False,
            "max_blocks_in_window": hist.max_blocks_in_window,
        },
    )


def plan_spmm(
    matrix: BlockedVectorFormat | CSRMatrix,
    n_dense: int,
    device: str | GPUSpec | None = None,
    precision: Precision | str = Precision.FP16,
    workers: int | None = None,
    workspace_fraction: float = DEFAULT_WORKSPACE_FRACTION,
    max_intermediate_bytes: int | None = None,
    hosts: int = 1,
) -> ServePlan:
    """Plan one SpMM: derive the streaming knobs from the device budget.

    Parameters
    ----------
    matrix:
        The sparse operand (CSR inputs are translated through the
        content-keyed cache, as the serving path does).
    n_dense:
        Dense-operand width ``N``.
    device:
        Device name or :class:`GPUSpec` whose ``memory_bytes`` bounds the
        workspace.  Without a device (and without an explicit byte budget)
        the plan is one-shot.
    workers:
        Worker override; defaults to ``min(cpu_count, 8)``, capped by the
        number of shards the budget produces.
    workspace_fraction:
        Share of post-operand device memory granted to intermediates.
    max_intermediate_bytes:
        Explicit byte budget that bypasses the device derivation (the old
        caller-supplied knob, kept for compatibility).
    hosts:
        Worker hosts the budget is divided across (cluster serving); the
        per-host workspace share is ``workspace / hosts``.
    """
    precision = Precision(precision)
    n_dense = int(n_dense)
    if n_dense <= 0:
        raise ValueError("n_dense must be positive")
    fmt = _resolve_format(matrix, precision)
    elem = element_bytes(precision)
    resident = (
        fmt.memory_footprint_bytes()
        + fmt.shape[1] * n_dense * elem  # dense B
        + fmt.shape[0] * n_dense * 4  # FP32 output C
    )
    return _plan(
        "spmm",
        fmt,
        spmm_bytes_per_block(fmt.vector_size, fmt.k, n_dense),
        resident,
        fmt.k,
        device,
        workers,
        workspace_fraction,
        max_intermediate_bytes,
        hosts,
    )


def plan_sddmm(
    matrix: BlockedVectorFormat | CSRMatrix,
    k_dense: int,
    device: str | GPUSpec | None = None,
    precision: Precision | str = Precision.FP16,
    workers: int | None = None,
    workspace_fraction: float = DEFAULT_WORKSPACE_FRACTION,
    max_intermediate_bytes: int | None = None,
    hosts: int = 1,
) -> ServePlan:
    """Plan one SDDMM (see :func:`plan_spmm`); ``k_dense`` is the inner
    feature dimension of the two dense inputs."""
    precision = Precision(precision)
    k_dense = int(k_dense)
    if k_dense <= 0:
        raise ValueError("k_dense must be positive")
    fmt = _resolve_format(matrix, precision)
    elem = element_bytes(precision)
    resident = (
        fmt.memory_footprint_bytes()
        + (fmt.shape[0] + fmt.shape[1]) * k_dense * elem  # dense A and B
        + fmt.num_nonzero_vectors * fmt.vector_size * 4  # FP32 output values
    )
    group = VECTORS_PER_OUTPUT_BLOCK
    return _plan(
        "sddmm",
        fmt,
        sddmm_bytes_per_block(fmt.vector_size, group, k_dense),
        resident,
        group,
        device,
        workers,
        workspace_fraction,
        max_intermediate_bytes,
        hosts,
    )
