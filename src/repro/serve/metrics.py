"""Serving observability: latency percentiles, queue depth, cache counters.

The server records one latency sample per completed request (enqueue →
future resolution, i.e. including queueing delay — the number a closed-loop
client actually experiences) into a bounded reservoir, counts request
outcomes, and exposes the translation cache's hit/miss/eviction counters
(:func:`repro.formats.cache.format_cache_stats`) as a *delta* against the
metrics object's creation (or last :meth:`reset_cache_baseline`).  The
delta excludes cache traffic from before the server started, but the cache
is process-global: kernel calls made concurrently outside the server
(e.g. a training loop in another thread) land in the same counters.

Everything is lock-guarded: clients resolve futures on pool threads while
the dispatch thread updates queue gauges.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from threading import Lock

import numpy as np

from repro.formats.cache import CacheStats, format_cache_stats

#: Latency samples retained for percentile estimation.  A bounded reservoir
#: keeps a busy server's memory flat; 16k samples puts the p95 estimate's
#: resolution far below scheduling noise.
LATENCY_RESERVOIR = 16384


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time view of a server's metrics."""

    requests_submitted: int
    requests_completed: int
    requests_failed: int
    #: Engine passes dispatched (a batch of same-matrix requests is one).
    batches_dispatched: int
    #: Requests that shared an engine pass with at least one other request.
    requests_coalesced: int
    queue_depth: int
    #: Latency percentiles in seconds over the retained samples (0.0 when
    #: no request completed yet).
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_mean_s: float
    #: Translation-cache counters since this server's metrics were reset.
    cache: CacheStats
    meta: dict = field(default_factory=dict)

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet resolved."""
        return self.requests_submitted - self.requests_completed - self.requests_failed


def _delta(now: CacheStats, base: CacheStats) -> CacheStats:
    return CacheStats(
        hits=now.hits - base.hits,
        misses=now.misses - base.misses,
        evictions=now.evictions - base.evictions,
        content_hits=now.content_hits - base.content_hits,
        size=now.size,
    )


class ServeMetrics:
    """Mutable metrics accumulator shared by the server's threads."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._latencies: deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._batches = 0
        self._coalesced = 0
        self._queue_depth = 0
        self._cache_base = format_cache_stats()

    # -------------------------------------------------------------- recorders
    def record_submitted(self, n: int = 1) -> None:
        """Count ``n`` requests entering the queue."""
        with self._lock:
            self._submitted += n
            self._queue_depth += n

    def record_dequeued(self, n: int = 1) -> None:
        """Count ``n`` requests leaving the queue for execution."""
        with self._lock:
            self._queue_depth -= n

    def record_batch(self, size: int) -> None:
        """Count one dispatched engine pass covering ``size`` requests."""
        with self._lock:
            self._batches += 1
            if size > 1:
                self._coalesced += size

    def record_completed(self, latency_s: float) -> None:
        """Count one successful request and its end-to-end latency."""
        with self._lock:
            self._completed += 1
            self._latencies.append(float(latency_s))

    def record_failed(self, latency_s: float) -> None:
        """Count one failed request (latency still recorded: failures queue
        like successes and an operator wants to see slow failures)."""
        with self._lock:
            self._failed += 1
            self._latencies.append(float(latency_s))

    def reset_cache_baseline(self) -> None:
        """Re-anchor the cache-counter delta at the current global state."""
        with self._lock:
            self._cache_base = format_cache_stats()

    # -------------------------------------------------------------- snapshot
    def snapshot(self, **meta) -> MetricsSnapshot:
        """Consistent snapshot of every counter and percentile."""
        with self._lock:
            lat = np.asarray(self._latencies, dtype=np.float64)
            if lat.size:
                p50, p95, p99 = np.percentile(lat, [50.0, 95.0, 99.0])
                mean = float(lat.mean())
            else:
                p50 = p95 = p99 = mean = 0.0
            return MetricsSnapshot(
                requests_submitted=self._submitted,
                requests_completed=self._completed,
                requests_failed=self._failed,
                batches_dispatched=self._batches,
                requests_coalesced=self._coalesced,
                queue_depth=self._queue_depth,
                latency_p50_s=float(p50),
                latency_p95_s=float(p95),
                latency_p99_s=float(p99),
                latency_mean_s=mean,
                cache=_delta(format_cache_stats(), self._cache_base),
                meta=dict(meta),
            )
