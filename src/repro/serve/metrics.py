"""Serving observability: latency percentiles, queue depth, cache counters.

The server records one latency sample per completed request (enqueue →
future resolution, i.e. including queueing delay — the number a closed-loop
client actually experiences) into a bounded reservoir, counts request
outcomes, and exposes the translation cache's hit/miss/eviction counters
(:func:`repro.formats.cache.format_cache_stats`) as a *delta* against the
metrics object's creation (or last :meth:`reset_cache_baseline`).  The
delta excludes cache traffic from before the server started, but the cache
is process-global: kernel calls made concurrently outside the server
(e.g. a training loop in another thread) land in the same counters.

Requests additionally record the **queue-wait / execution split**: how
long the request sat in the queue before the dispatcher picked it up (or
shed it — timed-out requests land in the queue-wait reservoir too, their
wait *is* the overload diagnostic) versus, for completed requests, how
long the engine pass took.  Under overload the split is the signal that
matters — end-to-end latency explodes through queue wait while execution
time stays flat — and the open-loop benchmark
(``benchmarks/bench_serve_openloop.py``) gates on exactly that signature.

Overload outcomes get their own counters: ``rejected`` requests were
turned away at admission (they never entered the queue and are *not*
counted as submitted), ``timed_out`` requests expired in the queue and
were shed before execution, ``cost_shed`` requests were dropped by
cost-aware load shedding (queue over the watermark, most expensive
first), and ``cancelled`` requests were resolved by the client
(``Future.cancel``) while queued and dropped at dispatch.  The in-flight
identity is therefore ``in_flight == submitted - completed - failed -
timed_out - cost_shed - cancelled``.

Everything is lock-guarded: clients resolve futures on pool threads while
the dispatch thread updates queue gauges.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from threading import Lock

import numpy as np

from repro.formats.cache import CacheStats, format_cache_stats

#: Latency samples retained for percentile estimation.  A bounded reservoir
#: keeps a busy server's memory flat; 16k samples puts the p95 estimate's
#: resolution far below scheduling noise.
LATENCY_RESERVOIR = 16384


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of one bounded latency reservoir (seconds)."""

    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    mean_s: float = 0.0
    count: int = 0


def _summarise(samples: deque) -> LatencyStats:
    if not samples:
        return LatencyStats()
    arr = np.asarray(samples, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return LatencyStats(
        p50_s=float(p50),
        p95_s=float(p95),
        p99_s=float(p99),
        mean_s=float(arr.mean()),
        count=int(arr.size),
    )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time view of a server's metrics."""

    requests_submitted: int
    requests_completed: int
    requests_failed: int
    #: Turned away at admission (``max_queue_depth`` + ``"reject"`` policy);
    #: never entered the queue, not counted in ``requests_submitted``.
    requests_rejected: int
    #: Deadline expired in the queue; shed before execution with
    #: :class:`~repro.serve.errors.ServeTimeoutError`.
    requests_timed_out: int
    #: Dropped by cost-aware shedding (queue over the watermark, most
    #: expensive queued requests first) with
    #: :class:`~repro.serve.errors.ServeShedError`.
    requests_cost_shed: int
    #: Client-cancelled while queued; dropped at dispatch without
    #: execution (their future was already resolved by the client).
    requests_cancelled: int
    #: Engine passes dispatched (a batch of same-matrix requests is one).
    batches_dispatched: int
    #: Requests that shared an engine pass with at least one other request.
    requests_coalesced: int
    queue_depth: int
    #: Latency percentiles in seconds over the retained samples (0.0 when
    #: no request completed yet).
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_mean_s: float
    #: Time requests spent queued before the dispatcher drained (or shed)
    #: them.  Covers completed *and* timed-out requests — a shed request's
    #: wait is the overload diagnostic — so ``queue_wait.count`` can exceed
    #: ``execution.count``.
    queue_wait: LatencyStats
    #: Dequeue-to-resolution time (grouping + engine pass + result split)
    #: of *completed* requests only.
    execution: LatencyStats
    #: Translation-cache counters since this server's metrics were reset.
    cache: CacheStats
    meta: dict = field(default_factory=dict)
    #: Pending requests promoted a full priority class by aging (waited at
    #: least ``aging_halflife_s``); 0 when aging is disabled.
    requests_aged: int = 0
    #: Fused layer requests completed (``submit_layer``).
    layer_requests: int = 0
    #: Scheduler round trips avoided versus per-kernel composition
    #: (two per fused layer: SDDMM and edge-softmax stop being requests).
    round_trips_saved: int = 0
    #: Intermediate operand traffic (bytes) the composed path would have
    #: moved between scheduler and server per layer and the fused path
    #: did not (SDDMM output out, attention matrix back in).
    operand_bytes_saved: int = 0
    #: Per-stage latency split of fused layer requests, keyed by stage
    #: (``sddmm`` / ``edge_softmax`` / ``spmm``), each under the same
    #: :class:`LatencyStats` shape as ``queue_wait`` / ``execution``.
    stage_latency: dict = field(default_factory=dict)

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet resolved."""
        return (
            self.requests_submitted
            - self.requests_completed
            - self.requests_failed
            - self.requests_timed_out
            - self.requests_cost_shed
            - self.requests_cancelled
        )

    @property
    def requests_shed(self) -> int:
        """Requests the server refused to execute under overload (rejected
        at admission, timed out in the queue, or cost-shed over the
        watermark)."""
        return self.requests_rejected + self.requests_timed_out + self.requests_cost_shed


def _delta(now: CacheStats, base: CacheStats) -> CacheStats:
    return CacheStats(
        hits=now.hits - base.hits,
        misses=now.misses - base.misses,
        evictions=now.evictions - base.evictions,
        content_hits=now.content_hits - base.content_hits,
        size=now.size,
    )


class ServeMetrics:
    """Mutable metrics accumulator shared by the server's threads."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._latencies: deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._queue_waits: deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._exec_times: deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._timed_out = 0
        self._cost_shed = 0
        self._cancelled = 0
        self._batches = 0
        self._coalesced = 0
        self._queue_depth = 0
        self._aged = 0
        self._layer_requests = 0
        self._round_trips_saved = 0
        self._operand_bytes_saved = 0
        self._stage_times: dict[str, deque[float]] = {}
        self._cache_base = format_cache_stats()

    # -------------------------------------------------------------- recorders
    def record_submitted(self, n: int = 1) -> None:
        """Count ``n`` requests entering the queue."""
        with self._lock:
            self._submitted += n
            self._queue_depth += n

    def record_dequeued(self, n: int = 1) -> None:
        """Count ``n`` requests leaving the queue for execution."""
        with self._lock:
            self._queue_depth -= n

    def record_rejected(self, n: int = 1) -> None:
        """Count ``n`` requests refused at admission (queue full)."""
        with self._lock:
            self._rejected += n

    def record_timed_out(self, queue_wait_s: float) -> None:
        """Count one request shed because its deadline expired in the queue."""
        with self._lock:
            self._timed_out += 1
            self._queue_waits.append(float(queue_wait_s))

    def record_cost_shed(self, queue_wait_s: float) -> None:
        """Count one request dropped by cost-aware shedding (its queue wait
        is recorded like a timeout's — shed work is the overload signal)."""
        with self._lock:
            self._cost_shed += 1
            self._queue_waits.append(float(queue_wait_s))

    def record_cancelled(self, n: int = 1) -> None:
        """Count ``n`` client-cancelled requests dropped at dispatch."""
        with self._lock:
            self._cancelled += n

    def record_batch(self, size: int) -> None:
        """Count one dispatched engine pass covering ``size`` requests."""
        with self._lock:
            self._batches += 1
            if size > 1:
                self._coalesced += size

    def record_aged(self, n: int = 1) -> None:
        """Count ``n`` pending requests aged up one full priority class
        (each counted once, at the dispatch pass that first saw it)."""
        with self._lock:
            self._aged += n

    def record_layer(
        self,
        stage_seconds: dict | None = None,
        round_trips_saved: int = 0,
        operand_bytes_saved: int = 0,
    ) -> None:
        """Count one fused layer request: its per-stage wall clock and the
        round trips / intermediate bytes it avoided versus composition."""
        with self._lock:
            self._layer_requests += 1
            self._round_trips_saved += int(round_trips_saved)
            self._operand_bytes_saved += int(operand_bytes_saved)
            for stage, seconds in (stage_seconds or {}).items():
                name = str(stage).removesuffix("_s")
                reservoir = self._stage_times.get(name)
                if reservoir is None:
                    reservoir = deque(maxlen=LATENCY_RESERVOIR)
                    self._stage_times[name] = reservoir
                reservoir.append(float(seconds))

    def record_completed(
        self,
        latency_s: float,
        queue_wait_s: float | None = None,
        execution_s: float | None = None,
    ) -> None:
        """Count one successful request, its end-to-end latency and
        (when the caller knows the dequeue time) the wait/execute split."""
        with self._lock:
            self._completed += 1
            self._latencies.append(float(latency_s))
            if queue_wait_s is not None:
                self._queue_waits.append(float(queue_wait_s))
            if execution_s is not None:
                self._exec_times.append(float(execution_s))

    def record_failed(self, latency_s: float) -> None:
        """Count one failed request (latency still recorded: failures queue
        like successes and an operator wants to see slow failures)."""
        with self._lock:
            self._failed += 1
            self._latencies.append(float(latency_s))

    def reset_cache_baseline(self) -> None:
        """Re-anchor the cache-counter delta at the current global state."""
        with self._lock:
            self._cache_base = format_cache_stats()

    # -------------------------------------------------------------- snapshot
    def snapshot(self, **meta) -> MetricsSnapshot:
        """Consistent snapshot of every counter and percentile."""
        with self._lock:
            overall = _summarise(self._latencies)
            return MetricsSnapshot(
                requests_submitted=self._submitted,
                requests_completed=self._completed,
                requests_failed=self._failed,
                requests_rejected=self._rejected,
                requests_timed_out=self._timed_out,
                requests_cost_shed=self._cost_shed,
                requests_cancelled=self._cancelled,
                batches_dispatched=self._batches,
                requests_coalesced=self._coalesced,
                queue_depth=self._queue_depth,
                latency_p50_s=overall.p50_s,
                latency_p95_s=overall.p95_s,
                latency_p99_s=overall.p99_s,
                latency_mean_s=overall.mean_s,
                queue_wait=_summarise(self._queue_waits),
                execution=_summarise(self._exec_times),
                cache=_delta(format_cache_stats(), self._cache_base),
                meta=dict(meta),
                requests_aged=self._aged,
                layer_requests=self._layer_requests,
                round_trips_saved=self._round_trips_saved,
                operand_bytes_saved=self._operand_bytes_saved,
                stage_latency={
                    stage: _summarise(samples)
                    for stage, samples in self._stage_times.items()
                },
            )
