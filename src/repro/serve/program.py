"""Composable layer programs: the unit of serving for whole GNN layers.

A GAT/AGNN-style attention layer is a fixed pipeline over one sparse
pattern — SDDMM (per-edge logits), an optional scalar scale, a per-row
edge softmax, and an SpMM whose values are the attention weights.  Served
one kernel at a time that costs **three** request cycles per layer, each
re-gathering dense operands, re-acquiring the translation and — on the
cluster backend — paying a full head↔worker round trip.  This module
defines the program representation the whole stack fuses on:

* :class:`LayerStep` / :class:`LayerProgram` — an ordered pipeline of
  ``sddmm`` / ``scale`` / ``edge_softmax`` / ``spmm`` steps with validated
  operand wiring.  Validation canonicalises the program to the
  ``(scale, scale_by_mask)`` pair the fused engine hook
  (:func:`repro.kernels.engine.layer_shard_rows`) executes, so a malformed
  wiring (softmax before the logits exist, a dangling operand name, two
  SpMMs) fails at submit time, not inside a worker process.
* :func:`gather_edge_values` / :func:`attention_csr` — the two
  representational hops the *composed* execution needs (SDDMM's
  nonzero-vector output → CSR edge order → a values-only CSR rebuild for
  the SpMM).  The head's v3 per-kernel fallback, the served-composed GNN
  path and the parity tests all share these, so "composed" means exactly
  one thing everywhere.

The program is deliberately small: steps carry operand *names* (``"a"``,
``"b"``, ``"x"``), the dense panels themselves travel separately (and, on
protocol v4, ride the content-addressed pinned store so a layer's panels
ship once per host).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.windows import WindowPartition
from repro.ops import segment_ids

#: Step kinds a layer program may contain.
LAYER_STEP_OPS = ("sddmm", "scale", "edge_softmax", "spmm")

#: Dense operand names a program may wire (the panels travel separately).
LAYER_OPERANDS = ("a", "b", "x")


class ProgramError(ValueError):
    """A layer program failed validation (bad step order or operand wiring)."""


@dataclass(frozen=True)
class LayerStep:
    """One step of a layer program.

    ``op`` is one of :data:`LAYER_STEP_OPS`; ``params`` carries the step's
    scalar knobs (``sddmm``: ``a``/``b`` operand names + ``scale_by_mask``;
    ``scale``: ``value``; ``spmm``: ``x`` operand name).
    """

    op: str
    params: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        """JSON-safe form (the ``layer_task`` header embeds it)."""
        return {"op": self.op, "params": dict(self.params)}

    @classmethod
    def from_wire(cls, payload: dict) -> "LayerStep":
        """Rebuild from :meth:`to_wire` output."""
        return cls(op=str(payload["op"]), params=dict(payload.get("params", {})))


@dataclass(frozen=True)
class LayerProgram:
    """An ordered, validated pipeline of layer steps.

    The canonical attention-layer shape — and the only one the fused
    engine hook executes — is::

        sddmm(a, b) → [scale(value)]* → edge_softmax() → spmm(x)

    :meth:`validate` enforces it and folds consecutive ``scale`` steps into
    one float, so every executor downstream (in-process, multiprocess
    shards, cluster ``layer_task``) consumes the same
    ``(scale, scale_by_mask)`` canonical form via :meth:`canonical`.
    """

    steps: tuple[LayerStep, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        self.validate()

    # ---------------------------------------------------------- constructors
    @classmethod
    def attention_layer(
        cls, scale: float | None = None, scale_by_mask: bool = False
    ) -> "LayerProgram":
        """The standard attention layer: ``sddmm → [scale] → softmax → spmm``."""
        steps: list[LayerStep] = [
            LayerStep("sddmm", {"a": "a", "b": "b", "scale_by_mask": bool(scale_by_mask)})
        ]
        if scale is not None:
            steps.append(LayerStep("scale", {"value": float(scale)}))
        steps.append(LayerStep("edge_softmax", {}))
        steps.append(LayerStep("spmm", {"x": "x"}))
        return cls(steps=tuple(steps))

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check step order and operand wiring; raises :class:`ProgramError`."""
        steps = self.steps
        if not steps:
            raise ProgramError("a layer program needs at least one step")
        for step in steps:
            if not isinstance(step, LayerStep):
                raise ProgramError(f"steps must be LayerStep, got {type(step).__name__}")
            if step.op not in LAYER_STEP_OPS:
                raise ProgramError(
                    f"unknown step op {step.op!r}; expected one of {LAYER_STEP_OPS}"
                )
        if steps[0].op != "sddmm":
            raise ProgramError(
                "a layer program must start with 'sddmm' (the edge-logit producer); "
                f"got {steps[0].op!r}"
            )
        if steps[-1].op != "spmm":
            raise ProgramError(
                "a layer program must end with 'spmm' (the aggregation); "
                f"got {steps[-1].op!r}"
            )
        ops = [s.op for s in steps]
        if ops.count("sddmm") != 1 or ops.count("spmm") != 1:
            raise ProgramError("a layer program has exactly one 'sddmm' and one 'spmm'")
        if ops.count("edge_softmax") != 1:
            raise ProgramError("a layer program has exactly one 'edge_softmax'")
        softmax_at = ops.index("edge_softmax")
        if softmax_at != len(ops) - 2:
            raise ProgramError("'edge_softmax' must immediately precede 'spmm'")
        for i, step in enumerate(steps[1:softmax_at], start=1):
            if step.op != "scale":
                raise ProgramError(
                    f"only 'scale' steps may appear between 'sddmm' and "
                    f"'edge_softmax'; step {i} is {step.op!r}"
                )
            value = step.params.get("value")
            if value is None or not np.isfinite(float(value)):
                raise ProgramError(f"scale step {i} needs a finite 'value'")
        # Operand wiring: every name a step references must be a known panel.
        sddmm = steps[0].params
        for name in ("a", "b"):
            wired = sddmm.get(name, name)
            if wired not in LAYER_OPERANDS:
                raise ProgramError(
                    f"sddmm operand {name!r} wired to unknown panel {wired!r}"
                )
        spmm_x = steps[-1].params.get("x", "x")
        if spmm_x not in LAYER_OPERANDS:
            raise ProgramError(f"spmm operand 'x' wired to unknown panel {spmm_x!r}")

    def canonical(self) -> tuple[float | None, bool]:
        """The executable ``(scale, scale_by_mask)`` form.

        Consecutive ``scale`` steps fold into one float (scalar multiplies
        commute in FP32 only when folded *as written*, so folding happens
        in float32 to keep the program's numerics explicit).
        """
        scale: float | None = None
        for step in self.steps:
            if step.op == "scale":
                value = np.float32(step.params["value"])
                scale = float(value) if scale is None else float(np.float32(scale) * value)
        return scale, bool(self.steps[0].params.get("scale_by_mask", False))

    def operand_names(self) -> tuple[str, str, str]:
        """The wired panel names ``(a, b, x)``."""
        sddmm = self.steps[0].params
        return (
            str(sddmm.get("a", "a")),
            str(sddmm.get("b", "b")),
            str(self.steps[-1].params.get("x", "x")),
        )

    # ------------------------------------------------------------------ wire
    def to_wire(self) -> list[dict]:
        """JSON-safe form for the v4 ``layer_task`` header."""
        return [step.to_wire() for step in self.steps]

    @classmethod
    def from_wire(cls, payload: list[dict]) -> "LayerProgram":
        """Rebuild (and re-validate) from :meth:`to_wire` output."""
        return cls(steps=tuple(LayerStep.from_wire(item) for item in payload))


# ---------------------------------------------------------------------------
# Composed-execution helpers (the three-round-trip reference path)
# ---------------------------------------------------------------------------


def gather_edge_values(
    partition: WindowPartition, indptr: np.ndarray, vector_values: np.ndarray
) -> np.ndarray:
    """SDDMM output (nonzero-vector layout) → CSR edge order.

    The exact inverse of the translation's value scatter
    (``values[nnz_vector_of_entry, row % v] = data``), so explicit zeros
    survive and the entry order is the CSR's — unlike
    ``BlockedVectorFormat.to_csr``, which drops stored zeros.  Returns the
    ``(nnz,)`` float32 per-edge values.
    """
    rows = segment_ids(indptr)
    return np.asarray(vector_values, dtype=np.float32)[
        partition.nnz_vector_of_entry, rows % partition.vector_size
    ]


def attention_csr(csr: CSRMatrix, data: np.ndarray) -> CSRMatrix:
    """A CSR with ``csr``'s pattern and ``data`` as values (attention matrix).

    The composed path feeds this to the SpMM stage; its content key differs
    from the mask's (the values differ per layer evaluation), which is why
    composed cluster serving re-ships an attention bundle every time while
    the fused path ships nothing.
    """
    data = np.ascontiguousarray(np.asarray(data, dtype=np.float32))
    if data.shape != (csr.nnz,):
        raise ValueError(f"data must have shape ({csr.nnz},), got {data.shape}")
    return CSRMatrix(csr.indptr, csr.indices, data, csr.shape)


@dataclass
class LayerResult:
    """Result of a fused-layer request: the layer's dense output rows."""

    #: Dense layer output ``spmm(softmax(scale · sddmm(a, b)), x)`` (float32).
    values: np.ndarray
    #: Useful FLOPs of the whole pipeline (SDDMM + softmax + SpMM).
    useful_flops: int
    #: Per-stage wall clock, backend, coalescing info.
    meta: dict = field(default_factory=dict)


@dataclass
class EdgeSoftmaxResult:
    """Result of a served per-row edge softmax over a matrix's pattern."""

    #: Per-edge attention weights in CSR entry order, ``(nnz,)`` float32.
    values: np.ndarray
    #: Useful FLOPs (max, subtract, exp, sum, divide — ~5 per edge).
    useful_flops: int
    meta: dict = field(default_factory=dict)


@dataclass
class SegmentMatmulResult:
    """Result of a served :func:`repro.ops.segment_matmul` request."""

    #: Stacked ``(total, N)`` product (uniform-width weights).
    values: np.ndarray
    #: Useful FLOPs (``2 · Σ_s len_s · K · N_s``).
    useful_flops: int
    meta: dict = field(default_factory=dict)
