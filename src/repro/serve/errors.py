"""Serving failure taxonomy.

Every error the serving frontend raises (or resolves a future with)
derives from :class:`ServeError`, which itself derives from
``RuntimeError`` so pre-existing callers that caught ``RuntimeError``
around ``submit_*`` keep working.  The subclasses separate the three
overload/lifecycle outcomes a client must tell apart:

* :class:`ServerOverloadedError` — admission control turned the request
  away at submit time (``max_queue_depth`` reached under the ``"reject"``
  policy).  The request never entered the queue; retry against another
  replica or with backoff.
* :class:`ServeTimeoutError` — the request's deadline expired while it was
  still queued, so the server shed it *before* execution (computing a
  result nobody is waiting for only deepens an overload), or a
  ``close(timeout=...)`` drain did not finish in time.  Also a
  ``TimeoutError`` so generic timeout handlers see it.
* :class:`ServeShedError` — the queue crossed the cost-shedding watermark
  and this request was among the most expensive queued (by predicted
  FLOPs), so the server dropped it to protect the cheap majority.  Retry
  with backoff, against a less-loaded replica, or at a smaller width.
* :class:`ServerClosedError` — submitted after :meth:`Server.close`.
* :class:`DispatcherCrashedError` — the dispatch thread died; the original
  failure is attached as ``__cause__``.  Every queued/pending future is
  failed with this instead of being stranded, and the server's
  ``healthy`` flag flips so subsequent submits fail fast.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class for every serving-layer failure."""


class ServerOverloadedError(ServeError):
    """Admission control rejected the request: the queue is full."""


class ServeTimeoutError(ServeError, TimeoutError):
    """A request deadline (or a ``close`` drain deadline) expired."""


class ServeShedError(ServeError):
    """The request was shed by cost-aware load shedding (queue over the
    watermark; this request was among the most expensive queued)."""


class ServerClosedError(ServeError):
    """The server no longer accepts requests."""


class DispatcherCrashedError(ServeError):
    """The dispatch thread died; see ``__cause__`` for the original error."""
