"""Multi-process shard scheduler for one SpMM / SDDMM.

PR 2's engine shards window-aligned chunk ranges across *threads*; this
module is the next scale step the ROADMAP called for: the same window-
aligned shards dispatched to a ``multiprocessing`` worker pool, so the
per-shard batched matmuls run on separate cores regardless of whether the
BLAS build releases the GIL for small GEMMs.

Execution model
---------------
* The **dense operands** (B for SpMM, A and B for SDDMM) and the **output**
  live in POSIX shared memory (:mod:`multiprocessing.shared_memory`): they
  are written once by the parent and mapped — not copied — into every
  worker.  Workers write their shard's output rows directly into the shared
  output; shards are window-aligned, so no two workers ever touch the same
  rows and no locking is needed.
* The **sparse shard slices** (block values, columns, window offsets) are
  small and travel with each task through the pool's pickle channel; this
  keeps workers stateless, so any worker can run any shard — the pool's
  internal queue is the work queue.
* Each shard is retried ``retries`` times on failure; a shard that exhausts
  its retries falls back to in-parent execution, so one bad worker degrades
  throughput, not correctness.

Bit-exactness
-------------
Every shard runs the one-shot reduction of
:func:`repro.kernels.engine.spmm_shard_rows` /
:func:`~repro.kernels.engine.sddmm_shard_values` over whole windows, which
reproduces the single-process ``engine="batched"`` one-shot values
bit-for-bit (see the engine module docstring).  The parity tests assert
exact equality, not allclose.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.kernels.engine import (
    ShardRange,
    layer_shard_rows,
    layer_softmax_mapping,
    sddmm_a_window,
    sddmm_shard_values,
    spmm_shard_rows,
    window_aligned_ranges,
)
from repro.ops import segment_matmul
from repro.precision.types import Precision

try:  # POSIX shared memory; present on every platform this repo targets.
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - ancient interpreters only
    shared_memory = None

#: Default number of times a failed shard is re-enqueued before the parent
#: runs it inline.
DEFAULT_SHARD_RETRIES = 2


@dataclass(frozen=True)
class ShmArray:
    """Descriptor of an ndarray living in a named shared-memory segment."""

    name: str
    shape: tuple
    dtype: str


def _create_shm(array: np.ndarray) -> tuple["shared_memory.SharedMemory", ShmArray]:
    """Copy ``array`` into a fresh shared-memory segment."""
    array = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    return shm, ShmArray(name=shm.name, shape=tuple(array.shape), dtype=array.dtype.str)


def _create_shm_zeros(shape: tuple, dtype) -> tuple["shared_memory.SharedMemory", ShmArray]:
    """A zero-initialised shared-memory array (the output buffer)."""
    dtype = np.dtype(dtype)
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    view[...] = 0
    return shm, ShmArray(name=shm.name, shape=tuple(shape), dtype=dtype.str)


def _attach(desc: ShmArray) -> tuple["shared_memory.SharedMemory", np.ndarray]:
    """Map a descriptor's segment into this process (no tracker ownership).

    The parent owns the segment lifecycle (close + unlink); attaching
    workers must not register it with the resource tracker — under the
    ``fork`` start method parent and workers share one tracker process, so
    a worker-side registration makes the segment appear twice and the
    parent's unlink then trips the tracker's bookkeeping.  Python 3.13 has
    ``track=False`` for exactly this; earlier interpreters need the
    register call silenced around the attach.
    """
    try:
        shm = shared_memory.SharedMemory(name=desc.name, track=False)
    except TypeError:  # Python < 3.13: no track flag.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=desc.name)
        finally:
            resource_tracker.register = original_register
    return shm, np.ndarray(desc.shape, dtype=np.dtype(desc.dtype), buffer=shm.buf)


# ---------------------------------------------------------------------------
# Worker-side task bodies (module-level: picklable by every start method)
# ---------------------------------------------------------------------------
def _maybe_fail(task: dict) -> None:
    """Deterministic failure injection for the retry tests."""
    if task["attempt"] <= task.get("fail_times", 0):
        raise RuntimeError(
            f"injected shard failure (shard {task['shard']}, attempt {task['attempt']})"
        )


def _run_spmm_shard(task: dict) -> int:
    """Compute one SpMM shard and write its rows into the shared output."""
    _maybe_fail(task)
    b_shm, b_q = _attach(task["b"])
    out_shm, out = _attach(task["out"])
    try:
        rows = spmm_shard_rows(
            task["values"],
            task["columns"],
            task["local_offsets"],
            b_q,
            Precision(task["precision"]),
        )
        row0 = task["row0"]
        stop = min(row0 + rows.shape[0], out.shape[0])
        out[row0:stop] = rows[: stop - row0]
    finally:
        b_shm.close()
        out_shm.close()
    return task["shard"]


def _run_sddmm_shard(task: dict) -> int:
    """Compute one SDDMM shard and scatter its values into the shared output."""
    _maybe_fail(task)
    a_shm, a_q = _attach(task["a"])
    b_shm, b_q = _attach(task["b"])
    out_shm, out = _attach(task["out"])
    try:
        idx, vals = sddmm_shard_values(
            task["values"],
            task["columns"],
            task["lane_valid"],
            task["vector_index"],
            task["local_window_of_block"],
            sddmm_a_window(a_q, task["w0"], task["w1"], task["v"]),
            b_q,
            task["scale_by_mask"],
        )
        out[idx] = vals
    finally:
        a_shm.close()
        b_shm.close()
        out_shm.close()
    return task["shard"]


def _run_layer_shard(task: dict) -> tuple[int, dict]:
    """Run one fused-layer shard (SDDMM → softmax → SpMM) end to end."""
    _maybe_fail(task)
    a_shm, a_q = _attach(task["a"])
    b_shm, b_q = _attach(task["b"])
    x_shm, x_q = _attach(task["x"])
    out_shm, out = _attach(task["out"])
    try:
        rows, timings = layer_shard_rows(
            task["sddmm_values"],
            task["sddmm_columns"],
            task["sddmm_lane_valid"],
            task["sddmm_vector_index"],
            task["sddmm_local_window_of_block"],
            task["spmm_columns"],
            task["spmm_local_offsets"],
            task["spmm_lane_valid"],
            task["spmm_vector_index"],
            task["local_indptr"],
            task["entry_vector"],
            task["entry_lane"],
            task["vec_lo"],
            task["vec_count"],
            sddmm_a_window(a_q, task["w0"], task["w1"], task["v"]),
            b_q,
            x_q,
            Precision(task["precision"]),
            task["scale"],
            task["scale_by_mask"],
        )
        row0 = task["row0"]
        stop = min(row0 + rows.shape[0], out.shape[0])
        out[row0:stop] = rows[: stop - row0]
    finally:
        a_shm.close()
        b_shm.close()
        x_shm.close()
        out_shm.close()
    return task["shard"], timings


_WORKER_BODIES = {"spmm": _run_spmm_shard, "sddmm": _run_sddmm_shard, "layer": _run_layer_shard}


def _run_task(task: dict) -> int:
    return _WORKER_BODIES[task["kind"]](task)


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------
class ShardScheduler:
    """Window-aligned shard executor over a persistent process pool.

    Parameters
    ----------
    workers:
        Worker process count.  ``workers <= 1`` executes every shard inline
        in the calling process (no pool, no shared memory) — the degenerate
        configuration the parity tests compare the pool against.
    retries:
        Times a failed shard is re-enqueued before the parent computes it
        inline.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap worker startup, copy-on-write import state) and
        the platform default elsewhere.
    """

    def __init__(
        self,
        workers: int = 1,
        retries: int = DEFAULT_SHARD_RETRIES,
        start_method: str | None = None,
    ):
        self.workers = max(1, int(workers))
        self.retries = max(0, int(retries))
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._mp_context = mp.get_context(start_method) if start_method else mp.get_context()
        self._pool: ProcessPoolExecutor | None = None
        #: Lifetime counters: shards run, retries performed, inline fallbacks.
        #: Mutated by the dispatching thread under ``_stats_lock``; read via
        #: :meth:`stats_snapshot` (client threads snapshot while `_dispatch`
        #: runs, so unguarded reads could observe mid-update state).
        self.stats = {"shards": 0, "retries": 0, "fallbacks": 0, "requests": 0}
        self._stats_lock = threading.Lock()

    # --------------------------------------------------------------- plumbing
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._pool = None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def stats_snapshot(self) -> dict:
        """Consistent copy of the lifetime counters (safe from any thread)."""
        with self._stats_lock:
            return dict(self.stats)

    def _count(self, key: str, n: int = 1) -> None:
        with self._stats_lock:
            self.stats[key] += n

    def __enter__(self) -> "ShardScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _dispatch(self, tasks: list[dict], inline_body, on_result=None) -> None:
        """Run ``tasks`` on the pool with per-shard retry and inline fallback.

        ``inline_body(task)`` is the parent-side fallback executed against
        the parent's own arrays once a shard exhausts its retries (or when
        the pool itself breaks).  ``on_result`` (optional) receives each
        pool future's return value — the fused-layer path collects its
        per-stage timings through it (inline bodies record their own).
        """
        self._count("requests")
        self._count("shards", len(tasks))
        if self.workers <= 1 or len(tasks) == 0:
            for task in tasks:
                inline_body(task)
            return
        pending = {self._ensure_pool().submit(_run_task, task): task for task in tasks}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task = pending.pop(future)
                if future.exception() is None:
                    if on_result is not None:
                        on_result(future.result())
                    continue
                if task["attempt"] <= self.retries:
                    task = dict(task, attempt=task["attempt"] + 1)
                    self._count("retries")
                    try:
                        pending[self._ensure_pool().submit(_run_task, task)] = task
                    except Exception:
                        # Pool broken (dead workers): drop it so the next
                        # submit builds a fresh one, run this shard inline.
                        self._discard_pool()
                        self._count("fallbacks")
                        inline_body(task)
                else:
                    self._count("fallbacks")
                    inline_body(task)

    # ------------------------------------------------------------------ SpMM
    def run_spmm(
        self,
        fmt: BlockedVectorFormat,
        b_q: np.ndarray,
        precision: Precision,
        target_blocks: int | None = None,
        _inject_failures: dict | None = None,
    ) -> np.ndarray:
        """``A @ B`` sharded across the pool; bit-identical to one-shot.

        ``b_q`` must already be quantised float32 (the kernel entry points'
        convention).  ``target_blocks`` is the shard size target from the
        planner (defaults to an even split across workers).
        ``_inject_failures`` maps shard index → number of times that shard
        fails (test hook for the retry path).
        """
        v = fmt.vector_size
        n_rows = fmt.shape[0]
        n_dense = b_q.shape[1]
        batch = fmt.blocks_as_arrays()
        offsets = batch.window_offsets
        if target_blocks is None:
            target_blocks = max(1, -(-batch.num_blocks // self.workers))
        ranges = window_aligned_ranges(offsets, target_blocks)
        if batch.num_blocks == 0 or n_dense == 0 or not ranges:
            return np.zeros((n_rows, n_dense), dtype=np.float32)

        use_pool = self.workers > 1 and shared_memory is not None
        segments = []
        try:
            if use_pool:
                b_shm, b_desc = _create_shm(b_q)
                out_shm, out_desc = _create_shm_zeros((n_rows, n_dense), np.float32)
                segments = [b_shm, out_shm]
                out_view = np.ndarray((n_rows, n_dense), np.float32, buffer=out_shm.buf)
            else:
                b_desc = out_desc = None
                out_view = np.zeros((n_rows, n_dense), dtype=np.float32)

            tasks = [
                self._spmm_task(batch, offsets, r, i, b_desc, out_desc, precision, _inject_failures)
                for i, r in enumerate(ranges)
            ]

            def inline(task: dict) -> None:
                rows = spmm_shard_rows(
                    task["values"], task["columns"], task["local_offsets"], b_q, precision
                )
                row0 = task["row0"]
                stop = min(row0 + rows.shape[0], n_rows)
                out_view[row0:stop] = rows[: stop - row0]

            self._dispatch(tasks, inline)
            return np.array(out_view, copy=True)
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    @staticmethod
    def _spmm_task(batch, offsets, r: ShardRange, index, b_desc, out_desc, precision, inject):
        return {
            "kind": "spmm",
            "shard": index,
            "attempt": 1,
            "fail_times": (inject or {}).get(index, 0),
            "values": batch.values[r.lo : r.hi],
            "columns": batch.columns[r.lo : r.hi],
            "local_offsets": offsets[r.w0 : r.w1 + 1] - offsets[r.w0],
            "row0": r.w0 * batch.values.shape[1],
            "precision": precision.value,
            "b": b_desc,
            "out": out_desc,
        }

    # ----------------------------------------------------------------- SDDMM
    def run_sddmm(
        self,
        fmt: BlockedVectorFormat,
        a_q: np.ndarray,
        b_q: np.ndarray,
        precision: Precision,
        group: int,
        scale_by_mask: bool = False,
        target_blocks: int | None = None,
        _inject_failures: dict | None = None,
    ) -> np.ndarray:
        """Sampled dense×dense sharded across the pool (bit-identical).

        Returns the ``(num_nonzero_vectors, vector_size)`` value array in
        the layout of ``fmt.vector_values``.
        """
        v = fmt.vector_size
        k_dense = a_q.shape[1]
        batch = fmt.blocks_as_arrays(group)
        offsets = batch.window_offsets
        if target_blocks is None:
            target_blocks = max(1, -(-batch.num_blocks // self.workers))
        ranges = window_aligned_ranges(offsets, target_blocks)
        out_shape = fmt.vector_values.shape
        if batch.num_blocks == 0 or k_dense == 0 or not ranges:
            return np.zeros(out_shape, dtype=np.float32)

        use_pool = self.workers > 1 and shared_memory is not None
        segments = []
        try:
            if use_pool:
                a_shm, a_desc = _create_shm(a_q)
                b_shm, b_desc = _create_shm(b_q)
                out_shm, out_desc = _create_shm_zeros(out_shape, np.float32)
                segments = [a_shm, b_shm, out_shm]
                out_view = np.ndarray(out_shape, np.float32, buffer=out_shm.buf)
            else:
                a_desc = b_desc = out_desc = None
                out_view = np.zeros(out_shape, dtype=np.float32)

            tasks = []
            for i, r in enumerate(ranges):
                tasks.append(
                    {
                        "kind": "sddmm",
                        "shard": i,
                        "attempt": 1,
                        "fail_times": (_inject_failures or {}).get(i, 0),
                        "values": batch.values[r.lo : r.hi],
                        "columns": batch.columns[r.lo : r.hi],
                        "lane_valid": batch.lane_valid[r.lo : r.hi],
                        "vector_index": batch.vector_index[r.lo : r.hi],
                        "local_window_of_block": batch.window_of_block[r.lo : r.hi] - r.w0,
                        "w0": r.w0,
                        "w1": r.w1,
                        "v": v,
                        "scale_by_mask": bool(scale_by_mask),
                        "a": a_desc,
                        "b": b_desc,
                        "out": out_desc,
                    }
                )

            def inline(task: dict) -> None:
                idx, vals = sddmm_shard_values(
                    task["values"],
                    task["columns"],
                    task["lane_valid"],
                    task["vector_index"],
                    task["local_window_of_block"],
                    sddmm_a_window(a_q, task["w0"], task["w1"], v),
                    b_q,
                    task["scale_by_mask"],
                )
                out_view[idx] = vals

            self._dispatch(tasks, inline)
            return np.array(out_view, copy=True)
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    # ----------------------------------------------------------- fused layer
    def run_layer(
        self,
        fmt: BlockedVectorFormat,
        indptr: np.ndarray,
        a_q: np.ndarray,
        b_q: np.ndarray,
        x_q: np.ndarray,
        precision: Precision,
        group: int,
        scale: float | None = None,
        scale_by_mask: bool = False,
        target_blocks: int | None = None,
        _inject_failures: dict | None = None,
    ) -> tuple[np.ndarray, dict]:
        """One fused layer (SDDMM → scale → softmax → SpMM) sharded across
        the pool — bit-identical to the three-call composition.

        ``indptr`` is the mask's CSR row layout (the softmax segments);
        ``a_q`` / ``b_q`` are the SDDMM operands and ``x_q`` the SpMM dense
        operand, all pre-quantised float32.  ``group`` is the SDDMM output
        grouping (``VECTORS_PER_OUTPUT_BLOCK``).  Shards are cut on the
        SpMM grouping's window offsets and each stage slices its own batch
        at the same window bounds — the two groupings cover identical
        windows, so the shard set is window-aligned for both.

        Returns ``(rows, stage_seconds)`` where ``stage_seconds`` sums each
        stage's wall clock across shards
        (``{"sddmm_s", "edge_softmax_s", "spmm_s"}``).
        """
        v = fmt.vector_size
        n_rows = fmt.shape[0]
        n_dense = x_q.shape[1]
        pbatch = fmt.blocks_as_arrays()
        sbatch = fmt.blocks_as_arrays(group)
        offsets = pbatch.window_offsets
        soffsets = sbatch.window_offsets
        if target_blocks is None:
            target_blocks = max(1, -(-pbatch.num_blocks // self.workers))
        ranges = window_aligned_ranges(offsets, target_blocks)
        stage_seconds = {"sddmm_s": 0.0, "edge_softmax_s": 0.0, "spmm_s": 0.0}
        if pbatch.num_blocks == 0 or n_dense == 0 or not ranges:
            return np.zeros((n_rows, n_dense), dtype=np.float32), stage_seconds

        use_pool = self.workers > 1 and shared_memory is not None
        segments = []
        try:
            if use_pool:
                a_shm, a_desc = _create_shm(a_q)
                b_shm, b_desc = _create_shm(b_q)
                x_shm, x_desc = _create_shm(x_q)
                out_shm, out_desc = _create_shm_zeros((n_rows, n_dense), np.float32)
                segments = [a_shm, b_shm, x_shm, out_shm]
                out_view = np.ndarray((n_rows, n_dense), np.float32, buffer=out_shm.buf)
            else:
                a_desc = b_desc = x_desc = out_desc = None
                out_view = np.zeros((n_rows, n_dense), dtype=np.float32)

            tasks = []
            for i, r in enumerate(ranges):
                slo, shi = int(soffsets[r.w0]), int(soffsets[r.w1])
                local_indptr, entry_vector, entry_lane, vec_lo, vec_count = (
                    layer_softmax_mapping(
                        indptr,
                        fmt.partition.nnz_vector_of_entry,
                        fmt.partition.window_ptr,
                        r.w0,
                        r.w1,
                        v,
                        n_rows,
                    )
                )
                tasks.append(
                    {
                        "kind": "layer",
                        "shard": i,
                        "attempt": 1,
                        "fail_times": (_inject_failures or {}).get(i, 0),
                        "sddmm_values": sbatch.values[slo:shi],
                        "sddmm_columns": sbatch.columns[slo:shi],
                        "sddmm_lane_valid": sbatch.lane_valid[slo:shi],
                        "sddmm_vector_index": sbatch.vector_index[slo:shi],
                        "sddmm_local_window_of_block": sbatch.window_of_block[slo:shi] - r.w0,
                        "spmm_columns": pbatch.columns[r.lo : r.hi],
                        "spmm_local_offsets": offsets[r.w0 : r.w1 + 1] - r.lo,
                        "spmm_lane_valid": pbatch.lane_valid[r.lo : r.hi],
                        "spmm_vector_index": pbatch.vector_index[r.lo : r.hi],
                        "local_indptr": local_indptr,
                        "entry_vector": entry_vector,
                        "entry_lane": entry_lane,
                        "vec_lo": vec_lo,
                        "vec_count": vec_count,
                        "w0": r.w0,
                        "w1": r.w1,
                        "v": v,
                        "row0": r.w0 * v,
                        "precision": precision.value,
                        "scale": None if scale is None else float(scale),
                        "scale_by_mask": bool(scale_by_mask),
                        "a": a_desc,
                        "b": b_desc,
                        "x": x_desc,
                        "out": out_desc,
                    }
                )

            def add_timings(timings: dict) -> None:
                for key in stage_seconds:
                    stage_seconds[key] += timings.get(key, 0.0)

            def inline(task: dict) -> None:
                rows, timings = layer_shard_rows(
                    task["sddmm_values"],
                    task["sddmm_columns"],
                    task["sddmm_lane_valid"],
                    task["sddmm_vector_index"],
                    task["sddmm_local_window_of_block"],
                    task["spmm_columns"],
                    task["spmm_local_offsets"],
                    task["spmm_lane_valid"],
                    task["spmm_vector_index"],
                    task["local_indptr"],
                    task["entry_vector"],
                    task["entry_lane"],
                    task["vec_lo"],
                    task["vec_count"],
                    sddmm_a_window(a_q, task["w0"], task["w1"], v),
                    b_q,
                    x_q,
                    precision,
                    task["scale"],
                    task["scale_by_mask"],
                )
                row0 = task["row0"]
                stop = min(row0 + rows.shape[0], n_rows)
                out_view[row0:stop] = rows[: stop - row0]
                add_timings(timings)

            self._dispatch(tasks, inline, on_result=lambda res: add_timings(res[1]))
            return np.array(out_view, copy=True), stage_seconds
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()

    # -------------------------------------------------------- segment matmul
    def run_segment_matmul(self, data: np.ndarray, offsets: np.ndarray, weights) -> np.ndarray:
        """Served typed-linear (:func:`repro.ops.segment_matmul`).

        Runs in-process: the op is already one bucketed batched-BLAS pass,
        so process sharding would only add pickle traffic.  Counted as one
        request / one shard in the lifetime stats.
        """
        self._count("requests")
        self._count("shards")
        return segment_matmul(data, offsets, weights)
