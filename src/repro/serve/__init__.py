"""Multi-process sharded serving subsystem.

This package turns the kernel library into a serving system for the paper's
end-to-end workloads (the GNN inference traffic of Figure 16): a
:class:`~repro.serve.server.Server` accepts concurrent SpMM / SDDMM
requests, deduplicates translations across requests that carry the same
matrix (content-hash keyed), batches same-matrix SpMM requests into one
engine pass, and executes large operations sharded across a
``multiprocessing`` worker pool with shared-memory dense operands.

The four pieces:

* :mod:`repro.serve.planner` — derives ``block_chunk`` /
  ``max_intermediate_bytes`` / ``workers`` from a
  :class:`~repro.gpu.device.GPUSpec` memory budget and the format's
  block-width histogram, replacing caller-supplied knobs;
* :mod:`repro.serve.program` — composable layer programs
  (``sddmm → [scale] → edge_softmax → spmm``) so a whole attention layer
  is one request (``Server.submit_layer``) instead of three, plus the
  composed-execution helpers the per-kernel fallback shares;
* :mod:`repro.serve.scheduler` — shards window-aligned block ranges of one
  operation across a process pool (work queue, per-shard retry,
  shared-memory dense operands, bit-identical to the single-process
  one-shot engine);
* :mod:`repro.serve.server` — the request frontend (futures, same-matrix
  batching, per-request cost counters, bounded admission, request
  deadlines, priority classes with earliest-deadline-first dispatch and
  cost-aware load shedding for overload safety; ``backend="cluster"``
  swaps the in-process scheduler for the multi-host head of
  :mod:`repro.cluster`);
* :mod:`repro.serve.metrics` — latency percentiles (end-to-end plus the
  queue-wait / execution split), queue depth, overload counters and the
  translation-cache hit/miss counters;
* :mod:`repro.serve.errors` — the failure taxonomy clients dispatch on
  (overloaded / timed out / closed / dispatcher crashed).
"""

from repro.serve.errors import (
    DispatcherCrashedError,
    ServeError,
    ServeShedError,
    ServeTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.metrics import LatencyStats, MetricsSnapshot, ServeMetrics
from repro.serve.planner import ServePlan, plan_sddmm, plan_spmm
from repro.serve.program import (
    EdgeSoftmaxResult,
    LayerProgram,
    LayerResult,
    LayerStep,
    ProgramError,
    SegmentMatmulResult,
    attention_csr,
    gather_edge_values,
)
from repro.serve.scheduler import ShardScheduler
from repro.serve.server import Server, ServeRequest

__all__ = [
    "DispatcherCrashedError",
    "EdgeSoftmaxResult",
    "LatencyStats",
    "LayerProgram",
    "LayerResult",
    "LayerStep",
    "MetricsSnapshot",
    "ProgramError",
    "SegmentMatmulResult",
    "ServeError",
    "ServeMetrics",
    "ServePlan",
    "ServeShedError",
    "ServeTimeoutError",
    "ServerClosedError",
    "ServerOverloadedError",
    "ShardScheduler",
    "Server",
    "ServeRequest",
    "attention_csr",
    "gather_edge_values",
    "plan_sddmm",
    "plan_spmm",
]
