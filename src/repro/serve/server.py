"""Serving frontend: concurrent requests, same-matrix batching, futures.

The :class:`Server` is the request path of the serving subsystem (the shape
follows DGL's graph-serving frontends: clients submit into a queue and get
futures; a dispatch loop drains the queue, groups compatible requests and
executes them on the shared backend):

* clients call :meth:`Server.submit_spmm` / :meth:`Server.submit_sddmm`
  from any thread and receive a :class:`concurrent.futures.Future`;
* one dispatch thread drains the queue and groups requests by operation and
  :meth:`~repro.formats.csr.CSRMatrix.content_key` — same-matrix SpMM
  requests are concatenated column-wise and run as **one** engine pass, so
  they share one cached translation (content-keyed: serving payloads are
  deserialised fresh per request) and one dense-operand gather.  The
  concatenation is numerically invisible: the engine's batched 3-D matmuls
  and window reductions act per output element along the dense axis, so the
  split results are bit-identical to running each request alone;
* execution honours a :class:`~repro.serve.planner.ServePlan` — derived per
  (matrix, width) from the server's device budget and memoised — and runs
  on the multi-process :class:`~repro.serve.scheduler.ShardScheduler` when
  the server has workers, inline otherwise;
* every request resolves with a result carrying the same ``values`` /
  ``counter`` / ``useful_flops`` a direct :func:`repro.core.api.spmm` call
  would produce: cost counters come from the closed-form cost pass, which
  is exactly independent of batching and sharding.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.core.api import SddmmResult, SpmmResult, _as_input
from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs
from repro.gpu.device import GPUSpec, get_device
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import (
    VECTORS_PER_OUTPUT_BLOCK,
    sddmm_flash_cost,
)
from repro.kernels.spmm_flash import spmm_flash_cost
from repro.perfmodel.model import sddmm_useful_flops, spmm_useful_flops
from repro.precision.types import Precision, quantize
from repro.serve.metrics import MetricsSnapshot, ServeMetrics
from repro.serve.planner import MAX_PLANNED_WORKERS, ServePlan, plan_sddmm, plan_spmm
from repro.serve.scheduler import ShardScheduler
from repro.utils.validation import check_dense_matrix

#: Most requests coalesced into one engine pass.  Bounds both the
#: concatenated dense width and how long an early request waits for the
#: batch to fill (the dispatch loop never waits — it batches whatever is
#: already queued — so this is a width cap, not a time window).
DEFAULT_MAX_BATCH = 8


@dataclass
class ServeRequest:
    """One queued operation (internal to the server)."""

    op: str
    csr: object  # CSRMatrix
    key: str  # content key — the batching handle
    b: np.ndarray
    a: np.ndarray | None = None
    scale_by_mask: bool = False
    future: Future | None = None
    submitted_at: float = 0.0


@dataclass
class _Stop:
    """Queue sentinel that wakes the dispatch loop for shutdown."""


class Server:
    """Multi-process sharded SpMM/SDDMM server.

    Parameters
    ----------
    device:
        Device name or :class:`GPUSpec`; its memory capacity drives the
        planner.  ``None`` serves without a memory budget (one-shot plans).
    precision:
        Kernel precision for every request (``"fp16"`` or ``"tf32"``).
    workers:
        Worker processes for the shard scheduler.  ``None`` lets the
        planner choose per request (up to ``min(cpu_count, 8)``); ``1``
        forces inline execution — the reference configuration the parity
        suite compares against.
    max_batch:
        Maximum same-matrix requests coalesced into one engine pass.
    retries:
        Per-shard retry budget of the scheduler.
    """

    def __init__(
        self,
        device: str | GPUSpec | None = None,
        precision: Precision | str = Precision.FP16,
        workers: int | None = None,
        workspace_fraction: float | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        retries: int | None = None,
        start_method: str | None = None,
    ):
        self.device = device if (device is None or isinstance(device, GPUSpec)) else get_device(device)
        self.precision = Precision(precision)
        self.requested_workers = workers
        self.workspace_fraction = workspace_fraction
        self.max_batch = max(1, int(max_batch))
        self.metrics = ServeMetrics()
        sched_kwargs = {} if retries is None else {"retries": retries}
        # Pool size: the planner may use fewer workers per request, never
        # more than the pool holds.
        pool_size = workers if workers is not None else min(os.cpu_count() or 1, MAX_PLANNED_WORKERS)
        self.scheduler = ShardScheduler(
            workers=pool_size, start_method=start_method, **sched_kwargs
        )
        self._plans: dict[tuple, tuple[BlockedVectorFormat, ServePlan]] = {}
        self._queue: "queue.SimpleQueue[ServeRequest | _Stop]" = queue.SimpleQueue()
        # Serialises submit vs close: nothing can enter the queue after the
        # _Stop sentinel, so no future can be stranded by a shutdown race.
        self._submit_lock = threading.Lock()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ----------------------------------------------------------- client API
    def submit_spmm(self, matrix, b: np.ndarray):
        """Enqueue ``matrix @ b``; returns a Future of :class:`SpmmResult`."""
        inp = _as_input(matrix)
        b = check_dense_matrix(np.asarray(b), "b", n_rows=inp.shape[1])
        return self._enqueue(
            ServeRequest(op="spmm", csr=inp.csr, key=inp.csr.content_key(), b=b)
        )

    def submit_sddmm(self, mask, a: np.ndarray, b: np.ndarray, scale_by_mask: bool = False):
        """Enqueue a sampled dense×dense; returns a Future of
        :class:`SddmmResult`."""
        inp = _as_input(mask)
        a = check_dense_matrix(np.asarray(a), "a", n_rows=inp.shape[0])
        b = check_dense_matrix(np.asarray(b), "b", n_rows=inp.shape[1])
        if a.shape[1] != b.shape[1]:
            raise ValueError("a and b must share the inner dimension K")
        return self._enqueue(
            ServeRequest(
                op="sddmm",
                csr=inp.csr,
                key=inp.csr.content_key(),
                b=b,
                a=a,
                scale_by_mask=scale_by_mask,
            )
        )

    def _enqueue(self, req: ServeRequest) -> Future:
        req.future = Future()
        req.submitted_at = time.perf_counter()
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            self.metrics.record_submitted()
            self._queue.put(req)
        return req.future

    def snapshot(self) -> MetricsSnapshot:
        """Current metrics (see :mod:`repro.serve.metrics`)."""
        return self.metrics.snapshot(
            scheduler=dict(self.scheduler.stats), workers=self.scheduler.workers
        )

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests, drain the queue, shut the pool down."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_Stop())
        if wait:
            self._dispatcher.join(timeout=60.0)
        self.scheduler.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------- dispatch loop
    def _dispatch_loop(self) -> None:
        stopping = False
        while not stopping:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            drained: list[ServeRequest] = []
            if isinstance(first, _Stop):
                stopping = True
            else:
                drained.append(first)
            # Batch whatever is queued right now (no artificial wait).
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(nxt, _Stop):
                    stopping = True
                else:
                    drained.append(nxt)
            if drained:
                self.metrics.record_dequeued(len(drained))
                for group in self._group(drained):
                    self._execute_group(group)

    def _group(self, requests: list[ServeRequest]) -> list[list[ServeRequest]]:
        """Group by (op, matrix content, operand compatibility), preserving
        arrival order, capped at ``max_batch``."""
        groups: dict[tuple, list[ServeRequest]] = {}
        ordered: list[list[ServeRequest]] = []
        for req in requests:
            # SDDMM requests share a translation but not an engine pass, so
            # their group key is unique per request.
            if req.op == "spmm":
                key = (req.op, req.key, req.b.shape[0])
            else:
                key = (req.op, req.key, id(req))
            bucket = groups.get(key)
            if bucket is None or len(bucket) >= self.max_batch:
                bucket = []
                groups[key] = bucket
                ordered.append(bucket)
            bucket.append(req)
        return ordered

    # ------------------------------------------------------------ execution
    def _plan_for(self, fmt: BlockedVectorFormat, op: str, width: int) -> ServePlan:
        key = (op, id(fmt), width)
        entry = self._plans.get(key)
        # The pinned fmt reference both prevents id-reuse aliasing (a GC'd
        # format's id recycled by a different matrix) and is verified anyway.
        if entry is not None and entry[0] is fmt:
            return entry[1]
        planner = plan_spmm if op == "spmm" else plan_sddmm
        kwargs = {"workers": self.requested_workers}
        if self.workspace_fraction is not None:
            kwargs["workspace_fraction"] = self.workspace_fraction
        plan = planner(fmt, width, device=self.device, precision=self.precision, **kwargs)
        if len(self._plans) > 256:
            self._plans.clear()
        self._plans[key] = (fmt, plan)
        return plan

    def _execute_group(self, group: list[ServeRequest]) -> None:
        try:
            if group[0].op == "spmm":
                self._execute_spmm_group(group)
            else:
                self._execute_sddmm(group[0])
        except Exception as exc:
            now = time.perf_counter()
            for req in group:
                if not req.future.done():
                    req.future.set_exception(exc)
                    self.metrics.record_failed(now - req.submitted_at)

    def _execute_spmm_group(self, group: list[ServeRequest]) -> None:
        fmt = cached_mebcrs(group[0].csr, self.precision, by_content=True)
        widths = [req.b.shape[1] for req in group]
        n_total = sum(widths)
        self.metrics.record_batch(len(group))
        # One quantised concatenated operand → one gather in the engine.
        b_cat = np.concatenate([req.b for req in group], axis=1) if len(group) > 1 else group[0].b
        b_q = quantize(b_cat, self.precision).astype(np.float32)
        plan = self._plan_for(fmt, "spmm", n_total)
        out = self.scheduler.run_spmm(
            fmt, b_q, self.precision, target_blocks=plan.block_chunk
        )
        offset = 0
        now = time.perf_counter()
        for req, width in zip(group, widths):
            values = np.ascontiguousarray(out[:, offset : offset + width])
            offset += width
            counter = spmm_flash_cost(
                fmt, width, FlashSparseConfig(precision=self.precision)
            )
            result = SpmmResult(
                values=values,
                counter=counter,
                useful_flops=spmm_useful_flops(fmt.nnz, width),
                meta={
                    "engine": "serve",
                    "workers": self.scheduler.workers,
                    "batched_with": len(group) - 1,
                    "plan": plan,
                },
            )
            req.future.set_result(result)
            self.metrics.record_completed(now - req.submitted_at)

    def _execute_sddmm(self, req: ServeRequest) -> None:
        fmt = cached_mebcrs(req.csr, self.precision, by_content=True)
        self.metrics.record_batch(1)
        k_dense = req.a.shape[1]
        a_q = quantize(req.a, self.precision).astype(np.float32)
        b_q = quantize(req.b, self.precision).astype(np.float32)
        plan = self._plan_for(fmt, "sddmm", k_dense)
        out_values = self.scheduler.run_sddmm(
            fmt,
            a_q,
            b_q,
            self.precision,
            VECTORS_PER_OUTPUT_BLOCK,
            scale_by_mask=req.scale_by_mask,
            target_blocks=plan.block_chunk,
        )
        output = BlockedVectorFormat(
            partition=fmt.partition,
            vector_values=out_values,
            k=fmt.k,
            precision=Precision.FP32,
            format_name=f"{fmt.format_name}-sddmm-out",
        )
        counter = sddmm_flash_cost(fmt, k_dense, FlashSparseConfig(precision=self.precision))
        result = SddmmResult(
            output=output,
            counter=counter,
            useful_flops=sddmm_useful_flops(fmt.nnz, k_dense),
            meta={
                "engine": "serve",
                "workers": self.scheduler.workers,
                "scale_by_mask": req.scale_by_mask,
                "plan": plan,
            },
        )
        req.future.set_result(result)
        self.metrics.record_completed(time.perf_counter() - req.submitted_at)
