"""Serving frontend: concurrent requests, same-matrix batching, futures.

The :class:`Server` is the request path of the serving subsystem (the shape
follows DGL's graph-serving frontends: clients submit into a queue and get
futures; a dispatch loop drains the queue, groups compatible requests and
executes them on the shared backend):

* clients call :meth:`Server.submit_spmm` / :meth:`Server.submit_sddmm`
  from any thread and receive a :class:`concurrent.futures.Future`;
* one dispatch thread drains the queue and groups requests by operation and
  :meth:`~repro.formats.csr.CSRMatrix.content_key` — same-matrix SpMM
  requests are concatenated column-wise and run as **one** engine pass, so
  they share one cached translation (content-keyed: serving payloads are
  deserialised fresh per request) and one dense-operand gather.  The
  concatenation is numerically invisible: the engine's batched 3-D matmuls
  and window reductions act per output element along the dense axis, so the
  split results are bit-identical to running each request alone;
* execution honours a :class:`~repro.serve.planner.ServePlan` — derived per
  (matrix, width) from the server's device budget and memoised in a small
  LRU — and runs on the multi-process
  :class:`~repro.serve.scheduler.ShardScheduler` when the server has
  workers, inline otherwise;
* every request resolves with a result carrying the same ``values`` /
  ``counter`` / ``useful_flops`` a direct :func:`repro.core.api.spmm` call
  would produce: cost counters come from the closed-form cost pass, which
  is exactly independent of batching and sharding.

Overload behaviour
------------------
The server is designed to stay well-behaved when offered load exceeds
capacity (the open-loop regime ``benchmarks/bench_serve_openloop.py``
measures):

* **Bounded admission** — ``max_queue_depth`` caps the number of queued
  (not-yet-dispatched) requests.  The per-server ``admission`` policy picks
  what happens at the cap: ``"block"`` parks the submitting thread until a
  slot frees (closed-loop clients self-throttle), ``"reject"`` fails fast
  with :class:`~repro.serve.errors.ServerOverloadedError` (open-loop
  traffic is turned away at the door instead of growing the queue without
  bound).
* **Request deadlines** — ``submit_*(..., timeout=s)`` attaches a deadline.
  A request whose deadline has passed when the dispatcher picks it up (or
  when its group finally reaches execution) is failed with
  :class:`~repro.serve.errors.ServeTimeoutError` *before* the engine runs:
  under overload the server sheds queued work whose client has given up
  rather than burning capacity on dead results.
* **Crash containment** — the dispatch loop is guarded end to end.  If it
  dies outside the per-group execution guard, every queued and in-batch
  future is failed with
  :class:`~repro.serve.errors.DispatcherCrashedError` (original error as
  ``__cause__``), :attr:`Server.healthy` flips to ``False`` and later
  submits fail fast — no future is ever silently stranded.
* **Drain-aware shutdown** — the dispatcher owns the scheduler teardown:
  the pool is closed only after the dispatch loop has drained (or
  crashed), never out from under an in-flight batch.  ``close(wait=True)``
  joins the dispatcher; give it a ``timeout`` to bound the wait, and the
  expiry is surfaced as :class:`~repro.serve.errors.ServeTimeoutError`
  (the drain keeps running — call ``close`` again to keep waiting).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.core.api import SddmmResult, SpmmResult, _as_input
from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs
from repro.gpu.device import GPUSpec, get_device
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import (
    VECTORS_PER_OUTPUT_BLOCK,
    sddmm_flash_cost,
)
from repro.kernels.spmm_flash import spmm_flash_cost
from repro.perfmodel.model import sddmm_useful_flops, spmm_useful_flops
from repro.precision.types import Precision, quantize
from repro.serve.errors import (
    DispatcherCrashedError,
    ServeTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.metrics import MetricsSnapshot, ServeMetrics
from repro.serve.planner import MAX_PLANNED_WORKERS, ServePlan, plan_sddmm, plan_spmm
from repro.serve.scheduler import ShardScheduler
from repro.utils.validation import check_dense_matrix

#: Most requests coalesced into one engine pass.  Bounds both the
#: concatenated dense width and how long an early request waits for the
#: batch to fill (the dispatch loop never waits — it batches whatever is
#: already queued — so this is a width cap, not a time window).
DEFAULT_MAX_BATCH = 8

#: Memoised (format, op, width) → plan entries kept per server.  Eviction is
#: LRU (mirroring :class:`~repro.formats.cache.TranslationCache`): a hot
#: plan — the same graph served at the same width on every request — stays
#: resident however many cold one-off widths pass through.
PLAN_CACHE_CAPACITY = 256

#: Admission policies for a full queue (see :class:`Server`).
ADMISSION_POLICIES = ("block", "reject")


@dataclass
class ServeRequest:
    """One queued operation (internal to the server)."""

    op: str
    csr: object  # CSRMatrix
    key: str  # content key — the batching handle
    b: np.ndarray
    a: np.ndarray | None = None
    scale_by_mask: bool = False
    future: Future | None = None
    submitted_at: float = 0.0
    #: Absolute ``perf_counter`` deadline; ``None`` means wait forever.
    deadline: float | None = None
    dequeued_at: float = 0.0


@dataclass
class _Stop:
    """Queue sentinel that wakes the dispatch loop for shutdown."""


class Server:
    """Multi-process sharded SpMM/SDDMM server.

    Parameters
    ----------
    device:
        Device name or :class:`GPUSpec`; its memory capacity drives the
        planner.  ``None`` serves without a memory budget (one-shot plans).
    precision:
        Kernel precision for every request (``"fp16"`` or ``"tf32"``).
    workers:
        Worker processes for the shard scheduler.  ``None`` lets the
        planner choose per request (up to ``min(cpu_count, 8)``); ``1``
        forces inline execution — the reference configuration the parity
        suite compares against.
    max_batch:
        Maximum same-matrix requests coalesced into one engine pass.
    retries:
        Per-shard retry budget of the scheduler.
    max_queue_depth:
        Cap on queued (not-yet-dispatched) requests.  ``None`` (default)
        leaves admission unbounded — the pre-overload-hardening behaviour,
        only sensible for trusted closed-loop clients.
    admission:
        Policy at the queue cap: ``"block"`` parks the submitter until a
        slot frees, ``"reject"`` raises
        :class:`~repro.serve.errors.ServerOverloadedError` immediately.

    Attributes
    ----------
    healthy:
        ``False`` once the dispatch thread has died; every pending future
        has then been failed with
        :class:`~repro.serve.errors.DispatcherCrashedError` and new
        submits raise the same.
    """

    def __init__(
        self,
        device: str | GPUSpec | None = None,
        precision: Precision | str = Precision.FP16,
        workers: int | None = None,
        workspace_fraction: float | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        retries: int | None = None,
        start_method: str | None = None,
        max_queue_depth: int | None = None,
        admission: str = "block",
    ):
        self.device = device if (device is None or isinstance(device, GPUSpec)) else get_device(device)
        self.precision = Precision(precision)
        self.requested_workers = workers
        self.workspace_fraction = workspace_fraction
        self.max_batch = max(1, int(max_batch))
        if admission not in ADMISSION_POLICIES:
            raise ValueError(f"admission must be one of {ADMISSION_POLICIES}, got {admission!r}")
        if max_queue_depth is not None and int(max_queue_depth) < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self.admission = admission
        self.metrics = ServeMetrics()
        sched_kwargs = {} if retries is None else {"retries": retries}
        # Pool size: the planner may use fewer workers per request, never
        # more than the pool holds.
        pool_size = workers if workers is not None else min(os.cpu_count() or 1, MAX_PLANNED_WORKERS)
        self.scheduler = ShardScheduler(
            workers=pool_size, start_method=start_method, **sched_kwargs
        )
        self._plans: "OrderedDict[tuple, tuple[BlockedVectorFormat, ServePlan]]" = OrderedDict()
        self._plan_capacity = PLAN_CACHE_CAPACITY
        self._queue: "queue.SimpleQueue[ServeRequest | _Stop]" = queue.SimpleQueue()
        # Serialises submit vs close vs crash: nothing can enter the queue
        # after the _Stop sentinel (or after the crash handler drained it),
        # so no future can be stranded by a shutdown race.  The condition
        # doubles as the admission gate "block" submitters wait on.
        self._submit_lock = threading.Lock()
        self._admission = threading.Condition(self._submit_lock)
        self._queued = 0  # authoritative queue depth for admission
        self._closed = False
        self.healthy = True
        self._crash_cause: BaseException | None = None
        #: Requests drained from the queue but not yet executed — visible to
        #: the crash handler so a fault between drain and execution cannot
        #: strand them.
        self._in_dispatch: list[ServeRequest] = []
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ----------------------------------------------------------- client API
    def submit_spmm(self, matrix, b: np.ndarray, timeout: float | None = None):
        """Enqueue ``matrix @ b``; returns a Future of :class:`SpmmResult`.

        ``timeout`` (seconds) is a queueing deadline: if the request is
        still waiting for dispatch when it expires, the server sheds it and
        the future raises :class:`~repro.serve.errors.ServeTimeoutError`.
        """
        inp = _as_input(matrix)
        b = check_dense_matrix(np.asarray(b), "b", n_rows=inp.shape[1])
        return self._enqueue(
            ServeRequest(op="spmm", csr=inp.csr, key=inp.csr.content_key(), b=b),
            timeout,
        )

    def submit_sddmm(
        self,
        mask,
        a: np.ndarray,
        b: np.ndarray,
        scale_by_mask: bool = False,
        timeout: float | None = None,
    ):
        """Enqueue a sampled dense×dense; returns a Future of
        :class:`SddmmResult`.  ``timeout`` as for :meth:`submit_spmm`."""
        inp = _as_input(mask)
        a = check_dense_matrix(np.asarray(a), "a", n_rows=inp.shape[0])
        b = check_dense_matrix(np.asarray(b), "b", n_rows=inp.shape[1])
        if a.shape[1] != b.shape[1]:
            raise ValueError("a and b must share the inner dimension K")
        return self._enqueue(
            ServeRequest(
                op="sddmm",
                csr=inp.csr,
                key=inp.csr.content_key(),
                b=b,
                a=a,
                scale_by_mask=scale_by_mask,
            ),
            timeout,
        )

    def _check_open(self) -> None:
        """Raise if the server cannot take this request (lock held)."""
        if self._closed:
            raise ServerClosedError("server is closed")
        if not self.healthy:
            err = DispatcherCrashedError("serve dispatcher has crashed; server is unhealthy")
            err.__cause__ = self._crash_cause
            raise err

    def _enqueue(self, req: ServeRequest, timeout: float | None) -> Future:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None for no deadline)")
        req.future = Future()
        req.submitted_at = time.perf_counter()
        if timeout is not None:
            req.deadline = req.submitted_at + timeout
        with self._admission:
            self._check_open()
            if self.max_queue_depth is not None and self._queued >= self.max_queue_depth:
                if self.admission == "reject":
                    self.metrics.record_rejected()
                    raise ServerOverloadedError(
                        f"queue full ({self._queued}/{self.max_queue_depth} requests queued)"
                    )
                while self._queued >= self.max_queue_depth:
                    self._admission.wait()
                    self._check_open()
            self._queued += 1
            self.metrics.record_submitted()
            self._queue.put(req)
        return req.future

    def snapshot(self) -> MetricsSnapshot:
        """Current metrics (see :mod:`repro.serve.metrics`)."""
        return self.metrics.snapshot(
            scheduler=self.scheduler.stats_snapshot(),
            workers=self.scheduler.workers,
            healthy=self.healthy,
        )

    def close(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting requests and drain the queue.

        The dispatch thread shuts the worker pool down itself once the
        drain finishes, so an in-flight batch is never separated from its
        pool.  With ``wait=True`` (default) this call joins the dispatcher:
        ``timeout=None`` waits for the full drain; a numeric timeout bounds
        the wait and raises :class:`~repro.serve.errors.ServeTimeoutError`
        if the drain is still running when it expires (the drain continues
        in the background — call ``close`` again to keep waiting).
        """
        with self._admission:
            if not self._closed:
                self._closed = True
                self._queue.put(_Stop())
            # Wake "block"-policy submitters parked at the admission gate so
            # they observe the close and raise instead of waiting forever.
            self._admission.notify_all()
        if wait:
            self._dispatcher.join(timeout)
            if self._dispatcher.is_alive():
                raise ServeTimeoutError(
                    f"serve dispatcher still draining after {timeout}s; "
                    "the pool stays up until the drain completes — "
                    "call close() again to keep waiting"
                )

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------- dispatch loop
    def _dispatch_loop(self) -> None:
        try:
            self._run_dispatch()
        except BaseException as exc:  # crash guard: never strand a future
            self._handle_crash(exc)
        finally:
            # The dispatcher owns pool teardown: this runs only after the
            # loop has drained (or crashed), never under a running batch.
            self.scheduler.close()

    def _run_dispatch(self) -> None:
        stopping = False
        while not stopping:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            drained: list[ServeRequest] = []
            if isinstance(first, _Stop):
                stopping = True
            else:
                drained.append(first)
            # Batch whatever is queued right now (no artificial wait).
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(nxt, _Stop):
                    stopping = True
                else:
                    drained.append(nxt)
            if not drained:
                continue
            self._in_dispatch = drained
            now = time.perf_counter()
            for req in drained:
                req.dequeued_at = now
            self.metrics.record_dequeued(len(drained))
            with self._admission:
                self._queued -= len(drained)
                self._admission.notify_all()
            for group in self._group(self._shed_expired(drained, now)):
                self._execute_group(group)
            self._in_dispatch = []

    def _shed_expired(self, requests: list[ServeRequest], now: float) -> list[ServeRequest]:
        """Fail deadline-expired requests before execution; return the rest."""
        live: list[ServeRequest] = []
        for req in requests:
            if req.deadline is None or now <= req.deadline:
                live.append(req)
            elif not req.future.done():
                waited = now - req.submitted_at
                req.future.set_exception(
                    ServeTimeoutError(
                        f"request shed: deadline exceeded after {waited:.3f}s in queue"
                    )
                )
                self.metrics.record_timed_out(waited)
            # Expired *and* already resolved (e.g. client-cancelled while
            # queued): drop it — executing would set_result on a done future.
        return live

    def _handle_crash(self, exc: BaseException) -> None:
        """Fail every pending future and flip :attr:`healthy` (crash path)."""
        with self._admission:
            self.healthy = False
            self._crash_cause = exc
            stranded = list(self._in_dispatch)
            self._in_dispatch = []
            from_queue = 0
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if not isinstance(nxt, _Stop):
                    stranded.append(nxt)
                    from_queue += 1
            self._queued = 0
            # Wake blocked submitters: they re-check and see the crash.
            self._admission.notify_all()
        now = time.perf_counter()
        failed: list[ServeRequest] = []
        for req in stranded:
            if req.future.done():
                # Already resolved (completed or shed) before the crash —
                # its terminal outcome is counted; don't double-count.
                continue
            err = DispatcherCrashedError("serve dispatcher crashed; request abandoned")
            err.__cause__ = exc
            req.future.set_exception(err)
            failed.append(req)
        # Metrics last, and guarded: the crash may *be* a metrics fault, and
        # accounting must never keep a future from resolving.
        try:
            if from_queue:
                self.metrics.record_dequeued(from_queue)
            for req in failed:
                self.metrics.record_failed(now - req.submitted_at)
        except Exception:
            pass

    def _group(self, requests: list[ServeRequest]) -> list[list[ServeRequest]]:
        """Group by (op, matrix content, operand compatibility), preserving
        arrival order, capped at ``max_batch``."""
        groups: dict[tuple, list[ServeRequest]] = {}
        ordered: list[list[ServeRequest]] = []
        for req in requests:
            # SDDMM requests share a translation but not an engine pass, so
            # their group key is unique per request.
            if req.op == "spmm":
                key = (req.op, req.key, req.b.shape[0])
            else:
                key = (req.op, req.key, id(req))
            bucket = groups.get(key)
            if bucket is None or len(bucket) >= self.max_batch:
                bucket = []
                groups[key] = bucket
                ordered.append(bucket)
            bucket.append(req)
        return ordered

    # ------------------------------------------------------------ execution
    def _plan_for(self, fmt: BlockedVectorFormat, op: str, width: int) -> ServePlan:
        key = (op, id(fmt), width)
        entry = self._plans.get(key)
        # The pinned fmt reference both prevents id-reuse aliasing (a GC'd
        # format's id recycled by a different matrix) and is verified anyway.
        if entry is not None and entry[0] is fmt:
            self._plans.move_to_end(key)
            return entry[1]
        planner = plan_spmm if op == "spmm" else plan_sddmm
        kwargs = {"workers": self.requested_workers}
        if self.workspace_fraction is not None:
            kwargs["workspace_fraction"] = self.workspace_fraction
        plan = planner(fmt, width, device=self.device, precision=self.precision, **kwargs)
        self._plans[key] = (fmt, plan)
        self._plans.move_to_end(key)
        while len(self._plans) > self._plan_capacity:
            self._plans.popitem(last=False)
        return plan

    def _execute_group(self, group: list[ServeRequest]) -> None:
        # Re-check deadlines at execution time: earlier groups of the same
        # drain may have pushed this one past its requests' deadlines.
        group = self._shed_expired(group, time.perf_counter())
        if not group:
            return
        try:
            if group[0].op == "spmm":
                self._execute_spmm_group(group)
            else:
                self._execute_sddmm(group[0])
        except Exception as exc:
            now = time.perf_counter()
            for req in group:
                if not req.future.done():
                    req.future.set_exception(exc)
                    self.metrics.record_failed(now - req.submitted_at)

    def _record_done(self, req: ServeRequest, now: float) -> None:
        self.metrics.record_completed(
            now - req.submitted_at,
            queue_wait_s=req.dequeued_at - req.submitted_at,
            execution_s=now - req.dequeued_at,
        )

    def _execute_spmm_group(self, group: list[ServeRequest]) -> None:
        fmt = cached_mebcrs(group[0].csr, self.precision, by_content=True)
        widths = [req.b.shape[1] for req in group]
        n_total = sum(widths)
        self.metrics.record_batch(len(group))
        # One quantised concatenated operand → one gather in the engine.
        b_cat = np.concatenate([req.b for req in group], axis=1) if len(group) > 1 else group[0].b
        b_q = quantize(b_cat, self.precision).astype(np.float32)
        plan = self._plan_for(fmt, "spmm", n_total)
        out = self.scheduler.run_spmm(
            fmt, b_q, self.precision, target_blocks=plan.block_chunk
        )
        offset = 0
        now = time.perf_counter()
        for req, width in zip(group, widths):
            values = np.ascontiguousarray(out[:, offset : offset + width])
            offset += width
            counter = spmm_flash_cost(
                fmt, width, FlashSparseConfig(precision=self.precision)
            )
            result = SpmmResult(
                values=values,
                counter=counter,
                useful_flops=spmm_useful_flops(fmt.nnz, width),
                meta={
                    "engine": "serve",
                    "workers": self.scheduler.workers,
                    "batched_with": len(group) - 1,
                    "plan": plan,
                },
            )
            req.future.set_result(result)
            self._record_done(req, now)

    def _execute_sddmm(self, req: ServeRequest) -> None:
        fmt = cached_mebcrs(req.csr, self.precision, by_content=True)
        self.metrics.record_batch(1)
        k_dense = req.a.shape[1]
        a_q = quantize(req.a, self.precision).astype(np.float32)
        b_q = quantize(req.b, self.precision).astype(np.float32)
        plan = self._plan_for(fmt, "sddmm", k_dense)
        out_values = self.scheduler.run_sddmm(
            fmt,
            a_q,
            b_q,
            self.precision,
            VECTORS_PER_OUTPUT_BLOCK,
            scale_by_mask=req.scale_by_mask,
            target_blocks=plan.block_chunk,
        )
        output = BlockedVectorFormat(
            partition=fmt.partition,
            vector_values=out_values,
            k=fmt.k,
            precision=Precision.FP32,
            format_name=f"{fmt.format_name}-sddmm-out",
        )
        counter = sddmm_flash_cost(fmt, k_dense, FlashSparseConfig(precision=self.precision))
        result = SddmmResult(
            output=output,
            counter=counter,
            useful_flops=sddmm_useful_flops(fmt.nnz, k_dense),
            meta={
                "engine": "serve",
                "workers": self.scheduler.workers,
                "scale_by_mask": req.scale_by_mask,
                "plan": plan,
            },
        )
        req.future.set_result(result)
        self._record_done(req, time.perf_counter())
