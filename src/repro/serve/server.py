"""Serving frontend: concurrent requests, same-matrix batching, futures.

The :class:`Server` is the request path of the serving subsystem (the shape
follows DGL's graph-serving frontends: clients submit into a queue and get
futures; a dispatch loop drains the queue, groups compatible requests and
executes them on the shared backend):

* clients call :meth:`Server.submit_spmm` / :meth:`Server.submit_sddmm`
  from any thread and receive a :class:`concurrent.futures.Future`;
* one dispatch thread drains the queue and groups requests by operation and
  :meth:`~repro.formats.csr.CSRMatrix.content_key` — same-matrix SpMM
  requests are concatenated column-wise and run as **one** engine pass, so
  they share one cached translation (content-keyed: serving payloads are
  deserialised fresh per request) and one dense-operand gather.  The
  concatenation is numerically invisible: the engine's batched 3-D matmuls
  and window reductions act per output element along the dense axis, so the
  split results are bit-identical to running each request alone;
* execution honours a :class:`~repro.serve.planner.ServePlan` — derived per
  (matrix, width) from the server's device budget and memoised in a small
  LRU — and runs on the multi-process
  :class:`~repro.serve.scheduler.ShardScheduler` when the server has
  workers, inline otherwise;
* every request resolves with a result carrying the same ``values`` /
  ``counter`` / ``useful_flops`` a direct :func:`repro.core.api.spmm` call
  would produce: cost counters come from the closed-form cost pass, which
  is exactly independent of batching and sharding.

Overload behaviour
------------------
The server is designed to stay well-behaved when offered load exceeds
capacity (the open-loop regime ``benchmarks/bench_serve_openloop.py``
measures):

* **Bounded admission** — ``max_queue_depth`` caps the number of queued
  (not-yet-dispatched) requests.  The per-server ``admission`` policy picks
  what happens at the cap: ``"block"`` parks the submitting thread until a
  slot frees (closed-loop clients self-throttle), ``"reject"`` fails fast
  with :class:`~repro.serve.errors.ServerOverloadedError` (open-loop
  traffic is turned away at the door instead of growing the queue without
  bound).
* **Request deadlines** — ``submit_*(..., timeout=s)`` attaches a deadline.
  A request whose deadline has passed when the dispatcher picks it up (or
  when its group finally reaches execution) is failed with
  :class:`~repro.serve.errors.ServeTimeoutError` *before* the engine runs:
  under overload the server sheds queued work whose client has given up
  rather than burning capacity on dead results.
* **Crash containment** — the dispatch loop is guarded end to end.  If it
  dies outside the per-group execution guard, every queued and in-batch
  future is failed with
  :class:`~repro.serve.errors.DispatcherCrashedError` (original error as
  ``__cause__``), :attr:`Server.healthy` flips to ``False`` and later
  submits fail fast — no future is ever silently stranded.
* **Drain-aware shutdown** — the dispatcher owns the scheduler teardown:
  the pool is closed only after the dispatch loop has drained (or
  crashed), never out from under an in-flight batch.  ``close(wait=True)``
  joins the dispatcher; give it a ``timeout`` to bound the wait, and the
  expiry is surfaced as :class:`~repro.serve.errors.ServeTimeoutError`
  (the drain keeps running — call ``close`` again to keep waiting).

Priority-aware dispatch
-----------------------
Dispatch order is no longer FIFO.  The dispatcher keeps drained requests
in a pending buffer and, each round, picks the group led by the best
request under ``(priority desc, deadline asc, arrival)`` — i.e. strict
priority classes (``submit_*(..., priority=)``, higher runs first) with
**earliest-deadline-first** inside a class and FIFO as the tie-break.
Because the buffer is re-drained and re-ordered between groups, a
high-priority request submitted while a long batch runs overtakes every
lower-priority request still waiting.  Same-matrix batching still applies
within the picked group, so a low-priority sibling can ride along with a
high-priority request for free.

Cost-aware load shedding
------------------------
The planner knows a request's useful FLOPs (``2·nnz·width``) at submit
time, so under overload the server sheds *smart*: when the pending buffer
exceeds ``shed_watermark``, the most expensive queued requests are failed
with :class:`~repro.serve.errors.ServeShedError` until the buffer is back
at the watermark.  Shedding one huge request frees as much capacity as
shedding dozens of small ones, and the small ones are the majority of
waiting clients.

Cluster backend
---------------
``backend="cluster"`` swaps the in-process
:class:`~repro.serve.scheduler.ShardScheduler` for the multi-host
:class:`~repro.cluster.head.ClusterScheduler` (``hosts`` loopback worker
subprocesses; real deployments pass addresses through
``cluster_options``).  Admission, deadlines, priorities, shedding, the
crash guard and :class:`~repro.serve.metrics.ServeMetrics` apply
unchanged; groups execute on a small thread pool (``group_concurrency``,
default = host count) so independent matrices keep every host busy, and
host death below the scheduler is recovered by shard failover — the
server stays ``healthy`` through it.
"""

from __future__ import annotations

import hashlib
import math
import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.api import SddmmResult, SpmmResult, _as_input
from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs
from repro.gpu.device import GPUSpec, get_device
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import (
    VECTORS_PER_OUTPUT_BLOCK,
    sddmm_flash_cost,
)
from repro.kernels.spmm_flash import spmm_flash_cost
from repro.ops import segment_softmax
from repro.perfmodel.model import sddmm_useful_flops, spmm_useful_flops
from repro.precision.types import Precision, quantize
from repro.serve.errors import (
    DispatcherCrashedError,
    ServeShedError,
    ServeTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.metrics import MetricsSnapshot, ServeMetrics
from repro.serve.planner import MAX_PLANNED_WORKERS, ServePlan, plan_sddmm, plan_spmm
from repro.serve.program import (
    EdgeSoftmaxResult,
    LayerProgram,
    LayerResult,
    SegmentMatmulResult,
)
from repro.serve.scheduler import ShardScheduler
from repro.utils.validation import check_dense_matrix

#: Most requests coalesced into one engine pass.  Bounds both the
#: concatenated dense width and how long an early request waits for the
#: batch to fill (the dispatch loop never waits — it batches whatever is
#: already queued — so this is a width cap, not a time window).
DEFAULT_MAX_BATCH = 8

#: Memoised (format, op, width) → plan entries kept per server.  Eviction is
#: LRU (mirroring :class:`~repro.formats.cache.TranslationCache`): a hot
#: plan — the same graph served at the same width on every request — stays
#: resident however many cold one-off widths pass through.
PLAN_CACHE_CAPACITY = 256

#: Admission policies for a full queue (see :class:`Server`).
ADMISSION_POLICIES = ("block", "reject")

#: Execution backends (see :class:`Server`).
BACKENDS = ("local", "cluster")


def _edge_softmax_useful_flops(nnz: int) -> int:
    """Per-edge softmax work: max, subtract, exp, sum, divide — ~5/edge."""
    return 5 * int(nnz)


@dataclass
class ServeRequest:
    """One queued operation (internal to the server)."""

    op: str
    csr: object  # CSRMatrix (None for pattern-free ops, e.g. segmm)
    key: str  # content key — the batching handle
    b: np.ndarray
    a: np.ndarray | None = None
    scale_by_mask: bool = False
    #: Aggregation panel of a fused layer request (``submit_layer``).
    x: np.ndarray | None = None
    #: Folded scalar applied to the layer's logits before the softmax.
    scale: float | None = None
    #: Segment boundaries / per-segment weights of a ``segmm`` request.
    offsets: np.ndarray | None = None
    weights: np.ndarray | None = None
    #: Coalescing handle of a layer request: layers agree on everything
    #: but the ``x`` panel exactly when their tokens match.
    group_token: str = ""
    future: Future | None = None
    submitted_at: float = 0.0
    #: Absolute ``perf_counter`` deadline; ``None`` means wait forever.
    deadline: float | None = None
    dequeued_at: float = 0.0
    #: Dispatch class: higher priorities execute first; EDF inside a class.
    priority: int = 0
    #: Arrival sequence number — the FIFO tie-break of the dispatch order.
    seq: int = 0
    #: Predicted useful FLOPs (``2·nnz·width``) — the cost-shedding key.
    cost: float = 0.0
    #: Whether dequeue accounting already ran for this request (crash-path
    #: bookkeeping: stranded requests must be dequeue-accounted exactly once).
    dequeued: bool = False
    #: Whether the cancellation counter already saw this request (several
    #: drop sites can observe the same cancelled future).
    cancel_accounted: bool = False
    #: Whether the aging counter already saw this request cross a full
    #: half-life of queue wait (each promotion is counted once).
    aged_accounted: bool = False

    def dispatch_order(
        self, now: float | None = None, aging_halflife_s: float | None = None
    ) -> tuple:
        """Sort key: priority class desc, then EDF, then arrival order.

        With aging enabled, the class is the *effective* priority: the
        static class plus one for every ``aging_halflife_s`` the request
        has waited.  The boost is continuous, so within a starved class
        the longest-waiting request climbs first, and any request
        eventually outranks a sustained flood of strictly higher static
        priority — bounded starvation instead of no guarantee.
        """
        priority = float(self.priority)
        if aging_halflife_s is not None and now is not None:
            priority += max(0.0, now - self.submitted_at) / aging_halflife_s
        deadline = math.inf if self.deadline is None else self.deadline
        return (-priority, deadline, self.seq)


@dataclass
class _Stop:
    """Queue sentinel that wakes the dispatch loop for shutdown."""


class Server:
    """Multi-process sharded SpMM/SDDMM server.

    Parameters
    ----------
    device:
        Device name or :class:`GPUSpec`; its memory capacity drives the
        planner.  ``None`` serves without a memory budget (one-shot plans).
    precision:
        Kernel precision for every request (``"fp16"`` or ``"tf32"``).
    workers:
        Worker processes for the shard scheduler.  ``None`` lets the
        planner choose per request (up to ``min(cpu_count, 8)``); ``1``
        forces inline execution — the reference configuration the parity
        suite compares against.
    max_batch:
        Maximum same-matrix requests coalesced into one engine pass.
    retries:
        Per-shard retry budget of the scheduler.
    max_queue_depth:
        Cap on queued (not-yet-dispatched) requests.  ``None`` (default)
        leaves admission unbounded — the pre-overload-hardening behaviour,
        only sensible for trusted closed-loop clients.
    admission:
        Policy at the queue cap: ``"block"`` parks the submitter until a
        slot frees, ``"reject"`` raises
        :class:`~repro.serve.errors.ServerOverloadedError` immediately.
    backend:
        ``"local"`` (default): the in-process multi-`worker`
        :class:`~repro.serve.scheduler.ShardScheduler`.  ``"cluster"``:
        the multi-host :class:`~repro.cluster.head.ClusterScheduler`
        with ``hosts`` loopback worker subprocesses.
    hosts:
        Worker-host count for ``backend="cluster"`` (default 1; ``0``
        degrades to in-parent execution).  The planner divides the device
        memory budget across hosts.
    shed_watermark:
        Soft cap on the dispatcher's pending buffer: above it, the most
        expensive pending requests (by predicted FLOPs) are shed with
        :class:`~repro.serve.errors.ServeShedError` until the buffer is
        back at the watermark.  ``None`` (default) disables cost shedding.
    group_concurrency:
        Request groups executed concurrently (on a thread pool inside the
        dispatcher).  Defaults to 1 for ``backend="local"`` — the strict
        sequential order the latency accounting assumes — and to the host
        count for ``backend="cluster"``, where independent matrices route
        to different hosts and would otherwise idle them.
    aging_halflife_s:
        Priority aging: every queued request gains one effective priority
        class per ``aging_halflife_s`` seconds waited, so a sustained
        flood of high-priority traffic cannot starve lower classes
        indefinitely (promotions are counted in ``requests_aged``).
        ``None`` (default) keeps strict static classes.
    cluster_options:
        Extra keyword arguments for the
        :class:`~repro.cluster.head.ClusterScheduler` (heartbeat knobs,
        explicit worker ``addresses=[(host, port), ...]``).

    Attributes
    ----------
    healthy:
        ``False`` once the dispatch thread has died; every pending future
        has then been failed with
        :class:`~repro.serve.errors.DispatcherCrashedError` and new
        submits raise the same.
    """

    def __init__(
        self,
        device: str | GPUSpec | None = None,
        precision: Precision | str = Precision.FP16,
        workers: int | None = None,
        workspace_fraction: float | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        retries: int | None = None,
        start_method: str | None = None,
        max_queue_depth: int | None = None,
        admission: str = "block",
        backend: str = "local",
        hosts: int | None = None,
        shed_watermark: int | None = None,
        group_concurrency: int | None = None,
        cluster_options: dict | None = None,
        aging_halflife_s: float | None = None,
    ):
        self.device = device if (device is None or isinstance(device, GPUSpec)) else get_device(device)
        self.precision = Precision(precision)
        self.requested_workers = workers
        self.workspace_fraction = workspace_fraction
        self.max_batch = max(1, int(max_batch))
        if admission not in ADMISSION_POLICIES:
            raise ValueError(f"admission must be one of {ADMISSION_POLICIES}, got {admission!r}")
        if max_queue_depth is not None and int(max_queue_depth) < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if shed_watermark is not None and int(shed_watermark) < 1:
            raise ValueError("shed_watermark must be >= 1 (or None to disable)")
        if aging_halflife_s is not None and float(aging_halflife_s) <= 0:
            raise ValueError("aging_halflife_s must be > 0 (or None to disable aging)")
        self.aging_halflife_s = None if aging_halflife_s is None else float(aging_halflife_s)
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self.admission = admission
        self.backend = backend
        self.shed_watermark = None if shed_watermark is None else int(shed_watermark)
        self.metrics = ServeMetrics()
        if backend == "cluster":
            from repro.cluster.head import ClusterScheduler

            if retries is not None:
                # The shard-retry budget is a process-pool knob; cluster
                # recovery is failover-driven.  Reject rather than silently
                # drop the caller's expectation.
                raise ValueError('retries applies to backend="local" only')
            self.hosts = 1 if hosts is None else int(hosts)
            if self.hosts < 0:
                raise ValueError("hosts must be >= 0")
            self.scheduler = ClusterScheduler(
                hosts=self.hosts,
                start_method=start_method,
                **(cluster_options or {}),
            )
            # Explicit addresses in cluster_options override the spawn
            # count: budget division and group concurrency must follow the
            # hosts actually registered, not the requested spawn count.
            self.hosts = len(self.scheduler.hosts)
            default_concurrency = max(1, self.hosts)
        else:
            if hosts is not None:
                raise ValueError('hosts applies to backend="cluster" only')
            if cluster_options is not None:
                raise ValueError('cluster_options applies to backend="cluster" only')
            self.hosts = 1
            sched_kwargs = {} if retries is None else {"retries": retries}
            # Pool size: the planner may use fewer workers per request,
            # never more than the pool holds.
            pool_size = workers if workers is not None else min(os.cpu_count() or 1, MAX_PLANNED_WORKERS)
            self.scheduler = ShardScheduler(
                workers=pool_size, start_method=start_method, **sched_kwargs
            )
            default_concurrency = 1
        self.group_concurrency = (
            default_concurrency if group_concurrency is None else max(1, int(group_concurrency))
        )
        self._plans: "OrderedDict[tuple, tuple[BlockedVectorFormat, ServePlan]]" = OrderedDict()
        self._plan_capacity = PLAN_CACHE_CAPACITY
        self._plans_lock = threading.Lock()
        self._queue: "queue.SimpleQueue[ServeRequest | _Stop]" = queue.SimpleQueue()
        # Serialises submit vs close vs crash: nothing can enter the queue
        # after the _Stop sentinel (or after the crash handler drained it),
        # so no future can be stranded by a shutdown race.  The condition
        # doubles as the admission gate "block" submitters wait on.
        self._submit_lock = threading.Lock()
        self._admission = threading.Condition(self._submit_lock)
        self._queued = 0  # authoritative queue depth for admission
        self._seq = 0  # arrival sequence (FIFO tie-break), under the lock
        self._closed = False
        self.healthy = True
        self._crash_cause: BaseException | None = None
        #: Requests drained from the queue but not yet picked for execution
        #: (the dispatch-order buffer).  Dispatcher-thread private; the
        #: crash handler runs on the same thread.
        self._pending: list[ServeRequest] = []
        #: Requests picked into groups that are executing right now —
        #: visible to the crash handler so a fault between pick and
        #: execution cannot strand them.  Guarded by ``_dispatch_lock``
        #: (group threads remove entries when concurrency > 1).
        self._in_dispatch: list[ServeRequest] = []
        self._dispatch_lock = threading.Lock()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ----------------------------------------------------------- client API
    def submit_spmm(
        self,
        matrix,
        b: np.ndarray,
        timeout: float | None = None,
        priority: int = 0,
    ):
        """Enqueue ``matrix @ b``; returns a Future of :class:`SpmmResult`.

        ``timeout`` (seconds) is a queueing deadline: if the request is
        still waiting for dispatch when it expires, the server sheds it and
        the future raises :class:`~repro.serve.errors.ServeTimeoutError`.
        ``priority`` picks the dispatch class (higher runs first; EDF
        within a class — see the module docstring).
        """
        inp = _as_input(matrix)
        b = check_dense_matrix(np.asarray(b), "b", n_rows=inp.shape[1])
        return self._enqueue(
            ServeRequest(
                op="spmm",
                csr=inp.csr,
                key=inp.csr.content_key(),
                b=b,
                priority=int(priority),
                cost=float(spmm_useful_flops(inp.csr.nnz, b.shape[1])),
            ),
            timeout,
        )

    def submit_sddmm(
        self,
        mask,
        a: np.ndarray,
        b: np.ndarray,
        scale_by_mask: bool = False,
        timeout: float | None = None,
        priority: int = 0,
    ):
        """Enqueue a sampled dense×dense; returns a Future of
        :class:`SddmmResult`.  ``timeout`` / ``priority`` as for
        :meth:`submit_spmm`."""
        inp = _as_input(mask)
        a = check_dense_matrix(np.asarray(a), "a", n_rows=inp.shape[0])
        b = check_dense_matrix(np.asarray(b), "b", n_rows=inp.shape[1])
        if a.shape[1] != b.shape[1]:
            raise ValueError("a and b must share the inner dimension K")
        return self._enqueue(
            ServeRequest(
                op="sddmm",
                csr=inp.csr,
                key=inp.csr.content_key(),
                b=b,
                a=a,
                scale_by_mask=scale_by_mask,
                priority=int(priority),
                cost=float(sddmm_useful_flops(inp.csr.nnz, a.shape[1])),
            ),
            timeout,
        )

    def submit_layer(
        self,
        matrix,
        a: np.ndarray,
        b: np.ndarray,
        x: np.ndarray,
        scale: float | None = None,
        scale_by_mask: bool = False,
        timeout: float | None = None,
        priority: int = 0,
    ):
        """Enqueue one whole attention layer —
        ``spmm(edge_softmax(scale · sddmm(a, b)), x)`` — as a single
        request; returns a Future of :class:`LayerResult`.

        The layer executes as one fused pass per shard (one scheduler
        round trip — and on the v4 cluster backend one wire round trip —
        instead of three), bit-identical to submitting the three kernels
        separately.  ``timeout`` / ``priority`` as for :meth:`submit_spmm`.
        Layer requests over the same matrix, logits panels and scale
        coalesce like SpMM requests: their ``x`` panels concatenate into
        one engine pass.
        """
        inp = _as_input(matrix)
        a = check_dense_matrix(np.asarray(a), "a", n_rows=inp.shape[0])
        b = check_dense_matrix(np.asarray(b), "b", n_rows=inp.shape[1])
        x = check_dense_matrix(np.asarray(x), "x", n_rows=inp.shape[1])
        if a.shape[1] != b.shape[1]:
            raise ValueError("a and b must share the inner dimension K")
        # Validates the scale up front (finite, foldable) exactly as the
        # wire program will: a bad program fails here, not in a worker.
        program = LayerProgram.attention_layer(scale=scale, scale_by_mask=scale_by_mask)
        scale, scale_by_mask = program.canonical()
        token = hashlib.blake2b(digest_size=16)
        token.update(repr((a.shape, scale, scale_by_mask)).encode())
        token.update(np.ascontiguousarray(a).tobytes())
        token.update(np.ascontiguousarray(b).tobytes())
        nnz = inp.csr.nnz
        return self._enqueue(
            ServeRequest(
                op="layer",
                csr=inp.csr,
                key=inp.csr.content_key(),
                b=b,
                a=a,
                x=x,
                scale=scale,
                scale_by_mask=scale_by_mask,
                group_token=token.hexdigest(),
                priority=int(priority),
                cost=float(
                    sddmm_useful_flops(nnz, a.shape[1])
                    + _edge_softmax_useful_flops(nnz)
                    + spmm_useful_flops(nnz, x.shape[1])
                ),
            ),
            timeout,
        )

    def submit_edge_softmax(
        self,
        matrix,
        logits: np.ndarray,
        timeout: float | None = None,
        priority: int = 0,
    ):
        """Enqueue a per-row softmax over ``matrix``'s sparsity pattern;
        returns a Future of :class:`EdgeSoftmaxResult`.

        ``logits`` is one value per stored entry, in CSR entry order.
        This is the middle leg of the *composed* layer pipeline — kept as
        a first-class request so composed serving pays its real three
        round trips and stays admission/priority-governed end to end;
        fused :meth:`submit_layer` requests never need it.
        """
        inp = _as_input(matrix)
        logits = np.ascontiguousarray(np.asarray(logits, dtype=np.float32))
        if logits.shape != (inp.csr.nnz,):
            raise ValueError(
                f"logits must have shape ({inp.csr.nnz},), got {logits.shape}"
            )
        return self._enqueue(
            ServeRequest(
                op="edge_softmax",
                csr=inp.csr,
                key=inp.csr.content_key(),
                b=logits,
                priority=int(priority),
                cost=float(_edge_softmax_useful_flops(inp.csr.nnz)),
            ),
            timeout,
        )

    def submit_segment_matmul(
        self,
        data: np.ndarray,
        offsets,
        weights,
        timeout: float | None = None,
        priority: int = 0,
    ):
        """Enqueue an RGCN-style typed linear
        (:func:`repro.ops.segment_matmul`); returns a Future of
        :class:`SegmentMatmulResult`.

        ``weights`` must be uniform-width — one ``(segments, K, N)`` stack
        is the wire format (the v4 ``segmm_task`` frame).
        """
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float32))
        if data.ndim != 2:
            raise ValueError(f"data must be a 2-D array, got ndim={data.ndim}")
        offsets = np.ascontiguousarray(np.asarray(offsets, dtype=np.int64))
        if offsets.ndim != 1 or offsets.size < 2:
            raise ValueError("offsets must be a 1-D array of segment boundaries")
        if offsets[0] != 0 or offsets[-1] != data.shape[0]:
            raise ValueError("offsets must start at 0 and end at len(data)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        stack = np.ascontiguousarray(
            np.stack([np.asarray(w, dtype=np.float32) for w in weights])
        )
        if stack.ndim != 3 or stack.shape[0] != offsets.size - 1:
            raise ValueError(
                "weights must stack to (segments, K, N) with one matrix per segment"
            )
        if stack.shape[1] != data.shape[1]:
            raise ValueError("weights K must match data's inner dimension")
        return self._enqueue(
            ServeRequest(
                op="segmm",
                csr=None,
                key="",
                b=data,
                offsets=offsets,
                weights=stack,
                priority=int(priority),
                cost=float(2 * data.shape[0] * stack.shape[1] * stack.shape[2]),
            ),
            timeout,
        )

    def _check_open(self) -> None:
        """Raise if the server cannot take this request (lock held)."""
        if self._closed:
            raise ServerClosedError("server is closed")
        if not self.healthy:
            err = DispatcherCrashedError("serve dispatcher has crashed; server is unhealthy")
            err.__cause__ = self._crash_cause
            raise err

    def _enqueue(self, req: ServeRequest, timeout: float | None) -> Future:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None for no deadline)")
        req.future = Future()
        req.submitted_at = time.perf_counter()
        if timeout is not None:
            req.deadline = req.submitted_at + timeout
        with self._admission:
            self._check_open()
            if self.max_queue_depth is not None and self._queued >= self.max_queue_depth:
                if self.admission == "reject":
                    self.metrics.record_rejected()
                    raise ServerOverloadedError(
                        f"queue full ({self._queued}/{self.max_queue_depth} requests queued)"
                    )
                while self._queued >= self.max_queue_depth:
                    self._admission.wait()
                    self._check_open()
            self._queued += 1
            self._seq += 1
            req.seq = self._seq
            self.metrics.record_submitted()
            self._queue.put(req)
        return req.future

    def snapshot(self) -> MetricsSnapshot:
        """Current metrics (see :mod:`repro.serve.metrics`)."""
        return self.metrics.snapshot(
            scheduler=self.scheduler.stats_snapshot(),
            workers=self.scheduler.workers,
            healthy=self.healthy,
        )

    @property
    def cluster(self):
        """The :class:`~repro.cluster.head.ClusterScheduler` behind a
        ``backend="cluster"`` server — the live-membership surface
        (``server.cluster.add_host(...)`` / ``server.cluster.remove_host(...)``).

        Raises :class:`ValueError` on other backends, where no cluster
        exists to administer.
        """
        if self.backend != "cluster":
            raise ValueError('cluster administration requires backend="cluster"')
        return self.scheduler

    def close(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting requests and drain the queue.

        The dispatch thread shuts the worker pool down itself once the
        drain finishes, so an in-flight batch is never separated from its
        pool.  With ``wait=True`` (default) this call joins the dispatcher:
        ``timeout=None`` waits for the full drain; a numeric timeout bounds
        the wait and raises :class:`~repro.serve.errors.ServeTimeoutError`
        if the drain is still running when it expires (the drain continues
        in the background — call ``close`` again to keep waiting).
        """
        with self._admission:
            if not self._closed:
                self._closed = True
                self._queue.put(_Stop())
            # Wake "block"-policy submitters parked at the admission gate so
            # they observe the close and raise instead of waiting forever.
            self._admission.notify_all()
        if wait:
            self._dispatcher.join(timeout)
            if self._dispatcher.is_alive():
                raise ServeTimeoutError(
                    f"serve dispatcher still draining after {timeout}s; "
                    "the pool stays up until the drain completes — "
                    "call close() again to keep waiting"
                )

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------- dispatch loop
    def _dispatch_loop(self) -> None:
        try:
            self._run_dispatch()
        except BaseException as exc:  # crash guard: never strand a future
            self._handle_crash(exc)
        finally:
            # The dispatcher owns pool teardown: this runs only after the
            # loop has drained (or crashed), never under a running batch.
            self.scheduler.close()

    def _run_dispatch(self) -> None:
        pool: ThreadPoolExecutor | None = None
        slots: threading.Semaphore | None = None
        if self.group_concurrency > 1:
            pool = ThreadPoolExecutor(
                max_workers=self.group_concurrency, thread_name_prefix="repro-serve-exec"
            )
            slots = threading.Semaphore(self.group_concurrency)
        try:
            stopping = False
            while True:
                # Top up the pending buffer.  Block only when idle: with
                # work pending the drain is a peek, so a freshly arrived
                # high-priority request joins the ordering immediately.
                stopping = self._drain_queue(block=not self._pending and not stopping) or stopping
                if not self._pending:
                    if stopping:
                        break
                    continue
                submitted = False
                if slots is not None:
                    # Reserve execution capacity *before* choosing a group:
                    # the pick below then sees every request that arrived
                    # while capacity was busy, so a late high-priority
                    # request still overtakes the waiting backlog — and
                    # requests stay admission-accounted as queued while
                    # they are genuinely waiting, not executing.
                    slots.acquire()
                    stopping = self._drain_queue(block=False) or stopping
                try:
                    now = time.perf_counter()
                    self._shed_expired_pending(now)
                    self._shed_over_watermark(now)
                    if not self._pending:
                        continue
                    # Dispatch order: priority class, then EDF, then arrival
                    # — with aging, the class is the waited-boosted one.
                    halflife = self.aging_halflife_s
                    if halflife is not None:
                        for req in self._pending:
                            if (
                                not req.aged_accounted
                                and now - req.submitted_at >= halflife
                            ):
                                req.aged_accounted = True
                                self.metrics.record_aged()
                    self._pending.sort(
                        key=lambda req: req.dispatch_order(now, halflife)
                    )
                    group = self._group(self._pending)[0]
                    chosen = {id(req) for req in group}
                    with self._dispatch_lock:
                        self._in_dispatch.extend(group)
                    self._pending = [req for req in self._pending if id(req) not in chosen]
                    self._mark_dequeued(group)
                    if pool is None:
                        try:
                            self._execute_group(group)
                        finally:
                            self._forget_dispatched(group)
                    else:
                        pool.submit(self._execute_group_tracked, group, slots)
                        submitted = True
                finally:
                    if slots is not None and not submitted:
                        slots.release()
        finally:
            # Runs before the crash handler (and before scheduler teardown):
            # in-flight groups finish against a live scheduler and resolve
            # their own futures; only then is anything stranded failed.
            if pool is not None:
                pool.shutdown(wait=True)

    def _drain_queue(self, block: bool) -> bool:
        """Move queued requests into the pending buffer; True on ``_Stop``."""
        stop_seen = False
        if block:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                return False
            if isinstance(first, _Stop):
                stop_seen = True
            else:
                self._pending.append(first)
        while True:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(nxt, _Stop):
                stop_seen = True
            else:
                self._pending.append(nxt)
        return stop_seen

    def _record_cancelled(self, req: ServeRequest) -> None:
        """Count a client-cancelled request exactly once (any drop site may
        observe it first); keeps the in-flight identity exact."""
        if req.cancel_accounted:
            return
        req.cancel_accounted = True
        try:
            self.metrics.record_cancelled()
        except Exception:  # accounting must never break execution paths
            pass

    def _account_shed_from_pending(self, req: ServeRequest) -> None:
        """Dequeue accounting for a request leaving the buffer unexecuted."""
        self.metrics.record_dequeued(1)
        req.dequeued = True
        with self._admission:
            self._queued -= 1
            self._admission.notify_all()

    def _shed_expired_pending(self, now: float) -> None:
        """Fail deadline-expired pending requests before they are picked."""
        live: list[ServeRequest] = []
        for req in self._pending:
            if req.deadline is None or now <= req.deadline:
                live.append(req)
                continue
            self._account_shed_from_pending(req)
            if not req.future.done():
                waited = now - req.submitted_at
                req.future.set_exception(
                    ServeTimeoutError(
                        f"request shed: deadline exceeded after {waited:.3f}s in queue"
                    )
                )
                self.metrics.record_timed_out(waited)
            else:
                # Expired *and* already resolved (client-cancelled while
                # queued): drop it — executing would set_result on a done
                # future — but keep the in-flight identity exact.
                self._record_cancelled(req)
        self._pending = live

    def _shed_over_watermark(self, now: float) -> None:
        """Cost-aware shedding: over the watermark, drop the most expensive
        pending requests first (the planner's FLOPs estimate is the cost)."""
        if self.shed_watermark is None or len(self._pending) <= self.shed_watermark:
            return
        excess = len(self._pending) - self.shed_watermark
        doomed = sorted(self._pending, key=lambda r: (-r.cost, r.seq))[:excess]
        doomed_ids = {id(req) for req in doomed}
        self._pending = [req for req in self._pending if id(req) not in doomed_ids]
        for req in doomed:
            self._account_shed_from_pending(req)
            if not req.future.done():
                waited = now - req.submitted_at
                req.future.set_exception(
                    ServeShedError(
                        f"request shed: queue over watermark "
                        f"({self.shed_watermark}) and this request's predicted "
                        f"cost ({req.cost:.3g} FLOPs) ranked highest"
                    )
                )
                self.metrics.record_cost_shed(waited)
            else:  # client-cancelled while queued
                self._record_cancelled(req)

    def _mark_dequeued(self, group: list[ServeRequest]) -> None:
        """Dequeue accounting for a group picked for execution."""
        now = time.perf_counter()
        for req in group:
            req.dequeued_at = now
        self.metrics.record_dequeued(len(group))
        for req in group:
            req.dequeued = True
        with self._admission:
            self._queued -= len(group)
            self._admission.notify_all()

    def _forget_dispatched(self, group: list[ServeRequest]) -> None:
        done = {id(req) for req in group}
        with self._dispatch_lock:
            self._in_dispatch = [req for req in self._in_dispatch if id(req) not in done]

    def _execute_group_tracked(self, group: list[ServeRequest], slots) -> None:
        """Pool-thread wrapper: :meth:`_execute_group` already contains the
        per-group failure guard; this adds last-resort stranding protection
        and releases the concurrency slot."""
        try:
            self._execute_group(group)
        except BaseException as exc:  # pragma: no cover - belt and braces
            for req in group:
                if not req.future.done():
                    try:
                        req.future.set_exception(exc)
                    except Exception:
                        pass
        finally:
            self._forget_dispatched(group)
            slots.release()

    def _shed_expired(self, requests: list[ServeRequest], now: float) -> list[ServeRequest]:
        """Fail deadline-expired requests before execution; return the rest."""
        live: list[ServeRequest] = []
        for req in requests:
            if req.deadline is None or now <= req.deadline:
                live.append(req)
            elif not req.future.done():
                waited = now - req.submitted_at
                req.future.set_exception(
                    ServeTimeoutError(
                        f"request shed: deadline exceeded after {waited:.3f}s in queue"
                    )
                )
                self.metrics.record_timed_out(waited)
            else:
                # Expired *and* already resolved (e.g. client-cancelled
                # while queued): drop it — executing would set_result on a
                # done future.
                self._record_cancelled(req)
        return live

    def _handle_crash(self, exc: BaseException) -> None:
        """Fail every pending future and flip :attr:`healthy` (crash path)."""
        with self._admission:
            self.healthy = False
            self._crash_cause = exc
            with self._dispatch_lock:
                stranded = list(self._in_dispatch)
                self._in_dispatch = []
            stranded.extend(self._pending)
            self._pending = []
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if not isinstance(nxt, _Stop):
                    stranded.append(nxt)
            self._queued = 0
            # Wake blocked submitters: they re-check and see the crash.
            self._admission.notify_all()
        now = time.perf_counter()
        failed: list[ServeRequest] = []
        not_dequeued = 0
        seen: set[int] = set()
        for req in stranded:
            if id(req) in seen:  # pick-time crash window: listed twice
                continue
            seen.add(id(req))
            if not req.dequeued:
                not_dequeued += 1
            if req.future.done():
                # Already resolved (completed or shed) before the crash —
                # its terminal outcome is counted; don't double-count.
                # Client-cancelled futures are the exception: no other site
                # ever accounted them.
                if req.future.cancelled():
                    self._record_cancelled(req)
                continue
            err = DispatcherCrashedError("serve dispatcher crashed; request abandoned")
            err.__cause__ = exc
            try:
                req.future.set_exception(err)
            except Exception:
                # Lost the race against an in-flight group resolving it.
                continue
            failed.append(req)
        # Metrics last, and guarded: the crash may *be* a metrics fault, and
        # accounting must never keep a future from resolving.
        try:
            if not_dequeued:
                self.metrics.record_dequeued(not_dequeued)
            for req in failed:
                self.metrics.record_failed(now - req.submitted_at)
        except Exception:
            pass

    def _group(self, requests: list[ServeRequest]) -> list[list[ServeRequest]]:
        """Group by (op, matrix content, operand compatibility), preserving
        arrival order, capped at ``max_batch``."""
        groups: dict[tuple, list[ServeRequest]] = {}
        ordered: list[list[ServeRequest]] = []
        for req in requests:
            # SDDMM / edge-softmax / segmm requests share a translation but
            # not an engine pass, so their group key is unique per request.
            if req.op == "spmm":
                key = (req.op, req.key, req.b.shape[0])
            elif req.op == "layer":
                # Layers coalesce when everything but the ``x`` panel
                # matches (same matrix, logits panels, scale): the panels
                # concatenate into one fused pass, exactly like SpMM.
                key = (req.op, req.key, req.group_token, req.x.shape[0])
            else:
                key = (req.op, req.key, id(req))
            bucket = groups.get(key)
            if bucket is None or len(bucket) >= self.max_batch:
                bucket = []
                groups[key] = bucket
                ordered.append(bucket)
            bucket.append(req)
        return ordered

    # ------------------------------------------------------------ execution
    def _plan_for(self, fmt: BlockedVectorFormat, op: str, width: int) -> ServePlan:
        # Lock-guarded end to end: with ``group_concurrency > 1`` (the
        # cluster default) concurrent group threads share this OrderedDict,
        # and an unguarded move_to_end/popitem interleaving corrupts it.
        # Planning itself is cheap and memoised, so holding the lock across
        # a miss is simpler than double-compute-and-race on the store.
        hosts = self.hosts
        if self.backend == "cluster":
            # Membership is live (add_host / remove_host, readmissions), so
            # plans follow the *current* host count — the count is part of
            # the cache key, so a membership change simply plans afresh
            # instead of serving a stale per-host split.
            hosts = max(1, len(self.scheduler.hosts))
        with self._plans_lock:
            key = (op, id(fmt), width, hosts)
            entry = self._plans.get(key)
            # The pinned fmt reference both prevents id-reuse aliasing (a
            # GC'd format's id recycled by a different matrix) and is
            # verified anyway.
            if entry is not None and entry[0] is fmt:
                self._plans.move_to_end(key)
                return entry[1]
            planner = plan_spmm if op == "spmm" else plan_sddmm
            kwargs = {"workers": self.requested_workers, "hosts": hosts}
            if self.backend == "cluster" and self.requested_workers is None:
                # A worker host executes one shard at a time: plan per-host
                # chunks for a single consumer, not a local thread pool.
                kwargs["workers"] = 1
            if self.workspace_fraction is not None:
                kwargs["workspace_fraction"] = self.workspace_fraction
            plan = planner(fmt, width, device=self.device, precision=self.precision, **kwargs)
            self._plans[key] = (fmt, plan)
            self._plans.move_to_end(key)
            while len(self._plans) > self._plan_capacity:
                self._plans.popitem(last=False)
            return plan

    def _execute_group(self, group: list[ServeRequest]) -> None:
        # Re-check deadlines at execution time: earlier groups of the same
        # drain may have pushed this one past its requests' deadlines.
        group = self._shed_expired(group, time.perf_counter())
        if not group:
            return
        try:
            op = group[0].op
            if op == "spmm":
                self._execute_spmm_group(group)
            elif op == "layer":
                self._execute_layer_group(group)
            elif op == "edge_softmax":
                self._execute_edge_softmax(group[0])
            elif op == "segmm":
                self._execute_segmm(group[0])
            else:
                self._execute_sddmm(group[0])
        except Exception as exc:
            now = time.perf_counter()
            for req in group:
                if not req.future.done():
                    req.future.set_exception(exc)
                    self.metrics.record_failed(now - req.submitted_at)
                elif req.future.cancelled():
                    self._record_cancelled(req)

    def _routing_kwargs(self, req: ServeRequest) -> dict:
        """Extra scheduler arguments: the cluster head routes by content
        key and ships the request's own CSR payload to the worker hosts."""
        if self.backend != "cluster":
            return {}
        return {"csr": req.csr, "content_key": req.key}

    def _record_done(self, req: ServeRequest, now: float) -> None:
        self.metrics.record_completed(
            now - req.submitted_at,
            queue_wait_s=req.dequeued_at - req.submitted_at,
            execution_s=now - req.dequeued_at,
        )

    def _execute_spmm_group(self, group: list[ServeRequest]) -> None:
        fmt = cached_mebcrs(group[0].csr, self.precision, by_content=True)
        widths = [req.b.shape[1] for req in group]
        n_total = sum(widths)
        self.metrics.record_batch(len(group))
        # One quantised concatenated operand → one gather in the engine.
        b_cat = np.concatenate([req.b for req in group], axis=1) if len(group) > 1 else group[0].b
        b_q = quantize(b_cat, self.precision).astype(np.float32)
        plan = self._plan_for(fmt, "spmm", n_total)
        out = self.scheduler.run_spmm(
            fmt,
            b_q,
            self.precision,
            target_blocks=plan.block_chunk,
            **self._routing_kwargs(group[0]),
        )
        offset = 0
        now = time.perf_counter()
        for req, width in zip(group, widths):
            values = np.ascontiguousarray(out[:, offset : offset + width])
            offset += width
            if req.future.done():
                # Client-cancelled while queued (without a deadline, so the
                # shed passes kept it): setting a result would raise
                # InvalidStateError and poison every later sibling.
                self._record_cancelled(req)
                continue
            counter = spmm_flash_cost(
                fmt, width, FlashSparseConfig(precision=self.precision)
            )
            result = SpmmResult(
                values=values,
                counter=counter,
                useful_flops=spmm_useful_flops(fmt.nnz, width),
                meta={
                    "engine": "serve",
                    "backend": self.backend,
                    "workers": self.scheduler.workers,
                    "batched_with": len(group) - 1,
                    "plan": plan,
                },
            )
            try:
                req.future.set_result(result)
            except InvalidStateError:  # cancelled between the check and here
                self._record_cancelled(req)
                continue
            self._record_done(req, now)

    def _execute_sddmm(self, req: ServeRequest) -> None:
        if req.future.done():  # client-cancelled while queued: see SpMM path
            self._record_cancelled(req)
            return
        fmt = cached_mebcrs(req.csr, self.precision, by_content=True)
        self.metrics.record_batch(1)
        k_dense = req.a.shape[1]
        a_q = quantize(req.a, self.precision).astype(np.float32)
        b_q = quantize(req.b, self.precision).astype(np.float32)
        plan = self._plan_for(fmt, "sddmm", k_dense)
        out_values = self.scheduler.run_sddmm(
            fmt,
            a_q,
            b_q,
            self.precision,
            VECTORS_PER_OUTPUT_BLOCK,
            scale_by_mask=req.scale_by_mask,
            target_blocks=plan.block_chunk,
            **self._routing_kwargs(req),
        )
        output = BlockedVectorFormat(
            partition=fmt.partition,
            vector_values=out_values,
            k=fmt.k,
            precision=Precision.FP32,
            format_name=f"{fmt.format_name}-sddmm-out",
        )
        counter = sddmm_flash_cost(fmt, k_dense, FlashSparseConfig(precision=self.precision))
        result = SddmmResult(
            output=output,
            counter=counter,
            useful_flops=sddmm_useful_flops(fmt.nnz, k_dense),
            meta={
                "engine": "serve",
                "backend": self.backend,
                "workers": self.scheduler.workers,
                "scale_by_mask": req.scale_by_mask,
                "plan": plan,
            },
        )
        try:
            req.future.set_result(result)
        except InvalidStateError:  # cancelled between the check and here
            self._record_cancelled(req)
            return
        self._record_done(req, time.perf_counter())

    def _execute_layer_group(self, group: list[ServeRequest]) -> None:
        """One fused pass for a batch of same-(matrix, logits, scale)
        layers: their ``x`` panels concatenate column-wise (numerically
        invisible, exactly as for SpMM batching) and the whole
        SDDMM → scale → softmax → SpMM pipeline runs once per shard."""
        lead = group[0]
        fmt = cached_mebcrs(lead.csr, self.precision, by_content=True)
        widths = [req.x.shape[1] for req in group]
        n_total = sum(widths)
        self.metrics.record_batch(len(group))
        a_q = quantize(lead.a, self.precision).astype(np.float32)
        b_q = quantize(lead.b, self.precision).astype(np.float32)
        x_cat = (
            np.concatenate([req.x for req in group], axis=1)
            if len(group) > 1
            else lead.x
        )
        x_q = quantize(x_cat, self.precision).astype(np.float32)
        plan = self._plan_for(fmt, "spmm", n_total)
        out, stage_seconds = self.scheduler.run_layer(
            fmt,
            lead.csr.indptr,
            a_q,
            b_q,
            x_q,
            self.precision,
            VECTORS_PER_OUTPUT_BLOCK,
            scale=lead.scale,
            scale_by_mask=lead.scale_by_mask,
            target_blocks=plan.block_chunk,
            **self._routing_kwargs(lead),
        )
        # What the composed path would have moved between server and
        # scheduler per layer (SDDMM intermediate out, attention matrix
        # back in) and the fused pass did not.
        n_vec = int(fmt.vector_values.shape[0])
        intermediate_bytes = (
            n_vec * fmt.vector_size * 4
            + n_vec * 8
            + int(lead.csr.indptr.nbytes)
            + int(lead.csr.indices.nbytes)
            + int(lead.csr.nnz) * 4
        )
        self.metrics.record_layer(
            stage_seconds,
            round_trips_saved=2,
            operand_bytes_saved=intermediate_bytes,
        )
        k_dense = lead.a.shape[1]
        offset = 0
        now = time.perf_counter()
        for req, width in zip(group, widths):
            values = np.ascontiguousarray(out[:, offset : offset + width])
            offset += width
            if req.future.done():
                self._record_cancelled(req)
                continue
            result = LayerResult(
                values=values,
                useful_flops=(
                    sddmm_useful_flops(fmt.nnz, k_dense)
                    + _edge_softmax_useful_flops(fmt.nnz)
                    + spmm_useful_flops(fmt.nnz, width)
                ),
                meta={
                    "engine": "serve",
                    "backend": self.backend,
                    "workers": self.scheduler.workers,
                    "batched_with": len(group) - 1,
                    "plan": plan,
                    "stages": dict(stage_seconds),
                    "scale": lead.scale,
                    "scale_by_mask": lead.scale_by_mask,
                },
            )
            try:
                req.future.set_result(result)
            except InvalidStateError:  # cancelled between the check and here
                self._record_cancelled(req)
                continue
            self._record_done(req, now)

    def _execute_edge_softmax(self, req: ServeRequest) -> None:
        if req.future.done():  # client-cancelled while queued: see SpMM path
            self._record_cancelled(req)
            return
        self.metrics.record_batch(1)
        values = segment_softmax(req.b, req.csr.indptr)
        result = EdgeSoftmaxResult(
            values=values,
            useful_flops=_edge_softmax_useful_flops(req.csr.nnz),
            meta={"engine": "serve", "backend": self.backend},
        )
        try:
            req.future.set_result(result)
        except InvalidStateError:
            self._record_cancelled(req)
            return
        self._record_done(req, time.perf_counter())

    def _execute_segmm(self, req: ServeRequest) -> None:
        if req.future.done():  # client-cancelled while queued: see SpMM path
            self._record_cancelled(req)
            return
        self.metrics.record_batch(1)
        values = self.scheduler.run_segment_matmul(req.b, req.offsets, req.weights)
        result = SegmentMatmulResult(
            values=np.ascontiguousarray(values),
            useful_flops=int(req.cost),
            meta={
                "engine": "serve",
                "backend": self.backend,
                "workers": self.scheduler.workers,
                "segments": int(req.offsets.size - 1),
            },
        )
        try:
            req.future.set_result(result)
        except InvalidStateError:
            self._record_cancelled(req)
            return
        self._record_done(req, time.perf_counter())
