"""Shared machinery for the baseline implementations.

Every baseline is described by a :class:`Baseline` object carrying:

* metadata matching Table 3 of the paper (precision, compute granularity),
* a :class:`~repro.perfmodel.model.KernelProfile`,
* cost functions (``spmm_cost`` and, where the paper evaluates it,
  ``sddmm_cost``) that return a :class:`~repro.gpu.counters.CostCounter`, and
* execute functions that produce the numeric result (all baselines compute
  the same mathematical SpMM/SDDMM; the CUDA-core ones do so in FP32).

The CUDA-core execute paths use scipy's CSR kernels for the arithmetic —
the numerics of a CUDA-core FP32 SpMM and a CPU FP32 SpMM are the same — and
attach the baseline's cost counter, so result objects are interchangeable
with the FlashSparse kernel results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu.counters import CostCounter
from repro.kernels.common import SddmmKernelResult, SpmmKernelResult
from repro.ops import segment_ids
from repro.perfmodel.model import KernelProfile, sddmm_useful_flops, spmm_useful_flops
from repro.precision.types import Precision


@dataclass
class Baseline:
    """One baseline system (Table 3 row)."""

    name: str
    paper_reference: str
    precision: Precision
    granularity: str  # "CUDA cores", "16x1 on TCU", ...
    profile: KernelProfile
    spmm_cost: Callable[[CSRMatrix, int], CostCounter]
    spmm_execute: Callable[[CSRMatrix, np.ndarray], SpmmKernelResult] | None = None
    sddmm_cost: Callable[[CSRMatrix, int], CostCounter] | None = None
    sddmm_execute: Callable[[CSRMatrix, np.ndarray, np.ndarray], SddmmKernelResult] | None = None
    notes: str = field(default="")

    @property
    def supports_sddmm(self) -> bool:
        """Whether the baseline provides an SDDMM kernel."""
        return self.sddmm_cost is not None


def csr_spmm_reference(matrix: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """FP32 CSR SpMM reference result (what every CUDA-core baseline computes)."""
    b = np.asarray(b, dtype=np.float32)
    return np.asarray(matrix.to_scipy().astype(np.float32) @ b, dtype=np.float32)


def csr_sddmm_reference(matrix: CSRMatrix, a: np.ndarray, b: np.ndarray) -> CSRMatrix:
    """FP32 CSR SDDMM reference: sampled dot products at the mask's nonzeros."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    rows = segment_ids(matrix.indptr)
    cols = matrix.indices.astype(np.int64)
    values = np.einsum("ij,ij->i", a[rows], b[cols]).astype(np.float32)
    return matrix.with_values(values)


def make_spmm_execute(
    name: str, cost_fn: Callable[[CSRMatrix, int], CostCounter]
) -> Callable[[CSRMatrix, np.ndarray], SpmmKernelResult]:
    """Wrap a cost function into an execute function returning values + costs."""

    def execute(matrix: CSRMatrix, b: np.ndarray) -> SpmmKernelResult:
        values = csr_spmm_reference(matrix, b)
        counter = cost_fn(matrix, int(np.asarray(b).shape[1]))
        return SpmmKernelResult(
            values=values,
            counter=counter,
            kernel=name,
            useful_flops=spmm_useful_flops(matrix.nnz, int(np.asarray(b).shape[1])),
            meta={"precision": "fp32", "baseline": name},
        )

    return execute


def make_sddmm_execute(
    name: str, cost_fn: Callable[[CSRMatrix, int], CostCounter]
) -> Callable[[CSRMatrix, np.ndarray, np.ndarray], SddmmKernelResult]:
    """Wrap an SDDMM cost function into an execute function."""
    from repro.formats.mebcrs import MEBCRSMatrix

    def execute(matrix: CSRMatrix, a: np.ndarray, b: np.ndarray) -> SddmmKernelResult:
        sampled = csr_sddmm_reference(matrix, a, b)
        counter = cost_fn(matrix, int(np.asarray(a).shape[1]))
        # Package the CSR output in a blocked container for API parity.
        blocked = MEBCRSMatrix.from_csr(sampled, precision=Precision.FP32, k=8)
        return SddmmKernelResult(
            output=blocked,
            counter=counter,
            kernel=name,
            useful_flops=sddmm_useful_flops(matrix.nnz, int(np.asarray(a).shape[1])),
            meta={"precision": "fp32", "baseline": name},
        )

    return execute
