"""Baseline systems the paper compares against (Table 3).

The registry maps the paper's baseline names to :class:`Baseline` objects
carrying cost models, execute functions and performance profiles:

==============  =========  ===========  =================================
Name            Precision  Granularity  Role in the paper
==============  =========  ===========  =================================
cuSPARSE        FP32       CUDA cores   normalisation baseline (Fig. 11)
Sputnik         FP32       CUDA cores   1-D tiling
RoDe            FP32       CUDA cores   SOTA on CUDA cores
GE-SpMM         FP32       CUDA cores   coalesced row caching
GNNAdvisor      FP32       CUDA cores   GNN runtime
DGL             FP32       CUDA cores   end-to-end framework (Fig. 16)
PyG             FP32       CUDA cores   end-to-end framework (Fig. 16)
DTC-SpMM        TF32       16x1 TCU     SOTA on tensor cores
TC-GNN          TF32       16x1 TCU     WMMA GNN kernels
==============  =========  ===========  =================================
"""

from repro.baselines.common import (
    Baseline,
    csr_sddmm_reference,
    csr_spmm_reference,
)
from repro.baselines.cuda_cores import (
    CUSPARSE,
    DGL_LIKE,
    GESPMM,
    GNNADVISOR,
    PYG_LIKE,
    RODE,
    SPUTNIK,
    CudaCoreParams,
    cuda_sddmm_cost,
    cuda_spmm_cost,
)
from repro.baselines.tcu import DTC_SPMM, TCGNN

#: All baselines keyed by their paper name.
BASELINES: dict[str, Baseline] = {
    baseline.name: baseline
    for baseline in (
        CUSPARSE,
        SPUTNIK,
        RODE,
        GESPMM,
        GNNADVISOR,
        DGL_LIKE,
        PYG_LIKE,
        DTC_SPMM,
        TCGNN,
    )
}

#: The kernel-level baselines of Figure 11 / 13 (frameworks excluded).
KERNEL_BASELINES: tuple[str, ...] = (
    "cuSPARSE",
    "Sputnik",
    "RoDe",
    "GE-SpMM",
    "GNNAdvisor",
    "DTC-SpMM",
    "TC-GNN",
)

#: The SDDMM baselines the paper evaluates (Figure 13 / Table 6).
SDDMM_BASELINES: tuple[str, ...] = ("Sputnik", "RoDe", "TC-GNN")

#: The end-to-end GNN framework baselines of Figure 16.
GNN_FRAMEWORK_BASELINES: tuple[str, ...] = ("DGL", "PyG", "TC-GNN")


def get_baseline(name: str) -> Baseline:
    """Look up a baseline by its (case-insensitive) paper name."""
    for key, baseline in BASELINES.items():
        if key.lower() == name.strip().lower():
            return baseline
    raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINES)}")


__all__ = [
    "Baseline",
    "BASELINES",
    "KERNEL_BASELINES",
    "SDDMM_BASELINES",
    "GNN_FRAMEWORK_BASELINES",
    "get_baseline",
    "csr_spmm_reference",
    "csr_sddmm_reference",
    "CudaCoreParams",
    "cuda_spmm_cost",
    "cuda_sddmm_cost",
    "CUSPARSE",
    "SPUTNIK",
    "RODE",
    "GESPMM",
    "GNNADVISOR",
    "DGL_LIKE",
    "PYG_LIKE",
    "DTC_SPMM",
    "TCGNN",
]
