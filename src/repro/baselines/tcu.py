"""Tensor-core baselines: DTC-SpMM and TC-GNN.

Both prior TCU approaches use the 16×1 nonzero-vector granularity analysed in
Section 2; their cost is therefore the 16×1 kernel of
:mod:`repro.kernels.spmm_tcu16` plus the approach-specific overheads the
paper calls out:

* **DTC-SpMM** (ASPLOS'24) — ``mma.m16n8k8`` TF32 with systematic
  optimisations; the strongest prior TCU baseline.  Its cost is essentially
  the 16×1 kernel at TF32 precision.
* **TC-GNN** (USENIX ATC'23) — WMMA ``m16n16k8`` TF32 with the SGT sparse
  translation.  Its kernel performs extensive per-element position checks to
  locate sparse elements inside each TC block; the paper attributes TC-GNN's
  poor (and size-degrading) performance to this overhead, so the model
  charges index work proportional to the stored block elements per dense
  tile, on top of the WMMA pipeline's lower efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import Baseline
from repro.formats.csr import CSRMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.gpu.counters import CostCounter
from repro.kernels.common import FlashSparseConfig, SpmmKernelResult, SddmmKernelResult
from repro.kernels.sddmm_tcu16 import sddmm_tcu16_cost, sddmm_tcu16_execute
from repro.kernels.spmm_tcu16 import spmm_tcu16_cost, spmm_tcu16_execute
from repro.perfmodel.model import KernelProfile
from repro.precision.types import Precision

#: Per-element position-check work TC-GNN performs inside each sparse TC
#: block, charged once per dense tile the block is multiplied against.
TCGNN_POSITION_CHECK_OPS = 4

#: Shared 16×1 kernel configuration for both TCU baselines.  The engine is
#: pinned explicitly: the baselines' execute paths run the batched vectorized
#: engine (not the per-block emulation loops), which the audit of the stale
#: "baselines walk Python loops" ROADMAP claim made explicit.
_TCU16_BATCHED_CONFIG = FlashSparseConfig(
    precision=Precision.TF32, swap_and_transpose=False, engine="batched"
)


def _ceil_div(a: int, b: int) -> int:
    return -(-int(a) // int(b))


# ---------------------------------------------------------------------------
# DTC-SpMM
# ---------------------------------------------------------------------------
DTC_SPMM_PROFILE = KernelProfile(
    name="DTC-SpMM",
    tcu_efficiency=0.25,
    cuda_efficiency=0.55,
    memory_efficiency=0.65,
    l2_efficiency=0.40,
    mma_issue_ns=1.2,
    imbalance_factor=1.10,
    notes="16x1 vectors, mma.m16n8k8 TF32; narrower per-thread loads than the "
    "8x1 swap-and-transpose kernel",
)


def dtc_spmm_cost(matrix: CSRMatrix | SGT16Matrix, n_dense: int) -> CostCounter:
    """Cost of DTC-SpMM: the 16×1 TF32 MMA kernel."""
    config = _TCU16_BATCHED_CONFIG
    return spmm_tcu16_cost(matrix, n_dense, config, api="mma")


def dtc_spmm_execute(matrix: CSRMatrix | SGT16Matrix, b: np.ndarray) -> SpmmKernelResult:
    """Execute DTC-SpMM (numerics + cost)."""
    config = _TCU16_BATCHED_CONFIG
    result = spmm_tcu16_execute(matrix, b, config, api="mma")
    result.kernel = "DTC-SpMM"
    result.meta["baseline"] = "DTC-SpMM"
    return result


DTC_SPMM = Baseline(
    name="DTC-SpMM",
    paper_reference="Fan et al., DTC-SpMM (ASPLOS'24) [10]",
    precision=Precision.TF32,
    granularity="16x1 on TCU",
    profile=DTC_SPMM_PROFILE,
    spmm_cost=dtc_spmm_cost,
    spmm_execute=dtc_spmm_execute,
    notes="Strongest prior tensor-core SpMM; 16x1 nonzero vectors.",
)


# ---------------------------------------------------------------------------
# TC-GNN
# ---------------------------------------------------------------------------
TCGNN_PROFILE = KernelProfile(
    name="TC-GNN",
    tcu_efficiency=0.15,
    cuda_efficiency=0.45,
    memory_efficiency=0.50,
    l2_friendly=False,
    mma_issue_ns=2.0,
    imbalance_factor=1.20,
    extra_launch_us=20.0,
    notes="WMMA m16n16k8 TF32 with per-element position checks; SGT's shared-memory "
    "walks defeat L2 reuse, so all traffic is charged at DRAM rate",
)


def _tcgnn_position_check_ops(matrix: CSRMatrix | SGT16Matrix, tiles: int) -> int:
    if isinstance(matrix, SGT16Matrix):
        fmt = matrix
    else:
        fmt = SGT16Matrix.from_csr(matrix, precision=Precision.TF32)
    stored_elements = fmt.num_nonzero_vectors * fmt.vector_size
    return int(stored_elements * tiles * TCGNN_POSITION_CHECK_OPS)


def tcgnn_spmm_cost(matrix: CSRMatrix | SGT16Matrix, n_dense: int) -> CostCounter:
    """Cost of TC-GNN's SpMM: 16×1 WMMA kernel plus position-check overhead."""
    config = _TCU16_BATCHED_CONFIG
    counter = spmm_tcu16_cost(matrix, n_dense, config, api="wmma")
    tiles = _ceil_div(int(n_dense), 16)
    counter.add_index_ops(_tcgnn_position_check_ops(matrix, tiles))
    return counter


def tcgnn_spmm_execute(matrix: CSRMatrix | SGT16Matrix, b: np.ndarray) -> SpmmKernelResult:
    """Execute TC-GNN's SpMM (numerics + cost including position checks)."""
    config = _TCU16_BATCHED_CONFIG
    result = spmm_tcu16_execute(matrix, b, config, api="wmma")
    tiles = _ceil_div(int(np.asarray(b).shape[1]), 16)
    result.counter.add_index_ops(_tcgnn_position_check_ops(matrix, tiles))
    result.kernel = "TC-GNN"
    result.meta["baseline"] = "TC-GNN"
    return result


def tcgnn_sddmm_cost(matrix: CSRMatrix | SGT16Matrix, k_dense: int) -> CostCounter:
    """Cost of TC-GNN's SDDMM at 16×1 granularity plus position checks."""
    config = _TCU16_BATCHED_CONFIG
    counter = sddmm_tcu16_cost(matrix, k_dense, config)
    chunks = _ceil_div(int(k_dense), 8)
    counter.add_index_ops(_tcgnn_position_check_ops(matrix, chunks))
    return counter


def tcgnn_sddmm_execute(matrix: CSRMatrix | SGT16Matrix, a: np.ndarray, b: np.ndarray) -> SddmmKernelResult:
    """Execute TC-GNN's SDDMM (numerics + cost)."""
    config = _TCU16_BATCHED_CONFIG
    result = sddmm_tcu16_execute(matrix, a, b, config)
    chunks = _ceil_div(int(np.asarray(a).shape[1]), 8)
    result.counter.add_index_ops(_tcgnn_position_check_ops(matrix, chunks))
    result.kernel = "TC-GNN"
    result.meta["baseline"] = "TC-GNN"
    return result


TCGNN = Baseline(
    name="TC-GNN",
    paper_reference="Wang et al., TC-GNN (USENIX ATC'23) [45]",
    precision=Precision.TF32,
    granularity="16x1 on TCU",
    profile=TCGNN_PROFILE,
    spmm_cost=tcgnn_spmm_cost,
    spmm_execute=tcgnn_spmm_execute,
    sddmm_cost=tcgnn_sddmm_cost,
    sddmm_execute=tcgnn_sddmm_execute,
    notes="WMMA-based GNN kernels; per-element position checks dominate on large matrices.",
)
