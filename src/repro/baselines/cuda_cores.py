"""CUDA-core baselines: cuSPARSE, Sputnik, RoDe, GE-SpMM, GNNAdvisor (+ DGL/PyG).

All of these execute SpMM/SDDMM on CUDA cores in FP32 (Table 3).  They share
one cost skeleton — a row-parallel CSR kernel whose traffic is dominated by
streaming the dense matrix B — and differ in the locality and load-balance
properties the respective papers claim:

* **cuSPARSE** — the vendor CSR kernel; decent locality, no special
  load-balancing.
* **Sputnik** — 1-D tiling with row swizzling; better reuse of B rows via
  shared memory, but load imbalance on extremely skewed matrices (the
  weakness RoDe addresses).
* **RoDe** — row decomposition into regular/residue parts plus fine-grained
  pipelining: the strongest CUDA-core baseline (best reuse, near-balanced).
* **GE-SpMM** — coalesced row caching (CRC) in shared memory.
* **GNNAdvisor** — 2-D workload management tuned for GNN inputs.
* **DGL / PyG** — end-to-end framework backends used in Figure 16: DGL
  dispatches to cuSPARSE-class kernels with framework overhead; PyG uses
  edge-wise parallelisation (gather/scatter), which streams one B row per
  edge and pays atomics on the output.

The per-baseline knobs (``b_reuse``, transaction waste, per-nonzero index
work, framework overhead) are model constants documented here; they encode
the qualitative differences the paper describes rather than measured values.
A key distinction from the tensor-core kernels is the ``l2_efficiency`` of
their profiles: CUDA-core sparse kernels issue one scalar (4–16 byte) load
per fused multiply-add and are limited by load/store-unit and instruction
throughput well before they can saturate the L2 bandwidth, whereas the MMA
pipelines consume wide, register-tiled operands.  This is how the model
reflects the paper's observation that the superior arithmetic machinery of
TCUs translates into higher *sustained* sparse throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import Baseline, make_sddmm_execute, make_spmm_execute
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import CostCounter
from repro.perfmodel.model import KernelProfile
from repro.precision.types import Precision


def _ceil_div(a: int, b: int) -> int:
    return -(-int(a) // int(b))


@dataclass(frozen=True)
class CudaCoreParams:
    """Cost-model knobs of one CUDA-core baseline."""

    #: Effective reuse factor of dense-B traffic (shared memory / L2 row reuse).
    b_reuse: float
    #: Multiplier on transaction bytes vs useful bytes (coalescing waste).
    transaction_waste: float
    #: Auxiliary integer ops charged per nonzero (index decode, bookkeeping).
    index_ops_per_nnz: float
    #: Dense-A reuse factor for SDDMM (how often an A row is re-read).
    a_reuse: float = 4.0

    def __post_init__(self) -> None:
        if self.b_reuse < 1.0 or self.a_reuse < 1.0:
            raise ValueError("reuse factors must be >= 1")
        if self.transaction_waste < 1.0:
            raise ValueError("transaction_waste must be >= 1")


def cuda_spmm_cost(matrix: CSRMatrix, n_dense: int, params: CudaCoreParams) -> CostCounter:
    """Cost of a row-parallel FP32 CSR SpMM on CUDA cores."""
    n_dense = int(n_dense)
    if n_dense <= 0:
        raise ValueError("n_dense must be positive")
    nnz = matrix.nnz
    m = matrix.n_rows
    counter = CostCounter()
    counter.add_cuda_fma(nnz * n_dense)

    # Sparse operand: values (4 B) + column indices (4 B) per nonzero, row ptr.
    a_bytes = nnz * 8 + (m + 1) * 4
    counter.add_load(32, _ceil_div(int(a_bytes * params.transaction_waste), 32), useful_bytes=a_bytes)

    # Dense matrix B: each nonzero touches an N-wide row slice; reuse captures
    # shared-memory hits within a thread block.
    b_bytes = int(nnz * n_dense * 4 / params.b_reuse)
    counter.add_load(32, _ceil_div(int(b_bytes * params.transaction_waste), 32), useful_bytes=b_bytes)

    # Output C.
    c_bytes = m * n_dense * 4
    counter.add_store(32, _ceil_div(c_bytes, 32), useful_bytes=c_bytes)

    counter.add_index_ops(int(nnz * params.index_ops_per_nnz))
    counter.add_warps(max(1, m * _ceil_div(n_dense, 32) // 32))

    # Unique DRAM footprint: the CSR arrays, the dense B array, the output.
    b_array_bytes = matrix.n_cols * n_dense * 4
    counter.set_read_footprint(min(counter.bytes_read, a_bytes + b_array_bytes))
    counter.set_write_footprint(c_bytes)
    return counter


def cuda_sddmm_cost(matrix: CSRMatrix, k_dense: int, params: CudaCoreParams) -> CostCounter:
    """Cost of a row-parallel FP32 CSR SDDMM on CUDA cores."""
    k_dense = int(k_dense)
    if k_dense <= 0:
        raise ValueError("k_dense must be positive")
    nnz = matrix.nnz
    m = matrix.n_rows
    counter = CostCounter()
    counter.add_cuda_fma(nnz * k_dense)

    # Left dense rows: one K-wide row per output row, re-read a_reuse times less
    # often than the naive per-nonzero estimate.
    a_bytes = int(max(m, nnz / params.a_reuse) * k_dense * 4)
    counter.add_load(32, _ceil_div(int(a_bytes * params.transaction_waste), 32), useful_bytes=a_bytes)
    # Right dense rows: one K-wide row per nonzero (little reuse).
    b_bytes = int(nnz * k_dense * 4 / params.b_reuse)
    counter.add_load(32, _ceil_div(int(b_bytes * params.transaction_waste), 32), useful_bytes=b_bytes)
    # Sparse structure + output values.
    s_bytes = nnz * 8 + (m + 1) * 4
    counter.add_load(32, _ceil_div(s_bytes, 32), useful_bytes=s_bytes)
    counter.add_store(32, _ceil_div(nnz * 4, 32), useful_bytes=nnz * 4)

    counter.add_index_ops(int(nnz * params.index_ops_per_nnz))
    counter.add_warps(max(1, nnz // 32))

    # Unique DRAM footprint: both dense operands, the sparse structure, output.
    dense_bytes = (m + matrix.n_cols) * k_dense * 4
    counter.set_read_footprint(min(counter.bytes_read, dense_bytes + s_bytes))
    counter.set_write_footprint(nnz * 4)
    return counter


def _make_cuda_baseline(
    name: str,
    reference: str,
    params: CudaCoreParams,
    profile: KernelProfile,
    with_sddmm: bool,
    notes: str,
) -> Baseline:
    def spmm_cost(matrix: CSRMatrix, n_dense: int) -> CostCounter:
        return cuda_spmm_cost(matrix, n_dense, params)

    sddmm_cost = None
    sddmm_execute = None
    if with_sddmm:
        def sddmm_cost(matrix: CSRMatrix, k_dense: int) -> CostCounter:  # noqa: F811
            return cuda_sddmm_cost(matrix, k_dense, params)

        sddmm_execute = make_sddmm_execute(name, sddmm_cost)

    return Baseline(
        name=name,
        paper_reference=reference,
        precision=Precision.FP32,
        granularity="CUDA cores",
        profile=profile,
        spmm_cost=spmm_cost,
        spmm_execute=make_spmm_execute(name, spmm_cost),
        sddmm_cost=sddmm_cost,
        sddmm_execute=sddmm_execute,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Baseline definitions
# ---------------------------------------------------------------------------
CUSPARSE = _make_cuda_baseline(
    "cuSPARSE",
    "NVIDIA cuSPARSE CSR SpMM [30]",
    CudaCoreParams(b_reuse=1.1, transaction_waste=1.1, index_ops_per_nnz=1.0),
    KernelProfile(
        name="cuSPARSE",
        tcu_efficiency=0.3,
        cuda_efficiency=0.40,
        memory_efficiency=0.60,
        l2_efficiency=0.20,
        imbalance_factor=1.20,
        notes="vendor CSR kernel, Figure 11's normalisation baseline",
    ),
    with_sddmm=False,
    notes="FP32 CSR SpMM; the speedup-normalisation baseline of Figure 11.",
)

SPUTNIK = _make_cuda_baseline(
    "Sputnik",
    "Gale et al., Sparse GPU kernels for deep learning [14]",
    CudaCoreParams(b_reuse=1.25, transaction_waste=1.05, index_ops_per_nnz=1.0),
    KernelProfile(
        name="Sputnik",
        cuda_efficiency=0.45,
        memory_efficiency=0.62,
        l2_efficiency=0.26,
        imbalance_factor=1.45,
        notes="1-D tiling; suffers load imbalance on skewed matrices",
    ),
    with_sddmm=True,
    notes="1-D tiling / rotation; good locality, weak on unevenly distributed rows.",
)

RODE = _make_cuda_baseline(
    "RoDe",
    "Pang et al., row-decomposition SpMM/SDDMM (PPoPP'24) [34]",
    CudaCoreParams(b_reuse=1.35, transaction_waste=1.0, index_ops_per_nnz=1.2),
    KernelProfile(
        name="RoDe",
        cuda_efficiency=0.50,
        memory_efficiency=0.70,
        l2_efficiency=0.32,
        imbalance_factor=1.05,
        notes="regular/residue row split, balanced; strongest CUDA-core baseline",
    ),
    with_sddmm=True,
    notes="State of the art on CUDA cores for both SpMM and SDDMM.",
)

GESPMM = _make_cuda_baseline(
    "GE-SpMM",
    "Huang et al., GE-SpMM with coalesced row caching [17]",
    CudaCoreParams(b_reuse=1.25, transaction_waste=1.05, index_ops_per_nnz=1.2),
    KernelProfile(
        name="GE-SpMM",
        cuda_efficiency=0.45,
        memory_efficiency=0.62,
        l2_efficiency=0.33,
        imbalance_factor=1.25,
        notes="coalesced row caching in shared memory",
    ),
    with_sddmm=False,
    notes="Shared-memory row caching (CRC) for SpMM.",
)

GNNADVISOR = _make_cuda_baseline(
    "GNNAdvisor",
    "Wang et al., GNNAdvisor runtime (OSDI'21) [44]",
    CudaCoreParams(b_reuse=1.15, transaction_waste=1.15, index_ops_per_nnz=2.0),
    KernelProfile(
        name="GNNAdvisor",
        cuda_efficiency=0.40,
        memory_efficiency=0.55,
        l2_efficiency=0.22,
        imbalance_factor=1.25,
        notes="2-D workload management tuned for GNN adjacency matrices",
    ),
    with_sddmm=False,
    notes="Adaptive 2-D workload management; FP32 CUDA cores.",
)

#: DGL's sparse backend (cuSPARSE-class kernels plus framework dispatch cost).
DGL_LIKE = _make_cuda_baseline(
    "DGL",
    "Deep Graph Library sparse backend [9]",
    CudaCoreParams(b_reuse=1.2, transaction_waste=1.05, index_ops_per_nnz=1.0),
    KernelProfile(
        name="DGL",
        cuda_efficiency=0.45,
        memory_efficiency=0.62,
        l2_efficiency=0.28,
        imbalance_factor=1.15,
        extra_launch_us=25.0,
        notes="cuSPARSE-class kernels plus framework dispatch overhead",
    ),
    with_sddmm=True,
    notes="End-to-end GNN framework baseline of Figure 16.",
)

#: PyTorch Geometric: edge-wise parallelisation with gather/scatter.
PYG_LIKE = _make_cuda_baseline(
    "PyG",
    "PyTorch Geometric edge-wise backend [13]",
    CudaCoreParams(b_reuse=1.0, transaction_waste=1.4, index_ops_per_nnz=4.0),
    KernelProfile(
        name="PyG",
        cuda_efficiency=0.35,
        memory_efficiency=0.50,
        l2_efficiency=0.16,
        imbalance_factor=1.10,
        extra_launch_us=40.0,
        notes="edge-parallel gather/scatter with atomics on the output",
    ),
    with_sddmm=True,
    notes="Edge-wise parallelisation; materialises per-edge messages.",
)
