"""End-to-end GNN epoch-time estimation (Figure 16).

The paper's end-to-end time covers format translation, forward and backward
propagation and the weight update.  The sparse operators (SpMM, SDDMM) are
the part that differs between FlashSparse and the framework baselines; the
dense feature updates, softmax/loss and optimiser work are common to all
backends.  This module assembles a per-epoch estimate from:

* the backend's sparse-kernel cost models (one call per sparse op occurrence
  in forward + backward),
* a dense-GEMM term evaluated with the device's peak throughput at the
  backend's precision,
* per-kernel-launch framework overheads (already part of the profiles), a
  shared per-epoch host-side overhead every backend pays identically, and
* the one-off preprocessing (format translation) amortised over the epochs,
  which the paper reports to be <1 % of end-to-end time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.csr import CSRMatrix
from repro.gnn.backends import SparseBackend, make_backend
from repro.gpu.device import GPUSpec
from repro.precision.types import Precision


@dataclass
class EndToEndEstimate:
    """Breakdown of one estimated training epoch."""

    backend: str
    model: str
    device: str
    sparse_time_s: float
    dense_time_s: float
    overhead_time_s: float
    preprocessing_time_s: float

    @property
    def total_time_s(self) -> float:
        """Total estimated epoch time."""
        return self.sparse_time_s + self.dense_time_s + self.overhead_time_s + self.preprocessing_time_s


def _dense_flops_gcn(n_nodes: int, in_dim: int, hidden: int, out_dim: int, layers: int) -> float:
    """Dense FLOPs of one GCN forward+backward (feature updates H·W)."""
    dims = [in_dim] + [hidden] * (layers - 1) + [out_dim]
    forward = sum(2.0 * n_nodes * dims[i] * dims[i + 1] for i in range(layers))
    return 3.0 * forward  # backward costs roughly 2x the forward GEMMs


def _dense_flops_agnn(n_nodes: int, in_dim: int, hidden: int, out_dim: int, attention_layers: int) -> float:
    """Dense FLOPs of one AGNN forward+backward (embedding + classifier + norms)."""
    forward = 2.0 * n_nodes * (in_dim * hidden + hidden * out_dim)
    norms = 4.0 * n_nodes * hidden * attention_layers
    return 3.0 * (forward + norms)


def _dense_peak(device: GPUSpec, precision: Precision) -> float:
    """Dense-GEMM peak used for the feature-update term."""
    if precision is Precision.FP32:
        return device.cuda_fp32_flops * 0.7
    return device.tcu_flops(precision.value) * 0.5


def estimate_epoch_time(
    model_kind: str,
    adjacency: CSRMatrix,
    backend: SparseBackend | str,
    device: GPUSpec,
    in_dim: int = 128,
    hidden: int = 128,
    out_dim: int = 16,
    num_layers: int = 2,
    epochs_amortized: int = 300,
    shared_epoch_overhead_us: float = 300.0,
) -> EndToEndEstimate:
    """Estimate one training epoch of ``model_kind`` ("gcn" or "agnn").

    Parameters mirror the paper's setup: hidden dimension 128 for GCN and 32
    for AGNN (pass ``hidden=32``), 300 training epochs for amortising the
    one-off ME-BCRS translation.
    """
    if isinstance(backend, str):
        backend = make_backend(backend, adjacency)
    model_kind = model_kind.strip().lower()
    n_nodes = adjacency.n_rows

    if model_kind == "gcn":
        # One SpMM per layer forward, one transposed SpMM per layer backward.
        spmm_calls = 2 * num_layers
        sddmm_calls = 0
        dense_flops = _dense_flops_gcn(n_nodes, in_dim, hidden, out_dim, num_layers)
        sparse_width = hidden
    elif model_kind == "agnn":
        # Per attention layer: SDDMM + SpMM forward; SDDMM-shaped and two
        # SpMM-shaped kernels backward (gradients w.r.t. values and features).
        spmm_calls = 3 * num_layers
        sddmm_calls = 2 * num_layers
        dense_flops = _dense_flops_agnn(n_nodes, in_dim, hidden, out_dim, num_layers)
        sparse_width = hidden
    else:
        raise ValueError("model_kind must be 'gcn' or 'agnn'")

    spmm_time = backend.spmm_time(sparse_width, device)
    sddmm_time = backend.sddmm_time(sparse_width, device) if sddmm_calls else 0.0
    sparse_time = spmm_calls * spmm_time + sddmm_calls * sddmm_time

    dense_time = dense_flops / _dense_peak(device, backend.precision)
    # Softmax / loss / optimiser and activation kernels: a handful of
    # elementwise passes over the feature matrices.
    elementwise_bytes = 10.0 * n_nodes * hidden * 4
    dense_time += elementwise_bytes / device.mem_bandwidth_bps

    # Framework dispatch overhead beyond the kernels themselves, plus the
    # per-epoch host-side work (data movement, loss, optimiser, Python glue)
    # that every backend pays identically.
    total_kernel_launches = spmm_calls + sddmm_calls + 4 * num_layers
    overhead = total_kernel_launches * backend.framework_overhead_us * 1e-6
    overhead += shared_epoch_overhead_us * 1e-6

    # One-off CSR -> ME-BCRS (or SGT) translation, amortised over training.
    translation_bytes = adjacency.nnz * 12
    preprocessing = (translation_bytes / device.mem_bandwidth_bps) / max(1, epochs_amortized)

    return EndToEndEstimate(
        backend=backend.name,
        model=model_kind,
        device=device.name,
        sparse_time_s=sparse_time,
        dense_time_s=dense_time,
        overhead_time_s=overhead,
        preprocessing_time_s=preprocessing,
    )
