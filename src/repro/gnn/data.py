"""Synthetic node-classification datasets for the GNN accuracy study.

Table 8 of the paper trains GCN on Cora, ELL, Pubmed, Questions and
Minesweeper and shows that TF32/FP16 match FP32 accuracy.  Those datasets are
not available offline, so each gets a planted-community stand-in: a
stochastic-block-model graph whose node features are noisy community
indicators.  What matters for the reproduction is the *relative* accuracy of
the precisions on the same learnable problem, which the stand-ins preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.generators import block_community_matrix
from repro.formats.csr import CSRMatrix
from repro.ops import segment_ids, segment_sum
from repro.utils.random import default_rng


@dataclass
class NodeClassificationDataset:
    """A graph with node features, labels and train/val/test splits."""

    name: str
    adjacency: CSRMatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.adjacency.n_rows

    @property
    def num_features(self) -> int:
        """Feature dimensionality."""
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of label classes."""
        return int(self.labels.max()) + 1

    def normalized_adjacency(self, add_self_loops: bool = True) -> CSRMatrix:
        """GCN's symmetrically normalised adjacency ``D^-1/2 (A + I) D^-1/2``."""
        a = self.adjacency.to_scipy().astype(np.float64)
        a = ((a + a.T) > 0).astype(np.float64)  # symmetrise the pattern
        if add_self_loops:
            import scipy.sparse as sp

            a = a + sp.eye(a.shape[0], format="csr")
        # Node degrees are one row-segment sum over the CSR values.
        deg = segment_sum(a.data, a.indptr, accumulate="fp64")
        inv_sqrt = np.zeros_like(deg)
        nonzero = deg > 0
        inv_sqrt[nonzero] = 1.0 / np.sqrt(deg[nonzero])
        # D^-1/2 A D^-1/2 scales entry (i, j) by inv_sqrt[i] * inv_sqrt[j];
        # rows expand through segment_ids, columns index directly.
        scaled = a.copy()
        scaled.data = a.data * inv_sqrt[segment_ids(a.indptr)] * inv_sqrt[a.indices]
        return CSRMatrix.from_scipy(scaled)


@dataclass(frozen=True)
class DatasetSpec:
    """Generation parameters of one Table-8 stand-in dataset."""

    name: str
    num_nodes: int
    num_classes: int
    num_features: int
    avg_degree: float
    homophily: float  # fraction of edges that stay within a community
    feature_noise: float
    #: Scale of the class-centroid signal relative to unit feature noise;
    #: smaller values make the classification problem harder.
    feature_signal: float = 1.0
    train_fraction: float = 0.3


#: Stand-ins for the datasets of Table 8 (sizes scaled to train in seconds).
#: Noise / homophily are tuned so the learnable difficulty roughly matches the
#: accuracy ranges the paper reports (Cora/Pubmed in the 70-80 % band, the
#: easier datasets in the 90 %+ band).
TABLE8_DATASETS: dict[str, DatasetSpec] = {
    "cora": DatasetSpec("Cora", 1024, 7, 64, 4.0, 0.45, 1.0, feature_signal=0.16),
    "ell": DatasetSpec("ELL", 1536, 4, 32, 3.3, 0.85, 1.0, feature_signal=0.55),
    "pubmed": DatasetSpec("Pubmed", 1536, 3, 48, 4.5, 0.42, 1.0, feature_signal=0.15),
    "questions": DatasetSpec("Questions", 1280, 2, 32, 6.0, 0.82, 1.0, feature_signal=0.65),
    "minesweeper": DatasetSpec("Minesweeper", 1024, 2, 24, 8.0, 0.40, 1.0, feature_signal=0.22),
}


def make_dataset(name: str, seed: int | None = None) -> NodeClassificationDataset:
    """Generate the stand-in dataset for ``name`` (see :data:`TABLE8_DATASETS`)."""
    key = name.strip().lower()
    if key not in TABLE8_DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(TABLE8_DATASETS)}")
    spec = TABLE8_DATASETS[key]
    if seed is None:
        seed = int.from_bytes(key.encode("utf-8"), "little") % (2**31)
    rng = default_rng(seed)

    labels = rng.integers(0, spec.num_classes, size=spec.num_nodes)
    # Community structure drives both the graph and the features.
    adjacency = _community_graph(labels, spec, rng)
    features = _community_features(labels, spec, rng)

    order = rng.permutation(spec.num_nodes)
    n_train = int(spec.train_fraction * spec.num_nodes)
    n_val = int(0.2 * spec.num_nodes)
    train_mask = np.zeros(spec.num_nodes, dtype=bool)
    val_mask = np.zeros(spec.num_nodes, dtype=bool)
    test_mask = np.zeros(spec.num_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True

    return NodeClassificationDataset(
        name=spec.name,
        adjacency=adjacency,
        features=features.astype(np.float32),
        labels=labels.astype(np.int64),
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
    )


def _community_graph(labels: np.ndarray, spec: DatasetSpec, rng: np.random.Generator) -> CSRMatrix:
    """Stochastic-block-model edges whose blocks are the label classes."""
    n = labels.shape[0]
    degrees = np.maximum(1, rng.poisson(spec.avg_degree, size=n)).astype(np.int64)
    total = int(degrees.sum())
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    intra = rng.random(total) < spec.homophily

    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    starts = np.searchsorted(sorted_labels, np.arange(spec.num_classes), side="left")
    ends = np.searchsorted(sorted_labels, np.arange(spec.num_classes), side="right")
    src_label = labels[src]
    lo = starts[src_label]
    hi = np.maximum(ends[src_label], lo + 1)
    intra_dst = order[(lo + (rng.random(total) * (hi - lo)).astype(np.int64)).clip(0, n - 1)]
    inter_dst = rng.integers(0, n, size=total)
    dst = np.where(intra, intra_dst, inter_dst)
    keep = src != dst
    return CSRMatrix.from_coo(src[keep], dst[keep], None, (n, n))


def _community_features(labels: np.ndarray, spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    """Noisy community-indicator features."""
    centroids = spec.feature_signal * rng.standard_normal((spec.num_classes, spec.num_features))
    features = centroids[labels] + spec.feature_noise * rng.standard_normal(
        (labels.shape[0], spec.num_features)
    )
    return features
