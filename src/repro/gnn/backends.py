"""Sparse-operator backends for GNN training.

A :class:`SparseBackend` owns a fixed adjacency pattern (the graph does not
change during training — the "static sparse scenario" of Section 4.4) and
provides:

* numerics for SpMM / SDDMM / edge-softmax forward and backward passes, with
  the backend's precision emulation applied (FP16/TF32 for FlashSparse and
  TC-GNN, FP32 for the CUDA-core frameworks);
* estimated per-call kernel times on a target device, produced by the same
  cost models the kernel benchmarks use, so the end-to-end comparison of
  Figure 16 charges every backend its own sparse-kernel cost while the dense
  (feature-update) work is identical across backends.

The heavy numerics go through SciPy's CSR routines: a CUDA-core FP32 SpMM
and a CPU FP32 SpMM compute the same values, and the tensor-core precisions
are emulated by quantising the operands first.  The hardware-cost accounting
lives in the cost models, not in the arithmetic path, so training remains
fast enough to run the accuracy study (Table 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.baselines import get_baseline
from repro.formats.csr import CSRMatrix
from repro.gpu.device import GPUSpec
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import FLASH_SDDMM_PROFILE, sddmm_flash_cost
from repro.kernels.spmm_flash import FLASH_SPMM_PROFILE, spmm_flash_cost
from repro.ops import segment_ids, segment_softmax, segment_softmax_backward
from repro.perfmodel.model import KernelProfile, estimate_time
from repro.precision.types import Precision, quantize

#: Edge-softmax implementations a backend can run: the vectorized segment
#: ops (default) or the per-row oracle loops the parity tests check against.
EDGE_SOFTMAX_IMPLS: tuple[str, ...] = ("vectorized", "reference")

#: Names accepted by :func:`make_backend`.
BACKEND_NAMES: tuple[str, ...] = (
    "flashsparse-fp16",
    "flashsparse-tf32",
    "dgl",
    "pyg",
    "tcgnn",
)


@dataclass
class OpStats:
    """Book-keeping of the sparse operator calls a backend served."""

    spmm_calls: int = 0
    sddmm_calls: int = 0
    edge_softmax_calls: int = 0


@dataclass
class SparseBackend:
    """Sparse kernels + cost model for one graph and one backend flavour."""

    name: str
    adjacency: CSRMatrix
    precision: Precision
    #: cost function handles resolved by :func:`make_backend`
    _spmm_cost: callable = field(repr=False, default=None)
    _sddmm_cost: callable = field(repr=False, default=None)
    _spmm_profile: KernelProfile = field(repr=False, default=None)
    _sddmm_profile: KernelProfile = field(repr=False, default=None)
    stats: OpStats = field(default_factory=OpStats)
    #: Which edge-softmax path to run; "reference" keeps the per-row loops
    #: alive as the oracle for parity tests and the epoch benchmark.
    edge_softmax_impl: str = "vectorized"
    #: Memoised kernel-time estimates keyed by (op, dense width, device spec).
    #: The adjacency is static during training, so each (op, width, device)
    #: combination is priced exactly once per run instead of once per epoch;
    #: the CSR→blocked translation underneath is additionally shared through
    #: the LRU cache of :mod:`repro.formats.cache`.
    _time_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._resolved_edge_softmax_impl()
        csr = self.adjacency.to_scipy().astype(np.float32)
        csr.sort_indices()
        self._csr = csr
        self._csr_t = csr.T.tocsr()
        self._rows = segment_ids(self.adjacency.indptr)
        self._cols = self.adjacency.indices.astype(np.int64)

    # ----------------------------------------------------------- numerics
    def _quantize(self, array: np.ndarray) -> np.ndarray:
        return quantize(array, self.precision).astype(np.float32)

    def _matrix_with(self, values: np.ndarray | None) -> sp.csr_matrix:
        if values is None:
            return self._csr
        matrix = self._csr.copy()
        matrix.data = np.asarray(values, dtype=np.float32)
        return matrix

    def spmm_forward(self, values: np.ndarray | None, dense: np.ndarray) -> np.ndarray:
        """Forward SpMM: ``A(values) @ dense`` with precision emulation."""
        self.stats.spmm_calls += 1
        matrix = self._matrix_with(None if values is None else self._quantize(values))
        return np.asarray(matrix @ self._quantize(dense), dtype=np.float32)

    def spmm_backward(
        self, values: np.ndarray | None, dense: np.ndarray, grad_out: np.ndarray
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Backward SpMM: gradients w.r.t. the edge values and the dense input."""
        self.stats.spmm_calls += 1  # the transposed SpMM of the backward pass
        grad_out_q = self._quantize(grad_out)
        if values is None:
            matrix_t = self._csr_t
        else:
            matrix_t = self._matrix_with(self._quantize(values)).T.tocsr()
        grad_dense = np.asarray(matrix_t @ grad_out_q, dtype=np.float32)
        grad_values = None
        if values is not None:
            # dL/dvalue_e = <grad_out[row_e], dense[col_e]> — an SDDMM.
            self.stats.sddmm_calls += 1
            dense_q = self._quantize(dense)
            grad_values = np.einsum(
                "ij,ij->i", grad_out_q[self._rows], dense_q[self._cols]
            ).astype(np.float32)
        return grad_values, grad_dense

    def sddmm_forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Forward SDDMM: one dot product per stored edge (CSR order)."""
        self.stats.sddmm_calls += 1
        a_q = self._quantize(a)
        b_q = self._quantize(b)
        return np.einsum("ij,ij->i", a_q[self._rows], b_q[self._cols]).astype(np.float32)

    def sddmm_backward(
        self, a: np.ndarray, b: np.ndarray, grad_edges: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Backward SDDMM: scatter the per-edge gradients into both inputs."""
        self.stats.spmm_calls += 2  # two SpMM-shaped scatters
        grad = np.asarray(grad_edges, dtype=np.float32)
        weighted = self._matrix_with(grad)
        grad_a = np.asarray(weighted @ self._quantize(b), dtype=np.float32)
        grad_b = np.asarray(weighted.T.tocsr() @ self._quantize(a), dtype=np.float32)
        return grad_a, grad_b

    def edge_softmax_forward(self, logits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise softmax over edge values; returns (softmax, cache).

        The default path is one vectorized :func:`repro.ops.segment_softmax`
        over the adjacency's ``indptr`` segments; ``edge_softmax_impl=
        "reference"`` runs the per-row oracle loop instead.
        """
        self.stats.edge_softmax_calls += 1
        if self._resolved_edge_softmax_impl() == "reference":
            out32 = self.reference_edge_softmax_forward(logits)
        else:
            out32 = segment_softmax(
                np.asarray(logits, dtype=np.float64), self.adjacency.indptr
            )
        return out32, out32

    def edge_softmax_backward(self, softmax: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        """Backward of the row-wise softmax (vectorized segment reduction)."""
        if self._resolved_edge_softmax_impl() == "reference":
            return self.reference_edge_softmax_backward(softmax, grad_out)
        return segment_softmax_backward(softmax, grad_out, self.adjacency.indptr)

    def _resolved_edge_softmax_impl(self) -> str:
        # Re-validated at dispatch, not just in __post_init__: the knob is
        # normally set by attribute assignment after make_backend(), and a
        # typo there must not silently fall back to the vectorized path.
        if self.edge_softmax_impl not in EDGE_SOFTMAX_IMPLS:
            raise ValueError(
                f"edge_softmax_impl must be one of {EDGE_SOFTMAX_IMPLS}, "
                f"got {self.edge_softmax_impl!r}"
            )
        return self.edge_softmax_impl

    # The per-row loops below are the oracle the vectorized paths are tested
    # against (and what `edge_softmax_impl="reference"` runs): float64 per-row
    # softmax, float32 per-row backward, empty rows skipped.
    def reference_edge_softmax_forward(self, logits: np.ndarray) -> np.ndarray:
        """Per-row oracle for :meth:`edge_softmax_forward`."""
        logits = np.asarray(logits, dtype=np.float64)
        indptr = self.adjacency.indptr
        out = np.zeros_like(logits, dtype=np.float64)
        for r in range(self.adjacency.n_rows):
            lo, hi = int(indptr[r]), int(indptr[r + 1])
            if lo == hi:
                continue
            seg = logits[lo:hi]
            seg = seg - seg.max()
            e = np.exp(seg)
            out[lo:hi] = e / e.sum()
        return out.astype(np.float32)

    def reference_edge_softmax_backward(
        self, softmax: np.ndarray, grad_out: np.ndarray
    ) -> np.ndarray:
        """Per-row oracle for :meth:`edge_softmax_backward`."""
        indptr = self.adjacency.indptr
        grad = np.zeros_like(softmax, dtype=np.float32)
        for r in range(self.adjacency.n_rows):
            lo, hi = int(indptr[r]), int(indptr[r + 1])
            if lo == hi:
                continue
            s = softmax[lo:hi]
            g = grad_out[lo:hi]
            grad[lo:hi] = s * (g - float((g * s).sum()))
        return grad

    # --------------------------------------------------------- cost model
    def _cached_time(self, key: tuple, device: GPUSpec, compute) -> float:
        # GPUSpec carries an unhashable `extra` dict, so the key uses id();
        # the entry pins the device object so the id cannot be recycled, and
        # an identity check guards against a different spec under a stale key.
        entry = self._time_cache.get(key)
        if entry is None or entry[0] is not device:
            entry = (device, compute())
            self._time_cache[key] = entry
        return entry[1]

    def spmm_time(self, n_dense: int, device: GPUSpec) -> float:
        """Estimated time of one SpMM call with an ``n_dense``-wide operand."""
        return self._cached_time(
            ("spmm", int(n_dense), id(device)),
            device,
            lambda: estimate_time(
                self._spmm_cost(self.adjacency, n_dense), device, self._spmm_profile
            ).total_time_s,
        )

    def sddmm_time(self, k_dense: int, device: GPUSpec) -> float:
        """Estimated time of one SDDMM call over a ``k_dense`` feature dim."""
        if self._sddmm_cost is None:
            # Backends without a dedicated SDDMM fall back to an SpMM-shaped cost.
            return self.spmm_time(k_dense, device)
        return self._cached_time(
            ("sddmm", int(k_dense), id(device)),
            device,
            lambda: estimate_time(
                self._sddmm_cost(self.adjacency, k_dense), device, self._sddmm_profile
            ).total_time_s,
        )

    @property
    def framework_overhead_us(self) -> float:
        """Per-kernel framework dispatch overhead (already inside the profiles)."""
        return self._spmm_profile.extra_launch_us


#: Execution modes of :class:`ServedBackend`: ``"fused"`` sends one
#: ``submit_layer`` request per attention layer (protocol v4), ``"composed"``
#: the classic three requests (SDDMM → edge softmax → SpMM).
SERVED_MODES: tuple[str, ...] = ("fused", "composed")


@dataclass
class ServedBackend:
    """Attention layers evaluated through a :class:`repro.serve.Server`.

    The training backends above run kernels in-process; this is the *served*
    path: the adjacency lives with a server (in-process engine, multiprocess
    shard scheduler, or a multi-host cluster head) and every layer
    evaluation is a client request.  In ``"fused"`` mode one layer is one
    ``submit_layer`` round trip; in ``"composed"`` mode it is the historic
    three (SDDMM → edge softmax → SpMM over the attention matrix), kept as
    the bit-identical reference path.  :class:`OpStats` counts the *logical*
    sparse operators, so a layer bumps all three counters in either mode —
    the fused transport must not hide work from the accounting.
    """

    server: object
    adjacency: CSRMatrix
    mode: str = "fused"
    #: Queueing deadline / dispatch class forwarded to every submission.
    timeout: float | None = None
    priority: int = 0
    stats: OpStats = field(default_factory=OpStats)

    def __post_init__(self) -> None:
        if self.mode not in SERVED_MODES:
            raise ValueError(f"mode must be one of {SERVED_MODES}, got {self.mode!r}")

    # ----------------------------------------------------------- layers
    def attention_layer(
        self,
        a: np.ndarray,
        b: np.ndarray,
        x: np.ndarray,
        scale: float | None = None,
        scale_by_mask: bool = False,
    ) -> np.ndarray:
        """One attention layer ``spmm(edge_softmax(scale · sddmm(a, b)), x)``.

        One server round trip when ``mode="fused"``, three when
        ``"composed"``; the outputs are bit-identical (the parity tests pin
        this), so callers choose purely on transport cost.
        """
        self.stats.sddmm_calls += 1
        self.stats.edge_softmax_calls += 1
        self.stats.spmm_calls += 1
        if self.mode == "fused":
            result = self.server.submit_layer(
                self.adjacency,
                a,
                b,
                x,
                scale=scale,
                scale_by_mask=scale_by_mask,
                timeout=self.timeout,
                priority=self.priority,
            ).result()
            return np.asarray(result.values, dtype=np.float32)
        return self._attention_layer_composed(a, b, x, scale, scale_by_mask)

    def _attention_layer_composed(
        self,
        a: np.ndarray,
        b: np.ndarray,
        x: np.ndarray,
        scale: float | None,
        scale_by_mask: bool,
    ) -> np.ndarray:
        # Imported here so importing the training backends does not pull in
        # the whole serving stack.
        from repro.serve.program import attention_csr, gather_edge_values

        sddmm = self.server.submit_sddmm(
            self.adjacency,
            a,
            b,
            scale_by_mask=scale_by_mask,
            timeout=self.timeout,
            priority=self.priority,
        ).result()
        logits = gather_edge_values(
            sddmm.output.partition, self.adjacency.indptr, sddmm.output.vector_values
        )
        if scale is not None:
            logits = (logits * np.float32(scale)).astype(np.float32)
        attention = self.server.submit_edge_softmax(
            self.adjacency, logits, timeout=self.timeout, priority=self.priority
        ).result()
        weighted = attention_csr(self.adjacency, attention.values)
        spmm = self.server.submit_spmm(
            weighted, x, timeout=self.timeout, priority=self.priority
        ).result()
        return np.asarray(spmm.values, dtype=np.float32)

    def agnn_forward(self, h: np.ndarray, beta: float = 1.0) -> np.ndarray:
        """One AGNN layer against the server: cosine attention over
        row-normalised features scaled by ``beta``
        (cf. :class:`repro.gnn.layers.AGNNLayer`)."""
        h = np.ascontiguousarray(np.asarray(h, dtype=np.float32))
        norms = np.sqrt((h**2).sum(axis=1, keepdims=True)) + np.float32(1e-12)
        h_norm = np.ascontiguousarray((h / norms).astype(np.float32))
        return self.attention_layer(h_norm, h_norm, h, scale=float(beta))

    def segment_matmul(self, data, offsets, weights) -> np.ndarray:
        """RGCN-style typed linear through the server (one request)."""
        result = self.server.submit_segment_matmul(
            data, offsets, weights, timeout=self.timeout, priority=self.priority
        ).result()
        return np.asarray(result.values, dtype=np.float32)


def make_backend(name: str, adjacency: CSRMatrix) -> SparseBackend:
    """Build a :class:`SparseBackend` for one of :data:`BACKEND_NAMES`."""
    key = name.strip().lower()
    if key in ("flashsparse-fp16", "flashsparse", "fp16"):
        config = FlashSparseConfig(precision=Precision.FP16, engine="batched")
        return SparseBackend(
            name="FlashSparse-FP16",
            adjacency=adjacency,
            precision=Precision.FP16,
            _spmm_cost=lambda m, n: spmm_flash_cost(m, n, config),
            _sddmm_cost=lambda m, k: sddmm_flash_cost(m, k, config),
            _spmm_profile=FLASH_SPMM_PROFILE,
            _sddmm_profile=FLASH_SDDMM_PROFILE,
        )
    if key in ("flashsparse-tf32", "tf32"):
        config = FlashSparseConfig(precision=Precision.TF32, engine="batched")
        return SparseBackend(
            name="FlashSparse-TF32",
            adjacency=adjacency,
            precision=Precision.TF32,
            _spmm_cost=lambda m, n: spmm_flash_cost(m, n, config),
            _sddmm_cost=lambda m, k: sddmm_flash_cost(m, k, config),
            _spmm_profile=FLASH_SPMM_PROFILE,
            _sddmm_profile=FLASH_SDDMM_PROFILE,
        )
    if key in ("dgl", "pyg"):
        baseline = get_baseline("DGL" if key == "dgl" else "PyG")
        return SparseBackend(
            name=baseline.name,
            adjacency=adjacency,
            precision=Precision.FP32,
            _spmm_cost=baseline.spmm_cost,
            _sddmm_cost=baseline.sddmm_cost,
            _spmm_profile=baseline.profile,
            _sddmm_profile=baseline.profile,
        )
    if key in ("tcgnn", "tc-gnn"):
        baseline = get_baseline("TC-GNN")
        return SparseBackend(
            name=baseline.name,
            adjacency=adjacency,
            precision=Precision.TF32,
            _spmm_cost=baseline.spmm_cost,
            _sddmm_cost=baseline.sddmm_cost,
            _spmm_profile=baseline.profile,
            _sddmm_profile=baseline.profile,
        )
    raise KeyError(f"unknown backend {name!r}; available: {BACKEND_NAMES}")
