"""Training loop, optimiser and accuracy evaluation for the GNN case study."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gnn import autograd as ag
from repro.gnn.autograd import Parameter, Tensor, no_grad
from repro.gnn.backends import SparseBackend, make_backend
from repro.gnn.data import NodeClassificationDataset
from repro.gnn.layers import Module
from repro.gnn.models import GCN


class Adam:
    """The Adam optimiser (the standard choice for GCN training)."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01, betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._t += 1
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class TrainResult:
    """Outcome of one training run."""

    backend: str
    dataset: str
    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    loss_history: list[float] = field(default_factory=list)
    epochs: int = 0


def evaluate_accuracy(model: Module, backend: SparseBackend, features: Tensor, labels: np.ndarray, mask: np.ndarray) -> float:
    """Top-1 accuracy of ``model`` on the rows selected by ``mask``."""
    model.eval()
    with no_grad():
        log_probs = model(backend, features)
    model.train()
    predictions = log_probs.data.argmax(axis=1)
    mask = np.asarray(mask, dtype=bool)
    if mask.sum() == 0:
        return 0.0
    return float((predictions[mask] == labels[mask]).mean())


def train_node_classifier(
    model: Module,
    dataset: NodeClassificationDataset,
    backend: SparseBackend | str,
    epochs: int = 100,
    lr: float = 0.01,
    weight_decay: float = 5e-4,
) -> TrainResult:
    """Train a node classifier end to end and report split accuracies.

    ``backend`` can be a prepared :class:`SparseBackend` (bound to the
    dataset's normalised adjacency) or a backend name, in which case the
    normalised adjacency is built here.
    """
    if isinstance(backend, str):
        backend = make_backend(backend, dataset.normalized_adjacency())
    features = Tensor(dataset.features)
    labels = dataset.labels
    optimiser = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    losses: list[float] = []

    for _ in range(epochs):
        optimiser.zero_grad()
        log_probs = model(backend, features)
        loss = ag.nll_loss(log_probs, labels, dataset.train_mask)
        loss.backward()
        optimiser.step()
        losses.append(float(loss.data))

    return TrainResult(
        backend=backend.name,
        dataset=dataset.name,
        train_accuracy=evaluate_accuracy(model, backend, features, labels, dataset.train_mask),
        val_accuracy=evaluate_accuracy(model, backend, features, labels, dataset.val_mask),
        test_accuracy=evaluate_accuracy(model, backend, features, labels, dataset.test_mask),
        loss_history=losses,
        epochs=epochs,
    )


def train_gcn_accuracy(
    dataset: NodeClassificationDataset,
    backend_name: str,
    epochs: int = 120,
    hidden: int = 64,
    num_layers: int = 3,
    seed: int = 0,
) -> TrainResult:
    """Convenience wrapper used by the Table-8 benchmark: train a GCN."""
    model = GCN(
        in_features=dataset.num_features,
        hidden_features=hidden,
        num_classes=dataset.num_classes,
        num_layers=num_layers,
        dropout=0.4,
        seed=seed,
    )
    return train_node_classifier(model, dataset, backend_name, epochs=epochs)
