"""Graph neural network substrate (Section 4.4 of the paper).

The paper integrates FlashSparse into PyTorch and trains GCN and AGNN
end-to-end.  PyTorch is not available here, so this subpackage provides the
pieces needed to reproduce the end-to-end case study:

* :mod:`repro.gnn.autograd` — a small reverse-mode automatic differentiation
  engine over NumPy arrays (tensors, matmul/spmm/softmax/... ops);
* :mod:`repro.gnn.backends` — sparse-operator backends: FlashSparse (FP16 /
  TF32) and the framework baselines (DGL-like, PyG-like, TC-GNN), each
  providing numerics plus an estimated per-call kernel time;
* :mod:`repro.gnn.layers` / :mod:`repro.gnn.models` — GCN and AGNN;
* :mod:`repro.gnn.data` — synthetic node-classification datasets standing in
  for Cora / Pubmed / ELL / Questions / Minesweeper (Table 8);
* :mod:`repro.gnn.train` — the training loop and accuracy evaluation;
* :mod:`repro.gnn.end_to_end` — per-epoch time estimation for Figure 16.
"""

from repro.gnn.autograd import Tensor, Parameter, no_grad
from repro.gnn.backends import (
    BACKEND_NAMES,
    SERVED_MODES,
    ServedBackend,
    SparseBackend,
    make_backend,
)
from repro.gnn.layers import GCNLayer, AGNNLayer
from repro.gnn.models import GCN, AGNN
from repro.gnn.data import NodeClassificationDataset, make_dataset, TABLE8_DATASETS
from repro.gnn.train import TrainResult, train_node_classifier, evaluate_accuracy
from repro.gnn.end_to_end import EndToEndEstimate, estimate_epoch_time

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "SparseBackend",
    "ServedBackend",
    "SERVED_MODES",
    "make_backend",
    "BACKEND_NAMES",
    "GCNLayer",
    "AGNNLayer",
    "GCN",
    "AGNN",
    "NodeClassificationDataset",
    "make_dataset",
    "TABLE8_DATASETS",
    "TrainResult",
    "train_node_classifier",
    "evaluate_accuracy",
    "EndToEndEstimate",
    "estimate_epoch_time",
]
