"""GNN layers: graph convolution (GCN) and attention aggregation (AGNN).

The layers express exactly the operator mix the paper's case study uses
(Section 4.4): GCN's feature aggregation is one SpMM per layer; AGNN first
computes per-edge attention with an SDDMM, normalises it with an edge-wise
softmax, and aggregates with an SpMM whose values are the attention weights.
"""

from __future__ import annotations

import numpy as np

from repro.gnn import autograd as ag
from repro.gnn.autograd import Parameter, Tensor
from repro.gnn.backends import SparseBackend
from repro.utils.random import default_rng


class Module:
    """Minimal module base: parameter collection and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of the module (recursively)."""
        params: list[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def train(self) -> None:
        """Switch to training mode (enables dropout)."""
        self.training = True
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value.train()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train()

    def eval(self) -> None:
        """Switch to evaluation mode (disables dropout)."""
        self.training = False
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value.eval()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.eval()


class Linear(Module):
    """Dense affine layer ``y = x W + b`` (Glorot-initialised)."""

    def __init__(self, in_features: int, out_features: int, seed=None, bias: bool = True):
        super().__init__()
        rng = default_rng(seed)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-bound, bound, size=(in_features, out_features)), name="W")
        self.bias = Parameter(np.zeros(out_features), name="b") if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = ag.matmul(x, self.weight)
        if self.bias is not None:
            out = ag.add(out, self.bias)
        return out


class GCNLayer(Module):
    """One graph-convolution layer: ``H' = Â (H W) + b``.

    ``Â`` is the (symmetrically normalised) adjacency held by the backend;
    the aggregation is the SpMM the paper accelerates.
    """

    def __init__(self, in_features: int, out_features: int, seed=None):
        super().__init__()
        self.linear = Linear(in_features, out_features, seed=seed)

    def __call__(self, backend: SparseBackend, h: Tensor) -> Tensor:
        support = self.linear(h)
        return ag.spmm(backend, None, support)


class AGNNLayer(Module):
    """One attention-based aggregation layer (AGNN, Thekumparampil et al.).

    Per edge ``(i, j)`` the attention logit is ``beta * cos(h_i, h_j)``
    (an SDDMM over row-normalised features), normalised with a per-row
    softmax, and the new features are the attention-weighted neighbour sum
    (an SpMM whose edge values are the attention coefficients).
    """

    def __init__(self, init_beta: float = 1.0):
        super().__init__()
        self.beta = Parameter(np.array([init_beta], dtype=np.float32), name="beta")

    def __call__(self, backend: SparseBackend, h: Tensor) -> Tensor:
        h_norm = ag.row_l2_normalize(h)
        cos = ag.sddmm(backend, h_norm, h_norm)
        logits = ag.mul(cos, self.beta)
        attention = ag.edge_softmax(backend, logits)
        return ag.spmm(backend, attention, h)
