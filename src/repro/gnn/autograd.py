"""A small reverse-mode autodiff engine over NumPy arrays.

The engine supports exactly the operations the GCN and AGNN models need:
dense matmul, sparse-dense matmul (SpMM through a pluggable backend),
element-wise arithmetic, ReLU, dropout, bias addition, log-softmax and the
negative-log-likelihood loss, plus the per-edge softmax AGNN's attention
needs.  Gradients are accumulated by topologically sorting the recorded
graph, the same strategy PyTorch uses.

The goal is faithfulness and testability (gradients are verified against
finite differences in the test suite), not completeness.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (evaluation mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


class Tensor:
    """An array plus the bookkeeping needed for reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # -------------------------------------------------------------- backward
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (defaults to d(self)/d(self) = 1)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float32)

        # Topological order of the recorded graph.
        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            # Sum out broadcast dimensions (bias additions).
            extra = grad.ndim - self.data.ndim
            if extra > 0:
                grad = grad.sum(axis=tuple(range(extra)))
            for axis, size in enumerate(self.data.shape):
                if size == 1 and grad.shape[axis] != 1:
                    grad = grad.sum(axis=axis, keepdims=True)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------ operators
    def __add__(self, other) -> "Tensor":
        return add(self, _as_tensor(other))

    def __radd__(self, other) -> "Tensor":
        return add(_as_tensor(other), self)

    def __sub__(self, other) -> "Tensor":
        return add(self, mul(_as_tensor(other), _as_tensor(-1.0)))

    def __mul__(self, other) -> "Tensor":
        return mul(self, _as_tensor(other))

    def __rmul__(self, other) -> "Tensor":
        return mul(_as_tensor(other), self)

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, _as_tensor(other))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _make(data: np.ndarray, parents: Iterable[Tensor], backward: Callable[[], None] | None) -> Tensor:
    parents = tuple(parents)
    requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = parents
        out._backward = backward
    return out


# ---------------------------------------------------------------------------
# Primitive operations
# ---------------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise (broadcasting) addition."""
    out_data = a.data + b.data
    out = _make(out_data, (a, b), None)

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(out.grad)
        if b.requires_grad:
            b._accumulate(out.grad)

    out._backward = backward if out.requires_grad else None
    return out


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Element-wise (broadcasting) multiplication."""
    out = _make(a.data * b.data, (a, b), None)

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(out.grad * b.data)
        if b.requires_grad:
            b._accumulate(out.grad * a.data)

    out._backward = backward if out.requires_grad else None
    return out


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Dense matrix multiplication."""
    out = _make(a.data @ b.data, (a, b), None)

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(out.grad @ b.data.T)
        if b.requires_grad:
            b._accumulate(a.data.T @ out.grad)

    out._backward = backward if out.requires_grad else None
    return out


def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = a.data > 0
    out = _make(a.data * mask, (a,), None)

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(out.grad * mask)

    out._backward = backward if out.requires_grad else None
    return out


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout with keep-probability ``1 - p``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    if not training or p == 0.0:
        return a
    mask = (rng.random(a.data.shape) >= p).astype(np.float32) / (1.0 - p)
    out = _make(a.data * mask, (a,), None)

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(out.grad * mask)

    out._backward = backward if out.requires_grad else None
    return out


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    out = _make(out_data, (a,), None)

    def backward() -> None:
        if a.requires_grad:
            softmax = np.exp(out_data)
            grad = out.grad - softmax * out.grad.sum(axis=axis, keepdims=True)
            a._accumulate(grad)

    out._backward = backward if out.requires_grad else None
    return out


def nll_loss(log_probs: Tensor, labels: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Mean negative log likelihood over (optionally masked) rows."""
    labels = np.asarray(labels, dtype=np.int64)
    n = log_probs.data.shape[0]
    if mask is None:
        mask = np.ones(n, dtype=bool)
    mask = np.asarray(mask, dtype=bool)
    idx = np.nonzero(mask)[0]
    if idx.size == 0:
        raise ValueError("nll_loss requires at least one selected row")
    picked = log_probs.data[idx, labels[idx]]
    out = _make(np.array(-picked.mean(), dtype=np.float32), (log_probs,), None)

    def backward() -> None:
        if log_probs.requires_grad:
            grad = np.zeros_like(log_probs.data)
            grad[idx, labels[idx]] = -1.0 / idx.size
            log_probs._accumulate(grad * out.grad)

    out._backward = backward if out.requires_grad else None
    return out


def row_l2_normalize(a: Tensor, eps: float = 1e-12) -> Tensor:
    """Normalize each row to unit L2 norm (used by AGNN's cosine attention)."""
    norms = np.sqrt((a.data ** 2).sum(axis=1, keepdims=True)) + eps
    out_data = a.data / norms
    out = _make(out_data, (a,), None)

    def backward() -> None:
        if a.requires_grad:
            g = out.grad
            dot = (g * out_data).sum(axis=1, keepdims=True)
            a._accumulate((g - out_data * dot) / norms)

    out._backward = backward if out.requires_grad else None
    return out


def spmm(backend, values: Tensor | None, dense: Tensor) -> Tensor:
    """Sparse × dense product through a :class:`~repro.gnn.backends.SparseBackend`.

    ``values`` optionally replaces the sparse matrix's stored values (used by
    AGNN, whose attention coefficients are recomputed every layer); passing
    ``None`` uses the backend's fixed adjacency values.  Gradients flow into
    both ``dense`` and, when given, ``values``.
    """
    vals_data = None if values is None else values.data
    out_data = backend.spmm_forward(vals_data, dense.data)
    parents = (dense,) if values is None else (values, dense)
    out = _make(out_data, parents, None)

    def backward() -> None:
        grad_values, grad_dense = backend.spmm_backward(vals_data, dense.data, out.grad)
        if values is not None and values.requires_grad and grad_values is not None:
            values._accumulate(grad_values)
        if dense.requires_grad:
            dense._accumulate(grad_dense)

    out._backward = backward if out.requires_grad else None
    return out


def sddmm(backend, a: Tensor, b: Tensor) -> Tensor:
    """Sampled dense × dense product (per-edge dot products) via a backend.

    Returns a 1-D tensor with one value per stored nonzero of the backend's
    adjacency (in CSR order).
    """
    out_data = backend.sddmm_forward(a.data, b.data)
    out = _make(out_data, (a, b), None)

    def backward() -> None:
        grad_a, grad_b = backend.sddmm_backward(a.data, b.data, out.grad)
        if a.requires_grad:
            a._accumulate(grad_a)
        if b.requires_grad:
            b._accumulate(grad_b)

    out._backward = backward if out.requires_grad else None
    return out


def edge_softmax(backend, logits: Tensor) -> Tensor:
    """Row-wise softmax over per-edge values (AGNN's attention normalisation)."""
    out_data, softmax_cache = backend.edge_softmax_forward(logits.data)
    out = _make(out_data, (logits,), None)

    def backward() -> None:
        if logits.requires_grad:
            logits._accumulate(backend.edge_softmax_backward(softmax_cache, out.grad))

    out._backward = backward if out.requires_grad else None
    return out
