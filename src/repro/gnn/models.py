"""GNN models used in the end-to-end case study: GCN and AGNN."""

from __future__ import annotations

import numpy as np

from repro.gnn import autograd as ag
from repro.gnn.autograd import Tensor
from repro.gnn.backends import SparseBackend
from repro.gnn.layers import AGNNLayer, GCNLayer, Linear, Module
from repro.utils.random import default_rng


class GCN(Module):
    """Multi-layer graph convolutional network (Kipf & Welling).

    The paper's accuracy study (Table 8) trains a 5-layer GCN; the end-to-end
    performance study uses a hidden dimension of 128.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: int | None = None,
    ):
        super().__init__()
        if num_layers < 2:
            raise ValueError("GCN needs at least an input and an output layer")
        rng = default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        self.layers = [
            GCNLayer(dims[i], dims[i + 1], seed=rng.integers(0, 2**31)) for i in range(num_layers)
        ]
        self.dropout = dropout
        self._rng = rng

    def __call__(self, backend: SparseBackend, x: Tensor) -> Tensor:
        h = x
        for i, layer in enumerate(self.layers):
            h = layer(backend, h)
            if i < len(self.layers) - 1:
                h = ag.relu(h)
                h = ag.dropout(h, self.dropout, self._rng, training=self.training)
        return ag.log_softmax(h, axis=1)

    @property
    def num_spmm_per_forward(self) -> int:
        """Sparse aggregations per forward pass (one per layer)."""
        return len(self.layers)


class AGNN(Module):
    """Attention-based GNN: a linear embedding, K attention layers, a classifier.

    The attention layers are where the SDDMM → edge-softmax → SpMM pipeline
    of Section 3.4 is exercised; the paper uses a hidden dimension of 32.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_attention_layers: int = 2,
        dropout: float = 0.5,
        seed: int | None = None,
    ):
        super().__init__()
        if num_attention_layers < 1:
            raise ValueError("AGNN needs at least one attention layer")
        rng = default_rng(seed)
        self.embed = Linear(in_features, hidden_features, seed=rng.integers(0, 2**31))
        self.attention_layers = [AGNNLayer() for _ in range(num_attention_layers)]
        self.classify = Linear(hidden_features, num_classes, seed=rng.integers(0, 2**31))
        self.dropout = dropout
        self._rng = rng

    def __call__(self, backend: SparseBackend, x: Tensor) -> Tensor:
        h = ag.relu(self.embed(x))
        h = ag.dropout(h, self.dropout, self._rng, training=self.training)
        for layer in self.attention_layers:
            h = layer(backend, h)
        out = self.classify(h)
        return ag.log_softmax(out, axis=1)

    @property
    def num_attention(self) -> int:
        """Number of attention (SDDMM + SpMM) layers."""
        return len(self.attention_layers)
