"""Deterministic fault injection for the cluster transport.

Recovery correctness used to rest on SIGKILL tests: real subprocesses,
real sockets, real races — and therefore real flakiness and no way to
exercise a *specific* failure path (a truncated frame, a refused
reconnect, a reply delayed past the suspicion threshold) on demand.  This
module replaces that with a **seeded schedule of named faults** threaded
into the transport through an injectable socket wrapper:

* :class:`FaultPlan` holds the schedule.  Faults are armed with builder
  methods (``drop_connection``, ``delay_send``, ``truncate_frame``,
  ``corrupt_header``, ``corrupt_payload``, ``corrupt_checksum``,
  ``refuse_connect``, ``kill_host``) and each fires exactly once, at a
  deterministic point: the *n*-th transport frame of a matching message
  type within a matching scope (scopes are arbitrary labels — the head
  names them after host ids, a worker after itself).
* :class:`FaultSocket` wraps a real socket.  The transport announces each
  frame boundary through the ``notify_frame_send`` / ``notify_frame_recv``
  hooks (see :mod:`repro.cluster.transport`), so fault schedules count
  **frames, not bytes** — heartbeat noise cannot shift a schedule aimed at
  ``type="task"`` frames — and the wrapper then applies the armed fault to
  the frame's raw bytes.
* ``refuse_connect`` is consulted by the head's connect path through
  :meth:`FaultPlan.check_connect`, and ``kill_host`` is a *driver-level*
  action: a chaos driver polls :meth:`FaultPlan.actions_at` each step and
  performs the kill itself (the plan stays a pure schedule).

Every fired fault is appended to :attr:`FaultPlan.fired`, so a test
asserts not just that the system recovered but that the intended faults
actually happened.  The ``seed`` feeds corruption bytes and any future
randomised choices; two plans built identically with the same seed replay
identically.
"""

from __future__ import annotations

import random
import socket as socket_mod
import threading
import time
from dataclasses import dataclass, field


@dataclass
class FaultEvent:
    """One fault that actually fired (the plan's audit log entry)."""

    kind: str
    scope: str | None
    detail: str
    at_unix: float = field(default_factory=time.time)


@dataclass
class _ArmedFault:
    """One scheduled fault counting down to its trigger frame."""

    kind: str
    scope: str | None  # None matches every scope
    side: str  # "send" | "recv" | "connect" | "action"
    frame_type: str | None  # match only frames of this header type (send side)
    remaining: int  # fires when the countdown of matching events hits 0
    params: dict = field(default_factory=dict)
    fired: bool = False

    def matches(self, scope: str | None, frame_type: str | None) -> bool:
        if self.fired:
            return False
        if self.scope is not None and scope != self.scope:
            return False
        if self.frame_type is not None and frame_type != self.frame_type:
            return False
        return True


class FaultPlan:
    """A seeded, deterministic schedule of named transport faults.

    Build the schedule with the chainable fault methods, hand the plan to
    the component under test (``ClusterScheduler(fault_plan=plan)`` wraps
    every head-side connection; ``run_worker(socket_wrapper=plan.wrap)``
    wraps the worker side), then assert on :attr:`fired`.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._lock = threading.RLock()
        self._armed: list[_ArmedFault] = []
        self._actions: list[_ArmedFault] = []
        #: Audit log of every fault that fired, in firing order.
        self.fired: list[FaultEvent] = []

    # ------------------------------------------------------------- scheduling
    def _arm(self, fault: _ArmedFault) -> "FaultPlan":
        if fault.remaining < 1:
            raise ValueError("nth must be >= 1 (the nth matching frame fires the fault)")
        with self._lock:
            self._armed.append(fault)
        return self

    def drop_connection(
        self,
        *,
        nth: int = 1,
        type: str | None = "task",
        scope: str | None = None,
        side: str = "send",
    ) -> "FaultPlan":
        """Reset the connection at the ``nth`` matching frame boundary.

        ``side="send"`` drops before any byte of the frame leaves;
        ``side="recv"`` drops when the receiver starts reading its ``nth``
        frame in scope (recv-side frames have no type yet, so ``type`` is
        ignored there).
        """
        if side not in ("send", "recv"):
            raise ValueError("side must be 'send' or 'recv'")
        return self._arm(
            _ArmedFault(
                kind="drop_connection",
                scope=scope,
                side=side,
                frame_type=type if side == "send" else None,
                remaining=nth,
            )
        )

    def delay_send(
        self,
        ms: float,
        *,
        nth: int = 1,
        type: str | None = "task",
        scope: str | None = None,
    ) -> "FaultPlan":
        """Sleep ``ms`` milliseconds before sending the ``nth`` matching frame."""
        return self._arm(
            _ArmedFault(
                kind="delay_send",
                scope=scope,
                side="send",
                frame_type=type,
                remaining=nth,
                params={"ms": float(ms)},
            )
        )

    def truncate_frame(
        self,
        *,
        nth: int = 1,
        type: str | None = "task",
        scope: str | None = None,
    ) -> "FaultPlan":
        """Send the prefix and half the header of the ``nth`` matching frame,
        then reset — the peer observes a mid-frame EOF."""
        return self._arm(
            _ArmedFault(
                kind="truncate_frame",
                scope=scope,
                side="send",
                frame_type=type,
                remaining=nth,
            )
        )

    def corrupt_header(
        self,
        *,
        nth: int = 1,
        type: str | None = "task",
        scope: str | None = None,
    ) -> "FaultPlan":
        """Flip header bytes of the ``nth`` matching frame (seeded positions);
        the peer observes an undecodable JSON header."""
        return self._arm(
            _ArmedFault(
                kind="corrupt_header",
                scope=scope,
                side="send",
                frame_type=type,
                remaining=nth,
            )
        )

    def corrupt_payload(
        self,
        *,
        nth: int = 1,
        type: str | None = "task",
        scope: str | None = None,
        buffer: int = 0,
    ) -> "FaultPlan":
        """Flip bits inside declared ndarray buffer ``buffer`` of the ``nth``
        matching frame (seeded positions).

        This is the silent-corruption fault: the frame stays structurally
        valid — magic, header, lengths all parse — but the payload bytes no
        longer match their declared CRC32, so a v2 receiver detects it as a
        :class:`~repro.cluster.transport.FrameIntegrityError` (a v1
        receiver would have fed the flipped bits straight into a kernel).
        """
        return self._arm(
            _ArmedFault(
                kind="corrupt_payload",
                scope=scope,
                side="send",
                frame_type=type,
                remaining=nth,
                params={"buffer": int(buffer)},
            )
        )

    def corrupt_checksum(
        self,
        *,
        nth: int = 1,
        type: str | None = "task",
        scope: str | None = None,
        buffer: int = 0,
    ) -> "FaultPlan":
        """Rewrite the declared CRC32 of buffer ``buffer`` in the ``nth``
        matching frame's header (payload bytes untouched).

        The inverse of :meth:`corrupt_payload`: the data is fine but its
        checksum lies, so the receiver must reject the frame rather than
        trust the descriptor.  The rewritten value is ``crc ^ 1`` — same
        decimal width, so the already-sent ``header_len`` stays truthful.
        """
        return self._arm(
            _ArmedFault(
                kind="corrupt_checksum",
                scope=scope,
                side="send",
                frame_type=type,
                remaining=nth,
                params={"buffer": int(buffer)},
            )
        )

    def refuse_connect(self, n: int = 1, *, scope: str | None = None) -> "FaultPlan":
        """Refuse the next ``n`` connect attempts in ``scope`` with
        ``ConnectionRefusedError`` (each refusal is one fired event)."""
        with self._lock:
            self._armed.append(
                _ArmedFault(
                    kind="refuse_connect",
                    scope=scope,
                    side="connect",
                    frame_type=None,
                    remaining=int(n),
                )
            )
        return self

    def kill_host(self, *, step: int, host: str) -> "FaultPlan":
        """Schedule a driver-level host kill at driver ``step`` (the chaos
        driver polls :meth:`actions_at` and performs the kill itself)."""
        with self._lock:
            self._actions.append(
                _ArmedFault(
                    kind="kill_host",
                    scope=host,
                    side="action",
                    frame_type=None,
                    remaining=1,
                    params={"step": int(step)},
                )
            )
        return self

    # ------------------------------------------------------------------ hooks
    def _record(self, fault: _ArmedFault, detail: str) -> None:
        fault.fired = True
        self.fired.append(FaultEvent(kind=fault.kind, scope=fault.scope, detail=detail))

    def _take(self, side: str, scope: str | None, frame_type: str | None) -> list[_ArmedFault]:
        """Count this event against matching armed faults; return the firing ones."""
        firing: list[_ArmedFault] = []
        with self._lock:
            for fault in self._armed:
                if fault.side != side or not fault.matches(scope, frame_type):
                    continue
                fault.remaining -= 1
                if fault.remaining == 0:
                    firing.append(fault)
        return firing

    def wrap(self, sock, scope: str | None = None):
        """Wrap ``sock`` so this plan's schedule applies to its frames."""
        return FaultSocket(self, sock, scope=scope)

    def socket_wrapper(self, scope: str | None = None) -> "PlanSocketWrapper":
        """A reusable ``socket_wrapper`` callable bound to ``scope``.

        Unlike a lambda over :meth:`wrap`, the returned object survives
        crossing into a forked worker process (``ClusterScheduler``'s
        ``worker_fault_plan`` hands one to each spawned host), letting a
        test corrupt frames on the *worker* side of the wire.
        """
        return PlanSocketWrapper(self, scope)

    def check_connect(self, scope: str | None = None) -> None:
        """Connect-path hook: raises while armed refusals remain for ``scope``.

        Unlike frame faults (which count *up to* their trigger), a refusal
        fault fires on *every* consultation until its budget of ``n``
        refusals is spent — each refusal is one ``fired`` event.
        """
        with self._lock:
            for fault in self._armed:
                if fault.side != "connect" or fault.fired:
                    continue
                if fault.scope is not None and scope != fault.scope:
                    continue
                fault.remaining -= 1
                if fault.remaining <= 0:
                    fault.fired = True
                self.fired.append(
                    FaultEvent(
                        kind=fault.kind,
                        scope=fault.scope,
                        detail=f"connect refused (scope={scope})",
                    )
                )
                raise ConnectionRefusedError(
                    f"[fault injection] connection refused (scope={scope})"
                )

    def actions_at(self, step: int) -> list[tuple[str, str]]:
        """Driver-level actions due at or before ``step``: ``[(kind, host)]``."""
        due: list[tuple[str, str]] = []
        with self._lock:
            for fault in self._actions:
                if not fault.fired and fault.params["step"] <= int(step):
                    self._record(fault, f"scheduled at step {fault.params['step']}")
                    due.append((fault.kind, fault.scope))
        return due

    def corruption(self, n: int) -> list[int]:
        """``n`` deterministic byte positions drawn from the plan's seed."""
        with self._lock:
            return [self._rng.randrange(2**31) for _ in range(n)]

    def fired_kinds(self) -> list[str]:
        """The kinds of every fired fault, in firing order (assert helper)."""
        with self._lock:
            return [event.kind for event in self.fired]


class FaultSocket:
    """A socket proxy that applies a :class:`FaultPlan` at frame boundaries.

    The transport calls :meth:`notify_frame_send` / :meth:`notify_frame_recv`
    once per frame; the wrapper decides there (under the plan lock, from the
    deterministic frame count) which faults fire, then applies them to the
    raw ``sendall`` / ``recv_into`` calls that follow.  Everything else is
    delegated to the wrapped socket.
    """

    def __init__(self, plan: FaultPlan, sock, scope: str | None = None):
        self.plan = plan
        self.scope = scope
        self._sock = sock
        self._part = 0  # part index within the current outgoing frame
        self._delay_ms = 0.0
        self._corrupt = False
        self._truncate = False
        self._drop = False
        self._corrupt_payload_bufs: set[int] = set()
        self._corrupt_checksum_bufs: set[int] = set()

    # ----------------------------------------------------- frame-boundary hooks
    def notify_frame_send(self, header: dict) -> None:
        self._part = 0
        self._delay_ms = 0.0
        self._corrupt = self._truncate = self._drop = False
        self._corrupt_payload_bufs = set()
        self._corrupt_checksum_bufs = set()
        frame_type = header.get("type")
        for fault in self.plan._take("send", self.scope, frame_type):
            detail = f"frame type={frame_type!r} scope={self.scope}"
            with self.plan._lock:
                self.plan._record(fault, detail)
            if fault.kind == "delay_send":
                self._delay_ms += fault.params["ms"]
            elif fault.kind == "corrupt_header":
                self._corrupt = True
            elif fault.kind == "truncate_frame":
                self._truncate = True
            elif fault.kind == "drop_connection":
                self._drop = True
            elif fault.kind == "corrupt_payload":
                self._corrupt_payload_bufs.add(fault.params["buffer"])
            elif fault.kind == "corrupt_checksum":
                self._corrupt_checksum_bufs.add(fault.params["buffer"])

    def notify_frame_recv(self) -> None:
        for fault in self.plan._take("recv", self.scope, None):
            with self.plan._lock:
                self.plan._record(fault, f"recv frame scope={self.scope}")
            if fault.kind == "drop_connection":
                self._reset("connection dropped before recv")

    # ------------------------------------------------------------- socket API
    def _reset(self, why: str):
        try:
            # shutdown() so the peer observes the drop even when a forked
            # sibling process inherited a dup of this FD (see the head
            # client's _close_socket for the same pattern).
            self._sock.shutdown(socket_mod.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        raise ConnectionResetError(f"[fault injection] {why}")

    def sendall(self, data) -> None:
        part = self._part
        self._part += 1
        if part == 0:
            if self._delay_ms > 0:
                time.sleep(self._delay_ms / 1000.0)
                self._delay_ms = 0.0
            if self._drop:
                self._reset("connection dropped before send")
        if part == 1:  # the JSON header part of the frame
            if self._truncate:
                half = bytes(data)[: max(1, len(data) // 2)]
                self._sock.sendall(half)
                self._reset("frame truncated mid-header")
            if self._corrupt:
                raw = bytearray(bytes(data))
                # 0xFF is never valid UTF-8, so the peer's JSON decode fails
                # deterministically; positions come from the plan's seed.
                for pos in self.plan.corruption(max(1, len(raw) // 16)):
                    raw[pos % len(raw)] = 0xFF
                self._corrupt = False
                self._sock.sendall(bytes(raw))
                return
            if self._corrupt_checksum_bufs:
                # Lie about the checksum without touching the payload: the
                # prefix (with header_len) already left, so the rewrite —
                # ``crc ^ 1``, same decimal width — must keep the header's
                # byte length exact.
                import json as _json

                header = _json.loads(bytes(data).decode("utf-8"))
                for index in self._corrupt_checksum_bufs:
                    descriptors = header.get("arrays", [])
                    if 0 <= index < len(descriptors):
                        descriptors[index]["crc32"] ^= 1
                raw = _json.dumps(header, separators=(",", ":")).encode("utf-8")
                assert len(raw) == len(bytes(data))
                self._corrupt_checksum_bufs = set()
                self._sock.sendall(raw)
                return
        # Payload parts: buffer i's raw bytes are frame part 3 + 2i (its
        # 8-byte length prefix is part 2 + 2i).
        if part >= 3 and (part - 3) % 2 == 0:
            index = (part - 3) // 2
            if index in self._corrupt_payload_bufs:
                original = bytes(data)
                raw = bytearray(original)
                for pos in self.plan.corruption(max(1, min(8, len(raw)))):
                    raw[pos % len(raw)] ^= 1 << (pos % 8)
                if bytes(raw) == original:  # seeded flips cancelled out
                    raw[0] ^= 1
                self._corrupt_payload_bufs.discard(index)
                self._sock.sendall(bytes(raw))
                return
        self._sock.sendall(data)

    def recv_into(self, buffer, nbytes: int = 0) -> int:
        return self._sock.recv_into(buffer, nbytes)

    def settimeout(self, timeout) -> None:
        self._sock.settimeout(timeout)

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def close(self) -> None:
        self._sock.close()

    def __getattr__(self, name):
        return getattr(self._sock, name)


class PlanSocketWrapper:
    """Picklable ``socket_wrapper``: wraps each socket under one plan/scope.

    A plain ``lambda sock: plan.wrap(sock, scope=...)`` would work for
    in-process use but not as a spawned worker's ``socket_wrapper`` — this
    class-based callable crosses a ``fork`` into the worker process intact,
    which is how ``ClusterScheduler(worker_fault_plan=...)`` injects faults
    on the worker side of the wire.  (The forked copy keeps its own fired
    log; the parent observes the faults through the head's metrics.)
    """

    def __init__(self, plan: FaultPlan, scope: str | None = None):
        self.plan = plan
        self.scope = scope

    def __call__(self, sock) -> FaultSocket:
        return self.plan.wrap(sock, scope=self.scope)
