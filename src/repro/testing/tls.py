"""Self-signed loopback TLS fixture for the cluster transport tests.

The trusted-transport tests (and the auth+TLS chaos benchmark phase) need
a certificate the worker can serve and the head can pin — without
committing key material to the repository.  This module mints one
**per-process** self-signed certificate at first use (SANs ``localhost``
and ``127.0.0.1``, so hostname-checking clients would accept it too, even
though the head pins by CA and dials by address) and hands back PEM file
paths ready for the ``tls_cert``/``tls_key``/``tls_ca`` knobs:

>>> cert, key = loopback_tls_files()          # doctest: +SKIP
>>> ClusterScheduler(tls_cert=cert, tls_key=key)   # doctest: +SKIP

Generation uses the ``cryptography`` package; :func:`tls_available` gates
tests so environments without it skip instead of erroring.
"""

from __future__ import annotations

import datetime
import functools
import ipaddress
import os
import tempfile


def tls_available() -> bool:
    """Whether this environment can mint the loopback certificate."""
    try:
        import cryptography  # noqa: F401
    except ImportError:  # pragma: no cover - present in the dev image
        return False
    return True


@functools.lru_cache(maxsize=1)
def loopback_tls_files() -> tuple[str, str]:
    """PEM ``(certfile, keyfile)`` for a self-signed loopback certificate.

    Minted once per process into a private temp directory (the key file is
    mode 0600); repeated calls return the same paths.  The certificate is
    its own trust anchor — pass the cert path as both ``tls_cert`` on the
    worker and the head's pinned CA (``ClusterScheduler(tls_cert=...)``
    does exactly that).
    """
    from cryptography import x509
    from cryptography.hazmat.primitives import hashes, serialization
    from cryptography.hazmat.primitives.asymmetric import ec
    from cryptography.x509.oid import NameOID

    key = ec.generate_private_key(ec.SECP256R1())
    name = x509.Name(
        [x509.NameAttribute(NameOID.COMMON_NAME, "repro-cluster-loopback")]
    )
    now = datetime.datetime.now(datetime.timezone.utc)
    certificate = (
        x509.CertificateBuilder()
        .subject_name(name)
        .issuer_name(name)
        .public_key(key.public_key())
        .serial_number(x509.random_serial_number())
        .not_valid_before(now - datetime.timedelta(minutes=5))
        .not_valid_after(now + datetime.timedelta(days=365))
        .add_extension(
            x509.SubjectAlternativeName(
                [
                    x509.DNSName("localhost"),
                    x509.IPAddress(ipaddress.IPv4Address("127.0.0.1")),
                ]
            ),
            critical=False,
        )
        .add_extension(x509.BasicConstraints(ca=True, path_length=None), critical=True)
        .sign(key, hashes.SHA256())
    )
    directory = tempfile.mkdtemp(prefix="repro-cluster-tls-")
    cert_path = os.path.join(directory, "loopback-cert.pem")
    key_path = os.path.join(directory, "loopback-key.pem")
    with open(cert_path, "wb") as fh:
        fh.write(certificate.public_bytes(serialization.Encoding.PEM))
    fd = os.open(key_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600)
    with os.fdopen(fd, "wb") as fh:
        fh.write(
            key.private_bytes(
                serialization.Encoding.PEM,
                serialization.PrivateFormat.PKCS8,
                serialization.NoEncryption(),
            )
        )
    return cert_path, key_path
