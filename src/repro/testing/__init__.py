"""Deterministic test harnesses for the distributed serving stack.

Two tools live here: :mod:`repro.testing.faults`, the seeded
fault-injection harness that drives every cluster recovery path —
connection drops, send delays, truncated/corrupted frames and payloads,
lying checksums, connect refusals, scheduled host kills — from an
ordinary test instead of OS signals and sleeps; and
:mod:`repro.testing.tls`, the per-process self-signed loopback
certificate fixture behind the transport's TLS tests.
"""

from repro.testing.faults import FaultEvent, FaultPlan, FaultSocket, PlanSocketWrapper
from repro.testing.tls import loopback_tls_files, tls_available

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultSocket",
    "PlanSocketWrapper",
    "loopback_tls_files",
    "tls_available",
]
