"""Deterministic test harnesses for the distributed serving stack.

Currently one tool lives here: :mod:`repro.testing.faults`, the seeded
fault-injection harness that drives every cluster recovery path —
connection drops, send delays, truncated and corrupted frames, connect
refusals, scheduled host kills — from an ordinary test instead of OS
signals and sleeps.
"""

from repro.testing.faults import FaultEvent, FaultPlan, FaultSocket

__all__ = ["FaultEvent", "FaultPlan", "FaultSocket"]
