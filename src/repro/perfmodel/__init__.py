"""Analytic performance model for the simulated kernels.

Since no GPU is available, kernel runtimes are estimated from the exact costs
counted by the simulator (MMA invocations, CUDA-core FMAs, memory
transactions, index work) combined with device peak rates, using a
roofline-style model.  See :mod:`repro.perfmodel.model` for the model
definition and DESIGN.md for what the model is (and is not) expected to
reproduce.
"""

from repro.perfmodel.model import (
    KernelProfile,
    TimeEstimate,
    PerformanceModel,
    estimate_time,
    gflops,
    spmm_useful_flops,
    sddmm_useful_flops,
)
from repro.perfmodel.summary import geometric_mean, speedup_distribution

__all__ = [
    "KernelProfile",
    "TimeEstimate",
    "PerformanceModel",
    "estimate_time",
    "gflops",
    "spmm_useful_flops",
    "sddmm_useful_flops",
    "geometric_mean",
    "speedup_distribution",
]
