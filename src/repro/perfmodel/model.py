"""Roofline-style kernel-time estimation.

The model converts a :class:`~repro.gpu.counters.CostCounter` into an
estimated kernel time on a :class:`~repro.gpu.device.GPUSpec`:

``time = launch_overhead + max(compute_time, memory_time)``

where

* ``compute_time`` is the sum of the tensor-core term (MMA FLOPs at the
  device's TCU peak for the MMA's precision, scaled by an achievable-
  efficiency factor, plus a fixed per-MMA issue cost) and the CUDA-core term
  (scalar FMAs plus auxiliary index work at the FP32 peak);
* ``memory_time`` is a two-level term: the kernel's *unique* data footprint
  must stream from DRAM at the device bandwidth, while the total traffic
  (transaction bytes when counted, otherwise the logical data-access bytes)
  must flow through the L2 cache at the L2 bandwidth — the memory time is the
  larger of the two, each scaled by an achievable-efficiency factor.  This is
  what lets the gathered rows of the dense matrix B (which largely stay
  resident in L2 across row windows) be re-read cheaply, as on real GPUs.

Per-kernel :class:`KernelProfile` objects supply the efficiency factors and
overhead weights; FlashSparse and each baseline declare their own profile so
known inefficiencies (e.g. TC-GNN's per-element position checks, Sputnik's
load imbalance on skewed rows) are represented explicitly rather than hidden
in magic constants.

The model intentionally stays simple: the reproduction target is the *shape*
of the paper's comparisons (who wins, by roughly what factor, where the
crossovers are), which is driven by the counted redundancy, not by absolute
GFLOPS figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import CostCounter
from repro.gpu.device import GPUSpec


@dataclass(frozen=True)
class KernelProfile:
    """Achievable-efficiency description of one kernel implementation."""

    name: str
    #: Fraction of the TCU peak the kernel can sustain when compute bound.
    tcu_efficiency: float = 0.30
    #: Fraction of the CUDA-core FP32 peak sustained when compute bound.
    cuda_efficiency: float = 0.50
    #: Fraction of the peak memory bandwidth sustained when memory bound.
    memory_efficiency: float = 0.65
    #: Fraction of the peak L2 bandwidth sustained for cache-resident re-reads.
    l2_efficiency: float = 0.60
    #: Whether the kernel's access pattern benefits from L2 residency at all;
    #: when False, all counted traffic is charged at DRAM rate (models kernels
    #: with cache-hostile access patterns, e.g. TC-GNN's SGT walks).
    l2_friendly: bool = True
    #: Fixed cost per MMA invocation in nanoseconds (issue + operand staging).
    mma_issue_ns: float = 1.2
    #: CUDA-core-equivalent FLOPs charged per auxiliary index operation.
    index_op_weight: float = 2.0
    #: Multiplicative load-imbalance penalty (>= 1) applied to compute time.
    imbalance_factor: float = 1.0
    #: Extra fixed overhead per kernel launch (microseconds) beyond the device's.
    extra_launch_us: float = 0.0
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        for attr in ("tcu_efficiency", "cuda_efficiency", "memory_efficiency", "l2_efficiency"):
            value = getattr(self, attr)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{attr} must be in (0, 1], got {value}")
        if self.imbalance_factor < 1.0:
            raise ValueError("imbalance_factor must be >= 1")


#: Profile used when a kernel does not declare one.
DEFAULT_PROFILE = KernelProfile(name="default")


@dataclass(frozen=True)
class TimeEstimate:
    """Breakdown of one estimated kernel execution."""

    kernel: str
    device: str
    tcu_time_s: float
    cuda_time_s: float
    memory_time_s: float
    launch_time_s: float
    total_time_s: float

    @property
    def bound(self) -> str:
        """Which roofline term dominates: ``"compute"`` or ``"memory"``."""
        compute = self.tcu_time_s + self.cuda_time_s
        return "compute" if compute >= self.memory_time_s else "memory"


#: FLOPs of one MMA per shape name (m*n*k*2); parsed lazily from the name.
def _shape_flops(shape_name: str) -> int:
    from repro.gpu.counters import _parse_shape_name

    m, n, k = _parse_shape_name(shape_name)
    return 2 * m * n * k


class PerformanceModel:
    """Estimates kernel times on a target device from cost counters."""

    def __init__(self, device: GPUSpec):
        self.device = device

    def estimate(self, counter: CostCounter, profile: KernelProfile | None = None) -> TimeEstimate:
        """Estimate the execution time represented by ``counter``."""
        profile = profile or DEFAULT_PROFILE
        device = self.device

        # --- tensor-core term -------------------------------------------------
        tcu_time = 0.0
        total_mma = 0
        for (shape_name, precision), count in counter.mma_invocations.items():
            flops = _shape_flops(shape_name) * count
            peak = device.tcu_flops(precision) * profile.tcu_efficiency
            tcu_time += flops / peak
            total_mma += count
        # Fixed per-MMA issue cost, amortised over the device's TCU count
        # (each TCU issues MMAs independently).
        if total_mma:
            parallel_tcus = max(1, device.tensor_core_count)
            tcu_time += (total_mma * profile.mma_issue_ns * 1e-9) / parallel_tcus

        # --- CUDA-core term ---------------------------------------------------
        cuda_flops = 2.0 * counter.cuda_fma + profile.index_op_weight * counter.index_ops
        cuda_time = 0.0
        if cuda_flops:
            cuda_time = cuda_flops / (device.cuda_fp32_flops * profile.cuda_efficiency)

        compute_time = (tcu_time + cuda_time) * profile.imbalance_factor

        # --- memory term ------------------------------------------------------
        transaction_bytes = counter.transaction_bytes_moved
        bytes_moved = transaction_bytes if transaction_bytes else counter.data_access_bytes
        footprint = counter.footprint_bytes
        if profile.l2_friendly and 0 < footprint <= bytes_moved:
            # Two-level roofline: unique data streams from DRAM once, the full
            # traffic (re-reads included) flows through L2.
            dram_time = footprint / (device.mem_bandwidth_bps * profile.memory_efficiency)
            l2_time = bytes_moved / (device.l2_bandwidth_bps * profile.l2_efficiency)
            memory_time = max(dram_time, l2_time)
        else:
            memory_time = bytes_moved / (device.mem_bandwidth_bps * profile.memory_efficiency)

        # --- occupancy: tiny launches cannot saturate the device ---------------
        if counter.warps_launched:
            saturation_warps = device.sm_count * 8
            occupancy = min(1.0, counter.warps_launched / saturation_warps)
            if occupancy < 1.0:
                scale = 1.0 / max(occupancy, 1.0 / saturation_warps)
                compute_time *= scale
                memory_time *= scale

        launch = (device.kernel_launch_overhead_us + profile.extra_launch_us) * 1e-6
        launch *= max(1, counter.kernel_launches)
        total = launch + max(compute_time, memory_time)
        return TimeEstimate(
            kernel=profile.name,
            device=device.name,
            tcu_time_s=tcu_time,
            cuda_time_s=cuda_time,
            memory_time_s=memory_time,
            launch_time_s=launch,
            total_time_s=total,
        )


def estimate_time(
    counter: CostCounter, device: GPUSpec, profile: KernelProfile | None = None
) -> TimeEstimate:
    """Convenience wrapper around :class:`PerformanceModel`."""
    return PerformanceModel(device).estimate(counter, profile)


def spmm_useful_flops(nnz: int, n_dense: int) -> int:
    """Useful FLOPs of an SpMM: one multiply-add per nonzero per dense column."""
    return 2 * int(nnz) * int(n_dense)


def sddmm_useful_flops(nnz: int, k_dense: int) -> int:
    """Useful FLOPs of an SDDMM: a K-length dot product per output nonzero."""
    return 2 * int(nnz) * int(k_dense)


def gflops(useful_flops: int, time_s: float) -> float:
    """Throughput in GFLOP/s given useful work and a time estimate."""
    if time_s <= 0:
        raise ValueError("time must be positive")
    return useful_flops / time_s / 1e9
