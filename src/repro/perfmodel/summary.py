"""Aggregation helpers for benchmark summaries (speedup tables, geo-means)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's headline aggregate)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


#: The speedup buckets used by Tables 5 and 6.
SPEEDUP_BUCKETS: tuple[tuple[str, float, float], ...] = (
    ("<1", 0.0, 1.0),
    ("1-1.5", 1.0, 1.5),
    ("1.5-2", 1.5, 2.0),
    (">=2", 2.0, float("inf")),
)


def speedup_distribution(speedups: Sequence[float]) -> dict[str, float]:
    """Bucketed speedup distribution plus geometric mean and max.

    Returns a mapping with one ``%`` entry per bucket of Tables 5/6 plus
    ``geomean`` and ``max``.
    """
    arr = np.asarray(list(speedups), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no speedups provided")
    out: dict[str, float] = {}
    for label, lo, hi in SPEEDUP_BUCKETS:
        frac = float(np.mean((arr >= lo) & (arr < hi)))
        out[label] = 100.0 * frac
    out["geomean"] = geometric_mean(arr)
    out["max"] = float(arr.max())
    return out


def summarize_by_group(
    speedups: Mapping[str, Sequence[float]],
) -> dict[str, dict[str, float]]:
    """Apply :func:`speedup_distribution` to each named group."""
    return {name: speedup_distribution(values) for name, values in speedups.items()}
