"""Input validation helpers shared by kernels and the public API."""

from __future__ import annotations

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    ivalue = int(value)
    if ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_dense_matrix(array: np.ndarray, name: str, n_rows: int | None = None) -> np.ndarray:
    """Validate a dense 2-D operand and return it as a float64 C-contiguous array.

    Kernels convert inputs to float64 once up front and quantize per tile, so
    that precision emulation is applied at the same place the hardware would.
    """
    arr = np.asarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got ndim={arr.ndim}")
    if n_rows is not None and arr.shape[0] != n_rows:
        raise ValueError(
            f"{name} must have {n_rows} rows to be compatible, got {arr.shape[0]}"
        )
    return np.ascontiguousarray(arr)
