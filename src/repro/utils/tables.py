"""Plain-text table formatting for benchmark harness output.

The benchmark scripts print the same rows the paper's tables report; this
helper renders them with aligned columns and no third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)
