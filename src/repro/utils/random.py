"""Deterministic random-number helpers.

All generators in the package are seeded explicitly so that tests,
benchmarks and the synthetic dataset collection are reproducible run to run.
"""

from __future__ import annotations

import random

import numpy as np

#: Seed used throughout the repository when none is given.
DEFAULT_SEED = 20250211


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a NumPy Generator.

    Accepts ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
    existing Generator (returned unchanged) so library functions can accept
    any of the three.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def seed_everything(seed: int = DEFAULT_SEED) -> None:
    """Seed Python's and NumPy's global RNGs (for legacy consumers)."""
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))
