"""Small shared utilities (seeding, validation, text tables)."""

from repro.utils.random import default_rng, seed_everything
from repro.utils.tables import format_table
from repro.utils.validation import check_dense_matrix, check_positive_int

__all__ = [
    "default_rng",
    "seed_everything",
    "format_table",
    "check_dense_matrix",
    "check_positive_int",
]
