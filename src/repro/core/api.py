"""User-facing FlashSparse API.

The typical flow mirrors how the paper integrates FlashSparse into PyTorch:

1. build a :class:`FlashSparseMatrix` from any sparse input (scipy, CSR
   arrays, dense); this runs the sparse-matrix translation into ME-BCRS,
2. call :func:`spmm` / :func:`sddmm` with dense operands,
3. inspect the result's ``values``, ``counter`` (simulated hardware cost)
   and, when a device is requested, the estimated runtime and GFLOPS.

>>> import numpy as np, scipy.sparse as sp
>>> from repro import FlashSparseMatrix, spmm
>>> a = sp.random(128, 128, density=0.05, format="csr", random_state=1)
>>> m = FlashSparseMatrix.from_scipy(a)
>>> b = np.ones((128, 32))
>>> res = spmm(m, b, device="rtx4090")
>>> res.values.shape
(128, 32)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs, cached_sgt16
from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.gpu.counters import CostCounter
from repro.gpu.device import GPUSpec, get_device
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import FLASH_SDDMM_PROFILE, sddmm_flash_cost, sddmm_flash_execute
from repro.kernels.spmm_flash import FLASH_SPMM_PROFILE, spmm_flash_cost, spmm_flash_execute
from repro.perfmodel.model import (
    TimeEstimate,
    estimate_time,
    gflops,
    sddmm_useful_flops,
    spmm_useful_flops,
)
from repro.precision.types import Precision

#: Public alias: the kernel configuration object.
KernelConfig = FlashSparseConfig


def _resolve_device(device: str | GPUSpec | None) -> GPUSpec | None:
    if device is None:
        return None
    if isinstance(device, GPUSpec):
        return device
    return get_device(device)


@dataclass
class FlashSparseMatrix:
    """A sparse matrix prepared for FlashSparse kernels.

    Holds the CSR interchange form; the translated ME-BCRS (and, when
    needed, the 16×1) representations are memoised per precision in the
    shared LRU of :mod:`repro.formats.cache`, so repeated kernel calls do
    not re-run the preprocessing (static-sparsity scenario of Section 4.4)
    — even when the same CSR is re-wrapped by a new ``FlashSparseMatrix``.
    """

    csr: CSRMatrix

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix | sp.sparray) -> "FlashSparseMatrix":
        """Build from any scipy sparse matrix."""
        return cls(csr=CSRMatrix.from_scipy(matrix))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "FlashSparseMatrix":
        """Build from a dense array (zeros dropped)."""
        return cls(csr=CSRMatrix.from_dense(dense))

    @classmethod
    def from_csr_arrays(
        cls, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, shape: tuple[int, int]
    ) -> "FlashSparseMatrix":
        """Build from raw CSR arrays."""
        return cls(csr=CSRMatrix(indptr, indices, data, shape))

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape."""
        return self.csr.shape

    @property
    def nnz(self) -> int:
        """Number of nonzeros."""
        return self.csr.nnz

    # ------------------------------------------------------------- translate
    def mebcrs(
        self, precision: Precision | str = Precision.FP16, by_content: bool = False
    ) -> MEBCRSMatrix:
        """The ME-BCRS translation at ``precision`` (cached).

        ``by_content=True`` deduplicates the translation across structurally
        equal matrices loaded as distinct objects (content-hash cache key).
        """
        return cached_mebcrs(self.csr, precision, by_content=by_content)

    def sgt16(
        self, precision: Precision | str = Precision.TF32, by_content: bool = False
    ) -> SGT16Matrix:
        """The 16×1 baseline translation at ``precision`` (cached)."""
        return cached_sgt16(self.csr, precision, by_content=by_content)

    def to_scipy(self) -> sp.csr_matrix:
        """Back to a scipy CSR matrix."""
        return self.csr.to_scipy()

    # --------------------------------------------------------------- serving
    def content_key(self) -> str:
        """Content fingerprint of the underlying CSR (the serving subsystem's
        batching and translation-dedup handle)."""
        return self.csr.content_key()

    def plan(
        self,
        n_dense: int,
        op: str = "spmm",
        device: str | GPUSpec | None = None,
        precision: Precision | str = Precision.FP16,
        **kwargs,
    ):
        """Derive a :class:`~repro.serve.planner.ServePlan` for this matrix.

        ``op`` selects :func:`~repro.serve.planner.plan_spmm` (``n_dense``
        is the dense width N) or :func:`~repro.serve.planner.plan_sddmm`
        (``n_dense`` is the inner dimension K); extra keyword arguments are
        forwarded to the planner.
        """
        from repro.serve.planner import plan_sddmm, plan_spmm

        if op == "spmm":
            return plan_spmm(self.csr, n_dense, device=device, precision=precision, **kwargs)
        if op == "sddmm":
            return plan_sddmm(self.csr, n_dense, device=device, precision=precision, **kwargs)
        raise ValueError(f"op must be 'spmm' or 'sddmm', got {op!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlashSparseMatrix(shape={self.shape}, nnz={self.nnz})"


@dataclass
class SpmmResult:
    """Result of :func:`spmm`."""

    #: Dense product ``A @ B`` (float32).
    values: np.ndarray
    #: Simulated hardware cost.
    counter: CostCounter
    #: Useful FLOPs (2 * nnz * N).
    useful_flops: int
    #: Estimated runtime on the requested device (None when no device given).
    estimate: TimeEstimate | None = None
    #: Extra information from the kernel.
    meta: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float | None:
        """Estimated throughput in GFLOP/s (None without a device)."""
        if self.estimate is None:
            return None
        return gflops(self.useful_flops, self.estimate.total_time_s)


@dataclass
class SddmmResult:
    """Result of :func:`sddmm`."""

    #: Sparse output in blocked form (same pattern as the mask).
    output: BlockedVectorFormat
    #: Simulated hardware cost.
    counter: CostCounter
    #: Useful FLOPs (2 * nnz * K).
    useful_flops: int
    #: Estimated runtime on the requested device (None when no device given).
    estimate: TimeEstimate | None = None
    #: Extra information from the kernel.
    meta: dict = field(default_factory=dict)

    def to_csr(self) -> CSRMatrix:
        """The sparse output as CSR."""
        return self.output.to_csr()

    def to_scipy(self) -> sp.csr_matrix:
        """The sparse output as a scipy CSR matrix."""
        return self.output.to_csr().to_scipy()

    @property
    def gflops(self) -> float | None:
        """Estimated throughput in GFLOP/s (None without a device)."""
        if self.estimate is None:
            return None
        return gflops(self.useful_flops, self.estimate.total_time_s)


def _as_input(matrix) -> FlashSparseMatrix:
    if isinstance(matrix, FlashSparseMatrix):
        return matrix
    if isinstance(matrix, CSRMatrix):
        return FlashSparseMatrix(csr=matrix)
    if sp.issparse(matrix):
        return FlashSparseMatrix.from_scipy(matrix)
    if isinstance(matrix, np.ndarray):
        return FlashSparseMatrix.from_dense(matrix)
    raise TypeError(
        "expected FlashSparseMatrix, CSRMatrix, scipy sparse matrix or ndarray, "
        f"got {type(matrix).__name__}"
    )


def _apply_plan(
    plan,
    block_chunk: int | None,
    max_intermediate_bytes: int | None,
    workers: int | None,
) -> tuple[int | None, int | None, int]:
    """Fill unset (``None``) streaming knobs from a :class:`ServePlan`;
    explicit caller values — including ``workers=1`` — always win."""
    if plan is not None:
        if block_chunk is None:
            block_chunk = plan.block_chunk
        if max_intermediate_bytes is None:
            max_intermediate_bytes = plan.max_intermediate_bytes
        if workers is None:
            workers = plan.workers
    return block_chunk, max_intermediate_bytes, 1 if workers is None else workers


def spmm(
    a,
    b: np.ndarray,
    precision: Precision | str = Precision.FP16,
    coalesced: bool = True,
    device: str | GPUSpec | None = None,
    engine: str = "batched",
    block_chunk: int | None = None,
    max_intermediate_bytes: int | None = None,
    workers: int | None = None,
    plan=None,
) -> SpmmResult:
    """Sparse × dense matrix multiplication with the FlashSparse kernel.

    Parameters
    ----------
    a:
        Sparse matrix (FlashSparseMatrix, CSRMatrix, scipy sparse, or dense
        ndarray that will be sparsified).  CSR inputs are translated to
        ME-BCRS through an LRU cache keyed by object identity; treat them as
        immutable after the first call (see :mod:`repro.formats.cache`).
    b:
        Dense right-hand side of shape ``(a.shape[1], N)``.
    precision:
        ``"fp16"`` (default) or ``"tf32"``.
    coalesced:
        Use the memory-efficient thread mapping (default True).
    device:
        Optional device name (``"h100"``, ``"rtx4090"``) or
        :class:`~repro.gpu.device.GPUSpec`; when given, the result carries an
        estimated runtime and GFLOPS.
    engine:
        ``"batched"`` (default) for the vectorized execution engine,
        ``"reference"`` for the per-block emulation loop.
    block_chunk / max_intermediate_bytes:
        Memory-bounded streaming: iterate the batched engine over
        block-range slices so peak intermediate memory is O(chunk · v · N)
        instead of O(n_blocks · v · N).  Values agree with the one-shot run
        to FP32 round-off; the cost counter is exactly unchanged.
    workers:
        Shard independent chunk ranges across a thread pool (serving-scale
        parallelism; BLAS releases the GIL).  ``None`` (default) means one
        thread unless a ``plan`` supplies a worker count.
    plan:
        A :class:`~repro.serve.planner.ServePlan` whose derived knobs fill
        any of ``block_chunk`` / ``max_intermediate_bytes`` / ``workers``
        the caller left unset — the budget-driven alternative to picking
        them by hand (see :func:`repro.serve.planner.plan_spmm`).
    """
    inp = _as_input(a)
    block_chunk, max_intermediate_bytes, workers = _apply_plan(
        plan, block_chunk, max_intermediate_bytes, workers
    )
    config = FlashSparseConfig(
        precision=Precision(precision),
        coalesced=coalesced,
        engine=engine,
        block_chunk=block_chunk,
        max_intermediate_bytes=max_intermediate_bytes,
        workers=workers,
    )
    fmt = inp.mebcrs(config.precision)
    result = spmm_flash_execute(fmt, b, config)
    spec = _resolve_device(device)
    estimate = estimate_time(result.counter, spec, FLASH_SPMM_PROFILE) if spec else None
    return SpmmResult(
        values=result.values,
        counter=result.counter,
        useful_flops=result.useful_flops,
        estimate=estimate,
        meta=result.meta,
    )


def sddmm(
    mask,
    a: np.ndarray,
    b: np.ndarray,
    precision: Precision | str = Precision.FP16,
    scale_by_mask: bool = False,
    device: str | GPUSpec | None = None,
    engine: str = "batched",
    block_chunk: int | None = None,
    max_intermediate_bytes: int | None = None,
    workers: int | None = None,
    plan=None,
) -> SddmmResult:
    """Sampled dense × dense matrix multiplication with the FlashSparse kernel.

    Computes ``out[i, j] = <a[i, :], b[j, :]>`` for every nonzero position of
    ``mask`` (optionally scaled by the mask's values).  ``engine`` selects the
    batched execution engine (default) or the reference emulation loop;
    ``block_chunk`` / ``max_intermediate_bytes`` / ``workers`` stream the
    batched engine over memory-bounded block slices (see :func:`spmm`), and
    ``plan`` fills unset knobs from a derived
    :class:`~repro.serve.planner.ServePlan`.
    """
    inp = _as_input(mask)
    block_chunk, max_intermediate_bytes, workers = _apply_plan(
        plan, block_chunk, max_intermediate_bytes, workers
    )
    config = FlashSparseConfig(
        precision=Precision(precision),
        engine=engine,
        block_chunk=block_chunk,
        max_intermediate_bytes=max_intermediate_bytes,
        workers=workers,
    )
    fmt = inp.mebcrs(config.precision)
    result = sddmm_flash_execute(fmt, a, b, config, scale_by_mask=scale_by_mask)
    spec = _resolve_device(device)
    estimate = estimate_time(result.counter, spec, FLASH_SDDMM_PROFILE) if spec else None
    return SddmmResult(
        output=result.output,
        counter=result.counter,
        useful_flops=result.useful_flops,
        estimate=estimate,
        meta=result.meta,
    )


def spmm_cost(
    a,
    n_dense: int,
    precision: Precision | str = Precision.FP16,
    coalesced: bool = True,
) -> CostCounter:
    """Cost-only SpMM (no numeric result); see :func:`spmm`."""
    inp = _as_input(a)
    config = FlashSparseConfig(precision=Precision(precision), coalesced=coalesced)
    return spmm_flash_cost(inp.mebcrs(config.precision), n_dense, config)


def sddmm_cost(
    mask,
    k_dense: int,
    precision: Precision | str = Precision.FP16,
) -> CostCounter:
    """Cost-only SDDMM (no numeric result); see :func:`sddmm`."""
    inp = _as_input(mask)
    config = FlashSparseConfig(precision=Precision(precision))
    return sddmm_flash_cost(inp.mebcrs(config.precision), k_dense, config)


def start_server(
    device: str | GPUSpec | None = None,
    precision: Precision | str = Precision.FP16,
    workers: int | None = None,
    backend: str = "local",
    hosts: int | None = None,
    **kwargs,
):
    """Start a :class:`~repro.serve.server.Server` for this process.

    (Named ``start_server`` rather than ``serve`` because ``repro.serve``
    is the subsystem package — a same-named function on the package would
    be shadowed by the submodule binding on first import.)

    The returned server accepts concurrent :meth:`submit_spmm` /
    :meth:`submit_sddmm` calls, batches same-matrix requests, plans memory
    budgets from ``device`` and shards execution across ``workers``
    processes.  Use it as a context manager::

        with repro.start_server(device="rtx4090", workers=4) as server:
            fut = server.submit_spmm(matrix, b)
            result = fut.result()
        print(server.snapshot().latency_p95_s)

    ``backend="cluster"`` serves over ``hosts`` worker-host subprocesses
    instead of an in-process pool (see :mod:`repro.cluster`): shard
    payloads travel a TCP transport, matrices route to hosts by content
    affinity, and a host death mid-request fails over to the survivors::

        with repro.start_server(backend="cluster", hosts=2) as server:
            result = server.submit_spmm(matrix, b).result()
        print(server.snapshot().meta["scheduler"]["failovers"])

    Extra keyword arguments are forwarded to the ``Server`` constructor
    (admission, deadlines, priorities, shedding — see its docstring).
    """
    from repro.serve.server import Server

    return Server(
        device=device,
        precision=precision,
        workers=workers,
        backend=backend,
        hosts=hosts,
        **kwargs,
    )
