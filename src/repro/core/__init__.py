"""Public FlashSparse API.

:mod:`repro.core.api` exposes the user-facing entry points
(:class:`~repro.core.api.FlashSparseMatrix`, :func:`~repro.core.api.spmm`,
:func:`~repro.core.api.sddmm`); everything else in the package is the
machinery behind them.
"""

from repro.core.api import (
    FlashSparseMatrix,
    KernelConfig,
    SpmmResult,
    SddmmResult,
    spmm,
    sddmm,
)
from repro.core.version import __version__

__all__ = [
    "FlashSparseMatrix",
    "KernelConfig",
    "SpmmResult",
    "SddmmResult",
    "spmm",
    "sddmm",
    "__version__",
]
