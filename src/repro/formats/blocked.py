"""Generic blocked nonzero-vector format.

ME-BCRS (8×1 vectors, FlashSparse), SR-BCRS (8×1 vectors with zero-vector
padding) and the SGT-style 16×1 format of TC-GNN / DTC-SpMM all share the
same skeleton: the matrix is cut into row windows of ``vector_size`` rows,
the nonzero vectors (columns with at least one nonzero inside the window)
are packed together, and groups of ``k`` consecutive vectors form the sparse
TC blocks consumed by the MMA instructions.

:class:`BlockedVectorFormat` implements that skeleton once; the concrete
formats in :mod:`repro.formats.mebcrs`, :mod:`repro.formats.srbcrs` and
:mod:`repro.formats.sgt16` specialise the vector size, the padding policy and
the memory-footprint accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.windows import WindowPartition, partition_windows
from repro.ops import segment_ids
from repro.precision.types import Precision, dtype_for


@dataclass(frozen=True)
class BlockBatch:
    """Every TC block of a :class:`BlockedVectorFormat`, packed into batch arrays.

    All arrays are indexed by the global block number ``b`` (storage order:
    window by window, then block by block within the window).  Blocks narrower
    than ``group`` vectors are zero-padded on the trailing lanes, so a single
    batched einsum/matmul over these arrays reproduces the per-block loop that
    zero-fills its operand registers.

    Attributes
    ----------
    group:
        Number of vectors grouped per block (the format's ``k`` for SpMM; the
        output-tile width for SDDMM).
    widths:
        ``(n_blocks,)`` — vectors actually present in each block.
    window_of_block:
        ``(n_blocks,)`` — owning window of each block.
    blocks_per_window / first_block_of_window:
        ``(num_windows,)`` — block count per window and the global index of
        each window's first block (segment boundaries for window reductions).
    columns:
        ``(n_blocks, group)`` int64 — column index of each vector lane
        (0 on padded lanes; mask with :attr:`lane_valid`).
    vector_index:
        ``(n_blocks, group)`` int64 — global nonzero-vector index of each lane
        (0 on padded lanes).
    lane_valid:
        ``(n_blocks, group)`` bool — which lanes hold a real vector.
    values:
        ``(n_blocks, vector_size, group)`` float32 — the sparse TC blocks,
        zero on padded lanes.
    """

    group: int
    widths: np.ndarray
    window_of_block: np.ndarray
    blocks_per_window: np.ndarray
    first_block_of_window: np.ndarray
    columns: np.ndarray
    vector_index: np.ndarray
    lane_valid: np.ndarray
    values: np.ndarray

    @property
    def num_blocks(self) -> int:
        """Total number of TC blocks in the batch."""
        return int(self.widths.shape[0])

    @property
    def window_offsets(self) -> np.ndarray:
        """Indptr-style block offsets per window (``(num_windows + 1,)``).

        ``window_offsets[w]:window_offsets[w + 1]`` is window ``w``'s block
        range — the segment layout consumed by :mod:`repro.ops` when the
        engine reduces per-block products into per-window sums.
        """
        return np.append(self.first_block_of_window, np.int64(self.num_blocks))


@dataclass
class BlockedVectorFormat:
    """Window/vector-blocked sparse matrix.

    Attributes
    ----------
    partition:
        The nonzero-vector structure (windows, vector column indices).
    vector_values:
        Array of shape ``(num_nonzero_vectors, vector_size)``;
        ``vector_values[j, r]`` is the element at row offset ``r`` of nonzero
        vector ``j`` within its window (zero where the original matrix has no
        entry).  This is a layout-neutral view; :meth:`values_row_major`
        materialises the paper's exact per-block row-major byte layout.
    k:
        TC-block width — number of vectors grouped per MMA operand
        (8 for FP16, 4 for TF32 in FlashSparse; 8 for the 16×1 baselines).
    precision:
        Storage precision of the values.
    """

    partition: WindowPartition
    vector_values: np.ndarray
    k: int
    precision: Precision = Precision.FP32
    format_name: str = field(default="blocked", repr=False)

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        self.precision = Precision(self.precision)
        expected = (self.partition.num_nonzero_vectors, self.partition.vector_size)
        if self.vector_values.shape != expected:
            raise ValueError(
                f"vector_values must have shape {expected}, got {self.vector_values.shape}"
            )

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_csr(
        cls,
        matrix: CSRMatrix,
        vector_size: int,
        k: int,
        precision: Precision | str = Precision.FP32,
        **kwargs,
    ) -> "BlockedVectorFormat":
        """Translate a CSR matrix into the blocked nonzero-vector format.

        This is the "sparse matrix translation" step of Figure 3; the paper
        performs it with a CUDA kernel, here it is fully vectorised NumPy.
        """
        precision = Precision(precision)
        partition = partition_windows(matrix, vector_size)
        values = np.zeros(
            (partition.num_nonzero_vectors, vector_size), dtype=dtype_for(precision)
        )
        if matrix.nnz:
            row_of_entry = segment_ids(matrix.indptr)
            row_in_window = (row_of_entry % vector_size).astype(np.int64)
            values[partition.nnz_vector_of_entry, row_in_window] = matrix.data.astype(
                dtype_for(precision)
            )
        return cls(partition=partition, vector_values=values, k=k, precision=precision, **kwargs)

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> tuple[int, int]:
        """Original matrix shape."""
        return (self.partition.n_rows, self.partition.n_cols)

    @property
    def vector_size(self) -> int:
        """Nonzero-vector length / window height."""
        return self.partition.vector_size

    @property
    def num_windows(self) -> int:
        """Number of row windows."""
        return self.partition.num_windows

    @property
    def num_nonzero_vectors(self) -> int:
        """Number of stored nonzero vectors."""
        return self.partition.num_nonzero_vectors

    @property
    def nnz(self) -> int:
        """Number of nonzeros of the original matrix."""
        return self.partition.nnz

    @property
    def num_tc_blocks(self) -> int:
        """Total number of sparse TC blocks (groups of up to ``k`` vectors)."""
        return self.partition.num_tc_blocks(self.k)

    @property
    def row_pointers(self) -> np.ndarray:
        """Per-window start offsets into :attr:`column_indices` (ME-BCRS array 1)."""
        return self.partition.window_ptr

    @property
    def column_indices(self) -> np.ndarray:
        """Column index of every stored nonzero vector (ME-BCRS array 2)."""
        return self.partition.vector_cols

    @property
    def zero_fill(self) -> int:
        """Number of explicit zeros stored inside nonzero vectors."""
        return self.partition.zero_fill

    # -------------------------------------------------------------- accessors
    def window_vector_range(self, window: int) -> tuple[int, int]:
        """Half-open range of nonzero-vector indices belonging to ``window``."""
        return (
            int(self.partition.window_ptr[window]),
            int(self.partition.window_ptr[window + 1]),
        )

    def window_blocks(self, window: int) -> int:
        """Number of TC blocks in ``window``."""
        start, end = self.window_vector_range(window)
        count = end - start
        return (count + self.k - 1) // self.k

    def block_columns(self, window: int, block: int) -> np.ndarray:
        """Column indices of the vectors in TC block ``block`` of ``window``."""
        start, end = self.window_vector_range(window)
        lo = start + block * self.k
        hi = min(lo + self.k, end)
        if lo >= end:
            raise IndexError(f"window {window} has no block {block}")
        return self.partition.vector_cols[lo:hi]

    def block_values(self, window: int, block: int) -> np.ndarray:
        """Values of TC block ``block`` of ``window``.

        Returns an array of shape ``(vector_size, width)`` where ``width`` is
        the number of vectors actually present in the block (``<= k``; the
        last block of a window may be narrower, which is exactly the case
        ME-BCRS refuses to pad).
        """
        start, end = self.window_vector_range(window)
        lo = start + block * self.k
        hi = min(lo + self.k, end)
        if lo >= end:
            raise IndexError(f"window {window} has no block {block}")
        # vector_values is (vectors, vector_size); the TC block is
        # (vector_size rows, width vectors).
        return np.asarray(self.vector_values[lo:hi].T)

    def iter_window_blocks(self, window: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(block_columns, block_values)`` for every block of a window."""
        for block in range(self.window_blocks(window)):
            yield self.block_columns(window, block), self.block_values(window, block)

    # -------------------------------------------------------- batched access
    def blocks_as_arrays(self, group: int | None = None) -> BlockBatch:
        """Pack every TC block across all windows into padded batch arrays.

        ``group`` is the number of vectors per block and defaults to the
        format's MMA width :attr:`k`; the SDDMM kernels pass their output-tile
        width instead.  The result is cached on the instance per ``group``, so
        repeated kernel invocations on the same format (GNN training epochs,
        benchmark sweeps over dense widths) pay the packing cost once.

        The arrays assume the block structure and values are not mutated after
        the first call, which holds for every translation produced by
        :meth:`from_csr`.
        """
        group = self.k if group is None else int(group)
        if group <= 0:
            raise ValueError("group must be positive")
        cache: dict[int, BlockBatch] = self.__dict__.setdefault("_block_batch_cache", {})
        batch = cache.get(group)
        if batch is not None:
            return batch

        part = self.partition
        widths, window_of_block, first_block = part.block_widths(group)
        blocks_per_window = np.diff(first_block)
        n_blocks = widths.shape[0]

        index_in_window = np.arange(n_blocks, dtype=np.int64) - first_block[window_of_block]
        block_lo = part.window_ptr[window_of_block] + index_in_window * group
        lane = np.arange(group, dtype=np.int64)
        lane_valid = lane[None, :] < widths[:, None]
        vector_index = np.where(lane_valid, block_lo[:, None] + lane[None, :], 0)

        cols = part.vector_cols.astype(np.int64)
        columns = np.where(lane_valid, cols[vector_index], 0)
        # (n_blocks, group, vector_size) gather, zeroed on padded lanes, then
        # transposed to the (rows, vectors) TC-block orientation.
        gathered = np.asarray(self.vector_values, dtype=np.float32)[vector_index]
        gathered[~lane_valid] = 0.0
        values = np.ascontiguousarray(gathered.transpose(0, 2, 1))

        batch = BlockBatch(
            group=group,
            widths=widths,
            window_of_block=window_of_block,
            blocks_per_window=blocks_per_window,
            first_block_of_window=first_block[:-1],
            columns=columns,
            vector_index=vector_index,
            lane_valid=lane_valid,
            values=values,
        )
        cache[group] = batch
        return batch

    # ----------------------------------------------------------- conversions
    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR (explicit stored zeros are dropped)."""
        v = self.vector_size
        n_rows, n_cols = self.shape
        num_vecs = self.num_nonzero_vectors
        if num_vecs == 0:
            return CSRMatrix(
                indptr=np.zeros(n_rows + 1, dtype=np.int64),
                indices=np.zeros(0, dtype=np.int32),
                data=np.zeros(0, dtype=np.float32),
                shape=self.shape,
            )
        window_of_vector = np.repeat(
            np.arange(self.num_windows, dtype=np.int64), self.partition.vectors_per_window
        )
        rows = (window_of_vector[:, None] * v + np.arange(v)[None, :]).reshape(-1)
        cols = np.repeat(self.partition.vector_cols.astype(np.int64), v)
        vals = np.asarray(self.vector_values, dtype=np.float64).reshape(-1)
        mask = (vals != 0.0) & (rows < n_rows)
        return CSRMatrix.from_coo(rows[mask], cols[mask], vals[mask], self.shape)

    def to_dense(self) -> np.ndarray:
        """Dense reconstruction (tests / small matrices only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        v = self.vector_size
        for w in range(self.num_windows):
            row0 = w * v
            row1 = min(row0 + v, self.shape[0])
            start, end = self.window_vector_range(w)
            if start == end:
                continue
            cols = self.partition.vector_cols[start:end].astype(np.int64)
            block = self.vector_values[start:end].T  # (v, n_vectors)
            dense[row0:row1, cols] = block[: row1 - row0]
        return dense

    def values_row_major(self) -> np.ndarray:
        """Materialise the per-block row-major value layout of the paper.

        For every window and every TC block the block's elements are emitted
        row by row (``vector_size`` rows of ``width`` elements), exactly the
        "Values uses sparse TC blocks as strides, storing the elements of each
        sparse TC block in row-major" layout of Figure 10.
        """
        chunks: list[np.ndarray] = []
        for w in range(self.num_windows):
            for b in range(self.window_blocks(w)):
                chunks.append(self.block_values(w, b).reshape(-1))
        if not chunks:
            return np.zeros(0, dtype=dtype_for(self.precision))
        return np.concatenate(chunks).astype(dtype_for(self.precision))

    # --------------------------------------------------------------- metrics
    def value_element_bytes(self) -> int:
        """Bytes per stored value element."""
        return dtype_for(self.precision).itemsize

    def memory_footprint_bytes(self, index_bytes: int = 4) -> int:
        """Bytes used by the three format arrays (no padding in the base class)."""
        value_count = self.num_nonzero_vectors * self.vector_size
        return int(
            (self.num_windows + 1) * index_bytes
            + self.num_nonzero_vectors * index_bytes
            + value_count * self.value_element_bytes()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"vector_size={self.vector_size}, k={self.k}, "
            f"vectors={self.num_nonzero_vectors}, blocks={self.num_tc_blocks}, "
            f"precision={self.precision})"
        )
