"""Generic blocked nonzero-vector format.

ME-BCRS (8×1 vectors, FlashSparse), SR-BCRS (8×1 vectors with zero-vector
padding) and the SGT-style 16×1 format of TC-GNN / DTC-SpMM all share the
same skeleton: the matrix is cut into row windows of ``vector_size`` rows,
the nonzero vectors (columns with at least one nonzero inside the window)
are packed together, and groups of ``k`` consecutive vectors form the sparse
TC blocks consumed by the MMA instructions.

:class:`BlockedVectorFormat` implements that skeleton once; the concrete
formats in :mod:`repro.formats.mebcrs`, :mod:`repro.formats.srbcrs` and
:mod:`repro.formats.sgt16` specialise the vector size, the padding policy and
the memory-footprint accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.windows import WindowPartition, partition_windows
from repro.precision.types import Precision, dtype_for


@dataclass
class BlockedVectorFormat:
    """Window/vector-blocked sparse matrix.

    Attributes
    ----------
    partition:
        The nonzero-vector structure (windows, vector column indices).
    vector_values:
        Array of shape ``(num_nonzero_vectors, vector_size)``;
        ``vector_values[j, r]`` is the element at row offset ``r`` of nonzero
        vector ``j`` within its window (zero where the original matrix has no
        entry).  This is a layout-neutral view; :meth:`values_row_major`
        materialises the paper's exact per-block row-major byte layout.
    k:
        TC-block width — number of vectors grouped per MMA operand
        (8 for FP16, 4 for TF32 in FlashSparse; 8 for the 16×1 baselines).
    precision:
        Storage precision of the values.
    """

    partition: WindowPartition
    vector_values: np.ndarray
    k: int
    precision: Precision = Precision.FP32
    format_name: str = field(default="blocked", repr=False)

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        self.precision = Precision(self.precision)
        expected = (self.partition.num_nonzero_vectors, self.partition.vector_size)
        if self.vector_values.shape != expected:
            raise ValueError(
                f"vector_values must have shape {expected}, got {self.vector_values.shape}"
            )

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_csr(
        cls,
        matrix: CSRMatrix,
        vector_size: int,
        k: int,
        precision: Precision | str = Precision.FP32,
        **kwargs,
    ) -> "BlockedVectorFormat":
        """Translate a CSR matrix into the blocked nonzero-vector format.

        This is the "sparse matrix translation" step of Figure 3; the paper
        performs it with a CUDA kernel, here it is fully vectorised NumPy.
        """
        precision = Precision(precision)
        partition = partition_windows(matrix, vector_size)
        values = np.zeros(
            (partition.num_nonzero_vectors, vector_size), dtype=dtype_for(precision)
        )
        if matrix.nnz:
            row_of_entry = np.repeat(
                np.arange(matrix.n_rows, dtype=np.int64),
                np.diff(matrix.indptr).astype(np.int64),
            )
            row_in_window = (row_of_entry % vector_size).astype(np.int64)
            values[partition.nnz_vector_of_entry, row_in_window] = matrix.data.astype(
                dtype_for(precision)
            )
        return cls(partition=partition, vector_values=values, k=k, precision=precision, **kwargs)

    # ------------------------------------------------------------ properties
    @property
    def shape(self) -> tuple[int, int]:
        """Original matrix shape."""
        return (self.partition.n_rows, self.partition.n_cols)

    @property
    def vector_size(self) -> int:
        """Nonzero-vector length / window height."""
        return self.partition.vector_size

    @property
    def num_windows(self) -> int:
        """Number of row windows."""
        return self.partition.num_windows

    @property
    def num_nonzero_vectors(self) -> int:
        """Number of stored nonzero vectors."""
        return self.partition.num_nonzero_vectors

    @property
    def nnz(self) -> int:
        """Number of nonzeros of the original matrix."""
        return self.partition.nnz

    @property
    def num_tc_blocks(self) -> int:
        """Total number of sparse TC blocks (groups of up to ``k`` vectors)."""
        return self.partition.num_tc_blocks(self.k)

    @property
    def row_pointers(self) -> np.ndarray:
        """Per-window start offsets into :attr:`column_indices` (ME-BCRS array 1)."""
        return self.partition.window_ptr

    @property
    def column_indices(self) -> np.ndarray:
        """Column index of every stored nonzero vector (ME-BCRS array 2)."""
        return self.partition.vector_cols

    @property
    def zero_fill(self) -> int:
        """Number of explicit zeros stored inside nonzero vectors."""
        return self.partition.zero_fill

    # -------------------------------------------------------------- accessors
    def window_vector_range(self, window: int) -> tuple[int, int]:
        """Half-open range of nonzero-vector indices belonging to ``window``."""
        return (
            int(self.partition.window_ptr[window]),
            int(self.partition.window_ptr[window + 1]),
        )

    def window_blocks(self, window: int) -> int:
        """Number of TC blocks in ``window``."""
        start, end = self.window_vector_range(window)
        count = end - start
        return (count + self.k - 1) // self.k

    def block_columns(self, window: int, block: int) -> np.ndarray:
        """Column indices of the vectors in TC block ``block`` of ``window``."""
        start, end = self.window_vector_range(window)
        lo = start + block * self.k
        hi = min(lo + self.k, end)
        if lo >= end:
            raise IndexError(f"window {window} has no block {block}")
        return self.partition.vector_cols[lo:hi]

    def block_values(self, window: int, block: int) -> np.ndarray:
        """Values of TC block ``block`` of ``window``.

        Returns an array of shape ``(vector_size, width)`` where ``width`` is
        the number of vectors actually present in the block (``<= k``; the
        last block of a window may be narrower, which is exactly the case
        ME-BCRS refuses to pad).
        """
        start, end = self.window_vector_range(window)
        lo = start + block * self.k
        hi = min(lo + self.k, end)
        if lo >= end:
            raise IndexError(f"window {window} has no block {block}")
        # vector_values is (vectors, vector_size); the TC block is
        # (vector_size rows, width vectors).
        return np.asarray(self.vector_values[lo:hi].T)

    def iter_window_blocks(self, window: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(block_columns, block_values)`` for every block of a window."""
        for block in range(self.window_blocks(window)):
            yield self.block_columns(window, block), self.block_values(window, block)

    # ----------------------------------------------------------- conversions
    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR (explicit stored zeros are dropped)."""
        v = self.vector_size
        n_rows, n_cols = self.shape
        num_vecs = self.num_nonzero_vectors
        if num_vecs == 0:
            return CSRMatrix(
                indptr=np.zeros(n_rows + 1, dtype=np.int64),
                indices=np.zeros(0, dtype=np.int32),
                data=np.zeros(0, dtype=np.float32),
                shape=self.shape,
            )
        window_of_vector = np.repeat(
            np.arange(self.num_windows, dtype=np.int64), self.partition.vectors_per_window
        )
        rows = (window_of_vector[:, None] * v + np.arange(v)[None, :]).reshape(-1)
        cols = np.repeat(self.partition.vector_cols.astype(np.int64), v)
        vals = np.asarray(self.vector_values, dtype=np.float64).reshape(-1)
        mask = (vals != 0.0) & (rows < n_rows)
        return CSRMatrix.from_coo(rows[mask], cols[mask], vals[mask], self.shape)

    def to_dense(self) -> np.ndarray:
        """Dense reconstruction (tests / small matrices only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        v = self.vector_size
        for w in range(self.num_windows):
            row0 = w * v
            row1 = min(row0 + v, self.shape[0])
            start, end = self.window_vector_range(w)
            if start == end:
                continue
            cols = self.partition.vector_cols[start:end].astype(np.int64)
            block = self.vector_values[start:end].T  # (v, n_vectors)
            dense[row0:row1, cols] = block[: row1 - row0]
        return dense

    def values_row_major(self) -> np.ndarray:
        """Materialise the per-block row-major value layout of the paper.

        For every window and every TC block the block's elements are emitted
        row by row (``vector_size`` rows of ``width`` elements), exactly the
        "Values uses sparse TC blocks as strides, storing the elements of each
        sparse TC block in row-major" layout of Figure 10.
        """
        chunks: list[np.ndarray] = []
        for w in range(self.num_windows):
            for b in range(self.window_blocks(w)):
                chunks.append(self.block_values(w, b).reshape(-1))
        if not chunks:
            return np.zeros(0, dtype=dtype_for(self.precision))
        return np.concatenate(chunks).astype(dtype_for(self.precision))

    # --------------------------------------------------------------- metrics
    def value_element_bytes(self) -> int:
        """Bytes per stored value element."""
        return dtype_for(self.precision).itemsize

    def memory_footprint_bytes(self, index_bytes: int = 4) -> int:
        """Bytes used by the three format arrays (no padding in the base class)."""
        value_count = self.num_nonzero_vectors * self.vector_size
        return int(
            (self.num_windows + 1) * index_bytes
            + self.num_nonzero_vectors * index_bytes
            + value_count * self.value_element_bytes()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"vector_size={self.vector_size}, k={self.k}, "
            f"vectors={self.num_nonzero_vectors}, blocks={self.num_tc_blocks}, "
            f"precision={self.precision})"
        )
