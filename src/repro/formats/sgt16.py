"""The 16×1 nonzero-vector format used by TC-GNN and DTC-SpMM.

TC-GNN's SGT ("sparse graph translation") technique and DTC-SpMM both slice
the sparse matrix into 16-row windows and 16×1 nonzero vectors, matching the
``m = 16`` dimension of the MMA/WMMA left operand (Section 2.2, Figure 2).
The resulting blocked structure is identical in spirit to ME-BCRS but with a
16-element vector; it is the substrate of the 16×1 ablation baseline
(Figure 14) and of the TC-GNN / DTC-SpMM performance models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.precision.types import Precision

#: Vector granularity imposed by using the sparse matrix as the MMA left operand.
SGT_VECTOR_SIZE = 16


def default_block_k_16(precision: Precision | str) -> int:
    """TC-block width for the 16×1 approaches.

    DTC-SpMM uses ``mma.m16n8k8`` TF32 (``k=8``); the FP16 ablation baseline
    uses ``mma.m16n8k8`` FP16 (``k=8``) to mirror FlashSparse's instruction
    mix at the larger granularity.
    """
    del precision
    return 8


@dataclass
class SGT16Matrix(BlockedVectorFormat):
    """Sparse matrix stored as 16×1 nonzero vectors grouped into 16×k TC blocks."""

    format_name: str = "SGT-16x1"

    @classmethod
    def from_csr(
        cls,
        matrix: CSRMatrix,
        vector_size: int = SGT_VECTOR_SIZE,
        k: int | None = None,
        precision: Precision | str = Precision.TF32,
        **kwargs,
    ) -> "SGT16Matrix":
        """Translate CSR into the 16×1 blocked format."""
        precision = Precision(precision)
        if k is None:
            k = default_block_k_16(precision)
        return super().from_csr(matrix, vector_size=vector_size, k=k, precision=precision, **kwargs)
