"""A small CSR container used as the interchange format.

The class wraps the three CSR arrays with validation, conversion helpers and
the statistics (rows, columns, nnz, average row length) that the dataset
tables report.  ``scipy.sparse`` is used for conversions and reference
computations but the container keeps its own arrays so kernels control the
exact dtypes (int32 indices, value dtype chosen by precision).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass
class CSRMatrix:
    """Compressed Sparse Row matrix.

    Attributes
    ----------
    indptr:
        Row pointer array of length ``n_rows + 1`` (int64).
    indices:
        Column indices of the nonzeros, ordered by row (int32).
    data:
        Nonzero values (float32 unless specified otherwise).
    shape:
        ``(n_rows, n_cols)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int32)
        self.data = np.asarray(self.data)
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.indptr.ndim != 1 or self.indptr.shape[0] != n_rows + 1:
            raise ValueError("indptr must have length n_rows + 1")
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape[0] != self.indptr[-1] or self.data.shape[0] != self.indptr[-1]:
            raise ValueError("indices/data length must equal indptr[-1]")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------ properties
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.indptr[-1])

    @property
    def avg_row_length(self) -> float:
        """Average number of nonzeros per row (Table 4's AvgRowLength)."""
        if self.n_rows == 0:
            return 0.0
        return self.nnz / self.n_rows

    @property
    def density(self) -> float:
        """Fraction of entries that are nonzero."""
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix | sp.sparray, dtype=np.float32) -> "CSRMatrix":
        """Build from any scipy sparse matrix (converted to canonical CSR)."""
        csr = sp.csr_matrix(matrix).astype(dtype)
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(
            indptr=csr.indptr.astype(np.int64),
            indices=csr.indices.astype(np.int32),
            data=np.asarray(csr.data, dtype=dtype),
            shape=csr.shape,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, dtype=np.float32) -> "CSRMatrix":
        """Build from a dense 2-D array (zeros are dropped)."""
        return cls.from_scipy(sp.csr_matrix(np.asarray(dense, dtype=dtype)))

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray | None,
        shape: tuple[int, int],
        dtype=np.float32,
    ) -> "CSRMatrix":
        """Build from COO triplets; duplicate entries are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=dtype)
        coo = sp.coo_matrix((np.asarray(vals, dtype=dtype), (rows, cols)), shape=shape)
        return cls.from_scipy(coo, dtype=dtype)

    # ----------------------------------------------------------- conversions
    def to_scipy(self) -> sp.csr_matrix:
        """Convert to a scipy CSR matrix."""
        return sp.csr_matrix(
            (self.data.copy(), self.indices.astype(np.int64), self.indptr.copy()),
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Convert to a dense ndarray (use only for small matrices/tests)."""
        return np.asarray(self.to_scipy().todense())

    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of one row."""
        start, end = int(self.indptr[row]), int(self.indptr[row + 1])
        return self.indices[start:end], self.data[start:end]

    def row_lengths(self) -> np.ndarray:
        """Number of nonzeros in every row."""
        return np.diff(self.indptr)

    # ------------------------------------------------------------- utilities
    def content_key(self) -> str:
        """Content fingerprint: a hex digest over the CSR arrays and shape.

        Two structurally equal matrices (same shape, same ``indptr`` /
        ``indices`` / ``data`` bytes) share one key even when they are
        distinct objects — the handle the translation cache's ``by_content``
        mode deduplicates on.  The digest is memoised on the instance, so
        repeated cache lookups hash the arrays once; like the cache itself it
        assumes the matrix is not mutated in place after construction.
        """
        cached = getattr(self, "_content_key", None)
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(f"{self.shape[0]}x{self.shape[1]}:{self.data.dtype.str}".encode())
            digest.update(np.ascontiguousarray(self.indptr).tobytes())
            digest.update(np.ascontiguousarray(self.indices).tobytes())
            digest.update(np.ascontiguousarray(self.data).tobytes())
            cached = digest.hexdigest()
            self._content_key = cached
        return cached

    def with_content_key(self, key: str) -> "CSRMatrix":
        """Adopt a precomputed content key; returns ``self`` for chaining.

        The cluster worker rebuilds matrices from head-shipped buffers and
        the head already hashed those exact bytes — adopting its digest
        skips the per-task O(nnz) rehash in :meth:`content_key`.  The
        caller vouches that ``key`` was computed over this content; a
        wrong key aliases cache entries exactly like a hash collision
        would.
        """
        self._content_key = str(key)
        return self

    def memory_footprint_bytes(self, value_bytes: int = 4, index_bytes: int = 4) -> int:
        """Bytes needed to store the CSR arrays."""
        return int(
            self.indptr.shape[0] * index_bytes
            + self.indices.shape[0] * index_bytes
            + self.data.shape[0] * value_bytes
        )

    def with_values(self, data: np.ndarray) -> "CSRMatrix":
        """Return a copy sharing the structure but holding new values."""
        data = np.asarray(data)
        if data.shape[0] != self.nnz:
            raise ValueError("replacement values must have one entry per nonzero")
        return CSRMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"avg_row_length={self.avg_row_length:.2f})"
        )
