"""LRU cache for CSR → blocked-format translations.

The kernel entry points accept plain CSR matrices and translate them on the
fly (the paper's preprocessing kernel).  Call sites that sweep the same
matrix repeatedly — GNN training loops estimating per-epoch kernel times,
benchmark sweeps over dense widths/devices — would otherwise re-run the
translation on every call.  This module memoises the translations keyed by
the *identity* of the CSR object: each cache entry keeps a strong reference
to its source matrix, so a key can never alias a different matrix whose id
was recycled.

The key also fingerprints the three CSR array buffers (their base addresses
and nnz), so rebinding ``matrix.data``/``indices``/``indptr`` to new arrays
invalidates the entry.  What the cache cannot see is an *in-place* write to
an existing buffer (``matrix.data[k] = v``): that mutation returns stale
translations until :func:`clear_format_cache` is called or a fresh CSRMatrix
is built.  Every producer in this codebase treats CSR matrices as immutable
after construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.precision.types import Precision

#: Maximum number of cached translations (each entry pins its source CSR and
#: the translated format in memory, so the cap bounds the working set).
FORMAT_CACHE_MAXSIZE = 32

_cache: "OrderedDict[tuple, tuple[CSRMatrix, object]]" = OrderedDict()


def _lookup(key: tuple, source: CSRMatrix, build: Callable[[], object]):
    entry = _cache.get(key)
    if entry is not None and entry[0] is source:
        _cache.move_to_end(key)
        return entry[1]
    fmt = build()
    _cache[key] = (source, fmt)
    _cache.move_to_end(key)
    while len(_cache) > FORMAT_CACHE_MAXSIZE:
        _cache.popitem(last=False)
    return fmt


def _key(matrix: CSRMatrix, kind: str, precision: Precision) -> tuple:
    return (
        id(matrix),
        matrix.indptr.ctypes.data,
        matrix.indices.ctypes.data,
        matrix.data.ctypes.data,
        matrix.nnz,
        kind,
        precision,
    )


def cached_mebcrs(matrix: CSRMatrix, precision: Precision | str) -> MEBCRSMatrix:
    """The ME-BCRS translation of ``matrix`` at ``precision``, memoised."""
    precision = Precision(precision)
    return _lookup(
        _key(matrix, "mebcrs", precision),
        matrix,
        lambda: MEBCRSMatrix.from_csr(matrix, precision=precision),
    )


def cached_sgt16(matrix: CSRMatrix, precision: Precision | str) -> SGT16Matrix:
    """The 16×1 SGT translation of ``matrix`` at ``precision``, memoised."""
    precision = Precision(precision)
    return _lookup(
        _key(matrix, "sgt16", precision),
        matrix,
        lambda: SGT16Matrix.from_csr(matrix, precision=precision),
    )


def clear_format_cache() -> None:
    """Drop every cached translation (and the pinned source matrices)."""
    _cache.clear()


def format_cache_size() -> int:
    """Number of translations currently cached."""
    return len(_cache)
