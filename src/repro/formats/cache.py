"""LRU cache for CSR → blocked-format translations.

The kernel entry points accept plain CSR matrices and translate them on the
fly (the paper's preprocessing kernel).  Call sites that sweep the same
matrix repeatedly — GNN training loops estimating per-epoch kernel times,
benchmark sweeps over dense widths/devices — would otherwise re-run the
translation on every call.  This module memoises the translations keyed by
the *identity* of the CSR object: each cache entry keeps a strong reference
to its source matrix, so a key can never alias a different matrix whose id
was recycled.

The key also fingerprints the three CSR array buffers (their base addresses
and nnz), so rebinding ``matrix.data``/``indices``/``indptr`` to new arrays
invalidates the entry.  What the cache cannot see is an *in-place* write to
an existing buffer (``matrix.data[k] = v``): that mutation returns stale
translations until :func:`clear_format_cache` is called or a fresh CSRMatrix
is built.  Every producer in this codebase treats CSR matrices as immutable
after construction.

Content-hash keying
-------------------
Passing ``by_content=True`` additionally keys the translation by
:meth:`~repro.formats.csr.CSRMatrix.content_key` — a digest over the CSR
arrays and shape — so two *equal* matrices loaded independently (the same
graph deserialised twice, replicas in a serving fleet) share one
translation.  Identity lookup stays the fast path: the O(nnz) hash runs
only on the first identity miss of a given object, after which the object's
identity key aliases the shared entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.precision.types import Precision

#: Maximum number of cached translations (each entry pins its source CSR and
#: the translated format in memory, so the cap bounds the working set).
FORMAT_CACHE_MAXSIZE = 32

_cache: "OrderedDict[tuple, tuple[CSRMatrix | None, object]]" = OrderedDict()


def _store(key: tuple, source: CSRMatrix | None, fmt: object) -> None:
    _cache[key] = (source, fmt)
    _cache.move_to_end(key)
    while len(_cache) > FORMAT_CACHE_MAXSIZE:
        _cache.popitem(last=False)


def _lookup(
    key: tuple,
    source: CSRMatrix,
    build: Callable[[], object],
    content_key: tuple | None = None,
):
    entry = _cache.get(key)
    if entry is not None and entry[0] is source:
        _cache.move_to_end(key)
        return entry[1]
    if content_key is not None:
        # Content entries pin no source: equality is established by the
        # digest, not by object identity, so any equal matrix may hit.
        entry = _cache.get(content_key)
        if entry is not None:
            _cache.move_to_end(content_key)
            # Alias this object's identity key to the shared translation so
            # its next lookup skips the hash entirely.
            _store(key, source, entry[1])
            return entry[1]
    fmt = build()
    _store(key, source, fmt)
    if content_key is not None:
        _store(content_key, None, fmt)
    return fmt


def _key(matrix: CSRMatrix, kind: str, precision: Precision) -> tuple:
    return (
        id(matrix),
        matrix.indptr.ctypes.data,
        matrix.indices.ctypes.data,
        matrix.data.ctypes.data,
        matrix.nnz,
        kind,
        precision,
    )


def _content_key(matrix: CSRMatrix, kind: str, precision: Precision) -> tuple:
    return ("content", matrix.content_key(), kind, precision)


def cached_mebcrs(
    matrix: CSRMatrix, precision: Precision | str, by_content: bool = False
) -> MEBCRSMatrix:
    """The ME-BCRS translation of ``matrix`` at ``precision``, memoised.

    ``by_content=True`` lets structurally equal matrices share one
    translation (see the module docstring); the default keys by object
    identity only.
    """
    precision = Precision(precision)
    return _lookup(
        _key(matrix, "mebcrs", precision),
        matrix,
        lambda: MEBCRSMatrix.from_csr(matrix, precision=precision),
        _content_key(matrix, "mebcrs", precision) if by_content else None,
    )


def cached_sgt16(
    matrix: CSRMatrix, precision: Precision | str, by_content: bool = False
) -> SGT16Matrix:
    """The 16×1 SGT translation of ``matrix`` at ``precision``, memoised.

    ``by_content=True`` behaves as for :func:`cached_mebcrs`.
    """
    precision = Precision(precision)
    return _lookup(
        _key(matrix, "sgt16", precision),
        matrix,
        lambda: SGT16Matrix.from_csr(matrix, precision=precision),
        _content_key(matrix, "sgt16", precision) if by_content else None,
    )


def clear_format_cache() -> None:
    """Drop every cached translation (and the pinned source matrices)."""
    _cache.clear()


def format_cache_size() -> int:
    """Number of translations currently cached."""
    return len(_cache)
