"""LRU cache for CSR → blocked-format translations.

The kernel entry points accept plain CSR matrices and translate them on the
fly (the paper's preprocessing kernel).  Call sites that sweep the same
matrix repeatedly — GNN training loops estimating per-epoch kernel times,
benchmark sweeps over dense widths/devices, serving frontends replaying the
same graph for every request — would otherwise re-run the translation on
every call.  This module memoises the translations keyed by the *identity*
of the CSR object: each cache entry keeps a strong reference to its source
matrix, so a key can never alias a different matrix whose id was recycled.

The key also fingerprints the three CSR array buffers (their base addresses
and nnz), so rebinding ``matrix.data``/``indices``/``indptr`` to new arrays
invalidates the entry.  What the cache cannot see is an *in-place* write to
an existing buffer (``matrix.data[k] = v``): that mutation returns stale
translations until :func:`clear_format_cache` is called or a fresh CSRMatrix
is built.  Every producer in this codebase treats CSR matrices as immutable
after construction.

Content-hash keying
-------------------
Passing ``by_content=True`` additionally keys the translation by
:meth:`~repro.formats.csr.CSRMatrix.content_key` — a digest over the CSR
arrays and shape — so two *equal* matrices loaded independently (the same
graph deserialised twice, replicas in a serving fleet) share one
translation.  Identity lookup stays the fast path: the O(nnz) hash runs
only on the first identity miss of a given object, after which the object's
identity key aliases the shared entry.  The serving subsystem
(:mod:`repro.serve`) keys by content by default — request payloads are
deserialised fresh per request, so identity keys would never hit.

Observability
-------------
The cache counts hits, misses and evictions (:meth:`TranslationCache.stats`,
also reachable via the module-level :func:`format_cache_stats`); the serving
metrics (:mod:`repro.serve.metrics`) snapshot these counters per interval to
report translation-dedup effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import RLock
from typing import Callable

from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.precision.types import Precision

#: Maximum number of cached translations (each entry pins its source CSR and
#: the translated format in memory, so the cap bounds the working set).
FORMAT_CACHE_MAXSIZE = 32


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of a :class:`TranslationCache`.

    ``hits`` counts lookups served without running a translation (identity
    hits plus content hits); ``content_hits`` is the subset that was
    deduplicated across distinct-but-equal matrices via the content digest.
    ``misses`` counts translations actually built, ``evictions`` the entries
    dropped by the LRU cap.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    content_hits: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (1.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 1.0


class TranslationCache:
    """LRU of CSR → blocked-format translations with hit/miss accounting.

    A module-level default instance backs the ``cached_*`` functions; the
    class is separate so tests (and a future per-server cache) can hold an
    isolated instance.  All operations take the instance lock — the serving
    frontend looks up translations from its dispatch thread while clients
    submit from theirs.
    """

    def __init__(self, maxsize: int = FORMAT_CACHE_MAXSIZE):
        self.maxsize = int(maxsize)
        self._cache: "OrderedDict[tuple, tuple[CSRMatrix | None, object]]" = OrderedDict()
        self._lock = RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._content_hits = 0

    # ------------------------------------------------------------- internals
    def _store(self, key: tuple, source: CSRMatrix | None, fmt: object) -> None:
        self._cache[key] = (source, fmt)
        self._cache.move_to_end(key)
        while len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
            self._evictions += 1

    def lookup(
        self,
        key: tuple,
        source: CSRMatrix,
        build: Callable[[], object],
        content_key: tuple | None = None,
    ):
        """Return the cached translation for ``key``, building it on a miss."""
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None and entry[0] is source:
                self._cache.move_to_end(key)
                self._hits += 1
                return entry[1]
            if content_key is not None:
                # Content entries pin no source: equality is established by
                # the digest, not by object identity, so any equal matrix may
                # hit.
                entry = self._cache.get(content_key)
                if entry is not None:
                    self._cache.move_to_end(content_key)
                    # Alias this object's identity key to the shared
                    # translation so its next lookup skips the hash entirely.
                    self._store(key, source, entry[1])
                    self._hits += 1
                    self._content_hits += 1
                    return entry[1]
            fmt = build()
            self._misses += 1
            self._store(key, source, fmt)
            if content_key is not None:
                self._store(content_key, None, fmt)
            return fmt

    # ------------------------------------------------------------ public API
    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                content_hits=self._content_hits,
                size=len(self._cache),
            )

    def reset_stats(self) -> None:
        """Zero the counters (entries are kept)."""
        with self._lock:
            self._hits = self._misses = self._evictions = self._content_hits = 0

    def clear(self) -> None:
        """Drop every cached translation (and the pinned source matrices)."""
        with self._lock:
            self._cache.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)


#: The process-wide default cache every kernel entry point goes through.
DEFAULT_CACHE = TranslationCache()


def _key(matrix: CSRMatrix, kind: str, precision: Precision) -> tuple:
    return (
        id(matrix),
        matrix.indptr.ctypes.data,
        matrix.indices.ctypes.data,
        matrix.data.ctypes.data,
        matrix.nnz,
        kind,
        precision,
    )


def _content_key(matrix: CSRMatrix, kind: str, precision: Precision) -> tuple:
    return ("content", matrix.content_key(), kind, precision)


def cached_mebcrs(
    matrix: CSRMatrix,
    precision: Precision | str,
    by_content: bool = False,
    cache: TranslationCache | None = None,
) -> MEBCRSMatrix:
    """The ME-BCRS translation of ``matrix`` at ``precision``, memoised.

    ``by_content=True`` lets structurally equal matrices share one
    translation (see the module docstring); the default keys by object
    identity only.  ``cache`` selects the cache instance — cluster worker
    hosts pass their own so each host's working set (and hit-rate
    accounting) is isolated; the default is the process-global cache.
    """
    precision = Precision(precision)
    return (cache if cache is not None else DEFAULT_CACHE).lookup(
        _key(matrix, "mebcrs", precision),
        matrix,
        lambda: MEBCRSMatrix.from_csr(matrix, precision=precision),
        _content_key(matrix, "mebcrs", precision) if by_content else None,
    )


def cached_sgt16(
    matrix: CSRMatrix,
    precision: Precision | str,
    by_content: bool = False,
    cache: TranslationCache | None = None,
) -> SGT16Matrix:
    """The 16×1 SGT translation of ``matrix`` at ``precision``, memoised.

    ``by_content`` and ``cache`` behave as for :func:`cached_mebcrs`.
    """
    precision = Precision(precision)
    return (cache if cache is not None else DEFAULT_CACHE).lookup(
        _key(matrix, "sgt16", precision),
        matrix,
        lambda: SGT16Matrix.from_csr(matrix, precision=precision),
        _content_key(matrix, "sgt16", precision) if by_content else None,
    )


def clear_format_cache() -> None:
    """Drop every cached translation (and the pinned source matrices)."""
    DEFAULT_CACHE.clear()


def format_cache_size() -> int:
    """Number of translations currently cached."""
    return len(DEFAULT_CACHE)


def format_cache_stats() -> CacheStats:
    """Hit/miss/eviction snapshot of the default cache."""
    return DEFAULT_CACHE.stats()


def reset_format_cache_stats() -> None:
    """Zero the default cache's counters (entries are kept)."""
    DEFAULT_CACHE.reset_stats()
