"""ME-BCRS — FlashSparse's memory-efficient blocked storage format.

Section 3.5 of the paper: the sparse matrix is stored as three arrays per
the 8×1 nonzero-vector partition —

1. ``RowPointers`` — start offset of each row window in ``ColumnIndices``;
2. ``ColumnIndices`` — the column index of every stored nonzero vector;
3. ``Values`` — the elements of each sparse TC block, row-major, with the TC
   block as the stride.

Unlike the padding-based SR-BCRS scheme, the last TC block of a window is
*not* padded with zero vectors to a multiple of ``k``: the kernels compute
the residue width with a modulo operation and supply zero register values for
the missing vectors.  This trims both ``ColumnIndices`` and ``Values`` and
needs only one row pointer per window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.precision.types import Precision

#: Vector granularity enabled by the swap-and-transpose MMA strategy.
FLASH_VECTOR_SIZE = 8


def default_block_k(precision: Precision | str) -> int:
    """TC-block width ``k`` used by FlashSparse for a given precision.

    FP16 uses ``mma.m16n8k8`` so the sparse TC block A is 8×8 (``k=8``);
    TF32 uses ``mma.m16n8k4`` so the sparse TC block A is 8×4 (``k=4``).
    """
    precision = Precision(precision)
    if precision is Precision.FP16:
        return 8
    if precision is Precision.TF32:
        return 4
    # FP32 is not a tensor-core precision; the CSR baselines handle it.  For
    # format experiments at FP32 we fall back to the FP16 blocking.
    return 8


@dataclass
class MEBCRSMatrix(BlockedVectorFormat):
    """ME-BCRS matrix (8×1 nonzero vectors, no zero-vector padding)."""

    format_name: str = "ME-BCRS"

    @classmethod
    def from_csr(
        cls,
        matrix: CSRMatrix,
        vector_size: int = FLASH_VECTOR_SIZE,
        k: int | None = None,
        precision: Precision | str = Precision.FP16,
        **kwargs,
    ) -> "MEBCRSMatrix":
        """Translate CSR into ME-BCRS.

        ``k`` defaults to the precision-appropriate TC-block width
        (:func:`default_block_k`).
        """
        precision = Precision(precision)
        if k is None:
            k = default_block_k(precision)
        return super().from_csr(matrix, vector_size=vector_size, k=k, precision=precision, **kwargs)

    def memory_footprint_bytes(self, index_bytes: int = 4) -> int:
        """Bytes of the three ME-BCRS arrays.

        One row pointer per window (the paper stores ``M`` pointers; the
        terminating offset adds one more entry), one column index per stored
        nonzero vector, and ``vector_size`` values per stored vector — no
        padded vectors anywhere.
        """
        value_count = self.num_nonzero_vectors * self.vector_size
        return int(
            (self.num_windows + 1) * index_bytes
            + self.num_nonzero_vectors * index_bytes
            + value_count * self.value_element_bytes()
        )

    def residue_vectors(self, window: int) -> int:
        """Number of vectors in the (possibly partial) last TC block of a window.

        This is the ``residue`` the SpMM/SDDMM kernels compute with a modulo
        operation (Section 3.5); a full window returns ``k``.
        """
        start, end = self.window_vector_range(window)
        count = end - start
        if count == 0:
            return 0
        rem = count % self.k
        return rem if rem else self.k
