"""Sparse matrix storage formats.

This subpackage implements the storage formats that the paper's kernels and
baselines rely on:

* :mod:`repro.formats.csr` — plain CSR, the input/interchange format;
* :mod:`repro.formats.windows` — row-window / nonzero-vector partitioning,
  the shared preprocessing step of every TCU approach (Section 2.2);
* :mod:`repro.formats.blocked` — a generic "window of nonzero vectors"
  block format parameterised by the vector height and the TC-block width
  ``k``;
* :mod:`repro.formats.mebcrs` — ME-BCRS, FlashSparse's memory-efficient
  format that stores no padded zero vectors (Section 3.5);
* :mod:`repro.formats.srbcrs` — SR-BCRS, the padding-based format of
  prior work, used as the footprint baseline for Table 7;
* :mod:`repro.formats.sgt16` — the 16×1-vector format used by TC-GNN and
  DTC-SpMM;
* :mod:`repro.formats.stats` — redundancy statistics (zero fill, MMA
  counts, data-access cost) used for Figures 1, 12 and Table 2;
* :mod:`repro.formats.cache` — an LRU cache of CSR → blocked translations
  shared by the kernel entry points.
"""

from repro.formats.csr import CSRMatrix
from repro.formats.windows import WindowPartition, partition_windows
from repro.formats.blocked import BlockBatch, BlockedVectorFormat
from repro.formats.cache import cached_mebcrs, cached_sgt16, clear_format_cache
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.srbcrs import SRBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.formats.stats import (
    VectorStats,
    vector_stats,
    mma_count_spmm,
    mma_count_sddmm,
    spmm_data_access_bytes,
    sddmm_data_access_bytes,
)

__all__ = [
    "CSRMatrix",
    "WindowPartition",
    "partition_windows",
    "BlockBatch",
    "BlockedVectorFormat",
    "cached_mebcrs",
    "cached_sgt16",
    "clear_format_cache",
    "MEBCRSMatrix",
    "SRBCRSMatrix",
    "SGT16Matrix",
    "VectorStats",
    "vector_stats",
    "mma_count_spmm",
    "mma_count_sddmm",
    "spmm_data_access_bytes",
    "sddmm_data_access_bytes",
]
