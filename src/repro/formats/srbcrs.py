"""SR-BCRS — the zero-vector-padding blocked format used as baseline.

SR-BCRS (from "Efficient quantized sparse matrix operations on tensor cores",
reference [26] of the paper) pads every row window with zero vectors so the
number of stored vectors is a multiple of the TC-block width ``k``.  This
keeps the kernel simple — every TC block is full — at the price of storing
padded column indices and padded values, and of keeping two row pointers per
window (block start and vector start).  Table 7 of the paper quantifies the
memory saved by ME-BCRS relative to this scheme; :meth:`memory_footprint_bytes`
reproduces that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import FLASH_VECTOR_SIZE, default_block_k
from repro.precision.types import Precision


@dataclass
class SRBCRSMatrix(BlockedVectorFormat):
    """SR-BCRS matrix (8×1 nonzero vectors, zero-vector padding to ``k``)."""

    format_name: str = "SR-BCRS"

    @classmethod
    def from_csr(
        cls,
        matrix: CSRMatrix,
        vector_size: int = FLASH_VECTOR_SIZE,
        k: int | None = None,
        precision: Precision | str = Precision.FP16,
        **kwargs,
    ) -> "SRBCRSMatrix":
        """Translate CSR into SR-BCRS (same partition; padding is accounted, not stored)."""
        precision = Precision(precision)
        if k is None:
            k = default_block_k(precision)
        return super().from_csr(matrix, vector_size=vector_size, k=k, precision=precision, **kwargs)

    # ---------------------------------------------------------------- padding
    @property
    def num_padded_vectors(self) -> int:
        """Zero vectors added so every window holds a multiple of ``k`` vectors."""
        return self.partition.padded_vectors(self.k)

    @property
    def num_stored_vectors(self) -> int:
        """Vectors physically stored, including padding."""
        return self.num_nonzero_vectors + self.num_padded_vectors

    def padded_column_indices(self) -> np.ndarray:
        """Column indices array including padded entries (padding repeats 0)."""
        counts = self.partition.vectors_per_window
        blocks = self.partition.tc_blocks_per_window(self.k)
        out = np.zeros(int((blocks * self.k).sum()), dtype=np.int32)
        write = 0
        read = 0
        for count, nblocks in zip(counts, blocks):
            stored = int(nblocks * self.k)
            out[write:write + count] = self.partition.vector_cols[read:read + count]
            write += stored
            read += count
        return out

    # --------------------------------------------------------------- metrics
    def memory_footprint_bytes(self, index_bytes: int = 4) -> int:
        """Bytes of the padded format arrays.

        Two row pointers per window (the padding-based scheme keeps both a
        block pointer and a vector pointer, the "2M" of Section 3.5), one
        column index and ``vector_size`` values per *stored* vector including
        the padded zero vectors.
        """
        stored = self.num_stored_vectors
        value_count = stored * self.vector_size
        return int(
            2 * self.num_windows * index_bytes
            + stored * index_bytes
            + value_count * self.value_element_bytes()
        )


def footprint_reduction(me_bytes: int, sr_bytes: int) -> float:
    """Fractional footprint reduction of ME-BCRS relative to SR-BCRS.

    Returns ``(sr - me) / sr`` (0 when both are empty); Table 7 buckets these
    percentages across the matrix collection.
    """
    if sr_bytes <= 0:
        return 0.0
    return (sr_bytes - me_bytes) / sr_bytes
