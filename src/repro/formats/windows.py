"""Row-window / nonzero-vector partitioning.

Every TCU approach in the paper starts by slicing the sparse matrix into row
*windows* whose height equals the nonzero-vector length (16 for TC-GNN /
DTC-SpMM, 8 for FlashSparse).  Within a window, any column that contains at
least one nonzero is a *nonzero vector*; the all-zero columns are dropped and
the nonzero vectors are packed next to each other before being grouped into
TC blocks of ``k`` vectors (Section 2.2, Figure 2).

:func:`partition_windows` performs this preprocessing in a fully vectorised
way (the paper performs it with a CUDA kernel; here NumPy plays that role)
and returns a :class:`WindowPartition`, the shared substrate for ME-BCRS,
SR-BCRS and the 16×1 SGT format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.ops import segment_ids


@dataclass
class WindowPartition:
    """Nonzero-vector structure of a sparse matrix for a given vector size.

    Attributes
    ----------
    vector_size:
        Window height / nonzero-vector length (8 or 16).
    n_rows, n_cols:
        Original matrix dimensions.
    num_windows:
        ``ceil(n_rows / vector_size)``.
    window_ptr:
        Array of length ``num_windows + 1``; ``window_ptr[w]:window_ptr[w+1]``
        indexes the nonzero vectors of window ``w`` in ``vector_cols``.
    vector_cols:
        Column index of each nonzero vector, sorted within each window.
    nnz_vector_of_entry:
        For every CSR nonzero (in CSR order), the global index of the nonzero
        vector that contains it.
    nnz:
        Number of stored nonzeros of the original matrix.
    """

    vector_size: int
    n_rows: int
    n_cols: int
    num_windows: int
    window_ptr: np.ndarray
    vector_cols: np.ndarray
    nnz_vector_of_entry: np.ndarray
    nnz: int

    # ------------------------------------------------------------ statistics
    @property
    def num_nonzero_vectors(self) -> int:
        """Total number of nonzero vectors across all windows."""
        return int(self.vector_cols.shape[0])

    @property
    def vectors_per_window(self) -> np.ndarray:
        """Number of nonzero vectors in each window."""
        return np.diff(self.window_ptr)

    @property
    def zero_fill(self) -> int:
        """Zero elements stored inside the nonzero vectors (Table 2)."""
        return self.num_nonzero_vectors * self.vector_size - self.nnz

    def tc_blocks_per_window(self, k: int) -> np.ndarray:
        """Number of TC blocks (groups of ``k`` vectors) in each window."""
        if k <= 0:
            raise ValueError("k must be positive")
        counts = self.vectors_per_window
        return (counts + k - 1) // k

    def num_tc_blocks(self, k: int) -> int:
        """Total number of TC blocks when vectors are grouped ``k`` at a time."""
        return int(self.tc_blocks_per_window(k).sum())

    def padded_vectors(self, k: int) -> int:
        """Number of zero vectors a padding-based format (SR-BCRS) would add."""
        counts = self.vectors_per_window
        return int((self.tc_blocks_per_window(k) * k - counts).sum())

    def block_widths(self, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-TC-block vector counts and segment geometry, in storage order.

        Returns ``(widths, window_of_block, first_block)``: ``widths[b]`` is
        the number of vectors actually present in block ``b`` (``k`` for full
        blocks, the residue for the last block of a window),
        ``window_of_block[b]`` is the window the block belongs to, and
        ``first_block`` (length ``num_windows + 1``) gives each window's
        block range as ``first_block[w]:first_block[w + 1]``.  This is the
        block-width histogram the batched engine and the closed-form cost
        estimators share.
        """
        blocks_per_window = self.tc_blocks_per_window(k).astype(np.int64)
        n_blocks = int(blocks_per_window.sum())
        window_of_block = np.repeat(
            np.arange(self.num_windows, dtype=np.int64), blocks_per_window
        )
        first_block = np.zeros(self.num_windows + 1, dtype=np.int64)
        np.cumsum(blocks_per_window, out=first_block[1:])
        index_in_window = np.arange(n_blocks, dtype=np.int64) - first_block[window_of_block]
        counts = self.vectors_per_window.astype(np.int64)
        widths = np.minimum(counts[window_of_block] - index_in_window * k, k)
        return widths, window_of_block, first_block

    # -------------------------------------------------------------- accessors
    def window_columns(self, window: int) -> np.ndarray:
        """Column indices of the nonzero vectors in ``window`` (sorted)."""
        start, end = int(self.window_ptr[window]), int(self.window_ptr[window + 1])
        return self.vector_cols[start:end]

    def window_row_range(self, window: int) -> tuple[int, int]:
        """Half-open row range ``[start, stop)`` covered by ``window``."""
        start = window * self.vector_size
        stop = min(start + self.vector_size, self.n_rows)
        return start, stop


def partition_windows(matrix: CSRMatrix, vector_size: int) -> WindowPartition:
    """Partition ``matrix`` into row windows of ``vector_size`` nonzero vectors.

    Parameters
    ----------
    matrix:
        Input sparse matrix in CSR form.
    vector_size:
        Nonzero-vector length: 8 for FlashSparse, 16 for TC-GNN / DTC-SpMM.
    """
    if vector_size <= 0:
        raise ValueError("vector_size must be positive")
    n_rows, n_cols = matrix.shape
    num_windows = (n_rows + vector_size - 1) // vector_size if n_rows else 0
    nnz = matrix.nnz

    if nnz == 0:
        return WindowPartition(
            vector_size=vector_size,
            n_rows=n_rows,
            n_cols=n_cols,
            num_windows=num_windows,
            window_ptr=np.zeros(num_windows + 1, dtype=np.int64),
            vector_cols=np.zeros(0, dtype=np.int32),
            nnz_vector_of_entry=np.zeros(0, dtype=np.int64),
            nnz=0,
        )

    # Row index of every nonzero, derived from indptr.
    row_of_entry = segment_ids(matrix.indptr)
    window_of_entry = row_of_entry // vector_size
    cols = matrix.indices.astype(np.int64)

    # A nonzero vector is a unique (window, column) pair.  Encoding the pair
    # as a single integer keeps the unique() call fast and returns the
    # vectors sorted by window then column, which is the order the formats
    # store them in.
    key = window_of_entry * np.int64(n_cols) + cols
    unique_keys, inverse = np.unique(key, return_inverse=True)
    vector_windows = (unique_keys // n_cols).astype(np.int64)
    vector_cols = (unique_keys % n_cols).astype(np.int32)

    window_ptr = np.zeros(num_windows + 1, dtype=np.int64)
    counts = np.bincount(vector_windows, minlength=num_windows)
    np.cumsum(counts, out=window_ptr[1:])

    return WindowPartition(
        vector_size=vector_size,
        n_rows=n_rows,
        n_cols=n_cols,
        num_windows=num_windows,
        window_ptr=window_ptr,
        vector_cols=vector_cols,
        nnz_vector_of_entry=inverse.astype(np.int64),
        nnz=nnz,
    )
