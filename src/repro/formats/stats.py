"""Redundancy statistics for nonzero-vector partitions.

These functions reproduce the paper's motivation and cost analyses without
running any kernel:

* :func:`vector_stats` — nonzero-vector counts and the number of zero
  elements stored inside nonzero vectors (Table 2);
* :func:`mma_count_spmm` / :func:`mma_count_sddmm` — the number of MMA
  invocations needed to complete one SpMM / SDDMM at a given vector
  granularity (Figure 1);
* :func:`spmm_data_access_bytes` / :func:`sddmm_data_access_bytes` — the
  paper's "data access cost" formulas from Figures 2, 6 and 12.

The conventions follow Section 2.2 and 3.3: at 16×1 granularity the sparse
block is the MMA *left* operand, so each MMA covers ``n = 8`` columns of the
dense matrix; at 8×1 granularity (FlashSparse's swap-and-transpose) the
sparse block is the *right* operand and each MMA covers ``m = 16`` dense
columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.windows import WindowPartition, partition_windows
from repro.ops import segment_count, segment_mean, segment_min
from repro.precision.types import Precision, element_bytes


def _ceil_div(a: int, b: int) -> int:
    return -(-int(a) // int(b))


@dataclass(frozen=True)
class VectorStats:
    """Nonzero-vector statistics of a matrix at one vector granularity."""

    vector_size: int
    nnz: int
    num_nonzero_vectors: int
    zero_fill: int
    num_windows: int

    @property
    def stored_elements(self) -> int:
        """Elements stored inside nonzero vectors (nonzeros + zero fill)."""
        return self.num_nonzero_vectors * self.vector_size

    @property
    def fill_ratio(self) -> float:
        """Zero fill divided by nnz (how many wasted slots per useful value)."""
        return self.zero_fill / self.nnz if self.nnz else 0.0

    @property
    def vector_density(self) -> float:
        """Average fraction of a stored vector that is nonzero."""
        return self.nnz / self.stored_elements if self.stored_elements else 0.0


def vector_stats(matrix: CSRMatrix | WindowPartition, vector_size: int | None = None) -> VectorStats:
    """Compute :class:`VectorStats` for a matrix (or precomputed partition)."""
    if isinstance(matrix, WindowPartition):
        part = matrix
        if vector_size is not None and vector_size != part.vector_size:
            raise ValueError("vector_size disagrees with the provided partition")
    else:
        if vector_size is None:
            raise ValueError("vector_size is required when passing a CSR matrix")
        part = partition_windows(matrix, vector_size)
    return VectorStats(
        vector_size=part.vector_size,
        nnz=part.nnz,
        num_nonzero_vectors=part.num_nonzero_vectors,
        zero_fill=part.zero_fill,
        num_windows=part.num_windows,
    )


@dataclass(frozen=True)
class BlockHistogram:
    """Distribution of TC-block widths across the windows of a partition.

    The *block-width histogram* is the shared currency of the closed-form
    cost estimators, the batched engine and the serving planner: every
    per-block quantity (bytes loaded, intermediate slab size, MMAs issued)
    is a function of the block's width, so the histogram determines cost and
    memory behaviour without touching values.  The per-window aggregates are
    segment reductions over the storage-ordered ``widths`` array
    (:mod:`repro.ops`), the same layout the engine streams over.
    """

    vector_size: int
    k: int
    num_blocks: int
    num_windows: int
    #: ``width_counts[w]`` — number of blocks holding exactly ``w`` vectors
    #: (index 0 unused; widths are 1..k).
    width_counts: np.ndarray
    #: Blocks per window (``(num_windows,)``).
    blocks_per_window: np.ndarray
    #: Mean / min block width within each window (0 for empty windows).
    mean_width_per_window: np.ndarray
    min_width_per_window: np.ndarray

    @property
    def full_blocks(self) -> int:
        """Blocks holding the full ``k`` vectors."""
        return int(self.width_counts[self.k]) if self.num_blocks else 0

    @property
    def residue_blocks(self) -> int:
        """Blocks narrower than ``k`` (at most one per window)."""
        return self.num_blocks - self.full_blocks

    @property
    def total_vectors(self) -> int:
        """Stored nonzero vectors (the histogram's first moment)."""
        return int((np.arange(self.width_counts.shape[0]) * self.width_counts).sum())

    @property
    def max_blocks_in_window(self) -> int:
        """Largest per-window block count — the window-aligned chunk floor."""
        return int(self.blocks_per_window.max()) if self.num_windows else 0


def block_width_histogram(
    matrix: CSRMatrix | WindowPartition, k: int, vector_size: int | None = None
) -> BlockHistogram:
    """Compute the :class:`BlockHistogram` of a matrix at granularity ``k``.

    Accepts a CSR matrix (partitioned on the fly at ``vector_size``) or a
    precomputed :class:`WindowPartition`.
    """
    if isinstance(matrix, WindowPartition):
        part = matrix
        if vector_size is not None and vector_size != part.vector_size:
            raise ValueError("vector_size disagrees with the provided partition")
    else:
        if vector_size is None:
            raise ValueError("vector_size is required when passing a CSR matrix")
        part = partition_windows(matrix, vector_size)
    if k <= 0:
        raise ValueError("k must be positive")
    widths, _, first_block = part.block_widths(k)
    offsets = first_block  # indptr-style block ranges per window
    return BlockHistogram(
        vector_size=part.vector_size,
        k=int(k),
        num_blocks=int(widths.shape[0]),
        num_windows=part.num_windows,
        width_counts=np.bincount(widths, minlength=k + 1),
        blocks_per_window=segment_count(offsets),
        mean_width_per_window=segment_mean(widths, offsets),
        min_width_per_window=segment_min(widths, offsets, empty_value=0).astype(np.int64),
    )


def dense_tile_cols(vector_size: int) -> int:
    """Dense-matrix columns covered by one MMA at a given sparse granularity.

    16×1 (sparse block as left operand): the output tile is ``m16n8`` so each
    MMA covers 8 dense columns.  8×1 (swap-and-transpose): the dense block is
    the left operand of shape ``m16×k`` so each MMA covers 16 dense columns.
    """
    if vector_size == 16:
        return 8
    if vector_size == 8:
        return 16
    raise ValueError(f"unsupported vector size {vector_size}; expected 8 or 16")


def mma_count_spmm(
    partition: WindowPartition | CSRMatrix,
    k: int,
    n_dense: int,
    vector_size: int | None = None,
) -> int:
    """Number of MMA invocations for one SpMM.

    Parameters
    ----------
    partition:
        A :class:`WindowPartition` (or a CSR matrix, partitioned on the fly).
    k:
        TC-block width (vectors per MMA): the MMA ``k`` dimension.
    n_dense:
        Number of columns ``N`` of the dense matrix B.
    vector_size:
        Required when passing a CSR matrix.
    """
    if isinstance(partition, CSRMatrix):
        if vector_size is None:
            raise ValueError("vector_size is required when passing a CSR matrix")
        partition = partition_windows(partition, vector_size)
    blocks = partition.num_tc_blocks(k)
    tiles = _ceil_div(n_dense, dense_tile_cols(partition.vector_size))
    return int(blocks * tiles)


def spmm_data_access_bytes(
    partition: WindowPartition | CSRMatrix,
    k: int,
    n_dense: int,
    precision: Precision | str = Precision.FP16,
    vector_size: int | None = None,
    include_output: bool = False,
) -> int:
    """The paper's SpMM data-access cost (Figures 2, 6 and 12).

    Per MMA, the kernel touches the sparse TC block A
    (``vector_size × k`` elements) and the dense TC block B
    (``k × dense_tile`` elements); the cost is summed over all MMAs.  When
    ``include_output`` is set, the ``vector_size × dense_tile`` accumulator
    write-back per output tile is added (the paper's headline formula counts
    only the input blocks, which is the default here).
    """
    if isinstance(partition, CSRMatrix):
        if vector_size is None:
            raise ValueError("vector_size is required when passing a CSR matrix")
        partition = partition_windows(partition, vector_size)
    v = partition.vector_size
    tile = dense_tile_cols(v)
    elem = element_bytes(precision)
    mmas = mma_count_spmm(partition, k=k, n_dense=n_dense)
    per_mma_elements = v * k + k * tile
    cost = mmas * per_mma_elements * elem
    if include_output:
        out_tiles = partition.num_windows * _ceil_div(n_dense, tile)
        cost += out_tiles * v * tile * 4  # FP32 accumulator write-back
    return int(cost)


def sddmm_vectors_per_output_block(vector_size: int) -> int:
    """Nonzero vectors covered by one sparse output TC block in SDDMM.

    At 16×1 the sparse output block is 16×8 (8 vectors); at 8×1 it is 8×16
    (16 vectors), thanks to the swap-and-transpose strategy (Figure 8).
    """
    return dense_tile_cols(vector_size)


def mma_count_sddmm(
    partition: WindowPartition | CSRMatrix,
    mma_k: int,
    k_dense: int,
    vector_size: int | None = None,
) -> int:
    """Number of MMA invocations for one SDDMM.

    ``k_dense`` is the inner (feature) dimension K of the two dense inputs;
    each output TC block needs ``ceil(K / mma_k)`` MMAs.
    """
    if isinstance(partition, CSRMatrix):
        if vector_size is None:
            raise ValueError("vector_size is required when passing a CSR matrix")
        partition = partition_windows(partition, vector_size)
    per_block = sddmm_vectors_per_output_block(partition.vector_size)
    counts = partition.vectors_per_window
    out_blocks = int(((counts + per_block - 1) // per_block).sum())
    return out_blocks * _ceil_div(k_dense, mma_k)


def sddmm_data_access_bytes(
    partition: WindowPartition | CSRMatrix,
    mma_k: int,
    k_dense: int,
    precision: Precision | str = Precision.FP16,
    vector_size: int | None = None,
    include_output: bool = False,
) -> int:
    """SDDMM data-access cost at a given vector granularity (Figure 12 b)."""
    if isinstance(partition, CSRMatrix):
        if vector_size is None:
            raise ValueError("vector_size is required when passing a CSR matrix")
        partition = partition_windows(partition, vector_size)
    v = partition.vector_size
    per_block = sddmm_vectors_per_output_block(v)
    elem = element_bytes(precision)
    mmas = mma_count_sddmm(partition, mma_k=mma_k, k_dense=k_dense)
    per_mma_elements = v * mma_k + mma_k * per_block
    cost = mmas * per_mma_elements * elem
    if include_output:
        counts = partition.vectors_per_window
        out_blocks = int(((counts + per_block - 1) // per_block).sum())
        cost += out_blocks * v * per_block * 4
    return int(cost)
