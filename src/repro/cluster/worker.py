"""Worker host: owns a translation cache, executes window-aligned shards.

One worker host is one process serving shard tasks over the frame protocol
of :mod:`repro.cluster.transport`.  Per task it

1. rebuilds the CSR matrix from the frame's raw buffers (request payloads
   arrive deserialised fresh, exactly like the serving frontend's),
2. translates it through the host's **own**
   :class:`~repro.formats.cache.TranslationCache`, keyed by content — the
   head routes every shard of a given matrix to the same host, so after
   the first task for a matrix the O(nnz) translation is a cache hit (the
   cache counters travel back in every result and pong frame, making the
   affinity payoff observable from the head),
3. slices the task's window-aligned block range out of the format's batch
   arrays (translation is deterministic, so the worker's batch is
   bit-identical to the head's) and runs the engine shard hooks
   :func:`~repro.kernels.engine.spmm_shard_rows` /
   :func:`~repro.kernels.engine.sddmm_shard_values` — the same one-shot
   whole-window reductions the single-host scheduler runs, hence
   bit-identical results, and
4. streams the shard output back (dense row slice for SpMM,
   ``(vector_index, values)`` scatter pairs for SDDMM).

**Trust at the door.**  Every accepted connection must clear the
HELLO/CHALLENGE handshake (protocol version negotiation plus, when an
``auth_token`` is configured, an HMAC-SHA256 proof over the worker's
nonce) before a single task frame is read; a peer that fails is sent a
structured reject, counted (``auth_rejects`` / ``handshake_failures`` in
the status frames) and dropped — the listener keeps serving the next
connection.  With ``tls_cert``/``tls_key`` the stream itself is wrapped
in TLS (``tls_ca`` additionally demands client certificates).  Incoming
payload buffers are CRC-verified by the transport; a corrupted frame is
counted (``integrity_failures``) and costs the connection, never wrong
numerics.

The host is single-threaded and serves one head connection at a time (the
head holds one long-lived connection per host); a dropped connection sends
it back to ``accept``, so a head that reconnects after a network blip finds
the host — and its warm cache — still there.  A ``shutdown`` frame exits
the process.

Run in-process under a spawned subprocess (what the head and the tests
do), or standalone on a real host::

    python -m repro.cluster.worker --host 0.0.0.0 --port 9070 \
        --auth-token "$REPRO_CLUSTER_AUTH_TOKEN" \
        --tls-cert host.pem --tls-key host.key
"""

from __future__ import annotations

import os
import socket
import time
import traceback
from dataclasses import asdict

import numpy as np

from repro.cluster.store import DEFAULT_STORE_BYTES, PinnedStore, StoreMissError
from repro.cluster.transport import (
    VERSION,
    AuthenticationError,
    FrameIntegrityError,
    FrameTooLargeError,
    TransportError,
    make_server_ssl_context,
    recv_message,
    send_message,
    server_handshake,
)
from repro.formats.cache import (
    FORMAT_CACHE_MAXSIZE,
    TranslationCache,
    cached_mebcrs,
    cached_sgt16,
)
from repro.formats.csr import CSRMatrix
from repro.kernels.engine import (
    layer_shard_rows,
    layer_softmax_mapping,
    sddmm_a_window,
    sddmm_shard_values,
    spmm_shard_rows,
)
from repro.ops import segment_matmul
from repro.precision.types import Precision
from repro.serve.program import LayerProgram

#: Translation entry points by the task header's ``fmt`` field.
_TRANSLATORS = {"mebcrs": cached_mebcrs, "sgt16": cached_sgt16}

#: Environment variable the CLI reads the shared auth token from.
AUTH_TOKEN_ENV = "REPRO_CLUSTER_AUTH_TOKEN"

#: A fresh connection must clear TLS + the frame handshake within this
#: budget, so a stalled (or non-TLS) peer cannot wedge the single-threaded
#: accept loop.
DEFAULT_HANDSHAKE_TIMEOUT_S = 10.0


class WorkerHost:
    """State of one worker host: its translation cache and task counters."""

    def __init__(
        self,
        cache_maxsize: int = FORMAT_CACHE_MAXSIZE,
        max_frame_bytes: int | None = None,
        auth_token: str | None = None,
        store_bytes: int = DEFAULT_STORE_BYTES,
        protocol_version: int | None = None,
    ):
        self.cache = TranslationCache(maxsize=cache_maxsize)
        #: Content-addressed pin store (protocol v3): CSR bundles and dense
        #: operand panels the head pushed once, referenced by key per task.
        self.store = PinnedStore(budget_bytes=store_bytes)
        self.tasks_done = 0
        #: Per-connection bound on declared frame sizes (None = unbounded):
        #: a hostile or corrupt frame cannot make the worker allocate
        #: arbitrary memory before a single payload byte has arrived.
        self.max_frame_bytes = max_frame_bytes
        #: Shared secret gating the connection handshake (None = open).
        self.auth_token = auth_token
        #: Highest wire version this host advertises (None = the library's
        #: VERSION).  Pinning it at 2 simulates a legacy host: the head
        #: negotiates down and embeds operand bytes in every task frame.
        self.protocol_version = VERSION if protocol_version is None else int(protocol_version)
        self.frames_oversized = 0
        #: Inbound frames whose payload CRC32 failed verification.
        self.integrity_failures = 0
        #: Handshakes dropped for a bad/missing auth digest.
        self.auth_rejects = 0
        #: Handshakes dropped for any non-auth reason (version mismatch,
        #: protocol garbage, TLS failure) — disjoint from auth_rejects.
        self.handshake_failures = 0
        #: Wire version negotiated on the connection being served (the host
        #: serves one head connection at a time).
        self.wire_version = self.protocol_version

    # --------------------------------------------------------------- helpers
    def _status(self) -> dict:
        return {
            "cache": asdict(self.cache.stats()),
            "store": self.store.stats(),
            "tasks_done": self.tasks_done,
            "frames_oversized": self.frames_oversized,
            "security": {
                "integrity_failures": self.integrity_failures,
                "auth_rejects": self.auth_rejects,
                "handshake_failures": self.handshake_failures,
            },
        }

    def _translate(self, header: dict, indptr, indices, data):
        csr = CSRMatrix(
            indptr=indptr, indices=indices, data=data, shape=tuple(header["shape"])
        )
        if header.get("content_key"):
            # Adopt the digest the head already computed over these exact
            # bytes: the cache's content lookup then skips the per-task
            # O(nnz) rehash.
            csr.with_content_key(header["content_key"])
        translate = _TRANSLATORS.get(header.get("fmt", "mebcrs"))
        if translate is None:
            raise ValueError(f"unknown format kind {header.get('fmt')!r}")
        precision = Precision(header["precision"])
        fmt = translate(csr, precision, by_content=True, cache=self.cache)
        return fmt, precision

    def _resolve_payload(self, header: dict, arrays: list) -> tuple[list, tuple]:
        """The task's operand arrays, from the frame or the pin store.

        A v3 task frame carries no payload: ``store_csr`` names the pinned
        CSR bundle and ``store_operands`` the pinned dense panels, in the
        exact positional order the embedded layout uses — so the kernels
        downstream cannot tell the difference.  Returns the payload plus
        the acquired store keys (refcounted: eviction cannot pull a buffer
        out from under this task; the caller releases them when done).
        Raises :class:`StoreMissError` naming every absent key when the
        store no longer holds the referenced bytes.
        """
        if not header.get("store_csr"):
            return list(arrays), ()
        keys = (header["store_csr"], *header.get("store_operands", ()))
        bundles = self.store.acquire(*keys)
        return [array for bundle in bundles for array in bundle], keys

    # ------------------------------------------------------------ task bodies
    def run_task(self, header: dict, arrays: list[np.ndarray]) -> tuple[dict, list]:
        """Execute one shard task; returns the reply ``(header, arrays)``."""
        arrays, acquired = self._resolve_payload(header, arrays)
        try:
            return self._run_task_body(header, arrays)
        finally:
            self.store.release(*acquired)

    def _run_task_body(self, header: dict, arrays: list) -> tuple[dict, list]:
        delay = float(header.get("delay_s") or 0.0)
        if delay > 0.0:  # failure-injection hook for the kill-mid-shard tests
            time.sleep(delay)
        op = header["op"]
        lo, hi = int(header.get("lo", 0)), int(header.get("hi", 0))
        w0, w1 = int(header.get("w0", 0)), int(header.get("w1", 0))
        if op == "spmm":
            indptr, indices, data, b_q = arrays
            fmt, precision = self._translate(header, indptr, indices, data)
            batch = fmt.blocks_as_arrays()
            offsets = batch.window_offsets
            rows = spmm_shard_rows(
                batch.values[lo:hi],
                batch.columns[lo:hi],
                offsets[w0 : w1 + 1] - offsets[w0],
                b_q,
                precision,
            )
            reply = {"type": "result", "row0": w0 * fmt.vector_size}
            payload = [rows]
        elif op == "sddmm":
            indptr, indices, data, a_q, b_q = arrays
            fmt, precision = self._translate(header, indptr, indices, data)
            batch = fmt.blocks_as_arrays(int(header["group"]))
            v = fmt.vector_size
            idx, vals = sddmm_shard_values(
                batch.values[lo:hi],
                batch.columns[lo:hi],
                batch.lane_valid[lo:hi],
                batch.vector_index[lo:hi],
                batch.window_of_block[lo:hi] - w0,
                sddmm_a_window(a_q, w0, w1, v),
                b_q,
                bool(header.get("scale_by_mask", False)),
            )
            reply = {"type": "result"}
            payload = [np.asarray(idx, dtype=np.int64), vals]
        elif op == "layer":
            # One window-aligned shard of a whole fused layer program
            # (protocol v4): SDDMM → scale → edge softmax → SpMM in one
            # pass, reusing the shared translation.  Everything the softmax
            # stage needs — the CSR↔vector mapping — derives locally from
            # the partition and the CSR indptr; only the window range
            # travels in the header.
            indptr, indices, data, a_q, b_q, x_q = arrays
            fmt, precision = self._translate(header, indptr, indices, data)
            scale, scale_by_mask = LayerProgram.from_wire(header["program"]).canonical()
            v = fmt.vector_size
            pbatch = fmt.blocks_as_arrays()
            sbatch = fmt.blocks_as_arrays(int(header["group"]))
            offsets = pbatch.window_offsets
            soffsets = sbatch.window_offsets
            lo, hi = int(offsets[w0]), int(offsets[w1])
            slo, shi = int(soffsets[w0]), int(soffsets[w1])
            local_indptr, entry_vector, entry_lane, vec_lo, vec_count = (
                layer_softmax_mapping(
                    np.asarray(indptr),
                    fmt.partition.nnz_vector_of_entry,
                    fmt.partition.window_ptr,
                    w0,
                    w1,
                    v,
                    fmt.shape[0],
                )
            )
            rows, timings = layer_shard_rows(
                sbatch.values[slo:shi],
                sbatch.columns[slo:shi],
                sbatch.lane_valid[slo:shi],
                sbatch.vector_index[slo:shi],
                sbatch.window_of_block[slo:shi] - w0,
                pbatch.columns[lo:hi],
                offsets[w0 : w1 + 1] - lo,
                pbatch.lane_valid[lo:hi],
                pbatch.vector_index[lo:hi],
                local_indptr,
                entry_vector,
                entry_lane,
                vec_lo,
                vec_count,
                sddmm_a_window(a_q, w0, w1, v),
                b_q,
                x_q,
                precision,
                scale,
                scale_by_mask,
            )
            reply = {"type": "result", "row0": w0 * v, "timings": timings}
            payload = [rows]
        elif op == "segmm":
            data, offsets, weights = arrays
            out = segment_matmul(data, np.asarray(offsets, dtype=np.int64), list(weights))
            reply = {"type": "result"}
            payload = [np.ascontiguousarray(out)]
        else:
            raise ValueError(f"unknown op {op!r}")
        self.tasks_done += 1
        reply["task_id"] = header.get("task_id")
        reply.update(self._status())
        return reply, payload

    # ------------------------------------------------------------ connection
    def handshake(self, conn: socket.socket) -> bool:
        """Gate one fresh connection; False means drop it and keep accepting.

        A failed peer was already answered with a structured reject frame
        (where the stream allowed one) and counted — ``auth_rejects`` for
        a bad or missing digest, ``handshake_failures`` for everything
        else (version mismatch, protocol garbage, stream loss).
        """
        try:
            *_, self.wire_version = server_handshake(
                conn, auth_token=self.auth_token, max_version=self.protocol_version
            )
            return True
        except AuthenticationError:
            self.auth_rejects += 1
            return False
        except (TransportError, OSError):
            self.handshake_failures += 1
            return False

    def serve_connection(self, conn: socket.socket) -> bool:
        """Serve one head connection; returns True when asked to shut down.

        Any transport failure — a recv *or* a reply send (the head may
        close the connection while a task is computing) — just ends this
        connection: the worker goes back to ``accept`` with its cache warm,
        so a reconnecting head finds the host still there.
        """
        while True:
            try:
                header, arrays, _ = recv_message(
                    conn, max_frame_bytes=self.max_frame_bytes
                )
            except FrameTooLargeError:
                # An over-limit declaration is counted, then treated like
                # any other unusable stream: drop the connection (the limit
                # was hit *before* allocating) and go back to accept.
                self.frames_oversized += 1
                return False
            except FrameIntegrityError:
                # A corrupted payload is detected, counted, and costs the
                # connection — it never reaches a kernel.  The head
                # re-sends on its fresh connection.
                self.integrity_failures += 1
                return False
            except (TransportError, OSError):
                return False  # head went away: back to accept
            kind = header.get("type")
            wire = self.wire_version
            try:
                if kind == "ping":
                    # The pong carries the pin store's key inventory on top
                    # of the usual gauges: a readmitting head re-warms its
                    # per-host ledger from this ground truth instead of
                    # assuming a restarted process is still warm.
                    send_message(
                        conn,
                        {
                            "type": "pong",
                            "store_keys": self.store.keys(),
                            **self._status(),
                        },
                        version=wire,
                    )
                elif kind == "shutdown":
                    try:
                        send_message(conn, {"type": "bye", **self._status()}, version=wire)
                    except (TransportError, OSError):
                        pass
                    return True
                elif kind == "store_put":
                    # Pin the pushed bundle (evicting LRU zero-ref entries
                    # over budget) and acknowledge with fresh store gauges.
                    # The ack names what got evicted so the head's ledger
                    # stays truthful without waiting for a store_miss.
                    evicted = self.store.put(str(header["store_key"]), arrays)
                    send_message(
                        conn,
                        {
                            "type": "store_ack",
                            "store_key": header["store_key"],
                            "evicted": evicted,
                            **self._status(),
                        },
                        version=wire,
                    )
                elif kind in ("task", "layer_task", "segmm_task"):
                    try:
                        reply, payload = self.run_task(header, arrays)
                    except StoreMissError as exc:
                        # The task referenced keys this store no longer
                        # holds (evicted, or a restarted process).  Not a
                        # failure: the head re-pushes and resends.
                        send_message(
                            conn,
                            {
                                "type": "store_miss",
                                "task_id": header.get("task_id"),
                                "missing": exc.missing,
                                **self._status(),
                            },
                            version=wire,
                        )
                    except Exception as exc:  # computation error: report, stay up
                        send_message(
                            conn,
                            {
                                "type": "error",
                                "task_id": header.get("task_id"),
                                "message": f"{type(exc).__name__}: {exc}",
                                "traceback": traceback.format_exc(),
                                **self._status(),
                            },
                            version=wire,
                        )
                    else:
                        send_message(conn, reply, payload, version=wire)
                else:
                    send_message(
                        conn,
                        {"type": "error", "message": f"unknown message type {kind!r}"},
                        version=wire,
                    )
            except (TransportError, OSError):
                return False  # reply undeliverable: back to accept


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    cache_maxsize: int = FORMAT_CACHE_MAXSIZE,
    max_frame_bytes: int | None = None,
    socket_wrapper=None,
    auth_token: str | None = None,
    tls_cert: str | None = None,
    tls_key: str | None = None,
    tls_ca: str | None = None,
    handshake_timeout_s: float = DEFAULT_HANDSHAKE_TIMEOUT_S,
    store_bytes: int = DEFAULT_STORE_BYTES,
    protocol_version: int | None = None,
) -> None:
    """Bind, announce the bound address, and serve until told to shut down.

    ``ready`` receives the bound ``(host, port)`` — a ``multiprocessing``
    pipe connection (its ``send`` is used) or any callable.  ``port=0``
    lets the kernel pick a free port, which is how the head spawns loopback
    hosts without port coordination.  ``max_frame_bytes`` bounds what any
    single incoming frame may declare; ``socket_wrapper`` wraps each
    accepted connection (the fault-injection hook — e.g.
    ``lambda c: plan.wrap(c, scope="worker-0")``) *above* TLS, so injected
    faults hit plaintext frames exactly as on a clear stream.

    ``auth_token`` arms the connection handshake; ``tls_cert``/``tls_key``
    serve the stream over TLS (``tls_ca`` demands client certificates
    too).  Every accepted connection must clear TLS + the handshake within
    ``handshake_timeout_s`` — a peer that stalls there is dropped without
    blocking the accept loop for anyone else.

    ``store_bytes`` budgets the pin store (protocol v3 push/pin);
    ``protocol_version`` caps the wire version this host advertises —
    pinning it at 2 makes the host behave as a legacy peer, which the
    mixed-version tests use.
    """
    state = WorkerHost(
        cache_maxsize=cache_maxsize,
        max_frame_bytes=max_frame_bytes,
        auth_token=auth_token,
        store_bytes=store_bytes,
        protocol_version=protocol_version,
    )
    ssl_context = (
        make_server_ssl_context(tls_cert, tls_key, cafile=tls_ca)
        if tls_cert is not None
        else None
    )
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, int(port)))
        listener.listen(1)
        address = listener.getsockname()
        if ready is not None:
            (ready.send if hasattr(ready, "send") else ready)(address)
        while True:
            conn, _ = listener.accept()
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                conn.settimeout(handshake_timeout_s)
                if ssl_context is not None:
                    try:
                        conn = ssl_context.wrap_socket(conn, server_side=True)
                    except (OSError, ValueError):
                        # TLS negotiation failed (plaintext peer, bad cert,
                        # stall): counted, dropped, next connection served.
                        state.handshake_failures += 1
                        continue
                if socket_wrapper is not None:
                    conn = socket_wrapper(conn)
                if not state.handshake(conn):
                    continue
                conn.settimeout(None)
                if state.serve_connection(conn):
                    return
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
    finally:
        listener.close()


def main(argv=None) -> None:  # pragma: no cover - thin CLI wrapper
    """``python -m repro.cluster.worker``: run one standalone worker host."""
    import argparse

    parser = argparse.ArgumentParser(description="FlashSparse cluster worker host")
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    parser.add_argument("--port", type=int, default=0, help="port (0 = kernel-picked)")
    parser.add_argument(
        "--cache-size",
        type=int,
        default=FORMAT_CACHE_MAXSIZE,
        help="translation-cache capacity (entries)",
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        help="reject frames declaring more than this many bytes (default: unbounded)",
    )
    parser.add_argument(
        "--store-bytes",
        type=int,
        default=DEFAULT_STORE_BYTES,
        help="pin-store budget for pushed matrix bytes (protocol v3 push/pin)",
    )
    parser.add_argument(
        "--protocol-version",
        type=int,
        default=None,
        help="cap the advertised wire version (e.g. 2 to act as a legacy host)",
    )
    parser.add_argument(
        "--auth-token",
        default=os.environ.get(AUTH_TOKEN_ENV),
        help=(
            "shared secret heads must prove in the connection handshake "
            f"(default: ${AUTH_TOKEN_ENV}; unset = open access)"
        ),
    )
    parser.add_argument(
        "--tls-cert", default=None, help="PEM certificate to serve TLS with"
    )
    parser.add_argument(
        "--tls-key", default=None, help="PEM private key for --tls-cert"
    )
    parser.add_argument(
        "--tls-ca",
        default=None,
        help="PEM CA bundle; when set, client certificates are required",
    )
    args = parser.parse_args(argv)
    run_worker(
        host=args.host,
        port=args.port,
        ready=lambda addr: print(f"worker host listening on {addr[0]}:{addr[1]}", flush=True),
        cache_maxsize=args.cache_size,
        max_frame_bytes=args.max_frame_bytes,
        auth_token=args.auth_token,
        tls_cert=args.tls_cert,
        tls_key=args.tls_key,
        tls_ca=args.tls_ca,
        store_bytes=args.store_bytes,
        protocol_version=args.protocol_version,
    )


if __name__ == "__main__":  # pragma: no cover
    main()
