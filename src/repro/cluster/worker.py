"""Worker host: owns a translation cache, executes window-aligned shards.

One worker host is one process serving shard tasks over the frame protocol
of :mod:`repro.cluster.transport`.  Per task it

1. rebuilds the CSR matrix from the frame's raw buffers (request payloads
   arrive deserialised fresh, exactly like the serving frontend's),
2. translates it through the host's **own**
   :class:`~repro.formats.cache.TranslationCache`, keyed by content — the
   head routes every shard of a given matrix to the same host, so after
   the first task for a matrix the O(nnz) translation is a cache hit (the
   cache counters travel back in every result and pong frame, making the
   affinity payoff observable from the head),
3. slices the task's window-aligned block range out of the format's batch
   arrays (translation is deterministic, so the worker's batch is
   bit-identical to the head's) and runs the engine shard hooks
   :func:`~repro.kernels.engine.spmm_shard_rows` /
   :func:`~repro.kernels.engine.sddmm_shard_values` — the same one-shot
   whole-window reductions the single-host scheduler runs, hence
   bit-identical results, and
4. streams the shard output back (dense row slice for SpMM,
   ``(vector_index, values)`` scatter pairs for SDDMM).

The host is single-threaded and serves one head connection at a time (the
head holds one long-lived connection per host); a dropped connection sends
it back to ``accept``, so a head that reconnects after a network blip finds
the host — and its warm cache — still there.  A ``shutdown`` frame exits
the process.

Run in-process under a spawned subprocess (what the head and the tests
do), or standalone on a real host::

    python -m repro.cluster.worker --host 0.0.0.0 --port 9070
"""

from __future__ import annotations

import socket
import time
import traceback
from dataclasses import asdict

import numpy as np

from repro.cluster.transport import (
    FrameTooLargeError,
    TransportError,
    recv_message,
    send_message,
)
from repro.formats.cache import (
    FORMAT_CACHE_MAXSIZE,
    TranslationCache,
    cached_mebcrs,
    cached_sgt16,
)
from repro.formats.csr import CSRMatrix
from repro.kernels.engine import sddmm_a_window, sddmm_shard_values, spmm_shard_rows
from repro.precision.types import Precision

#: Translation entry points by the task header's ``fmt`` field.
_TRANSLATORS = {"mebcrs": cached_mebcrs, "sgt16": cached_sgt16}


class WorkerHost:
    """State of one worker host: its translation cache and task counters."""

    def __init__(
        self,
        cache_maxsize: int = FORMAT_CACHE_MAXSIZE,
        max_frame_bytes: int | None = None,
    ):
        self.cache = TranslationCache(maxsize=cache_maxsize)
        self.tasks_done = 0
        #: Per-connection bound on declared frame sizes (None = unbounded):
        #: a hostile or corrupt frame cannot make the worker allocate
        #: arbitrary memory before a single payload byte has arrived.
        self.max_frame_bytes = max_frame_bytes
        self.frames_oversized = 0

    # --------------------------------------------------------------- helpers
    def _status(self) -> dict:
        return {
            "cache": asdict(self.cache.stats()),
            "tasks_done": self.tasks_done,
            "frames_oversized": self.frames_oversized,
        }

    def _translate(self, header: dict, indptr, indices, data):
        csr = CSRMatrix(
            indptr=indptr, indices=indices, data=data, shape=tuple(header["shape"])
        )
        if header.get("content_key"):
            # Pre-seed the instance's content-key memo with the digest the
            # head already computed over these exact bytes: the cache's
            # content lookup then skips the per-task O(nnz) rehash.
            csr._content_key = header["content_key"]
        translate = _TRANSLATORS.get(header.get("fmt", "mebcrs"))
        if translate is None:
            raise ValueError(f"unknown format kind {header.get('fmt')!r}")
        precision = Precision(header["precision"])
        fmt = translate(csr, precision, by_content=True, cache=self.cache)
        return fmt, precision

    # ------------------------------------------------------------ task bodies
    def run_task(self, header: dict, arrays: list[np.ndarray]) -> tuple[dict, list]:
        """Execute one shard task; returns the reply ``(header, arrays)``."""
        delay = float(header.get("delay_s") or 0.0)
        if delay > 0.0:  # failure-injection hook for the kill-mid-shard tests
            time.sleep(delay)
        op = header["op"]
        lo, hi = int(header["lo"]), int(header["hi"])
        w0, w1 = int(header["w0"]), int(header["w1"])
        if op == "spmm":
            indptr, indices, data, b_q = arrays
            fmt, precision = self._translate(header, indptr, indices, data)
            batch = fmt.blocks_as_arrays()
            offsets = batch.window_offsets
            rows = spmm_shard_rows(
                batch.values[lo:hi],
                batch.columns[lo:hi],
                offsets[w0 : w1 + 1] - offsets[w0],
                b_q,
                precision,
            )
            reply = {"type": "result", "row0": w0 * fmt.vector_size}
            payload = [rows]
        elif op == "sddmm":
            indptr, indices, data, a_q, b_q = arrays
            fmt, precision = self._translate(header, indptr, indices, data)
            batch = fmt.blocks_as_arrays(int(header["group"]))
            v = fmt.vector_size
            idx, vals = sddmm_shard_values(
                batch.values[lo:hi],
                batch.columns[lo:hi],
                batch.lane_valid[lo:hi],
                batch.vector_index[lo:hi],
                batch.window_of_block[lo:hi] - w0,
                sddmm_a_window(a_q, w0, w1, v),
                b_q,
                bool(header.get("scale_by_mask", False)),
            )
            reply = {"type": "result"}
            payload = [np.asarray(idx, dtype=np.int64), vals]
        else:
            raise ValueError(f"unknown op {op!r}")
        self.tasks_done += 1
        reply["task_id"] = header.get("task_id")
        reply.update(self._status())
        return reply, payload

    # ------------------------------------------------------------ connection
    def serve_connection(self, conn: socket.socket) -> bool:
        """Serve one head connection; returns True when asked to shut down.

        Any transport failure — a recv *or* a reply send (the head may
        close the connection while a task is computing) — just ends this
        connection: the worker goes back to ``accept`` with its cache warm,
        so a reconnecting head finds the host still there.
        """
        while True:
            try:
                header, arrays, _ = recv_message(
                    conn, max_frame_bytes=self.max_frame_bytes
                )
            except FrameTooLargeError:
                # An over-limit declaration is counted, then treated like
                # any other unusable stream: drop the connection (the limit
                # was hit *before* allocating) and go back to accept.
                self.frames_oversized += 1
                return False
            except (TransportError, OSError):
                return False  # head went away: back to accept
            kind = header.get("type")
            try:
                if kind == "ping":
                    send_message(conn, {"type": "pong", **self._status()})
                elif kind == "shutdown":
                    try:
                        send_message(conn, {"type": "bye", **self._status()})
                    except (TransportError, OSError):
                        pass
                    return True
                elif kind == "task":
                    try:
                        reply, payload = self.run_task(header, arrays)
                    except Exception as exc:  # computation error: report, stay up
                        send_message(
                            conn,
                            {
                                "type": "error",
                                "task_id": header.get("task_id"),
                                "message": f"{type(exc).__name__}: {exc}",
                                "traceback": traceback.format_exc(),
                                **self._status(),
                            },
                        )
                    else:
                        send_message(conn, reply, payload)
                else:
                    send_message(
                        conn,
                        {"type": "error", "message": f"unknown message type {kind!r}"},
                    )
            except (TransportError, OSError):
                return False  # reply undeliverable: back to accept


def run_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    ready=None,
    cache_maxsize: int = FORMAT_CACHE_MAXSIZE,
    max_frame_bytes: int | None = None,
    socket_wrapper=None,
) -> None:
    """Bind, announce the bound address, and serve until told to shut down.

    ``ready`` receives the bound ``(host, port)`` — a ``multiprocessing``
    pipe connection (its ``send`` is used) or any callable.  ``port=0``
    lets the kernel pick a free port, which is how the head spawns loopback
    hosts without port coordination.  ``max_frame_bytes`` bounds what any
    single incoming frame may declare; ``socket_wrapper`` wraps each
    accepted connection (the fault-injection hook — e.g.
    ``lambda c: plan.wrap(c, scope="worker-0")``).
    """
    state = WorkerHost(cache_maxsize=cache_maxsize, max_frame_bytes=max_frame_bytes)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, int(port)))
        listener.listen(1)
        address = listener.getsockname()
        if ready is not None:
            (ready.send if hasattr(ready, "send") else ready)(address)
        while True:
            conn, _ = listener.accept()
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if socket_wrapper is not None:
                    conn = socket_wrapper(conn)
                if state.serve_connection(conn):
                    return
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
    finally:
        listener.close()


def main(argv=None) -> None:  # pragma: no cover - thin CLI wrapper
    """``python -m repro.cluster.worker``: run one standalone worker host."""
    import argparse

    parser = argparse.ArgumentParser(description="FlashSparse cluster worker host")
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    parser.add_argument("--port", type=int, default=0, help="port (0 = kernel-picked)")
    parser.add_argument(
        "--cache-size",
        type=int,
        default=FORMAT_CACHE_MAXSIZE,
        help="translation-cache capacity (entries)",
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=None,
        help="reject frames declaring more than this many bytes (default: unbounded)",
    )
    args = parser.parse_args(argv)
    run_worker(
        host=args.host,
        port=args.port,
        ready=lambda addr: print(f"worker host listening on {addr[0]}:{addr[1]}", flush=True),
        cache_maxsize=args.cache_size,
        max_frame_bytes=args.max_frame_bytes,
    )


if __name__ == "__main__":  # pragma: no cover
    main()
