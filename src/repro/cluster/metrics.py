"""Cluster observability: per-host task counters, failovers, transport bytes.

The head records what the single-host scheduler's ``stats`` dict recorded
(requests, shards) plus the distributed-only signals: which host ran which
shard, how many shards were re-dispatched after a host death, how often the
head fell back to in-parent execution, and the transport byte volume.  Each
worker host additionally reports its own translation-cache counters in
every result and pong frame; the head keeps the latest per host, so the
**remote cache hit rate** — the payoff of content-key affinity routing —
is observable without a side channel (the cache-affinity benchmark gate
reads it from here).

Everything is lock-guarded: host client threads record sends/results while
request threads record failovers and observers snapshot.
"""

from __future__ import annotations

import threading

from repro.formats.cache import CacheStats


class ClusterMetrics:
    """Mutable cluster counters shared by the head's threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "shards": 0,
            "tasks_sent": 0,
            "tasks_completed": 0,
            "task_failures": 0,
            "host_deaths": 0,
            "failovers": 0,
            "shards_failed_over": 0,
            "inline_fallbacks": 0,
            "heartbeats": 0,
            "heartbeat_failures": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
        }
        self._per_host: dict[str, dict] = {}

    # -------------------------------------------------------------- recorders
    def _host(self, host_id: str) -> dict:
        entry = self._per_host.get(host_id)
        if entry is None:
            entry = {
                "tasks_sent": 0,
                "tasks_completed": 0,
                "alive": True,
                "cache": None,
            }
            self._per_host[host_id] = entry
        return entry

    def record_request(self, shards: int) -> None:
        """One ``run_spmm``/``run_sddmm`` call dispatching ``shards`` shards."""
        with self._lock:
            self._counters["requests"] += 1
            self._counters["shards"] += int(shards)

    def record_task_sent(self, host_id: str, nbytes: int) -> None:
        """One shard task written to ``host_id``'s stream."""
        with self._lock:
            self._counters["tasks_sent"] += 1
            self._counters["bytes_sent"] += int(nbytes)
            self._host(host_id)["tasks_sent"] += 1

    def record_task_completed(self, host_id: str, nbytes: int, cache: dict | None) -> None:
        """One shard result read back from ``host_id`` (with its latest
        translation-cache counters, when the worker attached them)."""
        with self._lock:
            self._counters["tasks_completed"] += 1
            self._counters["bytes_received"] += int(nbytes)
            entry = self._host(host_id)
            entry["tasks_completed"] += 1
            if cache is not None:
                entry["cache"] = dict(cache)

    def record_task_failure(self, host_id: str) -> None:
        """One shard task that failed on ``host_id`` (host death or remote
        error) before delivering a result."""
        with self._lock:
            self._counters["task_failures"] += 1
            self._host(host_id)

    def record_host_death(self, host_id: str) -> None:
        """``host_id`` was declared dead (connection error or heartbeat)."""
        with self._lock:
            self._counters["host_deaths"] += 1
            self._host(host_id)["alive"] = False

    def record_failover(self, shards: int) -> None:
        """``shards`` in-flight shards re-dispatched after a host death."""
        with self._lock:
            self._counters["failovers"] += 1
            self._counters["shards_failed_over"] += int(shards)

    def record_inline_fallback(self, shards: int) -> None:
        """``shards`` shards the head executed in-parent (no live host)."""
        with self._lock:
            self._counters["inline_fallbacks"] += int(shards)

    def record_heartbeat(self, host_id: str, ok: bool, cache: dict | None = None) -> None:
        """One ping/pong exchange with ``host_id`` (or its failure)."""
        with self._lock:
            self._counters["heartbeats"] += 1
            if not ok:
                self._counters["heartbeat_failures"] += 1
            elif cache is not None:
                self._host(host_id)["cache"] = dict(cache)

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """Consistent copy of every counter plus the per-host breakdown."""
        with self._lock:
            snap = dict(self._counters)
            snap["hosts"] = {
                host_id: dict(entry, cache=dict(entry["cache"]) if entry["cache"] else None)
                for host_id, entry in self._per_host.items()
            }
            return snap

    def remote_cache_stats(self) -> CacheStats:
        """Aggregate of the latest per-host translation-cache counters.

        This is the cache-affinity signal: under content-key routing a
        repeat-matrix workload should show a high remote hit rate because
        every request for a matrix lands on the host that already holds its
        translation.
        """
        totals = {"hits": 0, "misses": 0, "evictions": 0, "content_hits": 0, "size": 0}
        with self._lock:
            for entry in self._per_host.values():
                cache = entry["cache"]
                if not cache:
                    continue
                for key in totals:
                    totals[key] += int(cache.get(key, 0))
        return CacheStats(**totals)
