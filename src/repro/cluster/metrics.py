"""Cluster observability: per-host health, task counters, failure forensics.

The head records what the single-host scheduler's ``stats`` dict recorded
(requests, shards) plus the distributed-only signals: which host ran which
shard, how many shards were re-dispatched after a host death, how often the
head fell back to in-parent execution, and the transport byte volume.  Each
worker host additionally reports its own translation-cache counters in
every result and pong frame; the head keeps the latest per host, so the
**remote cache hit rate** — the payoff of content-key affinity routing —
is observable without a side channel (the cache-affinity benchmark gate
reads it from here).

On top of the PR-5 counters, the fault-tolerance layer records the full
health state machine per host (current state, state-transition counters,
cumulative time in each state), the retry/backoff activity (reconnect
attempts and successes, probe re-dials, readmissions), membership changes
(hosts added/removed at runtime), speculative dispatch and
duplicate-result suppression, oversized-frame rejections, and — so
post-mortems don't require log archaeology — a **failure record** per host
death: the exception that caused it, the wall-clock timestamp, and a
description of the task that was in flight.  A bounded ``death_log`` keeps
the most recent records cluster-wide.

Everything is lock-guarded: host client threads record sends/results while
request threads record failovers, the probe thread records re-dials and
observers snapshot.
"""

from __future__ import annotations

import threading
import time

from repro.formats.cache import CacheStats

#: Most recent host-death records kept in the cluster-wide post-mortem log.
DEATH_LOG_CAPACITY = 32


class ClusterMetrics:
    """Mutable cluster counters shared by the head's threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "shards": 0,
            "tasks_sent": 0,
            "tasks_completed": 0,
            "task_failures": 0,
            "host_deaths": 0,
            "failovers": 0,
            "shards_failed_over": 0,
            "inline_fallbacks": 0,
            "heartbeats": 0,
            "heartbeat_failures": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            # Fault-tolerance layer (PR 6).
            "state_transitions": 0,
            "reconnect_attempts": 0,
            "reconnects": 0,
            "probe_dials": 0,
            "hosts_readmitted": 0,
            "hosts_added": 0,
            "hosts_removed": 0,
            "speculative_dispatches": 0,
            "duplicate_results_suppressed": 0,
            "frames_oversized": 0,
            # Trusted data plane (PR 7).  The three security counters here
            # hold what the *head* detected; ``snapshot()`` adds the
            # worker-reported tallies (which travel in result/pong frames)
            # on top, so the snapshot totals cover both ends of the wire.
            "integrity_failures": 0,
            "auth_rejects": 0,
            "handshake_failures": 0,
            # Matrix push/pin (protocol v3).  ``bytes_saved`` is the wire
            # volume a task *would* have carried embedded but shipped as a
            # store-key reference instead — the push/pin payoff, directly.
            "store_puts": 0,
            "store_put_bytes": 0,
            "store_hits": 0,
            "store_misses": 0,
            "bytes_saved": 0,
            # Fused layer programs (protocol v4).  ``round_trips_saved``
            # counts the head↔worker request cycles a fused ``layer_task``
            # avoided versus the three-kernel composition (two per layer);
            # ``operand_bytes_saved`` is the intermediate traffic the
            # composed path would have shipped — the SDDMM result pulled
            # back to the head plus the per-evaluation attention-CSR bundle
            # pushed out again (never pinnable: its values change every
            # layer evaluation).
            "layer_requests": 0,
            "layer_requests_composed": 0,
            "segmm_requests": 0,
            "round_trips_saved": 0,
            "operand_bytes_saved": 0,
        }
        self._per_host: dict[str, dict] = {}
        self._death_log: list[dict] = []
        #: Byte totals split by frame type (``task``, ``result``,
        #: ``store_put``, ``control`` …) so push savings vs. task/control
        #: traffic are directly observable in ``stats_snapshot()``.
        self._bytes_by_frame_type: dict[str, dict] = {}

    # -------------------------------------------------------------- recorders
    def _host(self, host_id: str) -> dict:
        entry = self._per_host.get(host_id)
        if entry is None:
            entry = {
                "tasks_sent": 0,
                "tasks_completed": 0,
                "alive": True,
                "cache": None,
                "state": "healthy",
                "state_since": time.monotonic(),
                "time_in_state": {},
                "transitions": {},
                "reconnect_attempts": 0,
                "reconnects": 0,
                "last_failure": None,
                "integrity_failures": 0,
                "auth_rejects": 0,
                "handshake_failures": 0,
                #: Latest worker-side security counters (from status frames).
                "remote_security": None,
                #: Latest worker-side pin-store gauges (from status frames):
                #: pinned_bytes/budget_bytes/entries plus put/hit/miss/
                #: eviction counters.
                "store": None,
                #: Head-side push/pin activity against this host.
                "store_puts": 0,
                "store_hits": 0,
                "store_misses": 0,
                "bytes_saved": 0,
            }
            self._per_host[host_id] = entry
        return entry

    def record_request(self, shards: int) -> None:
        """One ``run_spmm``/``run_sddmm`` call dispatching ``shards`` shards."""
        with self._lock:
            self._counters["requests"] += 1
            self._counters["shards"] += int(shards)

    def record_layer_request(
        self, fused: bool, round_trips_saved: int = 0, operand_bytes_saved: int = 0
    ) -> None:
        """One ``run_layer`` call; fused v4 dispatch or composed fallback."""
        with self._lock:
            if fused:
                self._counters["layer_requests"] += 1
                self._counters["round_trips_saved"] += int(round_trips_saved)
                self._counters["operand_bytes_saved"] += int(operand_bytes_saved)
            else:
                self._counters["layer_requests_composed"] += 1

    def record_segmm_request(self) -> None:
        """One ``run_segment_matmul`` call."""
        with self._lock:
            self._counters["segmm_requests"] += 1

    def _frame_bytes(self, frame_type: str, sent: int = 0, received: int = 0) -> None:
        """Tally bytes under a frame-type bucket; called under the lock."""
        bucket = self._bytes_by_frame_type.setdefault(
            frame_type, {"sent": 0, "received": 0}
        )
        bucket["sent"] += int(sent)
        bucket["received"] += int(received)

    def record_task_sent(self, host_id: str, nbytes: int) -> None:
        """One shard task written to ``host_id``'s stream."""
        with self._lock:
            self._counters["tasks_sent"] += 1
            self._counters["bytes_sent"] += int(nbytes)
            self._frame_bytes("task", sent=nbytes)
            self._host(host_id)["tasks_sent"] += 1

    def record_task_completed(
        self,
        host_id: str,
        nbytes: int,
        cache: dict | None,
        security: dict | None = None,
        store: dict | None = None,
    ) -> None:
        """One shard result read back from ``host_id`` (with its latest
        translation-cache, security and pin-store counters, when the worker
        attached them)."""
        with self._lock:
            self._counters["tasks_completed"] += 1
            self._counters["bytes_received"] += int(nbytes)
            self._frame_bytes("result", received=nbytes)
            entry = self._host(host_id)
            entry["tasks_completed"] += 1
            if cache is not None:
                entry["cache"] = dict(cache)
            if security is not None:
                entry["remote_security"] = dict(security)
            if store is not None:
                entry["store"] = dict(store)

    def record_task_failure(self, host_id: str) -> None:
        """One shard task that failed on ``host_id`` (host death or remote
        error) before delivering a result."""
        with self._lock:
            self._counters["task_failures"] += 1
            self._host(host_id)

    def record_state_transition(self, host_id: str, old: str, new: str) -> None:
        """``host_id`` moved ``old → new`` in the health state machine."""
        now = time.monotonic()
        with self._lock:
            entry = self._host(host_id)
            in_state = entry["time_in_state"]
            in_state[old] = in_state.get(old, 0.0) + max(0.0, now - entry["state_since"])
            entry["state"] = new
            entry["state_since"] = now
            edge = f"{old}->{new}"
            entry["transitions"][edge] = entry["transitions"].get(edge, 0) + 1
            entry["alive"] = new != "dead"
            self._counters["state_transitions"] += 1

    def record_reconnect_attempt(self, host_id: str, ok: bool) -> None:
        """One backoff re-dial of a SUSPECT host (and whether it connected)."""
        with self._lock:
            self._counters["reconnect_attempts"] += 1
            entry = self._host(host_id)
            entry["reconnect_attempts"] += 1
            if ok:
                self._counters["reconnects"] += 1
                entry["reconnects"] += 1

    def record_probe_dial(self, host_id: str, ok: bool) -> None:
        """One membership-probe re-dial of a DEAD host."""
        with self._lock:
            self._counters["probe_dials"] += 1
            self._host(host_id)

    def record_readmission(self, host_id: str) -> None:
        """A DEAD host came back: probe re-dial + warm-up ping succeeded."""
        with self._lock:
            self._counters["hosts_readmitted"] += 1
            self._host(host_id)

    def record_host_added(self, host_id: str) -> None:
        """A host joined the running cluster via ``add_host``."""
        with self._lock:
            self._counters["hosts_added"] += 1
            self._host(host_id)

    def record_host_removed(self, host_id: str) -> None:
        """A host left the running cluster via ``remove_host``."""
        with self._lock:
            self._counters["hosts_removed"] += 1
            entry = self._per_host.get(host_id)
            if entry is not None:
                entry["alive"] = False
                entry["state"] = "removed"

    def record_speculation(self, host_id: str) -> None:
        """One in-flight shard speculatively duplicated onto ``host_id``."""
        with self._lock:
            self._counters["speculative_dispatches"] += 1
            self._host(host_id)

    def record_duplicates_suppressed(self, count: int) -> None:
        """``count`` duplicate shard results suppressed at assembly."""
        if count <= 0:
            return
        with self._lock:
            self._counters["duplicate_results_suppressed"] += int(count)

    def record_oversized_frame(self, host_id: str | None = None) -> None:
        """A peer declared a frame over the per-connection byte limit."""
        with self._lock:
            self._counters["frames_oversized"] += 1
            if host_id is not None:
                self._host(host_id)

    def record_transport_bytes(
        self,
        host_id: str | None = None,
        sent: int = 0,
        received: int = 0,
        frame_type: str = "control",
    ) -> None:
        """Raw bytes that crossed a host's socket outside a counted frame.

        Handshake/auth exchanges, heartbeat pings/pongs, and the partial
        bytes of a frame that was subsequently *rejected* (integrity or
        size failure) all go through here, so the snapshot's byte totals
        reconcile with what actually crossed the wire — not just with the
        frames that parsed.  ``frame_type`` buckets the volume in
        ``bytes_by_frame_type`` (default ``"control"``).
        """
        if not sent and not received:
            return
        with self._lock:
            self._counters["bytes_sent"] += int(sent)
            self._counters["bytes_received"] += int(received)
            self._frame_bytes(frame_type, sent=sent, received=received)
            if host_id is not None:
                self._host(host_id)

    def record_store_put(self, host_id: str, nbytes: int) -> None:
        """One ``store_put`` frame (pushed matrix bytes) sent to ``host_id``."""
        with self._lock:
            self._counters["store_puts"] += 1
            self._counters["store_put_bytes"] += int(nbytes)
            self._counters["bytes_sent"] += int(nbytes)
            self._frame_bytes("store_put", sent=nbytes)
            self._host(host_id)["store_puts"] += 1

    def record_store_hit(self, host_id: str, bytes_saved: int) -> None:
        """One task referenced ``host_id``'s pinned bytes instead of
        embedding them; ``bytes_saved`` is the payload volume not shipped."""
        with self._lock:
            self._counters["store_hits"] += 1
            self._counters["bytes_saved"] += int(bytes_saved)
            entry = self._host(host_id)
            entry["store_hits"] += 1
            entry["bytes_saved"] += int(bytes_saved)

    def record_store_miss(self, host_id: str) -> None:
        """``host_id`` answered ``store_miss`` — the head re-pushes."""
        with self._lock:
            self._counters["store_misses"] += 1
            self._host(host_id)["store_misses"] += 1

    def record_integrity_failure(self, host_id: str) -> None:
        """A frame from ``host_id`` failed its payload CRC32 check."""
        with self._lock:
            self._counters["integrity_failures"] += 1
            self._host(host_id)["integrity_failures"] += 1

    def record_handshake_failure(self, host_id: str, auth: bool = False) -> None:
        """A connection handshake with ``host_id`` failed.

        ``auth=True`` marks a rejected credential (wrong/missing token);
        everything else — version mismatch, protocol garbage, TLS or
        stream loss mid-handshake — counts as a plain handshake failure.
        The two are disjoint.
        """
        with self._lock:
            entry = self._host(host_id)
            if auth:
                self._counters["auth_rejects"] += 1
                entry["auth_rejects"] += 1
            else:
                self._counters["handshake_failures"] += 1
                entry["handshake_failures"] += 1

    def record_host_death(
        self,
        host_id: str,
        cause: BaseException | str | None = None,
        in_flight: str | None = None,
    ) -> None:
        """``host_id`` was declared DEAD.

        ``cause`` is the exception (or description) behind the final failed
        attempt and ``in_flight`` describes the task that was on the wire,
        so a post-mortem reads the *why* straight out of
        ``stats_snapshot()`` instead of log archaeology.
        """
        record = {
            "host": host_id,
            "cause": None if cause is None else str(cause) or repr(cause),
            "cause_type": type(cause).__name__ if isinstance(cause, BaseException) else None,
            "at_unix": time.time(),
            "in_flight": in_flight,
        }
        with self._lock:
            self._counters["host_deaths"] += 1
            entry = self._host(host_id)
            entry["alive"] = False
            entry["last_failure"] = dict(record)
            self._death_log.append(record)
            del self._death_log[:-DEATH_LOG_CAPACITY]

    def record_failover(self, shards: int) -> None:
        """``shards`` in-flight shards re-dispatched after a host death."""
        with self._lock:
            self._counters["failovers"] += 1
            self._counters["shards_failed_over"] += int(shards)

    def record_inline_fallback(self, shards: int) -> None:
        """``shards`` shards the head executed in-parent (no live host)."""
        with self._lock:
            self._counters["inline_fallbacks"] += int(shards)

    def record_heartbeat(
        self,
        host_id: str,
        ok: bool,
        cache: dict | None = None,
        security: dict | None = None,
        store: dict | None = None,
    ) -> None:
        """One ping/pong exchange with ``host_id`` (or its failure)."""
        with self._lock:
            self._counters["heartbeats"] += 1
            if not ok:
                self._counters["heartbeat_failures"] += 1
                return
            entry = self._host(host_id)
            if cache is not None:
                entry["cache"] = dict(cache)
            if security is not None:
                entry["remote_security"] = dict(security)
            if store is not None:
                entry["store"] = dict(store)

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """Consistent copy of every counter plus the per-host breakdown.

        Each host entry's ``time_in_state`` includes the still-running
        tally for its *current* state, so dashboards read real durations
        without waiting for the next transition.
        """
        now = time.monotonic()
        with self._lock:
            snap = dict(self._counters)
            hosts: dict[str, dict] = {}
            for host_id, entry in self._per_host.items():
                view = dict(entry)
                view["cache"] = dict(entry["cache"]) if entry["cache"] else None
                view["transitions"] = dict(entry["transitions"])
                view["last_failure"] = (
                    dict(entry["last_failure"]) if entry["last_failure"] else None
                )
                remote = entry["remote_security"]
                view["remote_security"] = dict(remote) if remote else None
                view["store"] = dict(entry["store"]) if entry["store"] else None
                in_state = dict(entry["time_in_state"])
                state = entry["state"]
                in_state[state] = in_state.get(state, 0.0) + max(
                    0.0, now - entry["state_since"]
                )
                view["time_in_state"] = in_state
                view.pop("state_since", None)
                hosts[host_id] = view
                # Fold the worker-reported security tallies into the
                # top-level totals: the head can only *see* corruption on
                # frames it receives — what each worker detected on its
                # inbound side travels back as a gauge and is summed here.
                if remote:
                    for key in ("integrity_failures", "auth_rejects", "handshake_failures"):
                        snap[key] += int(remote.get(key, 0))
            snap["hosts"] = hosts
            snap["death_log"] = [dict(r) for r in self._death_log]
            snap["bytes_by_frame_type"] = {
                frame_type: dict(bucket)
                for frame_type, bucket in self._bytes_by_frame_type.items()
            }
            return snap

    def remote_cache_stats(self) -> CacheStats:
        """Aggregate of the latest per-host translation-cache counters.

        This is the cache-affinity signal: under content-key routing a
        repeat-matrix workload should show a high remote hit rate because
        every request for a matrix lands on the host that already holds its
        translation.
        """
        totals = {"hits": 0, "misses": 0, "evictions": 0, "content_hits": 0, "size": 0}
        with self._lock:
            for entry in self._per_host.values():
                cache = entry["cache"]
                if not cache:
                    continue
                for key in totals:
                    totals[key] += int(cache.get(key, 0))
        return CacheStats(**totals)
