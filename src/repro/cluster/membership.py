"""Live cluster membership: host health states and the readmission probe.

Host failure is a *normal operating mode* of the cluster, not a terminal
event.  Every worker host moves through a small state machine::

                 transient transport failure
        HEALTHY ────────────────────────────► SUSPECT
           ▲                                     │
           │ reconnected (backoff attempt)       │ RetryPolicy exhausted
           │                                     ▼
        RECOVERING ◄──────────────────────────  DEAD
                     probe re-dial succeeded
        (RECOVERING ──► HEALTHY after the cache warm-up ping)

* **HEALTHY** — the long-lived connection is up; the host takes shards.
* **SUSPECT** — the connection just failed with a transient error
  (connect refused, timeout, reset).  The host client is re-dialling
  under its :class:`~repro.cluster.transport.RetryPolicy`; queued shards
  wait, and an in-flight shard may be speculatively re-dispatched to the
  next host in rendezvous order (duplicate results are suppressed at
  assembly).  A blip no longer costs the host forever.
* **DEAD** — every backoff attempt failed.  Pending shards have been
  failed over down the rendezvous order; the host takes no traffic.
* **RECOVERING** — the membership probe re-dialled a DEAD host
  successfully.  The fresh client sends a cache warm-up ping (which also
  pulls the host's translation-cache counters **and re-warms the pinned
  store ledger from the pong's key inventory** — a worker that survived
  the outage keeps its pushed matrices; a restarted cold process reports
  an empty inventory and is re-pushed on first use) before the host is
  readmitted as HEALTHY; rendezvous routing then naturally restores its
  affinity keys.

Probe re-dials go through the same dial path as every other connection,
so they clear TLS and the authenticated HELLO/CHALLENGE handshake too: a
host that stops presenting the shared token (or a rogue process squatting
on a dead host's port) cannot be readmitted — the failed handshake is
recorded and the host stays DEAD.

The :class:`MembershipProbe` is the background thread behind the DEAD →
RECOVERING edge: it periodically re-dials DEAD hosts through
:meth:`ClusterScheduler.try_readmit`.  Runtime membership changes —
``add_host`` / ``remove_host`` — live on the scheduler itself; this module
only owns the state vocabulary and the probe loop, so it stays importable
from both the head and the metrics layer without cycles.
"""

from __future__ import annotations

import enum
import threading

#: Default gap between probe sweeps over the DEAD host set.
DEFAULT_PROBE_INTERVAL_S = 1.0


class HostHealth(enum.Enum):
    """Health of one worker host as the head sees it (see module doc)."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"
    RECOVERING = "recovering"

    def __str__(self) -> str:  # "healthy", not "HostHealth.HEALTHY", in logs
        return self.value


#: States in which a host may be handed new shard submissions.  SUSPECT is
#: included: the client is re-dialling and will run (or fail over) whatever
#: is queued, so routing does not flap on a sub-second blip.
ACCEPTING_STATES = frozenset(
    {HostHealth.HEALTHY, HostHealth.RECOVERING, HostHealth.SUSPECT}
)

#: States preferred by affinity routing — a SUSPECT host only receives new
#: work when no non-suspect host is available for the key.
PREFERRED_STATES = frozenset({HostHealth.HEALTHY, HostHealth.RECOVERING})


class MembershipProbe(threading.Thread):
    """Background thread that re-dials DEAD hosts and readmits them.

    Every ``interval_s`` it sweeps the scheduler's host table and calls
    :meth:`ClusterScheduler.try_readmit` for each DEAD, non-removed host.
    Readmission is the scheduler's job (fresh client, warm-up ping, state
    swap); the probe only provides the periodic impulse.  The thread is a
    daemon and stops promptly via :meth:`stop` (the scheduler's ``close``
    calls it before tearing hosts down).
    """

    def __init__(self, scheduler, interval_s: float = DEFAULT_PROBE_INTERVAL_S):
        super().__init__(name="repro-cluster-probe", daemon=True)
        if interval_s <= 0:
            raise ValueError("probe interval_s must be > 0")
        self.scheduler = scheduler
        self.interval_s = float(interval_s)
        # Not named ``_stop``: Thread.join() calls a private ``_stop()``
        # method internally, which an Event attribute would shadow.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            for state in self.scheduler.dead_hosts():
                if self._halt.is_set():
                    return
                try:
                    self.scheduler.try_readmit(state)
                except Exception:  # pragma: no cover - probe must never die
                    # A failed probe attempt is already recorded in metrics;
                    # anything unexpected must not kill the probe loop (a
                    # dead probe would silently disable readmission).
                    pass

    def stop(self, join_timeout_s: float = 5.0) -> None:
        """Ask the probe loop to exit and join it (bounded)."""
        self._halt.set()
        if self.is_alive():
            self.join(timeout=join_timeout_s)
