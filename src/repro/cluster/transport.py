"""Length-prefixed binary frame protocol for the shard transport.

One frame carries one message between the head and a worker host over a
TCP stream (the shape follows TVM's RPC runner: a fixed prefix, a small
metadata header, then the bulk payload as raw buffers):

``
+--------+---------+---------+------------+----------------+
| magic  | version | n_bufs  | header_len | header (JSON)  |
| 4 B    | 1 B     | 1 B     | 4 B        | header_len B   |
+--------+---------+---------+------------+----------------+
| buf_len (8 B) | raw buffer bytes | ... repeated n_bufs × |
+-------------------------------------------------------+
``

The **header** is a small JSON object holding the message type and scalar
metadata (shard ranges, content keys, per-array dtype/shape descriptors).
The **buffers** are the ndarray payloads — CSR arrays, dense operands,
result rows — sent as raw contiguous bytes, *never* pickled: pickle on a
network channel is an arbitrary-code-execution surface and also copies
through Python object land, while raw buffers go straight from the array
to the socket.  Array dtype and shape travel in ``header["arrays"]`` so
the receiver can rebuild each ndarray with ``np.frombuffer`` (backed by a
``bytearray``, so the rebuilt arrays are writable).

Protocol version 2 adds the **trusted data plane**:

* **Payload integrity.**  Every buffer descriptor carries a ``crc32``
  (zlib) over the buffer's raw bytes, computed at send and verified at
  receive.  A flipped bit anywhere in an ndarray payload — NIC, switch,
  proxy, cosmic ray — surfaces as :class:`FrameIntegrityError` instead of
  flowing silently into SpMM/SDDMM numerics.  Version-2 frames *must*
  carry checksums; a v2 frame without them is a protocol violation.
* **Connection handshake.**  Before any task flows, the server sends a
  CHALLENGE (protocol version + a random nonce), the client answers with
  a HELLO (its version + an HMAC-SHA256 of the nonce under the shared
  ``auth_token``), and the server replies WELCOME — or a structured
  REJECT naming the reason (``version`` / ``auth`` / ``protocol``),
  written with the *peer's* wire version so even a VERSION=1 peer reads
  a parseable reject instead of hanging.  See :func:`client_handshake`
  and :func:`server_handshake`.
* **Optional TLS.**  :func:`make_server_ssl_context` /
  :func:`make_client_ssl_context` build ``ssl.SSLContext`` objects for
  wrapping either side of the stream; the frame protocol (and the fault
  injection wrapper) layer on top unchanged.

Protocol version 3 adds the **content-addressed store** (push/pin): the
handshake negotiates the highest version both ends speak (``min`` of the
two advertisements, never below :data:`MIN_VERSION`), and a v3 connection
additionally carries the :mod:`repro.cluster.store` frames — a v3 head
talking to a v2 worker simply keeps embedding operand bytes in every task
frame, so mixed-version clusters work unchanged.

Protocol version 4 adds **fused layer serving**: a ``layer_task`` frame
carries one window-aligned shard of a whole GNN layer program (SDDMM →
scale → edge softmax → SpMM executed in one worker pass; see
:mod:`repro.serve.program`) and a ``segmm_task`` frame one served
:func:`repro.ops.segment_matmul`.  Dense operand panels ride the v3
pinned store, so a layer's panels ship once per host.  The min-of-maxes
negotiation makes the fallback transparent: a v4 head talking to a v3
worker sends three per-kernel task frames per layer instead, with
bit-identical results.

Message types (the ``type`` header field) used by the cluster:

* ``challenge`` / ``hello`` / ``welcome`` / ``reject``: the connection
  handshake (before anything else on a fresh stream),
* ``task`` (head → worker): one window-aligned shard of one SpMM/SDDMM —
  with the CSR + dense operand buffers embedded (v2), or referencing
  pinned store keys with no payload at all (v3),
* ``layer_task`` (v4, head → worker): one window-aligned shard of a whole
  fused layer program; operands embedded or store-referenced like ``task``,
* ``segmm_task`` (v4, head → worker): one served segment matmul,
* ``store_put`` / ``store_ack`` (v3): pin a content-keyed buffer bundle
  on the worker / confirm it,
* ``store_miss`` (v3, worker → head): a task referenced keys the worker
  does not hold (evicted, or a restarted process) — the head re-pushes
  and resends,
* ``result`` / ``error`` (worker → head): the shard's output or the remote
  failure (message + traceback text),
* ``ping`` / ``pong``: heartbeat probes; the pong carries the worker's
  translation-cache, pinned-store and security counters (plus the store's
  key inventory, which re-warms a readmitting head's ledger),
* ``shutdown`` (head → worker): drain and exit.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import random
import secrets
import socket
import struct
import zlib
from dataclasses import dataclass

import numpy as np

#: Frame prefix: magic, version, buffer count, header length.
_PREFIX = struct.Struct("!4sBBI")
_BUF_LEN = struct.Struct("!Q")

MAGIC = b"FSRP"
#: Highest wire protocol version this end speaks (v2 = checksummed +
#: handshake; v3 = content-addressed store push/pin frames; v4 = fused
#: ``layer_task`` / ``segmm_task`` frames).
VERSION = 4
#: Lowest version this end will negotiate down to: v2 is the floor —
#: payload checksums and the authenticated handshake are not optional.
MIN_VERSION = 2
#: Prefix versions the parser will read at all.  v1 frames are accepted
#: only so the handshake can answer a legacy peer with a structured
#: reject it can parse; every post-handshake frame is v2, v3 or v4.
SUPPORTED_VERSIONS = frozenset({1, 2, 3, 4})

#: Sanity bounds — a corrupt or hostile prefix must not trigger a huge
#: allocation before the magic/shape checks can reject it.
MAX_HEADER_BYTES = 16 * 1024 * 1024
MAX_BUFFERS = 64
MAX_BUFFER_BYTES = 16 * 1024**3

#: Handshake frames are tiny; anything bigger arriving mid-handshake is
#: not a handshake (e.g. a legacy peer's first task frame).
HANDSHAKE_MAX_BYTES = 64 * 1024


class TransportError(RuntimeError):
    """Malformed frame, protocol violation or mid-frame stream loss.

    Instances raised out of :func:`recv_message` carry a ``bytes_read``
    attribute — how many bytes of the offending frame had already crossed
    the socket — so transport accounting reconciles even for frames that
    were rejected rather than parsed.
    """

    bytes_read: int = 0


class ConnectionClosedError(TransportError):
    """The peer closed the stream at a clean frame boundary."""


class FrameTooLargeError(TransportError):
    """A frame declared more bytes than this connection allows.

    Raised *before* the oversized allocation happens, so one malformed (or
    hostile) peer cannot balloon the receiver's memory up to the global
    :data:`MAX_BUFFER_BYTES` bound.  The per-connection limit is the
    ``max_frame_bytes`` argument of :func:`recv_message`; the cumulative
    check walks the header's declared descriptors before the buffer loop
    reads a single payload byte, so one huge descriptor hiding among small
    ones is caught by its index.
    """


class FrameIntegrityError(TransportError):
    """A payload buffer's bytes do not match its declared CRC32.

    Silent corruption made detectable: the receiver verifies every
    buffer's checksum before handing the arrays to the caller.  The head
    treats this exactly like a transport failure — the frame is
    discarded, the connection recycled and the shard re-sent — so a
    corrupted result costs a retry, never wrong numerics.
    """


class HandshakeError(TransportError):
    """The connection handshake failed (protocol violation either way)."""


class AuthenticationError(HandshakeError):
    """The peer's HMAC auth digest was missing or wrong for our token."""


class VersionMismatchError(HandshakeError):
    """The peer speaks an incompatible wire protocol version."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient transport failures.

    A host client consults this policy when a connection dies with a
    *transient* error (connect refused, timeout, reset): it makes up to
    ``max_attempts`` reconnect attempts, sleeping ``base_delay_s · 2ⁱ``
    (capped at ``cap_delay_s``) before attempt ``i``, with a multiplicative
    ``jitter`` so a fleet of heads does not re-dial in lockstep.  Only when
    every attempt fails is the host declared DEAD and its work failed over.

    ``seed`` makes the jitter sequence deterministic per ``delays(key)``
    stream — the fault-injection tests rely on replayable schedules.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    cap_delay_s: float = 2.0
    jitter: float = 0.1
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.base_delay_s < 0 or self.cap_delay_s < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be >= 0")

    def delays(self, key: str = ""):
        """Yield the backoff delay before each reconnect attempt."""
        rng = random.Random(None if self.seed is None else f"{self.seed}|{key}")
        for attempt in range(self.max_attempts):
            delay = min(self.cap_delay_s, self.base_delay_s * (2.0**attempt))
            if self.jitter > 0:
                delay *= 1.0 + rng.uniform(0.0, self.jitter)
            yield min(delay, self.cap_delay_s)


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool = False) -> bytearray:
    """Read exactly ``n`` bytes (into a writable buffer) or raise.

    EOF before the first byte of a frame is a clean close
    (:class:`ConnectionClosedError`); EOF anywhere inside a frame is a
    :class:`TransportError` — the peer died mid-message.
    """
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            chunk = sock.recv_into(view[got:], n - got)
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionClosedError(f"connection reset: {exc}") from exc
        if chunk == 0:
            if at_boundary and got == 0:
                raise ConnectionClosedError("peer closed the connection")
            raise TransportError(f"stream ended mid-frame ({got}/{n} bytes read)")
        got += chunk
    return buf


def _crc32(data) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _array_descriptor(array: np.ndarray) -> dict:
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "crc32": _crc32(memoryview(array).cast("B")),
    }


def send_message(sock: socket.socket, header: dict, arrays=(), version: int = VERSION) -> int:
    """Send one frame; returns the total bytes written.

    ``header`` must be JSON-serialisable; an ``arrays`` descriptor list
    (dtype, shape and a CRC32 over the raw bytes of each buffer) is added
    automatically.  Arrays are made contiguous (a no-op for the batch
    slices the cluster sends) and streamed as raw bytes.  ``version``
    overrides the prefix version byte — only the handshake uses this, to
    write a reject a legacy peer can parse.
    """
    arrays = [np.ascontiguousarray(a) for a in arrays]
    if len(arrays) > MAX_BUFFERS:
        raise TransportError(f"too many buffers in one frame ({len(arrays)})")
    header = dict(header, arrays=[_array_descriptor(a) for a in arrays])
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise TransportError(f"header too large ({len(header_bytes)} bytes)")
    parts = [
        _PREFIX.pack(MAGIC, int(version), len(arrays), len(header_bytes)),
        header_bytes,
    ]
    for array in arrays:
        parts.append(_BUF_LEN.pack(array.nbytes))
        parts.append(memoryview(array).cast("B"))
    total = 0
    try:
        # Frame-boundary hook for injectable socket wrappers (the
        # fault-injection harness counts frames, not raw sendall calls, so
        # its schedules stay deterministic under heartbeat noise).
        notify = getattr(sock, "notify_frame_send", None)
        if notify is not None:
            notify(header)
        for part in parts:
            sock.sendall(part)
            total += len(part)
    except (ConnectionResetError, BrokenPipeError) as exc:
        raise ConnectionClosedError(f"connection lost during send: {exc}") from exc
    return total


def recv_message(
    sock: socket.socket, max_frame_bytes: int | None = None
) -> tuple[dict, list[np.ndarray], int]:
    """Receive one frame; returns ``(header, arrays, total_bytes)``.

    Blocks until a full frame arrives (honouring any ``sock.settimeout``,
    whose expiry surfaces as the standard ``socket.timeout``).  The
    returned arrays are writable (backed by the receive buffer, no extra
    copy) and every buffer's CRC32 has been verified against its header
    descriptor (:class:`FrameIntegrityError` on mismatch).  The peer's
    prefix version is reported as ``header["_version"]``.

    ``max_frame_bytes`` bounds the *declared* total frame size for this
    connection.  The header's descriptor list is walked **before** the
    buffer loop allocates anything: the cumulative declared sizes are
    checked against the limit and a violation raises
    :class:`FrameTooLargeError` naming the offending descriptor index, so
    a single huge descriptor among small ones cannot slip past an
    aggregate check that only ran as buffers streamed in.

    Failures carry a ``bytes_read`` attribute (bytes consumed before the
    frame was rejected) so callers can keep byte accounting truthful.
    """
    progress = [0]
    try:
        return _recv_frame(sock, max_frame_bytes, progress)
    except TransportError as exc:
        exc.bytes_read = progress[0]
        raise


def _recv_frame(
    sock: socket.socket, max_frame_bytes: int | None, progress: list[int]
) -> tuple[dict, list[np.ndarray], int]:
    notify = getattr(sock, "notify_frame_recv", None)
    if notify is not None:
        notify()
    prefix = _recv_exact(sock, _PREFIX.size, at_boundary=True)
    progress[0] += _PREFIX.size
    magic, version, n_bufs, header_len = _PREFIX.unpack(bytes(prefix))
    if magic != MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    if version not in SUPPORTED_VERSIONS:
        raise TransportError(f"unsupported protocol version {version}")
    if header_len > MAX_HEADER_BYTES:
        raise TransportError(f"header too large ({header_len} bytes)")
    total = _PREFIX.size + header_len
    if max_frame_bytes is not None and total > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame header declares {header_len} bytes; the frame already "
            f"exceeds this connection's max_frame_bytes={max_frame_bytes}"
        )
    try:
        header = json.loads(bytes(_recv_exact(sock, header_len)).decode("utf-8"))
    except ValueError as exc:
        progress[0] += header_len
        raise TransportError(f"undecodable frame header: {exc}") from exc
    progress[0] += header_len
    if not isinstance(header, dict):
        raise TransportError(f"frame header is not an object: {header!r}")
    header["_version"] = version
    descriptors = header.get("arrays", [])
    if len(descriptors) != n_bufs:
        raise TransportError(
            f"frame declares {n_bufs} buffers but header describes {len(descriptors)}"
        )
    # Pre-scan every descriptor before the buffer loop allocates anything:
    # the cumulative declared byte total must clear max_frame_bytes up
    # front, and v2 descriptors must all carry checksums.
    plan: list[tuple[np.dtype, tuple, int, int | None]] = []
    declared = total
    for i, desc in enumerate(descriptors):
        try:
            dtype = np.dtype(desc["dtype"])
            shape = tuple(int(s) for s in desc["shape"])
            if any(s < 0 for s in shape):
                raise ValueError(f"negative dimension in {shape}")
        except (KeyError, TypeError, ValueError) as exc:
            raise TransportError(f"bad array descriptor {i}: {exc}") from exc
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes > MAX_BUFFER_BYTES:
            raise TransportError(f"buffer {i} too large ({nbytes} bytes)")
        declared += _BUF_LEN.size + nbytes
        if max_frame_bytes is not None and declared > max_frame_bytes:
            raise FrameTooLargeError(
                f"descriptor {i} declares {nbytes} bytes, bringing the frame "
                f"to {declared} declared bytes — over this connection's "
                f"max_frame_bytes={max_frame_bytes}"
            )
        crc = desc.get("crc32")
        if version >= 2:
            if not isinstance(crc, int):
                raise TransportError(f"v{version} descriptor {i} carries no checksum")
        else:
            crc = None
        plan.append((dtype, shape, nbytes, crc))
    arrays: list[np.ndarray] = []
    for i, (dtype, shape, expected, crc) in enumerate(plan):
        (nbytes,) = _BUF_LEN.unpack(bytes(_recv_exact(sock, _BUF_LEN.size)))
        progress[0] += _BUF_LEN.size
        if nbytes != expected:
            raise TransportError(
                f"buffer {i} wire length {nbytes} does not match its declared "
                f"dtype/shape ({expected} bytes)"
            )
        raw = _recv_exact(sock, nbytes)
        progress[0] += nbytes
        if crc is not None and _crc32(raw) != crc:
            raise FrameIntegrityError(
                f"buffer {i} of {header.get('type')!r} frame failed its CRC32 "
                f"check — payload corrupted in flight"
            )
        arrays.append(np.frombuffer(raw, dtype=dtype).reshape(shape))
        total += _BUF_LEN.size + nbytes
    return header, arrays, total


# ---------------------------------------------------------------- handshake
def _auth_digest(auth_token: str, nonce: str) -> str:
    """HMAC-SHA256 of the server's nonce under the shared token."""
    return hmac.new(
        auth_token.encode("utf-8"), nonce.encode("utf-8"), hashlib.sha256
    ).hexdigest()


def _raise_reject(header: dict) -> None:
    reason = header.get("reason")
    message = header.get("message", "")
    if reason == "auth":
        raise AuthenticationError(f"peer rejected our credentials: {message}")
    if reason == "version":
        raise VersionMismatchError(f"peer rejected our protocol version: {message}")
    raise HandshakeError(f"peer rejected the handshake ({reason}): {message}")


def _send_reject(sock, peer_version: int, reason: str, message: str) -> int:
    """Best-effort structured reject, written in the peer's wire version."""
    wire = peer_version if peer_version in SUPPORTED_VERSIONS else VERSION
    try:
        return send_message(
            sock,
            {"type": "reject", "version": VERSION, "reason": reason, "message": message},
            version=wire,
        )
    except (TransportError, OSError):
        return 0


def client_handshake(
    sock, auth_token: str | None = None, max_version: int = VERSION
) -> tuple[int, int, int]:
    """Authenticate a fresh connection from the client (head) side.

    Reads the server's CHALLENGE (which advertises the highest protocol
    version the server speaks), answers with a HELLO carrying the
    **negotiated** version — ``min(max_version, server's)`` — and (when
    ``auth_token`` is set) the HMAC-SHA256 of the challenge nonce, then
    waits for the WELCOME.  Returns
    ``(bytes_sent, bytes_received, negotiated_version)``: the byte totals
    feed transport accounting and the negotiated version tells the caller
    which frames this connection may carry (store push/pin needs v3; a v2
    peer gets task-embedded operands).  Raises
    :class:`AuthenticationError` / :class:`VersionMismatchError` /
    :class:`HandshakeError` when the server rejects us (structured reject
    frames map to the matching exception).
    """
    sent = received = 0
    try:
        header, _, n = recv_message(sock, max_frame_bytes=HANDSHAKE_MAX_BYTES)
    except TransportError as exc:
        raise HandshakeError(f"no challenge from peer: {exc}") from exc
    received += n
    kind = header.get("type")
    if kind == "reject":
        _raise_reject(header)
    if kind != "challenge":
        raise HandshakeError(f"expected a challenge frame, got {kind!r}")
    version = min(int(header.get("version") or 0), int(max_version))
    if version < MIN_VERSION:
        raise VersionMismatchError(
            f"server speaks protocol version {header.get('version')}, below "
            f"this end's floor v{MIN_VERSION}"
        )
    if auth_token is None and header.get("auth_required"):
        raise AuthenticationError(
            "server requires an auth token and none is configured on this end"
        )
    hello = {"type": "hello", "version": version}
    if auth_token is not None:
        hello["auth"] = _auth_digest(auth_token, str(header.get("nonce", "")))
    # The hello (and everything after) is written in the negotiated wire
    # version, so a v2-only server never sees a prefix byte it can't parse.
    sent += send_message(sock, hello, version=version)
    try:
        header, _, n = recv_message(sock, max_frame_bytes=HANDSHAKE_MAX_BYTES)
    except TransportError as exc:
        raise HandshakeError(f"no welcome from peer: {exc}") from exc
    received += n
    if header.get("type") == "reject":
        _raise_reject(header)
    if header.get("type") != "welcome":
        raise HandshakeError(f"expected a welcome frame, got {header.get('type')!r}")
    return sent, received, version


def server_handshake(
    sock, auth_token: str | None = None, max_version: int = VERSION
) -> tuple[int, int, int]:
    """Authenticate a fresh connection from the server (worker) side.

    Sends the CHALLENGE (the highest protocol version this end speaks + a
    random nonce), validates the peer's HELLO — frame shape, a negotiated
    protocol version within ``[MIN_VERSION, max_version]``, and (when
    ``auth_token`` is set) a constant-time comparison of the HMAC digest —
    and answers WELCOME in the negotiated wire version.  A failing peer
    gets a structured REJECT written in *its* prefix version (so a
    VERSION=1 peer reads a parseable frame, not a hang) before the
    matching exception is raised to the caller, which should drop the
    connection and keep accepting.  Returns
    ``(bytes_sent, bytes_received, negotiated_version)``.
    """
    nonce = secrets.token_hex(16)
    # The challenge is written at the v2 floor so a legacy v2-only peer can
    # parse it and negotiate down; the body advertises the real maximum.
    sent = send_message(
        sock,
        {
            "type": "challenge",
            "version": int(max_version),
            "nonce": nonce,
            "auth_required": auth_token is not None,
        },
        version=MIN_VERSION,
    )
    received = 0
    try:
        header, _, n = recv_message(sock, max_frame_bytes=HANDSHAKE_MAX_BYTES)
    except TransportError as exc:
        received += getattr(exc, "bytes_read", 0)
        raise HandshakeError(f"no parseable hello from peer: {exc}") from exc
    received += n
    peer_version = int(header.get("_version") or 0)
    if header.get("type") != "hello":
        sent += _send_reject(
            sock,
            peer_version,
            "protocol",
            f"expected a hello frame, got {header.get('type')!r}",
        )
        raise HandshakeError(f"peer opened with {header.get('type')!r}, not hello")
    hello_version = int(header.get("version") or peer_version or 0)
    if hello_version < MIN_VERSION or hello_version > int(max_version):
        sent += _send_reject(
            sock,
            peer_version,
            "version",
            f"peer negotiated protocol version {hello_version}, this end "
            f"speaks {MIN_VERSION}..{int(max_version)}",
        )
        raise VersionMismatchError(
            f"peer negotiated protocol version {hello_version}, this end "
            f"speaks {MIN_VERSION}..{int(max_version)}"
        )
    if auth_token is not None:
        digest = header.get("auth")
        if not isinstance(digest, str) or not hmac.compare_digest(
            digest, _auth_digest(auth_token, nonce)
        ):
            sent += _send_reject(
                sock, peer_version, "auth", "missing or invalid auth digest"
            )
            raise AuthenticationError("peer presented a missing or invalid auth digest")
    sent += send_message(
        sock, {"type": "welcome", "version": hello_version}, version=hello_version
    )
    return sent, received, hello_version


# ----------------------------------------------------------------------- TLS
def make_server_ssl_context(certfile: str, keyfile: str, cafile: str | None = None):
    """``ssl.SSLContext`` for the worker (server) side of the transport.

    Loads the host certificate + key; when ``cafile`` is given, client
    certificates are also required and verified against it (mutual TLS).
    """
    import ssl

    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(certfile, keyfile)
    if cafile is not None:
        context.load_verify_locations(cafile)
        context.verify_mode = ssl.CERT_REQUIRED
    return context


def make_client_ssl_context(
    cafile: str, certfile: str | None = None, keyfile: str | None = None
):
    """``ssl.SSLContext`` for the head (client) side of the transport.

    The server certificate is verified against the pinned ``cafile`` (for
    a self-signed deployment, the server certificate itself).  Hostname
    checking is disabled — the CA pin is the trust anchor; cluster hosts
    are dialled by address, not stable names.  ``certfile``/``keyfile``
    present a client certificate when the server demands mutual TLS.
    """
    import ssl

    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.check_hostname = False
    context.verify_mode = ssl.CERT_REQUIRED
    context.load_verify_locations(cafile)
    if certfile is not None:
        context.load_cert_chain(certfile, keyfile)
    return context
