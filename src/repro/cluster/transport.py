"""Length-prefixed binary frame protocol for the shard transport.

One frame carries one message between the head and a worker host over a
TCP stream (the shape follows TVM's RPC runner: a fixed prefix, a small
metadata header, then the bulk payload as raw buffers):

``
+--------+---------+---------+------------+----------------+
| magic  | version | n_bufs  | header_len | header (JSON)  |
| 4 B    | 1 B     | 1 B     | 4 B        | header_len B   |
+--------+---------+---------+------------+----------------+
| buf_len (8 B) | raw buffer bytes | ... repeated n_bufs × |
+-------------------------------------------------------+
``

The **header** is a small JSON object holding the message type and scalar
metadata (shard ranges, content keys, per-array dtype/shape descriptors).
The **buffers** are the ndarray payloads — CSR arrays, dense operands,
result rows — sent as raw contiguous bytes, *never* pickled: pickle on a
network channel is an arbitrary-code-execution surface and also copies
through Python object land, while raw buffers go straight from the array
to the socket.  Array dtype and shape travel in ``header["arrays"]`` so
the receiver can rebuild each ndarray with ``np.frombuffer`` (backed by a
``bytearray``, so the rebuilt arrays are writable).

Message types (the ``type`` header field) used by the cluster:

* ``task`` (head → worker): one window-aligned shard of one SpMM/SDDMM,
* ``result`` / ``error`` (worker → head): the shard's output or the remote
  failure (message + traceback text),
* ``ping`` / ``pong``: heartbeat probes; the pong carries the worker's
  translation-cache counters,
* ``shutdown`` (head → worker): drain and exit.
"""

from __future__ import annotations

import json
import random
import socket
import struct
from dataclasses import dataclass

import numpy as np

#: Frame prefix: magic, version, buffer count, header length.
_PREFIX = struct.Struct("!4sBBI")
_BUF_LEN = struct.Struct("!Q")

MAGIC = b"FSRP"
VERSION = 1

#: Sanity bounds — a corrupt or hostile prefix must not trigger a huge
#: allocation before the magic/shape checks can reject it.
MAX_HEADER_BYTES = 16 * 1024 * 1024
MAX_BUFFERS = 64
MAX_BUFFER_BYTES = 16 * 1024**3


class TransportError(RuntimeError):
    """Malformed frame, protocol violation or mid-frame stream loss."""


class ConnectionClosedError(TransportError):
    """The peer closed the stream at a clean frame boundary."""


class FrameTooLargeError(TransportError):
    """A frame declared more bytes than this connection allows.

    Raised *before* the oversized allocation happens, so one malformed (or
    hostile) peer cannot balloon the receiver's memory up to the global
    :data:`MAX_BUFFER_BYTES` bound.  The per-connection limit is the
    ``max_frame_bytes`` argument of :func:`recv_message`.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient transport failures.

    A host client consults this policy when a connection dies with a
    *transient* error (connect refused, timeout, reset): it makes up to
    ``max_attempts`` reconnect attempts, sleeping ``base_delay_s · 2ⁱ``
    (capped at ``cap_delay_s``) before attempt ``i``, with a multiplicative
    ``jitter`` so a fleet of heads does not re-dial in lockstep.  Only when
    every attempt fails is the host declared DEAD and its work failed over.

    ``seed`` makes the jitter sequence deterministic per ``delays(key)``
    stream — the fault-injection tests rely on replayable schedules.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    cap_delay_s: float = 2.0
    jitter: float = 0.1
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.base_delay_s < 0 or self.cap_delay_s < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be >= 0")

    def delays(self, key: str = ""):
        """Yield the backoff delay before each reconnect attempt."""
        rng = random.Random(None if self.seed is None else f"{self.seed}|{key}")
        for attempt in range(self.max_attempts):
            delay = min(self.cap_delay_s, self.base_delay_s * (2.0**attempt))
            if self.jitter > 0:
                delay *= 1.0 + rng.uniform(0.0, self.jitter)
            yield min(delay, self.cap_delay_s)


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool = False) -> bytearray:
    """Read exactly ``n`` bytes (into a writable buffer) or raise.

    EOF before the first byte of a frame is a clean close
    (:class:`ConnectionClosedError`); EOF anywhere inside a frame is a
    :class:`TransportError` — the peer died mid-message.
    """
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            chunk = sock.recv_into(view[got:], n - got)
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise ConnectionClosedError(f"connection reset: {exc}") from exc
        if chunk == 0:
            if at_boundary and got == 0:
                raise ConnectionClosedError("peer closed the connection")
            raise TransportError(f"stream ended mid-frame ({got}/{n} bytes read)")
        got += chunk
    return buf


def _array_descriptor(array: np.ndarray) -> dict:
    return {"dtype": array.dtype.str, "shape": list(array.shape)}


def send_message(sock: socket.socket, header: dict, arrays=()) -> int:
    """Send one frame; returns the total bytes written.

    ``header`` must be JSON-serialisable; an ``arrays`` descriptor list is
    added automatically.  Arrays are made contiguous (a no-op for the
    batch slices the cluster sends) and streamed as raw bytes.
    """
    arrays = [np.ascontiguousarray(a) for a in arrays]
    if len(arrays) > MAX_BUFFERS:
        raise TransportError(f"too many buffers in one frame ({len(arrays)})")
    header = dict(header, arrays=[_array_descriptor(a) for a in arrays])
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise TransportError(f"header too large ({len(header_bytes)} bytes)")
    parts = [_PREFIX.pack(MAGIC, VERSION, len(arrays), len(header_bytes)), header_bytes]
    for array in arrays:
        parts.append(_BUF_LEN.pack(array.nbytes))
        parts.append(memoryview(array).cast("B"))
    total = 0
    try:
        # Frame-boundary hook for injectable socket wrappers (the
        # fault-injection harness counts frames, not raw sendall calls, so
        # its schedules stay deterministic under heartbeat noise).
        notify = getattr(sock, "notify_frame_send", None)
        if notify is not None:
            notify(header)
        for part in parts:
            sock.sendall(part)
            total += len(part)
    except (ConnectionResetError, BrokenPipeError) as exc:
        raise ConnectionClosedError(f"connection lost during send: {exc}") from exc
    return total


def recv_message(
    sock: socket.socket, max_frame_bytes: int | None = None
) -> tuple[dict, list[np.ndarray], int]:
    """Receive one frame; returns ``(header, arrays, total_bytes)``.

    Blocks until a full frame arrives (honouring any ``sock.settimeout``,
    whose expiry surfaces as the standard ``socket.timeout``).  The
    returned arrays are writable (backed by the receive buffer, no extra
    copy).

    ``max_frame_bytes`` bounds the *declared* total frame size for this
    connection: a frame whose header or cumulative buffer declarations
    exceed it raises :class:`FrameTooLargeError` before the allocation, so
    a single malformed peer cannot balloon the receiver up to the global
    :data:`MAX_BUFFER_BYTES` ceiling.
    """
    notify = getattr(sock, "notify_frame_recv", None)
    if notify is not None:
        notify()
    prefix = _recv_exact(sock, _PREFIX.size, at_boundary=True)
    magic, version, n_bufs, header_len = _PREFIX.unpack(bytes(prefix))
    if magic != MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise TransportError(f"unsupported protocol version {version}")
    if header_len > MAX_HEADER_BYTES:
        raise TransportError(f"header too large ({header_len} bytes)")
    total = _PREFIX.size + header_len
    if max_frame_bytes is not None and total > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame header declares {header_len} bytes; the frame already "
            f"exceeds this connection's max_frame_bytes={max_frame_bytes}"
        )
    try:
        header = json.loads(bytes(_recv_exact(sock, header_len)).decode("utf-8"))
    except ValueError as exc:
        raise TransportError(f"undecodable frame header: {exc}") from exc
    descriptors = header.get("arrays", [])
    if len(descriptors) != n_bufs:
        raise TransportError(
            f"frame declares {n_bufs} buffers but header describes {len(descriptors)}"
        )
    arrays: list[np.ndarray] = []
    for i, desc in enumerate(descriptors):
        (nbytes,) = _BUF_LEN.unpack(bytes(_recv_exact(sock, _BUF_LEN.size)))
        if nbytes > MAX_BUFFER_BYTES:
            raise TransportError(f"buffer too large ({nbytes} bytes)")
        if max_frame_bytes is not None and total + _BUF_LEN.size + nbytes > max_frame_bytes:
            raise FrameTooLargeError(
                f"buffer {i} declares {nbytes} bytes, bringing the frame to "
                f"{total + _BUF_LEN.size + nbytes} bytes — over this "
                f"connection's max_frame_bytes={max_frame_bytes}"
            )
        dtype = np.dtype(desc["dtype"])
        shape = tuple(int(s) for s in desc["shape"])
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != nbytes:
            raise TransportError(
                f"buffer length {nbytes} does not match dtype/shape {desc}"
            )
        raw = _recv_exact(sock, nbytes)
        arrays.append(np.frombuffer(raw, dtype=dtype).reshape(shape))
        total += _BUF_LEN.size + nbytes
    return header, arrays, total
