"""Cluster head: host registry, affinity routing, failure recovery.

The :class:`ClusterScheduler` is the multi-host counterpart of the
single-host :class:`~repro.serve.scheduler.ShardScheduler` and presents the
same execution interface (``run_spmm`` / ``run_sddmm``, ``close``,
``stats_snapshot``), so the serving frontend plugs it in unchanged.  What
changes underneath:

* **Hosts, not processes.**  Each worker host is a separate process owning
  its own translation cache, reached over a long-lived TCP connection
  (loopback subprocesses here; the worker also runs standalone via
  ``python -m repro.cluster.worker`` on real machines).
* **Content-affinity routing.**  Shards are routed by the matrix's
  :meth:`~repro.formats.csr.CSRMatrix.content_key` under rendezvous
  (highest-random-weight) hashing: the same matrix always lands on the
  same host — whose translation cache then serves every later request for
  it — while distinct matrices spread evenly, and removing a host only
  remaps the keys that pointed at it (DGL's partition-affinity routing,
  with rendezvous instead of a static partition book).
* **Host-failure recovery.**  A host is declared dead on a connection
  error (send/recv failure — a killed host is detected the moment its
  socket resets) *or* a heartbeat timeout (ping with no pong while idle).
  Its in-flight and queued shards fail over to the next live host in the
  key's rendezvous order; with no live host left, the head executes the
  shards in-parent, so a fully-degraded cluster still answers (a
  zero-host cluster runs everything in-parent by construction).
* **Assembly, not shared memory.**  Shard results return as transport
  payloads and are reassembled by :mod:`repro.cluster.assembly` with
  overlap/completeness checks — there is no shared output buffer to
  scatter into across machines.

Bit-exactness carries over from the single-host scheduler: workers run the
same whole-window shard reductions on a bit-identical translation, so the
cluster result equals the single-process one-shot result exactly, for any
shard size, any host count, and across mid-shard host deaths.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import queue
import socket
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.assembly import SddmmAssembly, SpmmAssembly
from repro.cluster.errors import HostDeadError, WorkerTaskError
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.transport import TransportError, recv_message, send_message
from repro.cluster.worker import run_worker
from repro.formats.blocked import BlockedVectorFormat
from repro.formats.csr import CSRMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.engine import (
    sddmm_a_window,
    sddmm_shard_values,
    spmm_shard_rows,
    window_aligned_ranges,
)
from repro.precision.types import Precision

#: Idle gap after which a host client probes its host with a ping.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.5
#: Pong wait before an idle host is declared dead.
DEFAULT_HEARTBEAT_TIMEOUT_S = 5.0
#: Result wait per shard task before the host is declared dead (generous:
#: an outright-killed host is detected immediately via the socket reset —
#: this bound only catches a wedged-but-connected host).
DEFAULT_TASK_TIMEOUT_S = 120.0
#: Default shards per request, as a multiple of the host count: fine enough
#: that a mid-request host death loses only a slice of the work.
SHARDS_PER_HOST = 2


def rendezvous_rank(content_key: str, host_ids) -> list[str]:
    """Host ids ordered by rendezvous (highest-random-weight) hash.

    Every (key, host) pair gets an independent pseudo-random score; the
    ranking is the descending score order.  Properties the cluster relies
    on: deterministic, uniform across hosts over many keys, and *minimally
    disruptive* — removing a host leaves the relative order of the
    survivors unchanged, so only the dead host's keys move.
    """
    scored = sorted(
        (
            hashlib.blake2b(
                f"{content_key}|{host_id}".encode(), digest_size=8
            ).digest(),
            host_id,
        )
        for host_id in host_ids
    )
    return [host_id for _, host_id in reversed(scored)]


class _Stop:
    """Inbox sentinel shutting a host client down."""


@dataclass
class _Task:
    """One shard task travelling through a host client."""

    header: dict
    arrays: list
    future: Future = field(default_factory=Future)


class _HostClient(threading.Thread):
    """Owns the connection to one worker host.

    One thread per host: it drains an inbox of shard tasks (send frame,
    wait for the reply frame), and pings the host when the inbox has been
    idle for a heartbeat interval.  Any transport failure — connect, send,
    recv, ping — declares the host dead: the flag flips, the in-flight
    task and everything still queued fail with :class:`HostDeadError`, and
    the submitting request re-routes them.
    """

    def __init__(
        self,
        host_id: str,
        address: tuple,
        metrics: ClusterMetrics,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        task_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
        connect_timeout_s: float = 10.0,
    ):
        super().__init__(name=f"repro-cluster-{host_id}", daemon=True)
        self.host_id = host_id
        self.address = (address[0], int(address[1]))
        self.metrics = metrics
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.task_timeout_s = task_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self._inbox: "queue.Queue[_Task | _Stop]" = queue.Queue()
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self.alive = False

    # -------------------------------------------------------------- lifecycle
    def connect(self) -> None:
        """Establish the host connection (called before the thread starts)."""
        sock = socket.create_connection(self.address, timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self.alive = True

    def submit(self, task: _Task) -> bool:
        """Enqueue a task; False when the host is already dead."""
        with self._lock:
            if not self.alive:
                return False
            self._inbox.put(task)
            return True

    def stop(self) -> None:
        """Ask the client thread to shut its host down and exit."""
        with self._lock:
            if self.alive:
                self._inbox.put(_Stop())
                return
        self._close_socket()

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _mark_dead(self, cause: BaseException | None) -> None:
        """Flip to dead and fail everything queued (idempotent)."""
        with self._lock:
            if not self.alive:
                return
            self.alive = False
            drained: list[_Task] = []
            while True:
                try:
                    item = self._inbox.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _Task):
                    drained.append(item)
        self._close_socket()
        self.metrics.record_host_death(self.host_id)
        for task in drained:
            self.metrics.record_task_failure(self.host_id)
            task.future.set_exception(
                HostDeadError(f"host {self.host_id} died before running the shard")
            )

    # -------------------------------------------------------------- mainloop
    def run(self) -> None:  # pragma: no branch - loop structure
        try:
            while self.alive:
                try:
                    item = self._inbox.get(timeout=self.heartbeat_interval_s)
                except queue.Empty:
                    self._heartbeat()
                    continue
                if isinstance(item, _Stop):
                    self._shutdown_host()
                    return
                self._run_task(item)
        except BaseException as exc:  # pragma: no cover - defensive backstop
            # Whatever escapes, the host must never look alive with a dead
            # client thread behind it: queued tasks would hang forever.
            self._mark_dead(exc)
            raise

    def _run_task(self, task: _Task) -> None:
        try:
            self._sock.settimeout(self.task_timeout_s)
            sent = send_message(self._sock, task.header, task.arrays)
            self.metrics.record_task_sent(self.host_id, sent)
            header, arrays, received = recv_message(self._sock)
        except Exception as exc:
            # Transport errors, timeouts, *and* anything a corrupt or
            # hostile reply frame raises while being parsed: the stream is
            # unusable either way, so the host is declared dead and the
            # shard fails over — never a silently-dead client thread with
            # the in-flight future unresolved.
            self.metrics.record_task_failure(self.host_id)
            task.future.set_exception(
                HostDeadError(f"host {self.host_id} died mid-shard: {exc}")
            )
            self._mark_dead(exc)
            return
        if header.get("type") == "error":
            # The *computation* failed on a live host: deterministic, so it
            # is propagated rather than retried elsewhere.
            self.metrics.record_task_failure(self.host_id)
            task.future.set_exception(
                WorkerTaskError(
                    f"shard failed on host {self.host_id}: {header.get('message')}\n"
                    f"{header.get('traceback', '')}"
                )
            )
            return
        self.metrics.record_task_completed(self.host_id, received, header.get("cache"))
        task.future.set_result((header, arrays))

    def _heartbeat(self) -> None:
        try:
            self._sock.settimeout(self.heartbeat_timeout_s)
            send_message(self._sock, {"type": "ping"})
            header, _, _ = recv_message(self._sock)
            if header.get("type") != "pong":
                raise TransportError(f"unexpected heartbeat reply {header.get('type')!r}")
        except Exception as exc:  # transport failure or unparseable pong
            self.metrics.record_heartbeat(self.host_id, ok=False)
            self._mark_dead(exc)
            return
        self.metrics.record_heartbeat(self.host_id, ok=True, cache=header.get("cache"))

    def _shutdown_host(self) -> None:
        try:
            self._sock.settimeout(self.heartbeat_timeout_s)
            send_message(self._sock, {"type": "shutdown"})
            recv_message(self._sock)  # the worker's "bye"
        except (TransportError, OSError):
            pass
        with self._lock:
            self.alive = False
        self._close_socket()


@dataclass
class HostState:
    """One registered worker host as the head sees it."""

    host_id: str
    address: tuple
    client: _HostClient
    #: The local subprocess backing the host (None for external addresses).
    process: "mp.process.BaseProcess | None" = None

    @property
    def alive(self) -> bool:
        """Whether the head still considers this host usable."""
        return self.client.alive


def spawn_local_host(mp_context, host_id: str) -> tuple["mp.process.BaseProcess", tuple]:
    """Start one loopback worker-host subprocess; returns (process, address).

    The worker binds a kernel-picked port and reports it through a pipe, so
    any number of hosts start without port coordination.
    """
    recv_conn, send_conn = mp_context.Pipe(duplex=False)
    process = mp_context.Process(
        target=run_worker,
        kwargs={"host": "127.0.0.1", "port": 0, "ready": send_conn},
        name=f"repro-cluster-worker-{host_id}",
        daemon=True,
    )
    process.start()
    send_conn.close()
    if not recv_conn.poll(30.0):
        process.terminate()
        raise RuntimeError(f"worker host {host_id} never reported its address")
    address = recv_conn.recv()
    recv_conn.close()
    return process, tuple(address)


class ClusterScheduler:
    """Head of a multi-host cluster; drop-in for :class:`ShardScheduler`.

    Parameters
    ----------
    hosts:
        Number of loopback worker-host subprocesses to spawn.  ``0`` runs
        every shard in-parent (the degenerate single-host cluster — no
        sockets, no subprocesses).
    addresses:
        Explicit ``(host, port)`` addresses of already-running worker
        hosts (``python -m repro.cluster.worker``); overrides ``hosts``.
    start_method:
        ``multiprocessing`` start method for spawned hosts (default:
        ``fork`` where available).
    heartbeat_interval_s / heartbeat_timeout_s / task_timeout_s:
        Failure-detector knobs (see :class:`_HostClient`).
    """

    def __init__(
        self,
        hosts: int = 1,
        addresses=None,
        start_method: str | None = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        task_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
    ):
        if addresses is None and int(hosts) < 0:
            raise ValueError("hosts must be >= 0")
        self.metrics = ClusterMetrics()
        #: Test hook: seconds every dispatched task asks the worker to sleep
        #: before executing (widens the kill-mid-shard window).
        self.inject_task_delay_s = 0.0
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._mp_context = mp.get_context(start_method) if start_method else mp.get_context()
        self.hosts: list[HostState] = []
        self._closed = False
        client_kwargs = {
            "heartbeat_interval_s": heartbeat_interval_s,
            "heartbeat_timeout_s": heartbeat_timeout_s,
            "task_timeout_s": task_timeout_s,
        }
        try:
            if addresses is not None:
                for i, address in enumerate(addresses):
                    self._register(f"host-{i}", tuple(address), None, client_kwargs)
            else:
                for i in range(int(hosts)):
                    host_id = f"host-{i}"
                    process, address = spawn_local_host(self._mp_context, host_id)
                    self._register(host_id, address, process, client_kwargs)
        except Exception:
            self.close()
            raise

    def _register(self, host_id, address, process, client_kwargs) -> None:
        client = _HostClient(host_id, address, self.metrics, **client_kwargs)
        client.connect()
        client.start()
        self.hosts.append(
            HostState(host_id=host_id, address=address, client=client, process=process)
        )

    # ------------------------------------------------------------- interface
    @property
    def workers(self) -> int:
        """Configured host count (1 for the in-parent degenerate cluster);
        the serving frontend reports this in result metadata."""
        return max(1, len(self.hosts))

    def live_hosts(self) -> list[HostState]:
        """Hosts currently considered usable."""
        return [h for h in self.hosts if h.alive]

    def affinity_host(self, content_key: str) -> HostState | None:
        """The live host that rendezvous routing assigns ``content_key``."""
        by_id = {h.host_id: h for h in self.hosts if h.alive}
        for host_id in rendezvous_rank(content_key, list(by_id)):
            return by_id[host_id]
        return None

    def stats_snapshot(self) -> dict:
        """Lifetime counters (superset of the single-host scheduler's)."""
        snap = self.metrics.snapshot()
        # The single-host scheduler's vocabulary, so dashboards and the
        # serving snapshot read both backends uniformly.
        snap["retries"] = snap["shards_failed_over"]
        snap["fallbacks"] = snap["inline_fallbacks"]
        return snap

    def close(self) -> None:
        """Shut every host down (idempotent): graceful shutdown frame,
        bounded join, then terminate whatever is left."""
        self._closed = True
        for state in self.hosts:
            state.client.stop()
        for state in self.hosts:
            state.client.join(timeout=10.0)
        for state in self.hosts:
            if state.process is not None:
                state.process.join(timeout=5.0)
                if state.process.is_alive():
                    state.process.terminate()
                    state.process.join(timeout=5.0)
                    if state.process.is_alive():  # pragma: no cover - last resort
                        state.process.kill()

    def __enter__(self) -> "ClusterScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- dispatch
    def _resolve_identity(self, fmt, csr, content_key):
        """The CSR payload and routing key for ``fmt``.

        The serving frontend passes the request's own CSR; direct callers
        may omit it, in which case the blocked format is converted back
        (an exact structural round-trip for these formats).
        """
        if csr is None:
            csr = fmt.to_csr()
        if content_key is None:
            content_key = csr.content_key()
        return csr, content_key

    def _default_target(self, num_blocks: int) -> int:
        shards = max(2, SHARDS_PER_HOST * max(1, len(self.hosts)))
        return max(1, -(-num_blocks // shards))

    def _dispatch(self, tasks: list[dict], content_key: str, inline_body) -> list:
        """Run shard ``tasks``, failing over dead hosts; returns per-task
        ``(header, arrays)`` payloads (inline results are synthesised by
        ``inline_body``).

        Routing: all tasks go to the key's first live host in rendezvous
        order; every re-dispatch moves the *unfinished* tasks to the next
        live host.  When the rank is exhausted (or the cluster has no hosts)
        the head runs the remainder in-parent.
        """
        self.metrics.record_request(len(tasks))
        results: dict[int, tuple] = {}
        pending = list(range(len(tasks)))
        first_attempt = True
        while pending:
            target = self.affinity_host(content_key)
            if target is None:
                break  # no live host: in-parent fallback below
            if not first_attempt:
                self.metrics.record_failover(len(pending))
            first_attempt = False
            submitted: list[tuple[int, _Task]] = []
            for index in pending:
                task = _Task(header=tasks[index]["header"], arrays=tasks[index]["arrays"])
                if not target.client.submit(task):
                    break  # died mid-submit: the rest re-route next round
                submitted.append((index, task))
            still_pending = pending[len(submitted) :]
            for index, task in submitted:
                try:
                    results[index] = task.future.result()
                except HostDeadError:
                    still_pending.append(index)
            pending = sorted(still_pending)
        if pending:
            self.metrics.record_inline_fallback(len(pending))
            for index in pending:
                results[index] = inline_body(tasks[index])
        return [results[i] for i in range(len(tasks))]

    def _task_header(self, op, fmt, csr, content_key, r, index, extra=None) -> dict:
        header = {
            "type": "task",
            "task_id": index,
            "op": op,
            "fmt": "sgt16" if isinstance(fmt, SGT16Matrix) else "mebcrs",
            "precision": extra.pop("precision"),
            "shape": list(csr.shape),
            "content_key": content_key,
            "lo": r.lo,
            "hi": r.hi,
            "w0": r.w0,
            "w1": r.w1,
        }
        if self.inject_task_delay_s:
            header["delay_s"] = float(self.inject_task_delay_s)
        if extra:
            header.update(extra)
        return header

    # ------------------------------------------------------------------ SpMM
    def run_spmm(
        self,
        fmt: BlockedVectorFormat,
        b_q: np.ndarray,
        precision: Precision,
        target_blocks: int | None = None,
        csr: CSRMatrix | None = None,
        content_key: str | None = None,
    ) -> np.ndarray:
        """``A @ B`` sharded across the cluster; bit-identical to one-shot.

        ``b_q`` must already be quantised float32 (the kernel entry points'
        convention); ``csr`` / ``content_key`` identify the request payload
        for routing (derived from ``fmt`` when omitted).
        """
        n_rows = fmt.shape[0]
        n_dense = b_q.shape[1]
        batch = fmt.blocks_as_arrays()
        offsets = batch.window_offsets
        if target_blocks is None:
            target_blocks = self._default_target(batch.num_blocks)
        ranges = window_aligned_ranges(offsets, target_blocks)
        if batch.num_blocks == 0 or n_dense == 0 or not ranges:
            return np.zeros((n_rows, n_dense), dtype=np.float32)
        csr, content_key = self._resolve_identity(fmt, csr, content_key)
        b_q = np.ascontiguousarray(b_q, dtype=np.float32)

        tasks = []
        for i, r in enumerate(ranges):
            header = self._task_header(
                "spmm", fmt, csr, content_key, r, i, {"precision": precision.value}
            )
            tasks.append(
                {"header": header, "arrays": [csr.indptr, csr.indices, csr.data, b_q], "range": r}
            )

        def inline(task: dict) -> tuple:
            r = task["range"]
            rows = spmm_shard_rows(
                batch.values[r.lo : r.hi],
                batch.columns[r.lo : r.hi],
                offsets[r.w0 : r.w1 + 1] - offsets[r.w0],
                b_q,
                precision,
            )
            return {"row0": r.w0 * fmt.vector_size}, [rows]

        assembly = SpmmAssembly(n_rows, n_dense, num_shards=len(ranges))
        for i, (header, arrays) in enumerate(self._dispatch(tasks, content_key, inline)):
            assembly.add(i, header["row0"], arrays[0])
        return assembly.result()

    # ----------------------------------------------------------------- SDDMM
    def run_sddmm(
        self,
        fmt: BlockedVectorFormat,
        a_q: np.ndarray,
        b_q: np.ndarray,
        precision: Precision,
        group: int,
        scale_by_mask: bool = False,
        target_blocks: int | None = None,
        csr: CSRMatrix | None = None,
        content_key: str | None = None,
    ) -> np.ndarray:
        """Sampled dense×dense sharded across the cluster (bit-identical).

        Returns the ``(num_nonzero_vectors, vector_size)`` value array in
        the layout of ``fmt.vector_values``.
        """
        v = fmt.vector_size
        k_dense = a_q.shape[1]
        batch = fmt.blocks_as_arrays(group)
        offsets = batch.window_offsets
        if target_blocks is None:
            target_blocks = self._default_target(batch.num_blocks)
        ranges = window_aligned_ranges(offsets, target_blocks)
        out_shape = fmt.vector_values.shape
        if batch.num_blocks == 0 or k_dense == 0 or not ranges:
            return np.zeros(out_shape, dtype=np.float32)
        csr, content_key = self._resolve_identity(fmt, csr, content_key)
        a_q = np.ascontiguousarray(a_q, dtype=np.float32)
        b_q = np.ascontiguousarray(b_q, dtype=np.float32)

        tasks = []
        for i, r in enumerate(ranges):
            header = self._task_header(
                "sddmm",
                fmt,
                csr,
                content_key,
                r,
                i,
                {
                    "precision": precision.value,
                    "group": int(group),
                    "scale_by_mask": bool(scale_by_mask),
                },
            )
            tasks.append(
                {
                    "header": header,
                    "arrays": [csr.indptr, csr.indices, csr.data, a_q, b_q],
                    "range": r,
                }
            )

        def inline(task: dict) -> tuple:
            r = task["range"]
            idx, vals = sddmm_shard_values(
                batch.values[r.lo : r.hi],
                batch.columns[r.lo : r.hi],
                batch.lane_valid[r.lo : r.hi],
                batch.vector_index[r.lo : r.hi],
                batch.window_of_block[r.lo : r.hi] - r.w0,
                sddmm_a_window(a_q, r.w0, r.w1, v),
                b_q,
                bool(scale_by_mask),
            )
            return {}, [np.asarray(idx, dtype=np.int64), vals]

        assembly = SddmmAssembly(out_shape, num_shards=len(ranges))
        for i, (_, arrays) in enumerate(self._dispatch(tasks, content_key, inline)):
            assembly.add(i, arrays[0], arrays[1])
        return assembly.result()
