"""Cluster head: host registry, affinity routing, fault-tolerant dispatch.

The :class:`ClusterScheduler` is the multi-host counterpart of the
single-host :class:`~repro.serve.scheduler.ShardScheduler` and presents the
same execution interface (``run_spmm`` / ``run_sddmm``, ``close``,
``stats_snapshot``), so the serving frontend plugs it in unchanged.  What
changes underneath:

* **Hosts, not processes.**  Each worker host is a separate process owning
  its own translation cache, reached over a long-lived TCP connection
  (loopback subprocesses here; the worker also runs standalone via
  ``python -m repro.cluster.worker`` on real machines).
* **Content-affinity routing.**  Shards are routed by the matrix's
  :meth:`~repro.formats.csr.CSRMatrix.content_key` under rendezvous
  (highest-random-weight) hashing: the same matrix always lands on the
  same host — whose translation cache then serves every later request for
  it — while distinct matrices spread evenly, and removing a host only
  remaps the keys that pointed at it (DGL's partition-affinity routing,
  with rendezvous instead of a static partition book).
* **Health state machine, not a dead flag.**  Every host moves through
  ``HEALTHY → SUSPECT → DEAD → RECOVERING → HEALTHY``
  (:mod:`repro.cluster.membership`).  A transient transport failure —
  connect refused, timeout, reset — makes the host SUSPECT and triggers
  bounded exponential-backoff reconnects under a configurable
  :class:`~repro.cluster.transport.RetryPolicy`; only when every attempt
  fails is the host DEAD and its pending shards re-dispatched down the
  key's rendezvous order (in-parent as the last resort).  A network blip
  no longer costs a host forever.  A shard in flight on a SUSPECT host is
  additionally **speculated**: after ``speculation_delay_s`` the head
  duplicates it onto the next host in rendezvous order and takes whichever
  result lands first — duplicate deliveries are suppressed at assembly.
* **Live membership.**  ``add_host`` / ``remove_host`` change the fleet at
  runtime (removal is drain-aware: in-flight shards finish before the
  socket closes), and a background :class:`MembershipProbe` re-dials DEAD
  hosts and readmits them through a cache warm-up ping — rendezvous
  routing then naturally restores the readmitted host's affinity keys.
* **Trusted data plane.**  Every dial — first connect, backoff re-dial,
  membership probe — clears the authenticated handshake (and TLS, when
  configured) before any frame flows, and every inbound payload buffer is
  CRC-verified by the transport.  A corrupted shard result surfaces as
  :class:`~repro.cluster.transport.FrameIntegrityError` and is handled
  exactly like a transport failure: the connection recycles, the shard
  re-sends, and the request completes bit-identically — corruption costs
  a retry, never wrong numerics.
* **Push/pin data plane (protocol v3).**  Operand bytes ship **once per
  (host, content key)**, not once per task: each host client keeps a
  ledger of what its worker has pinned (:mod:`repro.cluster.store`),
  pushes ledger-missing CSR bundles and dense panels in ``store_put``
  frames, and sends task frames that reference keys only.  A
  ``store_miss`` (eviction, cold restart) is handled like a transient
  transport failure — re-push, bounded, with task-embedded operands as
  the last resort — and legacy v2 peers keep working with embedded
  operands after version negotiation.
* **Assembly, not shared memory.**  Shard results return as transport
  payloads and are reassembled by :mod:`repro.cluster.assembly` with
  overlap/completeness checks — there is no shared output buffer to
  scatter into across machines.

Bit-exactness carries over from the single-host scheduler: workers run the
same whole-window shard reductions on a bit-identical translation, so the
cluster result equals the single-process one-shot result exactly, for any
shard size, any host count, and across mid-shard host deaths, reconnects
and speculative duplicates.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import queue
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.assembly import SddmmAssembly, SpmmAssembly
from repro.cluster.errors import HostDeadError, MembershipError, WorkerTaskError
from repro.cluster.membership import (
    ACCEPTING_STATES,
    DEFAULT_PROBE_INTERVAL_S,
    PREFERRED_STATES,
    HostHealth,
    MembershipProbe,
)
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.store import csr_store_key, operand_store_key
from repro.cluster.transport import (
    AuthenticationError,
    FrameIntegrityError,
    FrameTooLargeError,
    HandshakeError,
    RetryPolicy,
    TransportError,
    client_handshake,
    make_client_ssl_context,
    recv_message,
    send_message,
)
from repro.cluster.worker import run_worker
from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs, cached_sgt16
from repro.formats.csr import CSRMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.engine import (
    layer_shard_rows,
    layer_softmax_mapping,
    sddmm_a_window,
    sddmm_shard_values,
    spmm_shard_rows,
    window_aligned_ranges,
)
from repro.ops import segment_matmul, segment_softmax
from repro.precision.types import Precision
from repro.serve.program import LayerProgram, attention_csr, gather_edge_values

#: Idle gap after which a host client probes its host with a ping.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.5
#: Pong wait before an idle host is suspected.
DEFAULT_HEARTBEAT_TIMEOUT_S = 5.0
#: Result wait per shard task before the host is suspected (generous: an
#: outright-killed host is detected immediately via the socket reset — this
#: bound only catches a wedged-but-connected host).
DEFAULT_TASK_TIMEOUT_S = 120.0
#: In-flight wait on a SUSPECT host before the shard is speculatively
#: duplicated onto the next host in rendezvous order.
DEFAULT_SPECULATION_DELAY_S = 5.0
#: Poll granularity while watching a slow host for a SUSPECT transition.
_SPECULATION_POLL_S = 0.05
#: Default shards per request, as a multiple of the host count: fine enough
#: that a mid-request host death loses only a slice of the work.
SHARDS_PER_HOST = 2


def rendezvous_rank(content_key: str, host_ids) -> list[str]:
    """Host ids ordered by rendezvous (highest-random-weight) hash.

    Every (key, host) pair gets an independent pseudo-random score; the
    ranking is the descending score order.  Properties the cluster relies
    on: deterministic, uniform across hosts over many keys, and *minimally
    disruptive* — removing a host leaves the relative order of the
    survivors unchanged, so only the dead host's keys move (and a
    readmitted host gets exactly its old keys back).
    """
    scored = sorted(
        (
            hashlib.blake2b(
                f"{content_key}|{host_id}".encode(), digest_size=8
            ).digest(),
            host_id,
        )
        for host_id in host_ids
    )
    return [host_id for _, host_id in reversed(scored)]


class _Stop:
    """Inbox sentinel shutting a host client down."""


@dataclass
class _Task:
    """One shard task travelling through a host client.

    ``store_plan`` is the push/pin decomposition of ``arrays``: a list of
    ``(store_key, arrays)`` groups whose concatenation equals the embedded
    payload, with the CSR bundle first by convention.  On a v3 connection
    the client pushes ledger-missing groups once and sends the task frame
    with keys only; ``arrays`` stays attached as the embedded fallback
    (legacy peer, or a store that keeps missing under a tiny budget).
    """

    header: dict
    arrays: list
    store_plan: list = field(default_factory=list)
    future: Future = field(default_factory=Future)


def _describe_task(header: dict) -> str:
    """Post-mortem description of a task (what was on the wire at death)."""
    key = str(header.get("content_key") or "")[:12]
    return (
        f"{header.get('op')} shard {header.get('task_id')} "
        f"blocks [{header.get('lo')},{header.get('hi')}) of {key or '?'}"
    )


class _HostClient(threading.Thread):
    """Owns the connection to one worker host.

    One thread per host: it drains an inbox of shard tasks (send frame,
    wait for the reply frame), and pings the host when the inbox has been
    idle for a heartbeat interval.  A transport failure — connect, send,
    recv, ping — no longer kills the host outright: the client turns
    SUSPECT and re-dials under its :class:`RetryPolicy` (resending the
    in-flight task on the fresh connection); only when every backoff
    attempt fails does the host go DEAD — the in-flight task and
    everything still queued then fail with :class:`HostDeadError` and the
    submitting request re-routes them.
    """

    def __init__(
        self,
        host_id: str,
        address: tuple,
        metrics: ClusterMetrics,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        task_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
        connect_timeout_s: float = 10.0,
        retry_policy: RetryPolicy | None = None,
        fault_plan=None,
        max_frame_bytes: int | None = None,
        auth_token: str | None = None,
        ssl_context=None,
        initial_state: HostHealth = HostHealth.HEALTHY,
    ):
        super().__init__(name=f"repro-cluster-{host_id}", daemon=True)
        self.host_id = host_id
        self.address = (address[0], int(address[1]))
        self.metrics = metrics
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.task_timeout_s = task_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.max_frame_bytes = max_frame_bytes
        self.auth_token = auth_token
        self.ssl_context = ssl_context
        self._inbox: "queue.Queue[_Task | _Stop]" = queue.Queue()
        self._lock = threading.Lock()
        self._sock = None
        self.state = initial_state
        self.draining = False
        self._stopping = False
        self._wake = threading.Event()  # interrupts backoff sleeps on stop()
        self._in_flight = False
        self._reconnect_epoch = 0  # keys the jitter stream per SUSPECT episode
        #: Wire version negotiated on the current connection (v2 until the
        #: first handshake says otherwise; push/pin needs >= 3).
        self.wire_version = 2
        #: Store keys the head believes this worker has pinned.  It lives
        #: on the client, so a DEAD host's ledger dies with it (a restarted
        #: worker is never assumed warm) and readmission starts from the
        #: inventory the warm-up pong actually reports.  Only this client's
        #: thread mutates it (tasks and heartbeats are serialised there).
        self.ledger: set[str] = set()

    # ------------------------------------------------------------- liveness
    @property
    def alive(self) -> bool:
        """Whether the head still considers this host usable."""
        return self.state is not HostHealth.DEAD

    @property
    def accepting(self) -> bool:
        """Whether new shard submissions may be handed to this host."""
        return (
            not self._stopping
            and not self.draining
            and self.state in ACCEPTING_STATES
        )

    @property
    def idle(self) -> bool:
        """No queued and no in-flight task (the drain-complete signal)."""
        return self._inbox.empty() and not self._in_flight

    # -------------------------------------------------------------- lifecycle
    def _dial(self):
        """One connect attempt: TCP → TLS → fault wrapper → handshake.

        The fault wrapper sits *above* TLS so injected faults hit the
        plaintext frame stream exactly as they would a clear socket.  The
        connection is only returned once the handshake cleared; a reject
        is recorded (``auth_rejects`` / ``handshake_failures``) and
        re-raised — to the retry machinery it is one more failed dial.
        """
        if self.fault_plan is not None:
            self.fault_plan.check_connect(scope=self.host_id)
        sock = socket.create_connection(self.address, timeout=self.connect_timeout_s)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self.ssl_context is not None:
                sock = self.ssl_context.wrap_socket(sock)
            if self.fault_plan is not None:
                sock = self.fault_plan.wrap(sock, scope=self.host_id)
            sent, received, negotiated = client_handshake(sock, auth_token=self.auth_token)
        except BaseException as exc:
            try:
                sock.close()
            except OSError:
                pass
            if isinstance(exc, HandshakeError):
                self.metrics.record_handshake_failure(
                    self.host_id, auth=isinstance(exc, AuthenticationError)
                )
            raise
        self.metrics.record_transport_bytes(self.host_id, sent=sent, received=received)
        self.wire_version = negotiated
        return sock

    def connect(self) -> None:
        """Establish the host connection (called before the thread starts)."""
        self._sock = self._dial()

    def warmup(self) -> None:
        """Cache warm-up ping gating readmission (RECOVERING → HEALTHY).

        Verifies the host answers frames end to end, pulls its
        translation-cache counters into the head's metrics, and re-warms
        the pinned-store ledger from the inventory the pong reports — a
        worker that survived the outage keeps its pushed matrices without
        a re-push, while a restarted (cold) process reports an empty
        inventory and gets everything pushed again on first use.
        """
        self._sock.settimeout(self.heartbeat_timeout_s)
        sent = send_message(self._sock, {"type": "ping"}, version=self.wire_version)
        header, _, received = recv_message(
            self._sock, max_frame_bytes=self.max_frame_bytes
        )
        self.metrics.record_transport_bytes(self.host_id, sent=sent, received=received)
        if header.get("type") != "pong":
            raise TransportError(f"unexpected warm-up reply {header.get('type')!r}")
        self.ledger = set(header.get("store_keys") or ())
        self.metrics.record_heartbeat(
            self.host_id,
            ok=True,
            cache=header.get("cache"),
            security=header.get("security"),
            store=header.get("store"),
        )
        self._set_state(HostHealth.HEALTHY)

    def submit(self, task: _Task) -> bool:
        """Enqueue a task; False when the host cannot take it (dead,
        draining, or shutting down)."""
        with self._lock:
            if not self.accepting:
                return False
            self._inbox.put(task)
            return True

    def stop(self) -> None:
        """Ask the client thread to shut its host down and exit."""
        with self._lock:
            self._stopping = True
            self._wake.set()
            if self.state is not HostHealth.DEAD and self.is_alive():
                self._inbox.put(_Stop())
                return
        self._close_socket()

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                # shutdown(), not just close(): worker processes forked
                # after this connection was dialled inherit a dup of its
                # FD, and close() alone would leave the peer blocked in
                # recv on a stream only the dup keeps alive.  shutdown()
                # tears the TCP stream down regardless of dup FDs.
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------- state machine
    def _set_state(self, new: HostHealth) -> None:
        with self._lock:
            old = self.state
            if old is new:
                return
            self.state = new
        self.metrics.record_state_transition(self.host_id, old.value, new.value)

    def _mark_dead(
        self,
        cause: BaseException | None,
        in_flight: str | None = None,
        record: bool = True,
    ) -> None:
        """Flip to DEAD and fail everything queued (idempotent).

        ``record=False`` is the graceful-shutdown path: the state still
        moves (the machine stays truthful) but no host death or failure
        forensics are logged.
        """
        with self._lock:
            if self.state is HostHealth.DEAD:
                return
            old = self.state
            self.state = HostHealth.DEAD
            drained: list[_Task] = []
            while True:
                try:
                    item = self._inbox.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _Task):
                    drained.append(item)
        self._close_socket()
        self.metrics.record_state_transition(self.host_id, old.value, "dead")
        if record:
            self.metrics.record_host_death(self.host_id, cause=cause, in_flight=in_flight)
        for task in drained:
            self.metrics.record_task_failure(self.host_id)
            task.future.set_exception(
                HostDeadError(
                    f"host {self.host_id} died before running the shard: {cause}"
                )
            )

    def _recover_connection(self, cause: BaseException, in_flight: str | None = None) -> bool:
        """Transient transport failure: SUSPECT → bounded backoff re-dial.

        Returns True with a fresh connection up (state back to HEALTHY) —
        the caller resends whatever was on the wire — or False after the
        host went DEAD (RetryPolicy exhausted, or the client is stopping).
        """
        self._set_state(HostHealth.SUSPECT)
        self._close_socket()
        self._reconnect_epoch += 1
        key = f"{self.host_id}#{self._reconnect_epoch}"
        last: BaseException = cause
        for delay in self.retry_policy.delays(key):
            if self._wake.wait(delay) or self._stopping:
                break
            try:
                sock = self._dial()
            except (OSError, TransportError) as exc:
                # OSError covers refused/reset dials; TransportError covers
                # a failed handshake (auth reject, version mismatch) — the
                # dial already recorded which.  Either way: one attempt.
                self.metrics.record_reconnect_attempt(self.host_id, ok=False)
                last = exc
                continue
            self._sock = sock
            self.metrics.record_reconnect_attempt(self.host_id, ok=True)
            self._set_state(HostHealth.HEALTHY)
            return True
        self._mark_dead(last, in_flight=in_flight, record=not self._stopping)
        return False

    # -------------------------------------------------------------- mainloop
    def run(self) -> None:  # pragma: no branch - loop structure
        try:
            while not self._stopping and self.state is not HostHealth.DEAD:
                try:
                    item = self._inbox.get(timeout=self.heartbeat_interval_s)
                except queue.Empty:
                    self._heartbeat()
                    continue
                if isinstance(item, _Stop):
                    self._shutdown_host()
                    return
                self._run_task(item)
        except BaseException as exc:  # pragma: no cover - defensive backstop
            # Whatever escapes, the host must never look alive with a dead
            # client thread behind it: queued tasks would hang forever.
            self._mark_dead(exc)
            raise

    def _push_missing(self, plan: list) -> None:
        """Push every plan group the ledger says the worker lacks.

        One ``store_put`` + ``store_ack`` round trip per missing group;
        groups already in the ledger are counted as ``bytes_saved`` — the
        payload a v2 task frame would have embedded.  The ack's eviction
        list prunes the ledger immediately, so a tiny store budget costs
        a re-push on next use rather than a guaranteed ``store_miss``.
        Transport failures propagate to the caller's recovery path.
        """
        for key, arrays in plan:
            nbytes = sum(int(np.asarray(a).nbytes) for a in arrays)
            if key in self.ledger:
                self.metrics.record_store_hit(self.host_id, nbytes)
                continue
            sent = send_message(
                self._sock,
                {"type": "store_put", "store_key": key},
                arrays,
                version=self.wire_version,
            )
            self.metrics.record_store_put(self.host_id, sent)
            header, _, received = recv_message(
                self._sock, max_frame_bytes=self.max_frame_bytes
            )
            self.metrics.record_transport_bytes(
                self.host_id, received=received, frame_type="store_ack"
            )
            if header.get("type") != "store_ack":
                raise TransportError(f"unexpected store_put reply {header.get('type')!r}")
            self.ledger.add(key)
            for evicted in header.get("evicted", ()):
                self.ledger.discard(evicted)

    def _run_task(self, task: _Task) -> None:
        self._in_flight = True
        recoveries = 0
        miss_retries = 0
        # Embedded fallback once the wire is v2 or the store keeps missing
        # (a budget smaller than the working set): costs bytes, never the
        # request.
        use_store = bool(task.store_plan)
        try:
            while True:
                try:
                    self._sock.settimeout(self.task_timeout_s)
                    by_reference = use_store and self.wire_version >= 3
                    if by_reference:
                        self._push_missing(task.store_plan)
                        header = dict(task.header)
                        header["store_csr"] = task.store_plan[0][0]
                        header["store_operands"] = [
                            key for key, _ in task.store_plan[1:]
                        ]
                        sent = send_message(
                            self._sock, header, [], version=self.wire_version
                        )
                    else:
                        sent = send_message(
                            self._sock,
                            task.header,
                            task.arrays,
                            version=self.wire_version,
                        )
                    self.metrics.record_task_sent(self.host_id, sent)
                    header, arrays, received = recv_message(
                        self._sock, max_frame_bytes=self.max_frame_bytes
                    )
                except Exception as exc:
                    # Transport errors, timeouts, *and* anything a corrupt
                    # or hostile reply frame raises while being parsed: the
                    # stream is unusable either way.  The host turns
                    # SUSPECT and the connection is re-dialled with backoff
                    # — a blip costs one resend, not the host.
                    if isinstance(exc, FrameTooLargeError):
                        self.metrics.record_oversized_frame(self.host_id)
                    elif isinstance(exc, FrameIntegrityError):
                        # A shard result failed its payload CRC32: the
                        # corruption is detected *here*, before assembly —
                        # the retry below re-runs the shard, so the request
                        # still completes bit-identically.
                        self.metrics.record_integrity_failure(self.host_id)
                    # Bytes of the rejected frame still crossed the socket.
                    self.metrics.record_transport_bytes(
                        self.host_id, received=getattr(exc, "bytes_read", 0)
                    )
                    recoveries += 1
                    # Bounded reconnect-and-resend cycles *per task*: a
                    # persistent failure (say, a result frame that always
                    # exceeds max_frame_bytes) must not livelock the client
                    # in an eternally-successful reconnect loop.
                    in_budget = recoveries <= max(1, self.retry_policy.max_attempts)
                    if in_budget and self._recover_connection(
                        exc, in_flight=_describe_task(task.header)
                    ):
                        continue  # resend the task on the fresh connection
                    if not in_budget:
                        self._mark_dead(exc, in_flight=_describe_task(task.header))
                    self.metrics.record_task_failure(self.host_id)
                    task.future.set_exception(
                        HostDeadError(f"host {self.host_id} died mid-shard: {exc}")
                    )
                    return
                if header.get("type") == "store_miss":
                    # The worker no longer holds keys the ledger promised
                    # (evicted under budget pressure, or a restarted cold
                    # process).  Treated like a transient failure: drop the
                    # stale entries and re-push, bounded — past the budget
                    # the task ships with embedded operands instead, so a
                    # thrashing store can cost bytes but never the request.
                    self.metrics.record_store_miss(self.host_id)
                    self.metrics.record_transport_bytes(
                        self.host_id, received=received, frame_type="store_miss"
                    )
                    for key in header.get("missing", ()):
                        self.ledger.discard(key)
                    miss_retries += 1
                    if miss_retries > max(1, self.retry_policy.max_attempts):
                        use_store = False
                    continue
                if header.get("type") == "error":
                    # The *computation* failed on a live host: deterministic,
                    # so it is propagated rather than retried elsewhere.
                    self.metrics.record_task_failure(self.host_id)
                    task.future.set_exception(
                        WorkerTaskError(
                            f"shard failed on host {self.host_id}: {header.get('message')}\n"
                            f"{header.get('traceback', '')}"
                        )
                    )
                    return
                self.metrics.record_task_completed(
                    self.host_id,
                    received,
                    header.get("cache"),
                    security=header.get("security"),
                    store=header.get("store"),
                )
                task.future.set_result((header, arrays))
                return
        finally:
            self._in_flight = False

    def _heartbeat(self) -> None:
        if self._sock is None:  # pragma: no cover - defensive
            return
        try:
            self._sock.settimeout(self.heartbeat_timeout_s)
            sent = send_message(self._sock, {"type": "ping"}, version=self.wire_version)
            self.metrics.record_transport_bytes(self.host_id, sent=sent)
            header, _, received = recv_message(
                self._sock, max_frame_bytes=self.max_frame_bytes
            )
            self.metrics.record_transport_bytes(self.host_id, received=received)
            if header.get("type") != "pong":
                raise TransportError(f"unexpected heartbeat reply {header.get('type')!r}")
        except Exception as exc:  # transport failure or unparseable pong
            if isinstance(exc, FrameIntegrityError):
                self.metrics.record_integrity_failure(self.host_id)
            self.metrics.record_transport_bytes(
                self.host_id, received=getattr(exc, "bytes_read", 0)
            )
            self.metrics.record_heartbeat(self.host_id, ok=False)
            self._recover_connection(exc)
            return
        # The pong's key inventory is ground truth for the ledger: a worker
        # that restarted behind the same address (cold store) stops looking
        # warm at the next idle beat instead of at the next store_miss.
        self.ledger = set(header.get("store_keys") or ())
        self.metrics.record_heartbeat(
            self.host_id,
            ok=True,
            cache=header.get("cache"),
            security=header.get("security"),
            store=header.get("store"),
        )

    def _shutdown_host(self) -> None:
        try:
            self._sock.settimeout(self.heartbeat_timeout_s)
            send_message(self._sock, {"type": "shutdown"}, version=self.wire_version)
            recv_message(self._sock)  # the worker's "bye"
        except (TransportError, OSError):
            pass
        self._mark_dead(None, record=False)


@dataclass
class HostState:
    """One registered worker host as the head sees it."""

    host_id: str
    address: tuple
    client: _HostClient
    #: The local subprocess backing the host (None for external addresses).
    process: "mp.process.BaseProcess | None" = None
    #: Set once the host has been removed from the cluster (terminal).
    removed: bool = False

    @property
    def state(self) -> HostHealth:
        """Current health state (the readmission probe may swap the client
        behind this, so always read through it)."""
        return self.client.state

    @property
    def alive(self) -> bool:
        """Whether the head still considers this host usable."""
        return not self.removed and self.client.alive

    @property
    def accepting(self) -> bool:
        """Whether new shards may be routed here."""
        return not self.removed and self.client.accepting


def spawn_local_host(
    mp_context, host_id: str, **worker_kwargs
) -> tuple["mp.process.BaseProcess", tuple]:
    """Start one loopback worker-host subprocess; returns (process, address).

    The worker binds a kernel-picked port and reports it through a pipe, so
    any number of hosts start without port coordination.  Extra keyword
    arguments are passed to :func:`repro.cluster.worker.run_worker`.
    """
    recv_conn, send_conn = mp_context.Pipe(duplex=False)
    process = mp_context.Process(
        target=run_worker,
        kwargs={"host": "127.0.0.1", "port": 0, "ready": send_conn, **worker_kwargs},
        name=f"repro-cluster-worker-{host_id}",
        daemon=True,
    )
    process.start()
    send_conn.close()
    if not recv_conn.poll(30.0):
        process.terminate()
        raise RuntimeError(f"worker host {host_id} never reported its address")
    address = recv_conn.recv()
    recv_conn.close()
    return process, tuple(address)


class ClusterScheduler:
    """Head of a multi-host cluster; drop-in for :class:`ShardScheduler`.

    Parameters
    ----------
    hosts:
        Number of loopback worker-host subprocesses to spawn.  ``0`` runs
        every shard in-parent (the degenerate single-host cluster — no
        sockets, no subprocesses).
    addresses:
        Explicit ``(host, port)`` addresses of already-running worker
        hosts (``python -m repro.cluster.worker``); overrides ``hosts``.
    start_method:
        ``multiprocessing`` start method for spawned hosts (default:
        ``fork`` where available).
    heartbeat_interval_s / heartbeat_timeout_s / task_timeout_s:
        Failure-detector knobs (see :class:`_HostClient`).
    retry_policy:
        :class:`~repro.cluster.transport.RetryPolicy` for transient
        transport failures (default: 3 attempts, 50 ms base, 2 s cap).
        ``RetryPolicy(max_attempts=0)`` restores fail-fast host death.
    speculation_delay_s:
        In-flight wait on a SUSPECT host before the shard is duplicated
        onto the next host in rendezvous order (``None`` disables
        speculation; duplicate results are suppressed at assembly).
    probe_interval_s / auto_readmit:
        Readmission probe cadence; ``auto_readmit=False`` disables the
        probe thread entirely (DEAD hosts then stay dead until
        ``add_host`` re-registers them).
    fault_plan:
        Optional :class:`repro.testing.faults.FaultPlan` wrapped around
        every head-side connection (deterministic fault injection).
    worker_fault_plan:
        Optional :class:`~repro.testing.faults.FaultPlan` installed on the
        *worker* side of every spawned loopback host (scoped by host id) —
        the hook that lets tests corrupt result frames where they are
        written.  Requires the ``fork`` start method (the default).
    max_frame_bytes:
        Per-connection bound on declared frame sizes, enforced on both
        the head side and spawned loopback workers (see
        :class:`~repro.cluster.transport.FrameTooLargeError`).
    auth_token:
        Shared secret for the connection handshake: every head-side dial
        (task connections, heartbeat re-dials, membership probes — they
        all go through the same dial path) proves possession via an
        HMAC-SHA256 over the worker's challenge nonce.  Spawned loopback
        workers are configured with the same token; external workers must
        be started with ``--auth-token`` (or ``$REPRO_CLUSTER_AUTH_TOKEN``).
    tls_cert / tls_key / tls_ca:
        Enable TLS on every host connection.  The head verifies the
        worker certificate against ``tls_ca`` (or, for a self-signed
        deployment, ``tls_cert`` itself); when ``tls_ca`` is given the
        head also presents ``tls_cert``/``tls_key`` as its client
        certificate (mutual TLS).  Spawned loopback workers serve with
        the same certificate.
    store_bytes:
        Pin-store budget (bytes) for spawned loopback workers — the
        protocol v3 push/pin cache of matrix and operand bytes (default:
        the worker's own 256 MiB; external workers take ``--store-bytes``).
    worker_protocol_version:
        Cap on the wire version spawned workers advertise.  ``2`` makes
        every worker a legacy peer: the head negotiates down and embeds
        operand bytes in every task frame — what the mixed-version tests
        and the benchmark's v2 baseline use.
    """

    def __init__(
        self,
        hosts: int = 1,
        addresses=None,
        start_method: str | None = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        task_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
        retry_policy: RetryPolicy | None = None,
        speculation_delay_s: float | None = DEFAULT_SPECULATION_DELAY_S,
        probe_interval_s: float = DEFAULT_PROBE_INTERVAL_S,
        auto_readmit: bool = True,
        fault_plan=None,
        worker_fault_plan=None,
        max_frame_bytes: int | None = None,
        auth_token: str | None = None,
        tls_cert: str | None = None,
        tls_key: str | None = None,
        tls_ca: str | None = None,
        store_bytes: int | None = None,
        worker_protocol_version: int | None = None,
    ):
        if addresses is None and int(hosts) < 0:
            raise ValueError("hosts must be >= 0")
        self.metrics = ClusterMetrics()
        #: Test hook: seconds every dispatched task asks the worker to sleep
        #: before executing (widens the kill-mid-shard window).
        self.inject_task_delay_s = 0.0
        self.speculation_delay_s = (
            None if speculation_delay_s is None else float(speculation_delay_s)
        )
        self.max_frame_bytes = max_frame_bytes
        self.auth_token = auth_token
        ssl_context = None
        if tls_cert is not None or tls_ca is not None:
            ssl_context = make_client_ssl_context(
                tls_ca if tls_ca is not None else tls_cert,
                certfile=tls_cert if tls_ca is not None else None,
                keyfile=tls_key if tls_ca is not None else None,
            )
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._mp_context = mp.get_context(start_method) if start_method else mp.get_context()
        self.hosts: list[HostState] = []
        self._hosts_lock = threading.RLock()
        self._next_host_index = 0
        self._closed = False
        self._client_kwargs = {
            "heartbeat_interval_s": heartbeat_interval_s,
            "heartbeat_timeout_s": heartbeat_timeout_s,
            "task_timeout_s": task_timeout_s,
            "retry_policy": retry_policy if retry_policy is not None else RetryPolicy(),
            "fault_plan": fault_plan,
            "max_frame_bytes": max_frame_bytes,
            "auth_token": auth_token,
            "ssl_context": ssl_context,
        }
        self.membership: MembershipProbe | None = None
        try:
            if addresses is not None:
                for address in addresses:
                    self._register(self._new_host_id(), tuple(address), None)
            else:
                worker_kwargs: dict = {}
                if max_frame_bytes is not None:
                    worker_kwargs["max_frame_bytes"] = max_frame_bytes
                if auth_token is not None:
                    worker_kwargs["auth_token"] = auth_token
                if tls_cert is not None:
                    worker_kwargs["tls_cert"] = tls_cert
                    worker_kwargs["tls_key"] = tls_key
                    worker_kwargs["tls_ca"] = tls_ca
                if store_bytes is not None:
                    worker_kwargs["store_bytes"] = int(store_bytes)
                if worker_protocol_version is not None:
                    worker_kwargs["protocol_version"] = int(worker_protocol_version)
                for _ in range(int(hosts)):
                    host_id = self._new_host_id()
                    kwargs = dict(worker_kwargs)
                    if worker_fault_plan is not None:
                        kwargs["socket_wrapper"] = worker_fault_plan.socket_wrapper(
                            scope=host_id
                        )
                    process, address = spawn_local_host(
                        self._mp_context, host_id, **kwargs
                    )
                    self._register(host_id, address, process)
            if auto_readmit:
                self.membership = MembershipProbe(self, interval_s=probe_interval_s)
                self.membership.start()
        except Exception:
            self.close()
            raise

    def _new_host_id(self) -> str:
        with self._hosts_lock:
            while True:
                host_id = f"host-{self._next_host_index}"
                self._next_host_index += 1
                if all(h.host_id != host_id for h in self.hosts):
                    return host_id

    def _register(self, host_id, address, process) -> HostState:
        client = _HostClient(host_id, address, self.metrics, **self._client_kwargs)
        client.connect()
        client.start()
        state = HostState(host_id=host_id, address=address, client=client, process=process)
        with self._hosts_lock:
            self.hosts.append(state)
        return state

    # ------------------------------------------------------------- interface
    @property
    def workers(self) -> int:
        """Configured host count (1 for the in-parent degenerate cluster);
        the serving frontend reports this in result metadata."""
        return max(1, len(self.hosts))

    def _hosts_view(self) -> list[HostState]:
        with self._hosts_lock:
            return list(self.hosts)

    def live_hosts(self) -> list[HostState]:
        """Hosts currently considered usable."""
        return [h for h in self._hosts_view() if h.alive]

    def dead_hosts(self) -> list[HostState]:
        """Registered hosts currently DEAD (the readmission probe's input)."""
        return [
            h
            for h in self._hosts_view()
            if not h.removed and h.state is HostHealth.DEAD and not h.client._stopping
        ]

    def affinity_host(self, content_key: str, min_wire: int = 0) -> HostState | None:
        """The host that rendezvous routing assigns ``content_key``.

        Hosts in a preferred state (HEALTHY / RECOVERING) win; SUSPECT
        hosts are used only when no preferred host exists for the key, so
        routing does not flap on a sub-second blip but also does not pile
        new work onto a host that is busy re-dialling.  ``min_wire``
        restricts the pool to hosts whose negotiated connection speaks at
        least that protocol version — fused ``layer_task`` dispatch (and
        its failover) must never hand a v4 frame to a v3 peer.
        """
        candidates = {
            h.host_id: h
            for h in self._hosts_view()
            if h.accepting and h.client.wire_version >= min_wire
        }
        if not candidates:
            return None
        preferred = {
            host_id: h
            for host_id, h in candidates.items()
            if h.state in PREFERRED_STATES
        }
        pool = preferred or candidates
        for host_id in rendezvous_rank(content_key, list(pool)):
            return pool[host_id]
        return None  # pragma: no cover - pool is never empty here

    def _speculation_target(
        self, content_key: str, exclude: str, min_wire: int = 0
    ) -> HostState | None:
        """Backup host for a speculative duplicate (never the suspect one)."""
        pool = {
            h.host_id: h
            for h in self._hosts_view()
            if h.host_id != exclude
            and h.accepting
            and h.state in PREFERRED_STATES
            and h.client.wire_version >= min_wire
        }
        for host_id in rendezvous_rank(content_key, list(pool)):
            return pool[host_id]
        return None

    # ------------------------------------------------------------ membership
    def add_host(self, address, host_id: str | None = None) -> HostState:
        """Join an already-running worker host to the live cluster.

        Rendezvous routing immediately includes the new host: the keys it
        wins move over on their next request, everything else stays put.
        """
        if self._closed:
            raise MembershipError("cannot add a host to a closed cluster")
        with self._hosts_lock:
            if host_id is None:
                host_id = self._new_host_id()
            elif any(h.host_id == host_id for h in self.hosts):
                raise MembershipError(f"host id {host_id!r} is already registered")
        state = self._register(host_id, tuple(address), None)
        self.metrics.record_host_added(host_id)
        return state

    def remove_host(self, host_id: str, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Remove ``host_id`` from the cluster at runtime.

        With ``drain=True`` (default) the host stops receiving new shards
        immediately but its queued and in-flight shards finish before the
        socket closes; ``drain=False`` cuts it off at once (in-flight
        shards fail over like a host death, minus the death record).
        """
        with self._hosts_lock:
            state = next(
                (h for h in self.hosts if h.host_id == host_id and not h.removed), None
            )
            if state is None:
                raise MembershipError(f"unknown host {host_id!r}")
            state.client.draining = True  # affinity_host() skips it from now on
        if drain:
            deadline = time.monotonic() + timeout_s
            while (
                state.client.alive
                and not state.client.idle
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        state.client.stop()
        state.client.join(timeout=10.0)
        with self._hosts_lock:
            state.removed = True
            self.hosts = [h for h in self.hosts if h is not state]
        self._reap_process(state)
        self.metrics.record_host_removed(host_id)

    def try_readmit(self, state: HostState) -> bool:
        """Re-dial a DEAD host; readmit it behind a cache warm-up ping.

        Called by the :class:`MembershipProbe` (or directly by tests).  On
        success the host's client is replaced with a fresh connected one
        and the host serves its affinity keys again — its translation
        cache survived on the worker side, so repeat traffic hits warm.
        """
        if self._closed or state.removed or state.client.state is not HostHealth.DEAD:
            return False
        client = _HostClient(
            state.host_id,
            state.address,
            self.metrics,
            initial_state=HostHealth.RECOVERING,
            **self._client_kwargs,
        )
        try:
            client.connect()
        except (OSError, TransportError):
            # The probe's re-dial authenticates like any other connection;
            # a host answering with the wrong token stays DEAD.
            self.metrics.record_probe_dial(state.host_id, ok=False)
            return False
        self.metrics.record_probe_dial(state.host_id, ok=True)
        self.metrics.record_state_transition(state.host_id, "dead", "recovering")
        try:
            client.warmup()  # RECOVERING → HEALTHY, cache counters refreshed
        except Exception:
            client._close_socket()
            self.metrics.record_state_transition(state.host_id, "recovering", "dead")
            return False
        with self._hosts_lock:
            if self._closed or state.removed:
                client.stop()
                return False
            client.start()
            state.client = client
        self.metrics.record_readmission(state.host_id)
        return True

    # -------------------------------------------------------------- snapshot
    def stats_snapshot(self) -> dict:
        """Lifetime counters (superset of the single-host scheduler's)."""
        snap = self.metrics.snapshot()
        # The single-host scheduler's vocabulary, so dashboards and the
        # serving snapshot read both backends uniformly.
        snap["retries"] = snap["shards_failed_over"]
        snap["fallbacks"] = snap["inline_fallbacks"]
        return snap

    def close(self) -> None:
        """Shut every host down (idempotent): graceful shutdown frame,
        bounded join, then terminate whatever is left."""
        self._closed = True
        if self.membership is not None:
            self.membership.stop()
        hosts = self._hosts_view()
        for state in hosts:
            state.client.stop()
        for state in hosts:
            state.client.join(timeout=10.0)
        for state in hosts:
            self._reap_process(state)

    @staticmethod
    def _reap_process(state: HostState) -> None:
        if state.process is not None:
            state.process.join(timeout=5.0)
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=5.0)
                if state.process.is_alive():  # pragma: no cover - last resort
                    state.process.kill()

    def __enter__(self) -> "ClusterScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- dispatch
    def _resolve_identity(self, fmt, csr, content_key):
        """The CSR payload and routing key for ``fmt``.

        The serving frontend passes the request's own CSR; direct callers
        may omit it, in which case the blocked format is converted back
        (an exact structural round-trip for these formats).
        """
        if csr is None:
            csr = fmt.to_csr()
        if content_key is None:
            content_key = csr.content_key()
        return csr, content_key

    def _default_target(self, num_blocks: int) -> int:
        shards = max(2, SHARDS_PER_HOST * max(1, len(self.hosts)))
        return max(1, -(-num_blocks // shards))

    def _dispatch(
        self, tasks: list[dict], content_key: str, inline_body, min_wire: int = 0
    ) -> list[list]:
        """Run shard ``tasks``, failing over dead hosts; returns per-task
        **lists** of ``(header, arrays)`` payloads — normally one, two when
        a speculative duplicate also answered (assembly suppresses the
        extra copy); inline results are synthesised by ``inline_body``.

        Routing: all tasks go to the key's first preferred host in
        rendezvous order; every re-dispatch moves the *unfinished* tasks to
        the next live host.  When the rank is exhausted (or the cluster has
        no hosts) the head runs the remainder in-parent.
        """
        self.metrics.record_request(len(tasks))
        results: dict[int, list] = {}
        pending = list(range(len(tasks)))
        first_attempt = True
        while pending:
            target = self.affinity_host(content_key, min_wire=min_wire)
            if target is None:
                break  # no live host: in-parent fallback below
            if not first_attempt:
                self.metrics.record_failover(len(pending))
            first_attempt = False
            submitted: list[tuple[int, _Task]] = []
            for index in pending:
                task = _Task(
                    header=tasks[index]["header"],
                    arrays=tasks[index]["arrays"],
                    store_plan=tasks[index].get("store_plan", []),
                )
                if not target.client.submit(task):
                    break  # died mid-submit: the rest re-route next round
                submitted.append((index, task))
            still_pending = pending[len(submitted) :]
            for index, task in submitted:
                payloads = self._collect(
                    target, task, tasks[index], content_key, min_wire=min_wire
                )
                if payloads:
                    results[index] = payloads
                else:
                    still_pending.append(index)
            pending = sorted(still_pending)
        if pending:
            self.metrics.record_inline_fallback(len(pending))
            for index in pending:
                results[index] = [inline_body(tasks[index])]
        return [results[i] for i in range(len(tasks))]

    def _collect(
        self,
        target: HostState,
        task: _Task,
        source: dict,
        content_key: str,
        min_wire: int = 0,
    ) -> list[tuple]:
        """Await one shard's result, speculating if its host turns SUSPECT.

        After ``speculation_delay_s`` with the primary still unresolved on
        a SUSPECT host, the shard is duplicated once onto the next
        preferred host in rendezvous order; whichever copy answers first
        wins and *every* successful payload is returned (assembly
        suppresses the duplicate).  Returns an empty list when every copy
        failed with :class:`HostDeadError` (the caller re-dispatches) and
        raises when the shard computation itself failed — that error is
        deterministic, so retrying elsewhere would only reproduce it.
        """
        attempts: list[_Task] = [task]
        speculated = False
        spec_at = (
            None
            if self.speculation_delay_s is None
            else time.monotonic() + self.speculation_delay_s
        )
        while True:
            if any(t.future.done() and t.future.exception() is None for t in attempts):
                break  # got a result; a still-racing duplicate resolves unread
            open_futures = [t.future for t in attempts if not t.future.done()]
            if not open_futures:
                break  # every attempt failed
            if speculated or spec_at is None:
                futures_wait(open_futures, return_when=FIRST_COMPLETED)
                continue
            remaining = spec_at - time.monotonic()
            if remaining > 0:
                futures_wait(
                    open_futures, timeout=remaining, return_when=FIRST_COMPLETED
                )
                continue
            if target.client.state is HostHealth.SUSPECT:
                backup = self._speculation_target(
                    content_key, exclude=target.host_id, min_wire=min_wire
                )
                if backup is not None:
                    # The duplicate carries the same store plan: the backup
                    # host's client pushes whatever *its* ledger is missing
                    # before referencing keys — failover re-push for free.
                    duplicate = _Task(
                        header=source["header"],
                        arrays=source["arrays"],
                        store_plan=source.get("store_plan", []),
                    )
                    if backup.client.submit(duplicate):
                        attempts.append(duplicate)
                        self.metrics.record_speculation(backup.host_id)
                speculated = True  # one duplicate per shard, with or without a backup
            else:
                # Merely slow, not suspect: re-check shortly — the host may
                # turn SUSPECT while this shard is still on the wire.
                futures_wait(
                    open_futures,
                    timeout=_SPECULATION_POLL_S,
                    return_when=FIRST_COMPLETED,
                )
        payloads: list[tuple] = []
        fatal: BaseException | None = None
        for attempt in attempts:
            if not attempt.future.done():
                continue
            exc = attempt.future.exception()
            if exc is None:
                payloads.append(attempt.future.result())
            elif not isinstance(exc, HostDeadError):
                fatal = exc
        if payloads:
            return payloads
        if fatal is not None:
            raise fatal
        return []

    def _task_header(self, op, fmt, csr, content_key, r, index, extra=None) -> dict:
        header = {
            "type": "task",
            "task_id": index,
            "op": op,
            "fmt": "sgt16" if isinstance(fmt, SGT16Matrix) else "mebcrs",
            "precision": extra.pop("precision"),
            "shape": list(csr.shape),
            "content_key": content_key,
            "lo": r.lo,
            "hi": r.hi,
            "w0": r.w0,
            "w1": r.w1,
        }
        if self.inject_task_delay_s:
            header["delay_s"] = float(self.inject_task_delay_s)
        if extra:
            header.update(extra)
        return header

    # ------------------------------------------------------------------ SpMM
    def run_spmm(
        self,
        fmt: BlockedVectorFormat,
        b_q: np.ndarray,
        precision: Precision,
        target_blocks: int | None = None,
        csr: CSRMatrix | None = None,
        content_key: str | None = None,
    ) -> np.ndarray:
        """``A @ B`` sharded across the cluster; bit-identical to one-shot.

        ``b_q`` must already be quantised float32 (the kernel entry points'
        convention); ``csr`` / ``content_key`` identify the request payload
        for routing (derived from ``fmt`` when omitted).
        """
        n_rows = fmt.shape[0]
        n_dense = b_q.shape[1]
        batch = fmt.blocks_as_arrays()
        offsets = batch.window_offsets
        if target_blocks is None:
            target_blocks = self._default_target(batch.num_blocks)
        ranges = window_aligned_ranges(offsets, target_blocks)
        if batch.num_blocks == 0 or n_dense == 0 or not ranges:
            return np.zeros((n_rows, n_dense), dtype=np.float32)
        csr, content_key = self._resolve_identity(fmt, csr, content_key)
        b_q = np.ascontiguousarray(b_q, dtype=np.float32)

        # One store plan per request: the CSR bundle keyed by the routing
        # content key, the dense panel keyed by its own content hash —
        # every shard of this request references the same keys, so a host
        # receives the bytes once, not once per shard (and repeat requests
        # for a pinned matrix ship no matrix bytes at all).
        store_plan = [
            (csr_store_key(content_key), [csr.indptr, csr.indices, csr.data]),
            (operand_store_key(b_q), [b_q]),
        ]
        tasks = []
        for i, r in enumerate(ranges):
            header = self._task_header(
                "spmm", fmt, csr, content_key, r, i, {"precision": precision.value}
            )
            tasks.append(
                {
                    "header": header,
                    "arrays": [csr.indptr, csr.indices, csr.data, b_q],
                    "store_plan": store_plan,
                    "range": r,
                }
            )

        def inline(task: dict) -> tuple:
            r = task["range"]
            rows = spmm_shard_rows(
                batch.values[r.lo : r.hi],
                batch.columns[r.lo : r.hi],
                offsets[r.w0 : r.w1 + 1] - offsets[r.w0],
                b_q,
                precision,
            )
            return {"row0": r.w0 * fmt.vector_size}, [rows]

        assembly = SpmmAssembly(n_rows, n_dense, num_shards=len(ranges))
        for i, payloads in enumerate(self._dispatch(tasks, content_key, inline)):
            for header, arrays in payloads:
                assembly.add(i, header["row0"], arrays[0])
        self.metrics.record_duplicates_suppressed(assembly.duplicates_suppressed)
        return assembly.result()

    # ----------------------------------------------------------------- SDDMM
    def run_sddmm(
        self,
        fmt: BlockedVectorFormat,
        a_q: np.ndarray,
        b_q: np.ndarray,
        precision: Precision,
        group: int,
        scale_by_mask: bool = False,
        target_blocks: int | None = None,
        csr: CSRMatrix | None = None,
        content_key: str | None = None,
    ) -> np.ndarray:
        """Sampled dense×dense sharded across the cluster (bit-identical).

        Returns the ``(num_nonzero_vectors, vector_size)`` value array in
        the layout of ``fmt.vector_values``.
        """
        v = fmt.vector_size
        k_dense = a_q.shape[1]
        batch = fmt.blocks_as_arrays(group)
        offsets = batch.window_offsets
        if target_blocks is None:
            target_blocks = self._default_target(batch.num_blocks)
        ranges = window_aligned_ranges(offsets, target_blocks)
        out_shape = fmt.vector_values.shape
        if batch.num_blocks == 0 or k_dense == 0 or not ranges:
            return np.zeros(out_shape, dtype=np.float32)
        csr, content_key = self._resolve_identity(fmt, csr, content_key)
        a_q = np.ascontiguousarray(a_q, dtype=np.float32)
        b_q = np.ascontiguousarray(b_q, dtype=np.float32)

        store_plan = [
            (csr_store_key(content_key), [csr.indptr, csr.indices, csr.data]),
            (operand_store_key(a_q), [a_q]),
            (operand_store_key(b_q), [b_q]),
        ]
        tasks = []
        for i, r in enumerate(ranges):
            header = self._task_header(
                "sddmm",
                fmt,
                csr,
                content_key,
                r,
                i,
                {
                    "precision": precision.value,
                    "group": int(group),
                    "scale_by_mask": bool(scale_by_mask),
                },
            )
            tasks.append(
                {
                    "header": header,
                    "arrays": [csr.indptr, csr.indices, csr.data, a_q, b_q],
                    "store_plan": store_plan,
                    "range": r,
                }
            )

        def inline(task: dict) -> tuple:
            r = task["range"]
            idx, vals = sddmm_shard_values(
                batch.values[r.lo : r.hi],
                batch.columns[r.lo : r.hi],
                batch.lane_valid[r.lo : r.hi],
                batch.vector_index[r.lo : r.hi],
                batch.window_of_block[r.lo : r.hi] - r.w0,
                sddmm_a_window(a_q, r.w0, r.w1, v),
                b_q,
                bool(scale_by_mask),
            )
            return {}, [np.asarray(idx, dtype=np.int64), vals]

        assembly = SddmmAssembly(out_shape, num_shards=len(ranges))
        for i, payloads in enumerate(self._dispatch(tasks, content_key, inline)):
            for _, arrays in payloads:
                assembly.add(i, arrays[0], arrays[1])
        self.metrics.record_duplicates_suppressed(assembly.duplicates_suppressed)
        return assembly.result()

    # ------------------------------------------------------------ layer (v4)
    def run_layer(
        self,
        fmt: BlockedVectorFormat,
        indptr: np.ndarray,
        a_q: np.ndarray,
        b_q: np.ndarray,
        x_q: np.ndarray,
        precision: Precision,
        group: int,
        scale: float | None = None,
        scale_by_mask: bool = False,
        target_blocks: int | None = None,
        csr: CSRMatrix | None = None,
        content_key: str | None = None,
    ) -> tuple[np.ndarray, dict]:
        """One whole attention layer — SDDMM → scale → softmax → SpMM — in a
        single cluster round trip per shard (protocol v4).

        When the key's affinity host negotiated v4, every shard ships as
        one ``layer_task`` frame: the CSR bundle and all three dense panels
        ride the pinned store (so repeat layers over a pinned matrix ship
        no operand bytes at all), the worker runs the fused engine hook on
        its cached translation, and only the final dense rows come back —
        the SDDMM intermediate and the per-evaluation attention matrix
        never touch the wire.  A v3 affinity host gets the composed
        fallback instead: the same three-kernel pipeline driven from the
        head, bit-identical, just three round trips and the intermediate
        traffic the fused path exists to avoid.

        Returns ``(rows, stage_seconds)`` — the dense layer output plus
        the per-stage wall-clock split summed across shards, matching
        :meth:`repro.serve.scheduler.ShardScheduler.run_layer`.
        """
        v = fmt.vector_size
        n_rows = fmt.shape[0]
        n_dense = x_q.shape[1]
        pbatch = fmt.blocks_as_arrays()
        offsets = pbatch.window_offsets
        if target_blocks is None:
            target_blocks = self._default_target(pbatch.num_blocks)
        ranges = window_aligned_ranges(offsets, target_blocks)
        if pbatch.num_blocks == 0 or n_dense == 0 or not ranges:
            return np.zeros((n_rows, n_dense), dtype=np.float32), {}
        csr, content_key = self._resolve_identity(fmt, csr, content_key)
        a_q = np.ascontiguousarray(a_q, dtype=np.float32)
        b_q = np.ascontiguousarray(b_q, dtype=np.float32)
        x_q = np.ascontiguousarray(x_q, dtype=np.float32)

        target = self.affinity_host(content_key)
        if target is not None and target.client.wire_version < 4:
            return self._run_layer_composed(
                fmt,
                csr,
                content_key,
                a_q,
                b_q,
                x_q,
                precision,
                group,
                scale,
                scale_by_mask,
                target_blocks,
            )

        program = LayerProgram.attention_layer(scale=scale, scale_by_mask=scale_by_mask)
        store_plan = [
            (csr_store_key(content_key), [csr.indptr, csr.indices, csr.data]),
            (operand_store_key(a_q), [a_q]),
            (operand_store_key(b_q), [b_q]),
            (operand_store_key(x_q), [x_q]),
        ]
        tasks = []
        for i, r in enumerate(ranges):
            header = self._task_header(
                "layer",
                fmt,
                csr,
                content_key,
                r,
                i,
                {
                    "precision": precision.value,
                    "group": int(group),
                    "program": program.to_wire(),
                },
            )
            header["type"] = "layer_task"
            tasks.append(
                {
                    "header": header,
                    "arrays": [csr.indptr, csr.indices, csr.data, a_q, b_q, x_q],
                    "store_plan": store_plan,
                    "range": r,
                }
            )

        def inline(task: dict) -> tuple:
            # In-parent last resort when no v4 host survives: the same
            # fused hook the workers run, on the head's own translation.
            r = task["range"]
            sbatch = fmt.blocks_as_arrays(group)
            soffsets = sbatch.window_offsets
            slo, shi = int(soffsets[r.w0]), int(soffsets[r.w1])
            local_indptr, entry_vector, entry_lane, vec_lo, vec_count = (
                layer_softmax_mapping(
                    csr.indptr,
                    fmt.partition.nnz_vector_of_entry,
                    fmt.partition.window_ptr,
                    r.w0,
                    r.w1,
                    v,
                    n_rows,
                )
            )
            rows, timings = layer_shard_rows(
                sbatch.values[slo:shi],
                sbatch.columns[slo:shi],
                sbatch.lane_valid[slo:shi],
                sbatch.vector_index[slo:shi],
                sbatch.window_of_block[slo:shi] - r.w0,
                pbatch.columns[r.lo : r.hi],
                offsets[r.w0 : r.w1 + 1] - offsets[r.w0],
                pbatch.lane_valid[r.lo : r.hi],
                pbatch.vector_index[r.lo : r.hi],
                local_indptr,
                entry_vector,
                entry_lane,
                vec_lo,
                vec_count,
                sddmm_a_window(a_q, r.w0, r.w1, v),
                b_q,
                x_q,
                precision,
                scale,
                scale_by_mask,
            )
            return {"row0": r.w0 * v, "timings": timings}, [rows]

        assembly = SpmmAssembly(n_rows, n_dense, num_shards=len(ranges))
        stage_seconds: dict[str, float] = {}
        for i, payloads in enumerate(
            self._dispatch(tasks, content_key, inline, min_wire=4)
        ):
            for j, (header, arrays) in enumerate(payloads):
                assembly.add(i, header["row0"], arrays[0])
                if j == 0:  # don't double-count a speculative duplicate
                    for stage, s in (header.get("timings") or {}).items():
                        stage_seconds[stage] = stage_seconds.get(stage, 0.0) + float(s)
        self.metrics.record_duplicates_suppressed(assembly.duplicates_suppressed)
        # What the composed path would have moved over the wire and the
        # fused path did not: the SDDMM intermediate pulled back to the
        # head (float32 values + int64 vector indices) plus the attention
        # CSR bundle pushed out again for the SpMM — never pinnable, its
        # values change every layer evaluation.
        n_vec = int(fmt.vector_values.shape[0])
        intermediate_bytes = (
            n_vec * v * 4
            + n_vec * 8
            + int(csr.indptr.nbytes)
            + int(csr.indices.nbytes)
            + int(csr.nnz) * 4
        )
        self.metrics.record_layer_request(
            fused=True, round_trips_saved=2, operand_bytes_saved=intermediate_bytes
        )
        return assembly.result(), stage_seconds

    def _run_layer_composed(
        self,
        fmt: BlockedVectorFormat,
        csr: CSRMatrix,
        content_key: str,
        a_q: np.ndarray,
        b_q: np.ndarray,
        x_q: np.ndarray,
        precision: Precision,
        group: int,
        scale: float | None,
        scale_by_mask: bool,
        target_blocks: int | None,
    ) -> tuple[np.ndarray, dict]:
        """Per-kernel fallback for a v3 affinity host: the literal
        SDDMM → scale → softmax → SpMM composition, bit-identical to the
        fused path (the parity tests pin this), at per-kernel cost."""
        t0 = time.perf_counter()
        sddmm_vals = self.run_sddmm(
            fmt,
            a_q,
            b_q,
            precision,
            group,
            scale_by_mask=scale_by_mask,
            target_blocks=target_blocks,
            csr=csr,
            content_key=content_key,
        )
        t1 = time.perf_counter()
        logits = gather_edge_values(fmt.partition, csr.indptr, sddmm_vals)
        if scale is not None:
            logits = logits * np.float32(scale)
        attention = segment_softmax(logits, csr.indptr)
        acsr = attention_csr(csr, attention)
        translate = cached_sgt16 if isinstance(fmt, SGT16Matrix) else cached_mebcrs
        afmt = translate(acsr, precision, by_content=True)
        t2 = time.perf_counter()
        rows = self.run_spmm(
            afmt,
            x_q,
            precision,
            target_blocks=target_blocks,
            csr=acsr,
            content_key=acsr.content_key(),
        )
        t3 = time.perf_counter()
        self.metrics.record_layer_request(fused=False)
        return rows, {
            "sddmm_s": t1 - t0,
            "edge_softmax_s": t2 - t1,
            "spmm_s": t3 - t2,
        }

    # ------------------------------------------------------------ segmm (v4)
    def run_segment_matmul(
        self, data: np.ndarray, offsets: np.ndarray, weights
    ) -> np.ndarray:
        """Served :func:`repro.ops.segment_matmul` (RGCN-style typed linear).

        One ``segmm_task`` frame to the operand's affinity host when it
        speaks v4; otherwise (v3 peer, or no live host) the product runs
        in-parent.  Serving requires uniform-width weights — the wire
        format is one stacked ``(segments, K, N)`` panel.
        """
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float32))
        offsets = np.ascontiguousarray(np.asarray(offsets, dtype=np.int64))
        stack = np.ascontiguousarray(
            np.stack([np.asarray(w, dtype=np.float32) for w in weights])
        )
        self.metrics.record_segmm_request()
        routing_key = operand_store_key(data)
        tasks = [
            {
                "header": {"type": "segmm_task", "op": "segmm", "task_id": 0},
                "arrays": [data, offsets, stack],
            }
        ]

        def inline(task: dict) -> tuple:
            return {}, [
                np.ascontiguousarray(segment_matmul(data, offsets, list(stack)))
            ]

        payloads = self._dispatch(tasks, routing_key, inline, min_wire=4)
        return np.asarray(payloads[0][0][1][0], dtype=np.float32)
