"""Content-addressed matrix push/pin: ship operand bytes once per host.

Before this module, every shard task re-shipped the matrix's full CSR
buffers (indptr/indices/data) plus the dense operands over TCP, even
though affinity routing sends all shards of a matrix to the same host and
repeat traffic keeps hitting the same content key.  Protocol v3 replaces
that with the "place data once, reference it by name" shape of DGL's
distributed kvstore, layered over the trusted v2 frame protocol:

* The head keeps a **per-host ledger** of which content keys each worker
  has pinned (it lives on the host client, so a DEAD host's ledger dies
  with its client and a restarted worker is never assumed warm).
* On first use of a matrix the head sends one ``store_put`` frame — the
  CSR buffers plus their store key, CRC-checked like any v2 payload —
  and the worker pins the bytes in its :class:`PinnedStore`.
* Every subsequent task frame for that matrix carries **only the key**;
  dense operands are likewise content-keyed, so the N shards of one
  request ship the A/B panels to a host once, not N times.
* A worker that evicted (or never had) a key answers ``store_miss``,
  which the head treats like a transient transport failure: re-push and
  resend under the retry budget, falling back to a task with embedded
  operands as the last resort — a cold or undersized store costs bytes,
  never a failed request.

The :class:`PinnedStore` itself is a byte-budgeted LRU: entries are
evicted oldest-first once ``pinned_bytes`` exceeds the budget, except
entries whose **refcount** is held by an in-flight task — those are never
evicted, even if that leaves the store temporarily over budget.  Gauges
(pinned bytes, entry count, put/hit/miss/eviction counters) travel in
every status and pong frame, and the pong additionally reports the full
key inventory so a readmitted host's ledger can be re-warmed from what
the worker actually still holds.

Store keys carry a **version** component from day one
(``csr/<digest>@<version>``): the dynamic-graph roadmap item mutates
matrices in place, and bumping the version is how a delta-translated
matrix invalidates every pinned copy cluster-wide without a new digest
scheme.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

#: Default worker-side pin budget.  Sized so a handful of mid-sized serving
#: matrices stay resident; override per worker with ``--store-bytes`` /
#: ``ClusterScheduler(store_bytes=...)``.
DEFAULT_STORE_BYTES = 256 * 1024 * 1024


def make_store_key(kind: str, digest: str, version: int = 0) -> str:
    """Compose a store key: ``<kind>/<digest>@<version>``.

    ``kind`` namespaces CSR bundles apart from dense operand panels;
    ``version`` is the cluster-wide invalidation hook — re-keying a
    mutated matrix is a version bump, not a digest change, so delta
    updates (ROADMAP: dynamic graphs) can invalidate every host's pinned
    copy without rehashing content.
    """
    return f"{kind}/{digest}@{int(version)}"


def csr_store_key(content_key: str, version: int = 0) -> str:
    """Store key for a CSR bundle (indptr/indices/data) by content key."""
    return make_store_key("csr", content_key, version)


def operand_store_key(array: np.ndarray, version: int = 0) -> str:
    """Store key for one dense operand panel, by content.

    Hashing the panel once per request is how N shards on one host ship
    it once: every shard task references this key, and repeat requests
    with byte-identical operands deduplicate across requests too.
    """
    array = np.ascontiguousarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{array.dtype.str}:{array.shape}".encode())
    digest.update(memoryview(array).cast("B"))
    return make_store_key("op", digest.hexdigest(), version)


class StoreMissError(RuntimeError):
    """A task referenced store keys the worker does not hold.

    Carries the complete ``missing`` key list so the head re-pushes
    everything in one round trip.  On the wire this is the ``store_miss``
    reply frame; the head treats it like a transient transport failure
    (re-push under the retry budget, embedded-operand fallback as the
    last resort), so it never surfaces as a failed request.
    """

    def __init__(self, missing):
        self.missing = list(missing)
        super().__init__(f"store miss for {len(self.missing)} key(s): {self.missing}")


class _Entry:
    __slots__ = ("arrays", "nbytes", "refcount")

    def __init__(self, arrays: list[np.ndarray], nbytes: int):
        self.arrays = arrays
        self.nbytes = nbytes
        self.refcount = 0


class PinnedStore:
    """Byte-budgeted, refcounted LRU store of pinned ndarray bundles.

    One entry is one store key mapping to a list of arrays (three for a
    CSR bundle, one for a dense operand panel).  ``put`` pins a bundle and
    evicts least-recently-used zero-refcount entries until the store is
    back under ``budget_bytes``; entries whose refcount is held (an
    in-flight task is computing on them) are **skipped** by eviction, so
    the store may sit over budget while such a task runs — correctness
    over budget exactness.  A bundle larger than the whole budget is still
    pinned (everything else evictable goes); it simply becomes the next
    eviction candidate once unreferenced.

    Thread-safe: the worker host is single-threaded today, but the store
    is lock-guarded so nothing breaks when worker-side concurrency lands.
    """

    def __init__(self, budget_bytes: int = DEFAULT_STORE_BYTES):
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self.budget_bytes = int(budget_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._pinned_bytes = 0
        self._puts = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------- mutation
    def put(self, key: str, arrays) -> list[str]:
        """Pin ``arrays`` under ``key``; returns the keys evicted to fit.

        Re-putting an existing key replaces its bundle in place (keeping
        its refcount — an in-flight task holding the old arrays keeps
        them alive through its own references).
        """
        arrays = [np.ascontiguousarray(a) for a in arrays]
        nbytes = sum(a.nbytes for a in arrays)
        with self._lock:
            self._puts += 1
            entry = self._entries.get(key)
            if entry is not None:
                self._pinned_bytes += nbytes - entry.nbytes
                entry.arrays, entry.nbytes = arrays, nbytes
                self._entries.move_to_end(key)
            else:
                self._entries[key] = _Entry(arrays, nbytes)
                self._pinned_bytes += nbytes
            return self._evict_to_budget(keep=key)

    def _evict_to_budget(self, keep: str) -> list[str]:
        """Evict LRU zero-refcount entries (never ``keep``) until within
        budget; called under the lock."""
        evicted: list[str] = []
        while self._pinned_bytes > self.budget_bytes:
            victim = next(
                (
                    k
                    for k, e in self._entries.items()
                    if k != keep and e.refcount == 0
                ),
                None,
            )
            if victim is None:
                break  # everything left is in use (or the fresh key): stay over budget
            entry = self._entries.pop(victim)
            self._pinned_bytes -= entry.nbytes
            self._evictions += 1
            evicted.append(victim)
        return evicted

    def acquire(self, *keys: str) -> list[list[np.ndarray]]:
        """Resolve ``keys`` and take one refcount on each (MRU-touching).

        Raises :class:`StoreMissError` naming **every** missing key — and
        takes no refcounts — so the head re-pushes the full set in one
        round instead of discovering misses one by one.
        """
        with self._lock:
            missing = [k for k in keys if k not in self._entries]
            if missing:
                self._misses += len(missing)
                self._hits += len(keys) - len(missing)
                raise StoreMissError(missing)
            bundles = []
            for key in keys:
                entry = self._entries[key]
                entry.refcount += 1
                self._entries.move_to_end(key)
                bundles.append(entry.arrays)
            self._hits += len(keys)
            return bundles

    def release(self, *keys: str) -> None:
        """Drop one refcount per key (missing keys are ignored: the entry
        may have been replaced while the task ran)."""
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is not None and entry.refcount > 0:
                    entry.refcount -= 1

    # -------------------------------------------------------------- queries
    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Pinned keys, LRU-first — the inventory a pong frame reports so
        a readmitting head re-warms its ledger from ground truth."""
        with self._lock:
            return list(self._entries)

    @property
    def pinned_bytes(self) -> int:
        with self._lock:
            return self._pinned_bytes

    def stats(self) -> dict:
        """Gauges for status/pong frames (and the head's per-host view)."""
        with self._lock:
            return {
                "pinned_bytes": self._pinned_bytes,
                "budget_bytes": self.budget_bytes,
                "entries": len(self._entries),
                "puts": self._puts,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
