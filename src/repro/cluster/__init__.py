"""Multi-host sharded serving over a TCP shard transport.

This package scales :mod:`repro.serve` past one machine: a head process
(:class:`~repro.cluster.head.ClusterScheduler`) routes window-aligned
shards of each SpMM / SDDMM to worker hosts
(:mod:`repro.cluster.worker`) over a length-prefixed binary frame
protocol (:mod:`repro.cluster.transport` — raw ndarray buffers, no
pickle), reassembles the shard results without any shared output buffer
(:mod:`repro.cluster.assembly`), and treats failure as a normal operating
mode: hosts move through a HEALTHY → SUSPECT → DEAD → RECOVERING health
state machine (:mod:`repro.cluster.membership`), transient transport
failures are retried with bounded exponential backoff
(:class:`~repro.cluster.transport.RetryPolicy`), dead hosts' shards are
re-dispatched to survivors (in-parent as the last resort) and later
readmitted by a background probe, and the fleet itself is mutable at
runtime (``add_host`` / ``remove_host``).  The wire itself is trusted:
connections clear an authenticated HELLO/CHALLENGE handshake (optionally
under TLS) before any frame flows, and every payload buffer carries a
CRC32 verified on receipt — corruption surfaces as
:class:`~repro.cluster.transport.FrameIntegrityError` and is recovered
through the same retry machinery, never silently computed on.  Routing is
by matrix content key under rendezvous
hashing, so every host's own translation cache serves repeat requests
for "its" matrices — the multi-host analogue of the serving frontend's
content-keyed translation dedup.  On top of that, the v3 data plane
pushes matrix and operand bytes **once per (host, content key)**
(:mod:`repro.cluster.store`): workers pin pushed bundles in a
byte-budgeted :class:`~repro.cluster.store.PinnedStore` and repeat task
frames reference them by key — a ``store_miss`` after eviction or a cold
restart is recovered by re-pushing, never by failing the request.

The serving frontend consumes it as a backend::

    with repro.start_server(backend="cluster", hosts=2) as server:
        result = server.submit_spmm(matrix, b).result()

keeping bounded admission, deadlines, priorities, the crash guard and
``ServeMetrics`` unchanged; :class:`~repro.cluster.metrics.ClusterMetrics`
adds the distributed signals (per-host tasks, failovers, remote cache hit
rates, transport bytes).

In tests and benchmarks the hosts are loopback subprocesses; on real
machines run ``python -m repro.cluster.worker`` per host and hand the
addresses to :class:`ClusterScheduler`.
"""

from repro.cluster.assembly import SddmmAssembly, SpmmAssembly
from repro.cluster.errors import (
    AssemblyError,
    ClusterError,
    HostDeadError,
    MembershipError,
    WorkerTaskError,
)
from repro.cluster.head import ClusterScheduler, HostState, rendezvous_rank
from repro.cluster.membership import HostHealth, MembershipProbe
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.store import (
    PinnedStore,
    StoreMissError,
    csr_store_key,
    make_store_key,
    operand_store_key,
)
from repro.cluster.transport import (
    AuthenticationError,
    ConnectionClosedError,
    FrameIntegrityError,
    FrameTooLargeError,
    HandshakeError,
    RetryPolicy,
    TransportError,
    VersionMismatchError,
    client_handshake,
    make_client_ssl_context,
    make_server_ssl_context,
    recv_message,
    send_message,
    server_handshake,
)
from repro.cluster.worker import WorkerHost, run_worker

__all__ = [
    "AssemblyError",
    "AuthenticationError",
    "ClusterError",
    "ClusterMetrics",
    "ClusterScheduler",
    "ConnectionClosedError",
    "FrameIntegrityError",
    "FrameTooLargeError",
    "HandshakeError",
    "HostDeadError",
    "HostHealth",
    "HostState",
    "MembershipError",
    "MembershipProbe",
    "PinnedStore",
    "RetryPolicy",
    "SddmmAssembly",
    "SpmmAssembly",
    "StoreMissError",
    "TransportError",
    "VersionMismatchError",
    "WorkerHost",
    "WorkerTaskError",
    "client_handshake",
    "csr_store_key",
    "make_client_ssl_context",
    "make_server_ssl_context",
    "make_store_key",
    "operand_store_key",
    "recv_message",
    "rendezvous_rank",
    "run_worker",
    "send_message",
    "server_handshake",
]
