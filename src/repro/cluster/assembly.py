"""Shard-result reassembly in the head, without shared memory.

The single-host :class:`~repro.serve.scheduler.ShardScheduler` lets worker
processes scatter their shard results straight into one shared-memory
output buffer — a shortcut only available when every worker maps the same
address space.  Across hosts the results come back as payloads over the
transport, and the head must reassemble them: SpMM shards return the dense
row slice of their window range, SDDMM shards return ``(vector_index,
values)`` scatter pairs.

Correctness is enforced, not assumed: shards are window-aligned, so their
output regions are disjoint by construction — an overlapping write, a
duplicate shard id or a missing shard at :meth:`result` time means the
head's routing bookkeeping is broken and raises
:class:`~repro.cluster.errors.AssemblyError` rather than returning a
partially (or doubly) written output.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.errors import AssemblyError


class SpmmAssembly:
    """Reassembles per-shard dense row slices into the ``(n_rows, n_dense)``
    SpMM output.

    Rows not covered by any shard (trailing all-empty windows produce no
    shard) stay zero — exactly what the one-shot engine writes for them.
    """

    def __init__(self, n_rows: int, n_dense: int, num_shards: int):
        self.out = np.zeros((int(n_rows), int(n_dense)), dtype=np.float32)
        self.num_shards = int(num_shards)
        self._covered = np.zeros(int(n_rows), dtype=bool)
        self._seen: set[int] = set()

    def add(self, shard: int, row0: int, rows: np.ndarray) -> None:
        """Place shard ``shard``'s row block starting at matrix row ``row0``.

        The tail window's rows past ``n_rows`` are clipped, mirroring the
        shared-memory scatter.
        """
        shard = int(shard)
        if shard in self._seen:
            raise AssemblyError(f"shard {shard} delivered twice")
        if not 0 <= shard < self.num_shards:
            raise AssemblyError(f"unknown shard id {shard} (have {self.num_shards})")
        row0 = int(row0)
        if row0 < 0 or rows.ndim != 2 or rows.shape[1] != self.out.shape[1]:
            raise AssemblyError(
                f"shard {shard} returned rows of shape {rows.shape} at row {row0}"
            )
        stop = min(row0 + rows.shape[0], self.out.shape[0])
        if stop > row0:
            if self._covered[row0:stop].any():
                raise AssemblyError(f"shard {shard} overlaps already-covered rows")
            self.out[row0:stop] = rows[: stop - row0]
            self._covered[row0:stop] = True
        self._seen.add(shard)

    @property
    def missing_shards(self) -> int:
        """Shards dispatched but not yet delivered."""
        return self.num_shards - len(self._seen)

    def result(self) -> np.ndarray:
        """The assembled output; raises if any shard never arrived."""
        if self.missing_shards:
            raise AssemblyError(
                f"{self.missing_shards}/{self.num_shards} shards missing at assembly"
            )
        return self.out


class SddmmAssembly:
    """Reassembles per-shard ``(vector_index, values)`` scatter pairs into
    the ``fmt.vector_values``-shaped SDDMM output."""

    def __init__(self, out_shape: tuple, num_shards: int):
        self.out = np.zeros(out_shape, dtype=np.float32)
        self.num_shards = int(num_shards)
        self._covered = np.zeros(out_shape[0] if len(out_shape) else 0, dtype=bool)
        self._seen: set[int] = set()

    def add(self, shard: int, vector_index: np.ndarray, values: np.ndarray) -> None:
        """Scatter shard ``shard``'s sampled values to their nonzero vectors."""
        shard = int(shard)
        if shard in self._seen:
            raise AssemblyError(f"shard {shard} delivered twice")
        if not 0 <= shard < self.num_shards:
            raise AssemblyError(f"unknown shard id {shard} (have {self.num_shards})")
        idx = np.asarray(vector_index, dtype=np.int64)
        if idx.size:
            if idx.min() < 0 or idx.max() >= self.out.shape[0]:
                raise AssemblyError(f"shard {shard} scatter index out of range")
            if self._covered[idx].any():
                raise AssemblyError(f"shard {shard} overlaps already-covered vectors")
            self.out[idx] = values
            self._covered[idx] = True
        self._seen.add(shard)

    @property
    def missing_shards(self) -> int:
        """Shards dispatched but not yet delivered."""
        return self.num_shards - len(self._seen)

    def result(self) -> np.ndarray:
        """The assembled value array; raises if any shard never arrived."""
        if self.missing_shards:
            raise AssemblyError(
                f"{self.missing_shards}/{self.num_shards} shards missing at assembly"
            )
        return self.out
