"""Shard-result reassembly in the head, without shared memory.

The single-host :class:`~repro.serve.scheduler.ShardScheduler` lets worker
processes scatter their shard results straight into one shared-memory
output buffer — a shortcut only available when every worker maps the same
address space.  Across hosts the results come back as payloads over the
transport, and the head must reassemble them: SpMM shards return the dense
row slice of their window range, SDDMM shards return ``(vector_index,
values)`` scatter pairs.

Correctness is enforced, not assumed: shards are window-aligned, so their
output regions are disjoint by construction — an overlapping write from a
*different* shard or a missing shard at :meth:`result` time means the
head's routing bookkeeping is broken and raises
:class:`~repro.cluster.errors.AssemblyError` rather than returning a
partially (or doubly) written output.

One class of duplicates is legitimate: **speculative execution** hands the
same shard to two hosts, and both copies may answer.  Re-delivery of a
shard id is therefore *suppressed* (counted in ``duplicates_suppressed``,
not applied) when it is byte-identical to what the shard already placed —
which a speculative duplicate always is, because shard execution is
bit-deterministic — and rejected as corruption when it differs in
placement or content.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.errors import AssemblyError


class SpmmAssembly:
    """Reassembles per-shard dense row slices into the ``(n_rows, n_dense)``
    SpMM output.

    Rows not covered by any shard (trailing all-empty windows produce no
    shard) stay zero — exactly what the one-shot engine writes for them.
    """

    def __init__(self, n_rows: int, n_dense: int, num_shards: int):
        self.out = np.zeros((int(n_rows), int(n_dense)), dtype=np.float32)
        self.num_shards = int(num_shards)
        self._covered = np.zeros(int(n_rows), dtype=bool)
        self._placed: dict[int, tuple[int, tuple]] = {}  # shard -> (row0, shape)
        self.duplicates_suppressed = 0

    def add(self, shard: int, row0: int, rows: np.ndarray) -> None:
        """Place shard ``shard``'s row block starting at matrix row ``row0``.

        The tail window's rows past ``n_rows`` are clipped, mirroring the
        shared-memory scatter.  A byte-identical re-delivery (a speculative
        duplicate) is suppressed; a differing one raises.
        """
        shard = int(shard)
        if not 0 <= shard < self.num_shards:
            raise AssemblyError(f"unknown shard id {shard} (have {self.num_shards})")
        row0 = int(row0)
        if row0 < 0 or rows.ndim != 2 or rows.shape[1] != self.out.shape[1]:
            raise AssemblyError(
                f"shard {shard} returned rows of shape {rows.shape} at row {row0}"
            )
        stop = min(row0 + rows.shape[0], self.out.shape[0])
        placed = self._placed.get(shard)
        if placed is not None:
            if placed == (row0, rows.shape) and np.array_equal(
                self.out[row0:stop], rows[: stop - row0]
            ):
                self.duplicates_suppressed += 1
                return
            raise AssemblyError(
                f"shard {shard} delivered twice with differing placement or content"
            )
        if stop > row0:
            if self._covered[row0:stop].any():
                raise AssemblyError(f"shard {shard} overlaps already-covered rows")
            self.out[row0:stop] = rows[: stop - row0]
            self._covered[row0:stop] = True
        self._placed[shard] = (row0, rows.shape)

    @property
    def missing_shards(self) -> int:
        """Shards dispatched but not yet delivered."""
        return self.num_shards - len(self._placed)

    def result(self) -> np.ndarray:
        """The assembled output; raises if any shard never arrived."""
        if self.missing_shards:
            raise AssemblyError(
                f"{self.missing_shards}/{self.num_shards} shards missing at assembly"
            )
        return self.out


class SddmmAssembly:
    """Reassembles per-shard ``(vector_index, values)`` scatter pairs into
    the ``fmt.vector_values``-shaped SDDMM output."""

    def __init__(self, out_shape: tuple, num_shards: int):
        self.out = np.zeros(out_shape, dtype=np.float32)
        self.num_shards = int(num_shards)
        self._covered = np.zeros(out_shape[0] if len(out_shape) else 0, dtype=bool)
        self._placed: dict[int, np.ndarray] = {}  # shard -> scatter indices
        self.duplicates_suppressed = 0

    def add(self, shard: int, vector_index: np.ndarray, values: np.ndarray) -> None:
        """Scatter shard ``shard``'s sampled values to their nonzero vectors.

        A byte-identical re-delivery (a speculative duplicate) is
        suppressed; a differing one raises.
        """
        shard = int(shard)
        if not 0 <= shard < self.num_shards:
            raise AssemblyError(f"unknown shard id {shard} (have {self.num_shards})")
        idx = np.asarray(vector_index, dtype=np.int64)
        placed = self._placed.get(shard)
        if placed is not None:
            if np.array_equal(placed, idx) and np.array_equal(self.out[idx], values):
                self.duplicates_suppressed += 1
                return
            raise AssemblyError(
                f"shard {shard} delivered twice with differing placement or content"
            )
        if idx.size:
            if idx.min() < 0 or idx.max() >= self.out.shape[0]:
                raise AssemblyError(f"shard {shard} scatter index out of range")
            if self._covered[idx].any():
                raise AssemblyError(f"shard {shard} overlaps already-covered vectors")
            self.out[idx] = values
            self._covered[idx] = True
        self._placed[shard] = idx

    @property
    def missing_shards(self) -> int:
        """Shards dispatched but not yet delivered."""
        return self.num_shards - len(self._placed)

    def result(self) -> np.ndarray:
        """The assembled value array; raises if any shard never arrived."""
        if self.missing_shards:
            raise AssemblyError(
                f"{self.missing_shards}/{self.num_shards} shards missing at assembly"
            )
        return self.out
