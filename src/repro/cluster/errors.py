"""Cluster failure taxonomy.

The cluster layer distinguishes the failures the head must *recover from*
(a host died — re-dispatch its shards to survivors) from the failures it
must *propagate* (the shard computation itself raised — deterministic, so
retrying elsewhere reproduces it) and the failures that indicate a head
bug (shard results that do not reassemble into a complete output).

Everything derives from :class:`ClusterError`, which derives from the
serving layer's :class:`~repro.serve.errors.ServeError` so cluster-backed
servers keep the one failure taxonomy clients already dispatch on.

The *wire-level* failures live in :mod:`repro.cluster.transport` and are
re-exported here for one-stop imports: :class:`TransportError` (and its
``ConnectionClosedError`` / ``FrameTooLargeError`` refinements), plus the
trusted-data-plane taxonomy — :class:`FrameIntegrityError` (a payload
failed its CRC32), :class:`HandshakeError` and its
:class:`AuthenticationError` / :class:`VersionMismatchError` refinements.
These deliberately do **not** derive from :class:`ClusterError`: they are
peer-to-peer stream conditions the head converts into recovery actions
(retry, SUSPECT, failover) rather than failures a serving client sees.

:class:`~repro.cluster.store.StoreMissError` (re-exported from
:mod:`repro.cluster.store`) sits in the same recovery-not-failure camp: a
worker raising it answers the head with a ``store_miss`` frame, and the
head re-pushes the pinned bytes under its retry budget — it never
propagates to a serving client either.
"""

from __future__ import annotations

from repro.cluster.store import StoreMissError  # noqa: F401 - re-exported
from repro.cluster.transport import (  # noqa: F401 - re-exported taxonomy
    AuthenticationError,
    ConnectionClosedError,
    FrameIntegrityError,
    FrameTooLargeError,
    HandshakeError,
    TransportError,
    VersionMismatchError,
)
from repro.serve.errors import ServeError


class ClusterError(ServeError):
    """Base class for every cluster-layer failure."""


class HostDeadError(ClusterError):
    """The worker host died (connection error or heartbeat timeout).

    Raised internally per in-flight shard; the head catches it and
    re-dispatches the shard to a surviving host, so it only escapes to a
    caller when *no* host (and no in-parent fallback) could run the work.
    """


class WorkerTaskError(ClusterError):
    """The shard computation raised on the worker host.

    The remote traceback travels in the message.  Unlike
    :class:`HostDeadError` this is not retried on another host: shard
    execution is deterministic, so a computation error reproduces anywhere.
    """


class MembershipError(ClusterError):
    """A runtime membership operation was invalid.

    Raised by ``add_host`` / ``remove_host`` for duplicate or unknown host
    ids and for operations against a closed cluster — programming errors at
    the call site, never a recoverable runtime condition.
    """


class AssemblyError(ClusterError):
    """Shard results do not reassemble into a complete, disjoint output.

    Overlapping row ranges, duplicate shard ids or missing shards all mean
    the head's bookkeeping is broken — never silently return a partially
    written output.
    """
