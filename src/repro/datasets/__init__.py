"""Synthetic sparse-matrix and graph datasets.

The paper evaluates on ~500 SuiteSparse matrices plus 15 GNN graphs
(Table 4).  Neither collection ships with this repository (no network, no
multi-GB downloads), so this subpackage generates synthetic stand-ins that
cover the same structural regimes: very high sparsity (>99 %), power-law or
uniform nonzero distribution, average row lengths from ~3 to ~500, and row
counts spanning two orders of magnitude.

* :mod:`repro.datasets.generators` — individual matrix generators
  (Erdős–Rényi, power-law, banded/FEM-like, block-community).
* :mod:`repro.datasets.graphs` — named stand-ins for the Table 4 graph
  datasets with matching average row length (node counts are scaled down so
  the simulated kernels remain tractable; the scale is configurable).
* :mod:`repro.datasets.collection` — a SuiteSparse-like collection sampler
  used by the per-matrix benchmark sweeps.
"""

from repro.datasets.generators import (
    erdos_renyi_matrix,
    power_law_matrix,
    banded_matrix,
    block_community_matrix,
    random_rectangular_matrix,
)
from repro.datasets.graphs import GraphSpec, TABLE4_GRAPHS, make_graph, list_graphs
from repro.datasets.collection import MatrixCase, suitesparse_like_collection

__all__ = [
    "erdos_renyi_matrix",
    "power_law_matrix",
    "banded_matrix",
    "block_community_matrix",
    "random_rectangular_matrix",
    "GraphSpec",
    "TABLE4_GRAPHS",
    "make_graph",
    "list_graphs",
    "MatrixCase",
    "suitesparse_like_collection",
]
