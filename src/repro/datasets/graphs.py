"""Named stand-ins for the paper's graph datasets (Table 4).

The paper's GNN evaluation uses 15 real graphs ranging from GitHub (37.7 k
nodes, avg row length 16.3) to AmazonProducts (1.57 M nodes, 264 M edges).
Those datasets are not available offline, so each graph gets a synthetic
stand-in that preserves the property the kernels care about — the average
row length and the degree-distribution family — while the node count is
scaled down by a configurable factor so the simulated kernels and the
preprocessing remain tractable on a laptop-class machine.

``make_graph("reddit")`` therefore returns a matrix whose *per-window
nonzero-vector structure* behaves like Reddit's, even though it is much
smaller.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.generators import (
    block_community_matrix,
    erdos_renyi_matrix,
    power_law_matrix,
)
from repro.formats.csr import CSRMatrix
from repro.utils.random import default_rng


@dataclass(frozen=True)
class GraphSpec:
    """Description of one Table-4 graph and its synthetic stand-in."""

    name: str
    paper_vertices: int
    paper_edges: int
    avg_row_length: float
    family: str  # "power_law", "community", or "uniform"
    default_scale: float = 0.02

    def scaled_vertices(self, scale: float | None = None) -> int:
        """Node count of the stand-in at the given scale (min 1024)."""
        scale = self.default_scale if scale is None else scale
        return max(1024, int(round(self.paper_vertices * scale)))


#: The 15 graph datasets of Table 4, plus the extra graphs of Figure 1.
TABLE4_GRAPHS: dict[str, GraphSpec] = {
    "github": GraphSpec("GitHub", 37_700, 615_706, 16.33, "power_law", 0.2),
    "artist": GraphSpec("Artist", 50_515, 1_638_396, 32.4, "power_law", 0.15),
    "blog": GraphSpec("Blog", 88_784, 4_186_390, 47.2, "power_law", 0.08),
    "ell": GraphSpec("Ell", 203_769, 672_479, 3.3, "uniform", 0.05),
    "yelp": GraphSpec("Yelp", 716_847, 13_954_819, 19.46, "power_law", 0.01),
    "dd": GraphSpec("DD", 334_925, 1_686_092, 5.03, "community", 0.03),
    "reddit": GraphSpec("Reddit", 232_965, 114_848_857, 492.98, "power_law", 0.02),
    "amazon": GraphSpec("Amazon", 403_394, 9_068_096, 22.48, "community", 0.02),
    "amazon0505": GraphSpec("Amazon0505", 410_236, 4_878_874, 11.89, "community", 0.02),
    "comamazon": GraphSpec("Comamazon", 334_863, 1_851_744, 5.5, "community", 0.03),
    "yeast": GraphSpec("Yeast", 1_710_902, 5_347_448, 3.1, "uniform", 0.006),
    "ogbproducts": GraphSpec("OGBProducts", 2_449_029, 126_167_053, 51.52, "power_law", 0.004),
    "amazonproducts": GraphSpec("AmazonProducts", 1_569_960, 264_339_468, 128.37, "power_law", 0.004),
    "igb_small": GraphSpec("IGB-small", 1_000_000, 13_068_130, 13.06, "community", 0.008),
    "igb_medium": GraphSpec("IGB-medium", 10_000_000, 129_994_908, 12.99, "community", 0.001),
    # Figure 1 additionally reports IGB-large.
    "igb_large": GraphSpec("IGB-large", 100_000_000, 1_323_500_000, 13.2, "community", 0.0001),
}


def list_graphs() -> list[str]:
    """Keys accepted by :func:`make_graph`, in Table-4 order."""
    return list(TABLE4_GRAPHS)


def make_graph(
    name: str,
    scale: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> CSRMatrix:
    """Generate the synthetic stand-in adjacency matrix for ``name``.

    Parameters
    ----------
    name:
        One of :func:`list_graphs` (case-insensitive; hyphens allowed).
    scale:
        Fraction of the paper's node count to generate.  Defaults to a
        per-graph value chosen so the largest stand-ins stay around 10⁴ nodes
        and ~10⁶ edges.
    seed:
        RNG seed (defaults to a fixed per-graph seed for reproducibility).
    """
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    if key not in TABLE4_GRAPHS:
        raise KeyError(f"unknown graph {name!r}; available: {list_graphs()}")
    spec = TABLE4_GRAPHS[key]
    n = spec.scaled_vertices(scale)
    if seed is None:
        # Deterministic per-graph seed (``hash`` is randomised per process).
        seed = int.from_bytes(key.encode("utf-8"), "little") % (2**31)
    rng = default_rng(seed)
    if spec.family == "power_law":
        return power_law_matrix(n, avg_row_length=spec.avg_row_length, seed=rng)
    if spec.family == "community":
        communities = max(4, n // 512)
        return block_community_matrix(
            n, n_communities=communities, avg_row_length=spec.avg_row_length, seed=rng
        )
    return erdos_renyi_matrix(n, avg_row_length=spec.avg_row_length, seed=rng)


def graph_table(scale: float | None = None, seed: int | None = None) -> list[dict]:
    """Rows for the Table-4 reproduction: paper stats vs stand-in stats."""
    rows = []
    for key, spec in TABLE4_GRAPHS.items():
        if key == "igb_large":
            continue  # Figure-1 only; too large even scaled for routine table runs
        matrix = make_graph(key, scale=scale, seed=seed)
        rows.append(
            {
                "name": spec.name,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "paper_avg_row_length": spec.avg_row_length,
                "standin_vertices": matrix.n_rows,
                "standin_edges": matrix.nnz,
                "standin_avg_row_length": matrix.avg_row_length,
            }
        )
    return rows
