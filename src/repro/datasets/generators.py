"""Synthetic sparse-matrix generators.

All generators are deterministic given a seed and return
:class:`~repro.formats.csr.CSRMatrix` instances.  They are written with
vectorised NumPy (edge lists, not per-edge Python loops) so that matrices
with a few million nonzeros are generated in well under a second.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.utils.random import default_rng
from repro.utils.validation import check_positive_int


def _dedupe_edges(rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int], rng: np.random.Generator) -> CSRMatrix:
    """Build a CSR matrix from possibly-duplicated COO edges with random values."""
    if rows.size == 0:
        return CSRMatrix(
            indptr=np.zeros(shape[0] + 1, dtype=np.int64),
            indices=np.zeros(0, dtype=np.int32),
            data=np.zeros(0, dtype=np.float32),
            shape=shape,
        )
    key = rows.astype(np.int64) * shape[1] + cols.astype(np.int64)
    unique = np.unique(key)
    rows_u = (unique // shape[1]).astype(np.int64)
    cols_u = (unique % shape[1]).astype(np.int64)
    vals = rng.uniform(0.1, 1.0, size=unique.shape[0]).astype(np.float32)
    return CSRMatrix.from_coo(rows_u, cols_u, vals, shape)


def erdos_renyi_matrix(
    n_rows: int,
    n_cols: int | None = None,
    avg_row_length: float = 8.0,
    seed: int | np.random.Generator | None = None,
) -> CSRMatrix:
    """Uniformly random sparse matrix with a target average row length.

    Models the "evenly distributed" regime where load balance is easy; most
    SuiteSparse PDE matrices behave this way.
    """
    n_rows = check_positive_int(n_rows, "n_rows")
    n_cols = n_rows if n_cols is None else check_positive_int(n_cols, "n_cols")
    rng = default_rng(seed)
    nnz_target = int(round(avg_row_length * n_rows))
    nnz_target = max(1, min(nnz_target, n_rows * n_cols))
    rows = rng.integers(0, n_rows, size=nnz_target, dtype=np.int64)
    cols = rng.integers(0, n_cols, size=nnz_target, dtype=np.int64)
    return _dedupe_edges(rows, cols, (n_rows, n_cols), rng)


def power_law_matrix(
    n_rows: int,
    n_cols: int | None = None,
    avg_row_length: float = 16.0,
    exponent: float = 2.1,
    seed: int | np.random.Generator | None = None,
) -> CSRMatrix:
    """Power-law (scale-free) sparse matrix.

    Row lengths follow a truncated Zipf-like distribution and column targets
    are drawn preferentially, mimicking social / citation graphs (Reddit,
    Amazon, OGBProducts) whose skew drives the load-imbalance behaviour the
    baselines differ on.
    """
    n_rows = check_positive_int(n_rows, "n_rows")
    n_cols = n_rows if n_cols is None else check_positive_int(n_cols, "n_cols")
    rng = default_rng(seed)

    # Draw per-row degrees from a Pareto distribution scaled to the target mean.
    raw = rng.pareto(exponent - 1.0, size=n_rows) + 1.0
    degrees = raw / raw.mean() * avg_row_length
    degrees = np.clip(np.round(degrees).astype(np.int64), 0, n_cols)

    # Preferential column attachment: column popularity is itself power-law.
    col_weight = (rng.pareto(exponent - 1.0, size=n_cols) + 1.0)
    col_prob = col_weight / col_weight.sum()

    total = int(degrees.sum())
    if total == 0:
        degrees[rng.integers(0, n_rows)] = 1
        total = 1
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), degrees)
    cols = rng.choice(n_cols, size=total, p=col_prob)
    return _dedupe_edges(rows, cols, (n_rows, n_cols), rng)


def banded_matrix(
    n_rows: int,
    bandwidth: int = 5,
    avg_row_length: float | None = None,
    seed: int | np.random.Generator | None = None,
) -> CSRMatrix:
    """Banded / FEM-like matrix: nonzeros clustered near the diagonal.

    This regime produces long runs of nonzero vectors sharing columns, the
    favourable case for TC-block density.
    """
    n_rows = check_positive_int(n_rows, "n_rows")
    bandwidth = check_positive_int(bandwidth, "bandwidth")
    rng = default_rng(seed)
    per_row = int(round(avg_row_length)) if avg_row_length else min(2 * bandwidth + 1, n_rows)
    per_row = max(1, min(per_row, 2 * bandwidth + 1, n_rows))
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=(n_rows, per_row))
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), per_row)
    cols = (rows.reshape(n_rows, per_row) + offsets).reshape(-1)
    cols = np.clip(cols, 0, n_rows - 1)
    return _dedupe_edges(rows, cols, (n_rows, n_rows), rng)


def block_community_matrix(
    n_rows: int,
    n_communities: int = 16,
    avg_row_length: float = 20.0,
    p_in: float = 0.9,
    seed: int | np.random.Generator | None = None,
) -> CSRMatrix:
    """Planted-partition (stochastic block) adjacency matrix.

    Nodes are split into communities; a fraction ``p_in`` of each node's
    edges stay inside its community.  Produces the clustered sparsity of
    citation / product co-purchase graphs and is also used as the graph
    structure for the node-classification accuracy experiments.
    """
    n_rows = check_positive_int(n_rows, "n_rows")
    n_communities = check_positive_int(n_communities, "n_communities")
    if not 0.0 <= p_in <= 1.0:
        raise ValueError("p_in must be in [0, 1]")
    rng = default_rng(seed)
    community = rng.integers(0, n_communities, size=n_rows)
    degrees = np.maximum(1, rng.poisson(avg_row_length, size=n_rows)).astype(np.int64)
    total = int(degrees.sum())
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), degrees)
    # For each edge decide intra- vs inter-community, then draw a target.
    intra = rng.random(total) < p_in
    # Node ids sorted by community let us draw intra-community targets quickly.
    order = np.argsort(community, kind="stable")
    sorted_comm = community[order]
    comm_start = np.searchsorted(sorted_comm, np.arange(n_communities), side="left")
    comm_end = np.searchsorted(sorted_comm, np.arange(n_communities), side="right")
    edge_comm = community[rows]
    lo = comm_start[edge_comm]
    hi = np.maximum(comm_end[edge_comm], lo + 1)
    intra_targets = order[(lo + (rng.random(total) * (hi - lo)).astype(np.int64)).clip(0, n_rows - 1)]
    inter_targets = rng.integers(0, n_rows, size=total)
    cols = np.where(intra, intra_targets, inter_targets)
    return _dedupe_edges(rows, cols, (n_rows, n_rows), rng)


def random_rectangular_matrix(
    n_rows: int,
    n_cols: int,
    nnz: int,
    skew: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> CSRMatrix:
    """Rectangular sparse matrix with an exact-ish nonzero budget.

    ``skew`` interpolates between uniform rows (0) and strongly power-law
    rows (1); used by the SuiteSparse-like collection sampler.
    """
    n_rows = check_positive_int(n_rows, "n_rows")
    n_cols = check_positive_int(n_cols, "n_cols")
    nnz = check_positive_int(nnz, "nnz")
    if not 0.0 <= skew <= 1.0:
        raise ValueError("skew must be in [0, 1]")
    rng = default_rng(seed)
    if skew == 0.0:
        rows = rng.integers(0, n_rows, size=nnz, dtype=np.int64)
    else:
        weights = (rng.pareto(1.0 + 2.0 * (1.0 - skew) + 0.2, size=n_rows) + 1.0)
        prob = weights / weights.sum()
        rows = rng.choice(n_rows, size=nnz, p=prob)
    cols = rng.integers(0, n_cols, size=nnz, dtype=np.int64)
    return _dedupe_edges(rows, cols, (n_rows, n_cols), rng)
