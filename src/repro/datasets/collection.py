"""SuiteSparse-like matrix collection sampler.

The paper sweeps 515 matrices: ~500 SuiteSparse matrices with >10 k rows,
>10 k columns and >100 k nonzeros, plus the Table-4 graphs.  This module
generates a deterministic synthetic collection covering the same structural
spread (row counts, average row lengths, skew, pattern families) scaled so a
full sweep finishes in seconds.  Benchmarks iterate :func:`suitesparse_like_collection`
exactly the way the paper iterates its matrix list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.generators import (
    banded_matrix,
    block_community_matrix,
    erdos_renyi_matrix,
    power_law_matrix,
)
from repro.datasets.graphs import TABLE4_GRAPHS, make_graph
from repro.formats.csr import CSRMatrix
from repro.utils.random import default_rng


@dataclass
class MatrixCase:
    """One matrix of the evaluation collection."""

    name: str
    family: str
    matrix: CSRMatrix
    #: "small" (< 100k rows) or "large" (>= 100k rows), following Figure 11's
    #: grouping by one hundred thousand rows.  The stand-in collection applies
    #: the same rule to the scaled row counts' paper-equivalent group.
    size_group: str

    @property
    def nnz(self) -> int:
        """Nonzero count of the matrix."""
        return self.matrix.nnz


_FAMILIES = ("erdos_renyi", "power_law", "banded", "community")


def _make_family_matrix(family: str, n_rows: int, avg_row_length: float, seed) -> CSRMatrix:
    if family == "erdos_renyi":
        return erdos_renyi_matrix(n_rows, avg_row_length=avg_row_length, seed=seed)
    if family == "power_law":
        return power_law_matrix(n_rows, avg_row_length=avg_row_length, seed=seed)
    if family == "banded":
        bandwidth = max(2, int(avg_row_length))
        return banded_matrix(n_rows, bandwidth=bandwidth, avg_row_length=avg_row_length, seed=seed)
    if family == "community":
        return block_community_matrix(
            n_rows, n_communities=max(4, n_rows // 256), avg_row_length=avg_row_length, seed=seed
        )
    raise ValueError(f"unknown family {family!r}")


def suitesparse_like_collection(
    num_matrices: int = 60,
    seed: int | None = None,
    min_rows: int = 1_024,
    max_rows: int = 24_576,
    include_graphs: bool = True,
    graph_scale: float | None = None,
) -> list[MatrixCase]:
    """Generate the evaluation collection.

    Parameters
    ----------
    num_matrices:
        Number of synthetic SuiteSparse-like matrices (the paper uses 500;
        the default keeps sweeps fast — pass a larger value for a fuller
        sweep, the generators scale linearly).
    seed:
        Base RNG seed.
    min_rows, max_rows:
        Row-count range of the synthetic matrices (log-uniformly sampled).
    include_graphs:
        Also append the Table-4 graph stand-ins (the paper's "+15 graphs").
    graph_scale:
        Scale passed to :func:`repro.datasets.graphs.make_graph`.
    """
    if num_matrices < 0:
        raise ValueError("num_matrices must be non-negative")
    rng = default_rng(seed)
    cases: list[MatrixCase] = []
    # Average row lengths log-spaced over the paper's observed range (~3..500).
    row_length_choices = np.array([3.0, 5.0, 8.0, 12.0, 20.0, 32.0, 48.0, 80.0, 128.0, 256.0, 490.0])
    for i in range(num_matrices):
        family = _FAMILIES[i % len(_FAMILIES)]
        n_rows = int(np.exp(rng.uniform(np.log(min_rows), np.log(max_rows))))
        n_rows = max(min_rows, (n_rows // 16) * 16)
        avg_row_length = float(rng.choice(row_length_choices))
        avg_row_length = min(avg_row_length, n_rows / 2)
        matrix = _make_family_matrix(family, n_rows, avg_row_length, rng)
        # Paper groups by 100k rows; the synthetic collection maps the upper
        # half of its size range to the "large" group.
        size_group = "large" if n_rows >= (min_rows + max_rows) // 2 else "small"
        cases.append(
            MatrixCase(
                name=f"synth_{family}_{i:03d}_n{n_rows}",
                family=family,
                matrix=matrix,
                size_group=size_group,
            )
        )
    if include_graphs:
        for key, spec in TABLE4_GRAPHS.items():
            if key in ("igb_large",):
                continue
            matrix = make_graph(key, scale=graph_scale)
            size_group = "large" if spec.paper_vertices >= 100_000 else "small"
            cases.append(MatrixCase(name=spec.name, family="graph", matrix=matrix, size_group=size_group))
    return cases
