"""Precision types and quantisation helpers."""

from __future__ import annotations

from enum import Enum

import numpy as np


class Precision(str, Enum):
    """Numeric precisions supported by the simulated kernels.

    ``FP32`` is the CUDA-core baseline precision; ``TF32`` and ``FP16`` are
    the tensor-core precisions used by FlashSparse (Table 3 of the paper).
    """

    FP32 = "fp32"
    TF32 = "tf32"
    FP16 = "fp16"

    @property
    def input_bytes(self) -> int:
        """Bytes per input element stored in memory."""
        return element_bytes(self)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Number of explicit mantissa bits kept by TF32 (same as FP16).
_TF32_MANTISSA_BITS = 10
#: FP32 has 23 explicit mantissa bits; TF32 keeps the top 10.
_TF32_DROP_BITS = 23 - _TF32_MANTISSA_BITS


def quantize_tf32(x: np.ndarray) -> np.ndarray:
    """Quantize an array to TF32 (round-to-nearest-even on the mantissa).

    TF32 keeps the 8-bit FP32 exponent but only 10 mantissa bits.  The
    emulation reinterprets the FP32 bit pattern, rounds the mantissa to the
    nearest representable value and returns FP32 data holding TF32 values.
    """
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32).copy()
    # round-to-nearest-even on the dropped bits
    drop = np.uint32(_TF32_DROP_BITS)
    half = np.uint32(1 << (_TF32_DROP_BITS - 1))
    low = bits & np.uint32((1 << _TF32_DROP_BITS) - 1)
    bits &= np.uint32(~((1 << _TF32_DROP_BITS) - 1) & 0xFFFFFFFF)
    lsb = (bits >> drop) & np.uint32(1)
    round_up = (low > half) | ((low == half) & (lsb == 1))
    # Do not round NaN/Inf payloads.
    exponent = (bits >> np.uint32(23)) & np.uint32(0xFF)
    finite = exponent != np.uint32(0xFF)
    bits = np.where(round_up & finite, bits + (np.uint32(1) << drop), bits)
    return bits.view(np.float32).reshape(x32.shape)


def quantize(x: np.ndarray, precision: Precision | str) -> np.ndarray:
    """Quantize ``x`` to ``precision`` and return it as float32/float64 data.

    The returned dtype is ``float32`` for all precisions (the values are
    representable there), so downstream arithmetic happens at FP32 just like
    tensor-core accumulation.
    """
    precision = Precision(precision)
    if precision is Precision.FP32:
        return np.asarray(x, dtype=np.float32)
    if precision is Precision.FP16:
        with np.errstate(over="ignore"):
            return np.asarray(x, dtype=np.float16).astype(np.float32)
    if precision is Precision.TF32:
        return quantize_tf32(x)
    raise ValueError(f"unsupported precision {precision!r}")  # pragma: no cover


def dtype_for(precision: Precision | str) -> np.dtype:
    """Storage dtype for inputs at ``precision``."""
    precision = Precision(precision)
    if precision is Precision.FP16:
        return np.dtype(np.float16)
    # TF32 values are stored in 32-bit containers.
    return np.dtype(np.float32)


def element_bytes(precision: Precision | str) -> int:
    """Bytes per element as stored in global memory."""
    return int(dtype_for(precision).itemsize)


def accumulate_dtype(precision: Precision | str) -> np.dtype:
    """Accumulator dtype: FP32 for every tensor-core precision."""
    del precision
    return np.dtype(np.float32)
