"""Numeric precision emulation (FP32 / TF32 / FP16).

The paper evaluates FlashSparse in TF32 and FP16 against FP32 CUDA-core
baselines, and reports (Table 8) that GCN accuracy is preserved.  This
subpackage provides the rounding emulation those comparisons need:

* FP16 — round-trip through ``numpy.float16``;
* TF32 — truncation of the FP32 mantissa to 10 bits (TF32 keeps the FP32
  exponent range and an FP16-sized mantissa);
* FP32 — round-trip through ``numpy.float32``.
"""

from repro.precision.types import (
    Precision,
    quantize,
    quantize_tf32,
    dtype_for,
    element_bytes,
    accumulate_dtype,
)

__all__ = [
    "Precision",
    "quantize",
    "quantize_tf32",
    "dtype_for",
    "element_bytes",
    "accumulate_dtype",
]
