"""MMA / WMMA instruction semantics and register-fragment layouts.

FlashSparse's central trick — the swap-and-transpose MMA computation — is a
statement about how the two MMA operands and their per-thread register
fragments are laid out.  This module models that layer faithfully:

* the operand shapes used by FlashSparse and the baselines (Table 1 of the
  paper): ``m16n8k8`` / ``m16n8k16`` for FP16, ``m16n8k4`` / ``m16n8k8`` for
  TF32 on the MMA path, and ``m16n16k8`` TF32 on the WMMA path used by
  TC-GNN;
* the documented per-thread fragment ownership of each operand (PTX ISA,
  "Matrix Fragments for mma.m16n8k8" — reference [33] of the paper), exposed
  as :class:`FragmentLayout` objects so kernels and tests can scatter a tile
  to the 32 threads of a warp and gather it back;
* :func:`mma_execute`, which performs the actual multiply-accumulate with the
  proper precision emulation and charges one MMA invocation to a
  :class:`~repro.gpu.counters.CostCounter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.counters import CostCounter
from repro.gpu.device import WARP_SIZE
from repro.precision.types import Precision, quantize


@dataclass(frozen=True)
class MMAShape:
    """An MMA operand-shape / precision combination.

    ``m``, ``n`` and ``k`` follow the usual convention: the instruction
    computes ``D[m,n] = A[m,k] @ B[k,n] + C[m,n]``.
    """

    name: str
    m: int
    n: int
    k: int
    precision: str  # "fp16" or "tf32"
    api: str = "mma"  # "mma" or "wmma"

    @property
    def a_shape(self) -> tuple[int, int]:
        """Shape of the left operand."""
        return (self.m, self.k)

    @property
    def b_shape(self) -> tuple[int, int]:
        """Shape of the right operand."""
        return (self.k, self.n)

    @property
    def c_shape(self) -> tuple[int, int]:
        """Shape of the accumulator/output."""
        return (self.m, self.n)

    @property
    def flops(self) -> int:
        """FLOPs performed by one invocation (multiply + add)."""
        return 2 * self.m * self.n * self.k

    @property
    def element_bytes(self) -> int:
        """Bytes per input element (FP16: 2, TF32: 4)."""
        return 2 if self.precision == "fp16" else 4

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: FP16 MMA, ``m16n8k8`` — the shape FlashSparse uses for FP16 (Section 2.1).
MMA_M16N8K8_FP16 = MMAShape("m16n8k8", 16, 8, 8, "fp16")
#: FP16 MMA, ``m16n8k16`` — the larger FP16 shape listed in Table 1.
MMA_M16N8K16_FP16 = MMAShape("m16n8k16", 16, 8, 16, "fp16")
#: TF32 MMA, ``m16n8k4`` — the shape FlashSparse uses for TF32.
MMA_M16N8K4_TF32 = MMAShape("m16n8k4", 16, 8, 4, "tf32")
#: TF32 MMA, ``m16n8k8`` — the shape DTC-SpMM uses.
MMA_M16N8K8_TF32 = MMAShape("m16n8k8", 16, 8, 8, "tf32")
#: TF32 WMMA, ``m16n16k8`` — the shape TC-GNN uses.
WMMA_M16N16K8_TF32 = MMAShape("m16n16k8", 16, 16, 8, "tf32", api="wmma")

SUPPORTED_SHAPES: tuple[MMAShape, ...] = (
    MMA_M16N8K8_FP16,
    MMA_M16N8K16_FP16,
    MMA_M16N8K4_TF32,
    MMA_M16N8K8_TF32,
    WMMA_M16N16K8_TF32,
)


def get_shape(name: str, precision: str, api: str = "mma") -> MMAShape:
    """Look up a supported shape by ``name``/``precision``/``api``."""
    for shape in SUPPORTED_SHAPES:
        if shape.name == name and shape.precision == precision and shape.api == api:
            return shape
    raise KeyError(f"unsupported MMA shape: {name} {precision} ({api})")


def default_shape(precision: str, swap_and_transpose: bool = True) -> MMAShape:
    """The shape FlashSparse (or the 16x1 baseline) uses for a precision.

    FlashSparse uses ``m16n8k8`` for FP16 and ``m16n8k4`` for TF32; the 16x1
    TCU baselines use ``m16n8k8`` TF32 (DTC-SpMM) or ``m16n8k8``/``m16n8k16``
    FP16.  ``swap_and_transpose`` does not change the instruction, only how
    the operands are bound, so the same shapes are returned either way; the
    parameter exists for call-site clarity.
    """
    del swap_and_transpose
    if precision == "fp16":
        return MMA_M16N8K8_FP16
    if precision == "tf32":
        return MMA_M16N8K4_TF32
    raise ValueError(f"unsupported precision {precision!r}")


# --------------------------------------------------------------------------
# Fragment layouts
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class FragmentLayout:
    """Per-thread ownership map of one MMA operand within a warp.

    ``rows``/``cols`` have shape ``(32, elements_per_thread)``:
    ``rows[lane, e]`` / ``cols[lane, e]`` give the tile coordinates of the
    ``e``-th register element held by ``lane``.
    """

    operand: str  # "a", "b" or "c"
    shape: MMAShape
    rows: np.ndarray
    cols: np.ndarray

    @property
    def elements_per_thread(self) -> int:
        """Number of tile elements each thread holds in registers."""
        return int(self.rows.shape[1])

    def coordinates(self, lane: int) -> list[tuple[int, int]]:
        """The (row, col) coordinates owned by ``lane``."""
        return [
            (int(r), int(c)) for r, c in zip(self.rows[lane], self.cols[lane])
        ]


def _layout_from_rule(operand: str, shape: MMAShape, rows: list[list[int]], cols: list[list[int]]) -> FragmentLayout:
    return FragmentLayout(
        operand=operand,
        shape=shape,
        rows=np.asarray(rows, dtype=np.int64),
        cols=np.asarray(cols, dtype=np.int64),
    )


def _lanes() -> tuple[np.ndarray, np.ndarray]:
    lanes = np.arange(WARP_SIZE)
    group = lanes // 4  # "groupID" in the PTX documentation
    tig = lanes % 4  # "threadID_in_group"
    return group, tig


def layout_a(shape: MMAShape) -> FragmentLayout:
    """Fragment layout of the left (A) operand for ``shape``.

    Follows the PTX ISA fragment tables for the MMA shapes.  For the WMMA
    shape (whose fragment layout is opaque on real hardware) a canonical
    row-major distribution is used; the simulator only needs it to be a
    bijection, which tests verify.
    """
    group, tig = _lanes()
    rows: list[list[int]] = []
    cols: list[list[int]] = []
    if shape is MMA_M16N8K8_FP16 or (shape.name, shape.precision) == ("m16n8k8", "fp16"):
        for g, t in zip(group, tig):
            rows.append([g, g, g + 8, g + 8])
            cols.append([t * 2, t * 2 + 1, t * 2, t * 2 + 1])
    elif (shape.name, shape.precision) == ("m16n8k16", "fp16"):
        for g, t in zip(group, tig):
            rows.append([g, g, g + 8, g + 8, g, g, g + 8, g + 8])
            cols.append([t * 2, t * 2 + 1, t * 2, t * 2 + 1,
                         t * 2 + 8, t * 2 + 9, t * 2 + 8, t * 2 + 9])
    elif (shape.name, shape.precision) == ("m16n8k4", "tf32"):
        for g, t in zip(group, tig):
            rows.append([g, g + 8])
            cols.append([t, t])
    elif (shape.name, shape.precision) == ("m16n8k8", "tf32"):
        for g, t in zip(group, tig):
            rows.append([g, g + 8, g, g + 8])
            cols.append([t, t, t + 4, t + 4])
    elif shape.api == "wmma":
        return _canonical_layout("a", shape, shape.a_shape)
    else:  # pragma: no cover - defensive
        raise KeyError(f"no A-fragment layout for {shape}")
    return _layout_from_rule("a", shape, rows, cols)


def layout_b(shape: MMAShape) -> FragmentLayout:
    """Fragment layout of the right (B) operand for ``shape``."""
    group, tig = _lanes()
    rows: list[list[int]] = []
    cols: list[list[int]] = []
    if (shape.name, shape.precision) == ("m16n8k8", "fp16"):
        for g, t in zip(group, tig):
            rows.append([t * 2, t * 2 + 1])
            cols.append([g, g])
    elif (shape.name, shape.precision) == ("m16n8k16", "fp16"):
        for g, t in zip(group, tig):
            rows.append([t * 2, t * 2 + 1, t * 2 + 8, t * 2 + 9])
            cols.append([g, g, g, g])
    elif (shape.name, shape.precision) == ("m16n8k4", "tf32"):
        for g, t in zip(group, tig):
            rows.append([t])
            cols.append([g])
    elif (shape.name, shape.precision) == ("m16n8k8", "tf32"):
        for g, t in zip(group, tig):
            rows.append([t, t + 4])
            cols.append([g, g])
    elif shape.api == "wmma":
        return _canonical_layout("b", shape, shape.b_shape)
    else:  # pragma: no cover - defensive
        raise KeyError(f"no B-fragment layout for {shape}")
    return _layout_from_rule("b", shape, rows, cols)


def layout_c(shape: MMAShape) -> FragmentLayout:
    """Fragment layout of the accumulator (C/D) operand for ``shape``.

    For all ``m16n8`` MMA shapes the accumulator layout is identical: each
    thread holds four FP32 values c0..c3, with c0/c1 on row ``groupID`` and
    c2/c3 on row ``groupID + 8``, columns ``threadID_in_group*2 + {0,1}``.
    """
    group, tig = _lanes()
    if shape.api == "wmma":
        return _canonical_layout("c", shape, shape.c_shape)
    rows: list[list[int]] = []
    cols: list[list[int]] = []
    for g, t in zip(group, tig):
        rows.append([g, g, g + 8, g + 8])
        cols.append([t * 2, t * 2 + 1, t * 2, t * 2 + 1])
    return _layout_from_rule("c", shape, rows, cols)


def _canonical_layout(operand: str, shape: MMAShape, tile_shape: tuple[int, int]) -> FragmentLayout:
    """Row-major round-robin distribution used for the opaque WMMA fragments."""
    n_rows, n_cols = tile_shape
    total = n_rows * n_cols
    if total % WARP_SIZE != 0:
        raise ValueError(f"tile of {total} elements cannot be split over a warp")
    per_thread = total // WARP_SIZE
    flat = np.arange(total)
    rows = (flat // n_cols).reshape(WARP_SIZE, per_thread)
    cols = (flat % n_cols).reshape(WARP_SIZE, per_thread)
    return FragmentLayout(operand=operand, shape=shape, rows=rows, cols=cols)


def distribute_fragment(tile: np.ndarray, layout: FragmentLayout) -> np.ndarray:
    """Scatter a full tile into per-thread register fragments.

    Returns an array of shape ``(32, elements_per_thread)`` where row ``lane``
    holds the elements owned by that lane.
    """
    tile = np.asarray(tile)
    expected = {
        "a": layout.shape.a_shape,
        "b": layout.shape.b_shape,
        "c": layout.shape.c_shape,
    }[layout.operand]
    if tile.shape != expected:
        raise ValueError(
            f"operand {layout.operand!r} of {layout.shape.name} must have shape "
            f"{expected}, got {tile.shape}"
        )
    return tile[layout.rows, layout.cols]


def gather_fragment(fragments: np.ndarray, layout: FragmentLayout) -> np.ndarray:
    """Inverse of :func:`distribute_fragment`: rebuild the tile from fragments."""
    fragments = np.asarray(fragments)
    if fragments.shape != layout.rows.shape:
        raise ValueError(
            f"fragments must have shape {layout.rows.shape}, got {fragments.shape}"
        )
    expected = {
        "a": layout.shape.a_shape,
        "b": layout.shape.b_shape,
        "c": layout.shape.c_shape,
    }[layout.operand]
    tile = np.zeros(expected, dtype=fragments.dtype)
    tile[layout.rows, layout.cols] = fragments
    return tile


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------
def mma_execute(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
    shape: MMAShape,
    counter: CostCounter | None = None,
) -> np.ndarray:
    """Execute one MMA: ``D = quantize(A) @ quantize(B) + C``.

    Inputs are quantized to the shape's precision (FP16 or TF32); the
    multiply-accumulate itself happens in FP32, matching tensor-core
    behaviour (FP32 accumulators).  The optional ``counter`` is charged one
    MMA invocation.

    Parameters
    ----------
    a, b:
        Operands of shapes ``(m, k)`` and ``(k, n)``.
    c:
        Accumulator of shape ``(m, n)`` or ``None`` for a zero accumulator.
    shape:
        The instruction variant being issued.
    counter:
        Cost counter to charge; optional.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != shape.a_shape:
        raise ValueError(f"A must have shape {shape.a_shape}, got {a.shape}")
    if b.shape != shape.b_shape:
        raise ValueError(f"B must have shape {shape.b_shape}, got {b.shape}")
    if c is None:
        c = np.zeros(shape.c_shape, dtype=np.float32)
    else:
        c = np.asarray(c, dtype=np.float32)
        if c.shape != shape.c_shape:
            raise ValueError(f"C must have shape {shape.c_shape}, got {c.shape}")

    precision = Precision(shape.precision)
    a_q = quantize(a, precision).astype(np.float32)
    b_q = quantize(b, precision).astype(np.float32)
    d = (a_q @ b_q).astype(np.float32) + c

    if counter is not None:
        counter.add_mma(shape.name, shape.precision)
    return d


def mma_execute_swapped(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None,
    shape: MMAShape,
    counter: CostCounter | None = None,
) -> np.ndarray:
    """Execute ``A @ B`` through the swap-and-transpose identity.

    This is the FlashSparse Equation (1): ``A × B = (Bᵀ × Aᵀ)ᵀ``.  Here ``A``
    is the logical *sparse* tile of shape ``(n, k)`` (8×8 for FP16, 8×4 for
    TF32) and ``B`` is the logical *dense* tile of shape ``(k, m)``; the MMA
    is issued with ``Bᵀ`` as its left operand and ``Aᵀ`` as its right
    operand, and the result ``Cᵀ`` is transposed back before being returned.

    Parameters
    ----------
    a:
        The sparse TC block, logical shape ``(shape.n, shape.k)``.
    b:
        The dense TC block, logical shape ``(shape.k, shape.m)``.
    c:
        Logical accumulator of shape ``(shape.n, shape.m)`` or ``None``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (shape.n, shape.k):
        raise ValueError(
            f"swapped A (sparse tile) must have shape {(shape.n, shape.k)}, got {a.shape}"
        )
    if b.shape != (shape.k, shape.m):
        raise ValueError(
            f"swapped B (dense tile) must have shape {(shape.k, shape.m)}, got {b.shape}"
        )
    c_t = None if c is None else np.asarray(c, dtype=np.float32).T
    # left operand of the hardware MMA: B^T (m x k); right operand: A^T (k x n)
    d_t = mma_execute(b.T, a.T, c_t, shape, counter)
    return d_t.T
