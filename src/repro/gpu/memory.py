"""Transaction-level model of global-memory coalescing.

Section 3.3 of the paper argues about memory efficiency purely in terms of
how the per-thread accesses of a warp coalesce into 32/64/128-byte
transactions: the direct thread mapping needs sixteen 32-byte transactions
to load an 8×16 FP16 tile, while the memory-efficient mapping needs eight.
This module reproduces that reasoning.

The model follows the hardware behaviour at sector granularity: global
memory is divided into 32-byte sectors; a warp-wide access touches some set
of sectors; contiguous runs of touched sectors are merged into transactions
of at most 128 bytes.  The number of transactions and the bytes they move
(including wasted bytes for partially-used sectors) are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.gpu.device import MIN_TRANSACTION_BYTES, GPUSpec

#: Largest single memory transaction, in bytes.
MAX_TRANSACTION_BYTES = 128
#: Sector size used by the coalescer.
SECTOR_BYTES = MIN_TRANSACTION_BYTES


@dataclass(frozen=True)
class WarpAccess:
    """One warp-wide global-memory access.

    ``addresses`` holds the starting byte address accessed by each
    participating thread; ``access_bytes`` is the number of contiguous bytes
    each thread reads or writes (e.g. 2 for a lone FP16 element, 4 for an
    FP32 or a packed ``half2``).
    """

    addresses: tuple[int, ...]
    access_bytes: int

    def __post_init__(self) -> None:
        if self.access_bytes <= 0:
            raise ValueError("access_bytes must be positive")
        if any(a < 0 for a in self.addresses):
            raise ValueError("addresses must be non-negative")


@dataclass(frozen=True)
class TransactionReport:
    """Result of coalescing one warp-wide access."""

    #: Sizes (bytes) of the issued transactions, in address order.
    transaction_sizes: tuple[int, ...]
    #: Bytes the threads actually requested.
    useful_bytes: int

    @property
    def num_transactions(self) -> int:
        """Number of memory transactions issued."""
        return len(self.transaction_sizes)

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved over the memory bus (including waste)."""
        return int(sum(self.transaction_sizes))

    @property
    def wasted_bytes(self) -> int:
        """Bytes moved but not requested by any thread."""
        return self.bytes_moved - min(self.useful_bytes, self.bytes_moved)

    @property
    def efficiency(self) -> float:
        """Fraction of moved bytes that were useful (0 < efficiency <= 1)."""
        if self.bytes_moved == 0:
            return 1.0
        return min(self.useful_bytes, self.bytes_moved) / self.bytes_moved


class MemoryTransactionModel:
    """Sector-based coalescing model for warp-wide accesses."""

    def __init__(self, sector_bytes: int = SECTOR_BYTES, max_transaction_bytes: int = MAX_TRANSACTION_BYTES):
        if max_transaction_bytes % sector_bytes != 0:
            raise ValueError("max transaction size must be a multiple of the sector size")
        self.sector_bytes = int(sector_bytes)
        self.max_transaction_bytes = int(max_transaction_bytes)

    def coalesce(self, access: WarpAccess) -> TransactionReport:
        """Coalesce one warp-wide access into memory transactions."""
        if not access.addresses:
            return TransactionReport(transaction_sizes=(), useful_bytes=0)
        sectors: set[int] = set()
        useful = 0
        for addr in access.addresses:
            useful += access.access_bytes
            first = addr // self.sector_bytes
            last = (addr + access.access_bytes - 1) // self.sector_bytes
            sectors.update(range(first, last + 1))

        # Merge contiguous sectors into transactions of at most
        # ``max_transaction_bytes``.
        ordered = sorted(sectors)
        sizes: list[int] = []
        run_len = 0
        prev = None
        max_sectors = self.max_transaction_bytes // self.sector_bytes
        for sector in ordered:
            if prev is not None and sector == prev + 1 and run_len < max_sectors:
                run_len += 1
            else:
                if run_len:
                    sizes.append(run_len * self.sector_bytes)
                run_len = 1
            prev = sector
        if run_len:
            sizes.append(run_len * self.sector_bytes)
        return TransactionReport(transaction_sizes=tuple(sizes), useful_bytes=useful)

    def coalesce_many(self, accesses: Iterable[WarpAccess]) -> TransactionReport:
        """Coalesce a sequence of warp-wide accesses issued back to back.

        Each access is coalesced independently (the hardware does not merge
        transactions across separate load instructions).
        """
        sizes: list[int] = []
        useful = 0
        for access in accesses:
            report = self.coalesce(access)
            sizes.extend(report.transaction_sizes)
            useful += report.useful_bytes
        return TransactionReport(transaction_sizes=tuple(sizes), useful_bytes=useful)


_DEFAULT_MODEL = MemoryTransactionModel()


def simulate_warp_load(addresses: Sequence[int], access_bytes: int) -> TransactionReport:
    """Convenience wrapper: coalesce one warp-wide load with the default model."""
    return _DEFAULT_MODEL.coalesce(WarpAccess(tuple(int(a) for a in addresses), int(access_bytes)))


def transactions_for_tile_load(
    row_indices: Sequence[int],
    row_bytes: int,
    row_stride_bytes: int,
    base_address: int = 0,
) -> TransactionReport:
    """Transactions needed to load whole rows of a row-major matrix.

    This helper models a warp loading ``len(row_indices)`` row segments of
    ``row_bytes`` contiguous bytes each, where row ``i`` of the source matrix
    starts at ``base_address + i * row_stride_bytes``.  It is used for
    loading TC block B rows gathered by the sparse column indices, where the
    rows themselves are contiguous but scattered with large strides.
    """
    accesses = []
    for r in row_indices:
        start = base_address + int(r) * row_stride_bytes
        # Model each row segment as consecutive 4-byte thread accesses, the
        # widest per-thread access pattern the kernels use.
        step = 4 if row_bytes % 4 == 0 else 2
        addrs = tuple(range(start, start + row_bytes, step))
        accesses.append(WarpAccess(addresses=addrs, access_bytes=step))
    return _DEFAULT_MODEL.coalesce_many(accesses)


def addresses_for_elements(
    rows: np.ndarray,
    cols: np.ndarray,
    row_stride_bytes: int,
    element_bytes: int,
    base_address: int = 0,
) -> np.ndarray:
    """Byte addresses of matrix elements at (rows, cols) in row-major storage."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    return base_address + rows * row_stride_bytes + cols * element_bytes


# ---------------------------------------------------------------------------
# Device memory budgets
# ---------------------------------------------------------------------------

#: Default fraction of the memory left after operands that an op's streaming
#: intermediates may occupy.  Deliberately conservative: a serving process
#: co-hosts several in-flight requests plus the translation cache.
DEFAULT_WORKSPACE_FRACTION = 0.25


@dataclass(frozen=True)
class MemoryBudget:
    """Workspace budget carved out of a device's global memory.

    ``capacity_bytes`` is the device capacity (``GPUSpec.memory_bytes``),
    ``resident_bytes`` the memory pinned by an op's operands and outputs
    (dense matrices, translated sparse format), and ``workspace_fraction``
    the share of the remainder the op's streaming intermediates may use.
    The serving planner sizes ``max_intermediate_bytes`` from
    :attr:`workspace_bytes` instead of asking the caller for a byte budget.
    """

    capacity_bytes: int
    resident_bytes: int
    workspace_fraction: float = DEFAULT_WORKSPACE_FRACTION

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.resident_bytes < 0:
            raise ValueError("resident_bytes must be non-negative")
        if not 0.0 < self.workspace_fraction <= 1.0:
            raise ValueError("workspace_fraction must be in (0, 1]")

    @property
    def free_bytes(self) -> int:
        """Capacity left after the resident operands (never negative)."""
        return max(0, self.capacity_bytes - self.resident_bytes)

    @property
    def workspace_bytes(self) -> int:
        """Bytes the op's streaming intermediates may occupy."""
        return int(self.free_bytes * self.workspace_fraction)

    @property
    def fits(self) -> bool:
        """Whether the resident set alone fits on the device at all."""
        return self.resident_bytes <= self.capacity_bytes


def derive_budget(
    spec: GPUSpec,
    resident_bytes: int,
    workspace_fraction: float = DEFAULT_WORKSPACE_FRACTION,
) -> MemoryBudget:
    """The :class:`MemoryBudget` of running an op with ``resident_bytes``
    of operands on ``spec``.

    Raises ``ValueError`` when the spec does not declare a memory capacity
    (``memory_bytes == 0``) — callers that tolerate unknown capacity should
    check first and fall back to an explicit byte budget.
    """
    if spec.memory_bytes <= 0:
        raise ValueError(
            f"device {spec.name!r} declares no memory capacity; "
            "pass an explicit byte budget instead"
        )
    return MemoryBudget(
        capacity_bytes=int(spec.memory_bytes),
        resident_bytes=int(resident_bytes),
        workspace_fraction=workspace_fraction,
    )
