"""Device descriptions for the simulated GPUs.

The performance model (:mod:`repro.perfmodel`) converts counted kernel costs
(MMA invocations, CUDA-core FMAs, memory transactions) into estimated kernel
times using the peak rates recorded here.  The two devices mirror the paper's
experimental platforms (Section 4): an NVIDIA H100 PCIe and a GeForce
RTX 4090.

The numbers are public datasheet-level figures; they act as *model
constants*, not as claims of measured hardware behaviour.  The reproduction
target is the shape of the comparison (who wins and by roughly what factor),
which is driven by the counted redundancy, not by the absolute peak numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Number of threads per warp on every NVIDIA GPU generation simulated here.
WARP_SIZE: int = 32

#: Global-memory transaction sizes supported by the hardware, in bytes
#: (Section 3.3 of the paper: "NVIDIA GPUs support three memory transaction
#: sizes, including 32 bytes, 64 bytes, and 128 bytes").
TRANSACTION_SIZES: tuple[int, ...] = (32, 64, 128)

#: The minimum memory transaction granularity in bytes.
MIN_TRANSACTION_BYTES: int = 32


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name:
        Human readable device name.
    sm_count:
        Number of streaming multiprocessors.
    tensor_core_count:
        Number of Tensor Core units (as reported in the paper's Section 4).
    cuda_core_count:
        Number of CUDA cores.
    tcu_fp16_tflops:
        Peak dense FP16 Tensor-Core throughput (TFLOP/s, without sparsity).
    tcu_tf32_tflops:
        Peak dense TF32 Tensor-Core throughput (TFLOP/s).
    cuda_fp32_tflops:
        Peak FP32 throughput on CUDA cores (TFLOP/s).
    mem_bandwidth_gbps:
        Peak global-memory bandwidth (GB/s).
    l2_bandwidth_gbps:
        Aggregate L2-cache bandwidth (GB/s); repeated accesses to data that
        stays resident in L2 are served at this rate rather than DRAM rate.
    l2_cache_bytes:
        L2 cache capacity in bytes (used for a simple reuse model).
    kernel_launch_overhead_us:
        Fixed per-kernel launch overhead in microseconds.
    max_resident_warps:
        Upper bound on concurrently resident warps, used to model occupancy
        limits for very small inputs.
    memory_bytes:
        Device global-memory capacity in bytes (the paper's Section 4 lists
        80 GB for the H100 PCIe and 24 GB for the RTX 4090).  The serving
        planner (:mod:`repro.serve.planner`) derives its workspace budget
        from this figure; 0 means "unknown capacity" and disables
        budget-derived planning.
    """

    name: str
    sm_count: int
    tensor_core_count: int
    cuda_core_count: int
    tcu_fp16_tflops: float
    tcu_tf32_tflops: float
    cuda_fp32_tflops: float
    mem_bandwidth_gbps: float
    l2_bandwidth_gbps: float
    l2_cache_bytes: int
    kernel_launch_overhead_us: float = 5.0
    max_resident_warps: int = 2048
    memory_bytes: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def tcu_fp16_flops(self) -> float:
        """Peak FP16 TCU throughput in FLOP/s."""
        return self.tcu_fp16_tflops * 1e12

    @property
    def tcu_tf32_flops(self) -> float:
        """Peak TF32 TCU throughput in FLOP/s."""
        return self.tcu_tf32_tflops * 1e12

    @property
    def cuda_fp32_flops(self) -> float:
        """Peak FP32 CUDA-core throughput in FLOP/s."""
        return self.cuda_fp32_tflops * 1e12

    @property
    def mem_bandwidth_bps(self) -> float:
        """Peak memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9

    @property
    def l2_bandwidth_bps(self) -> float:
        """Aggregate L2 bandwidth in bytes/s."""
        return self.l2_bandwidth_gbps * 1e9

    def tcu_flops(self, precision: str) -> float:
        """Peak TCU throughput (FLOP/s) for ``precision`` (``fp16``/``tf32``)."""
        if precision == "fp16":
            return self.tcu_fp16_flops
        if precision == "tf32":
            return self.tcu_tf32_flops
        raise ValueError(f"unsupported TCU precision: {precision!r}")

    def tcu_vs_cuda_ratio(self, precision: str = "fp16") -> float:
        """Ratio of TCU peak to CUDA-core FP32 peak (paper cites ~30x on H100)."""
        return self.tcu_flops(precision) / self.cuda_fp32_flops


#: NVIDIA H100 PCIe as described in the paper's Section 4 (456 TCUs, 14592
#: CUDA cores, 80 GB).  Dense (non-sparse) peak rates.
H100_PCIE = GPUSpec(
    name="NVIDIA H100 PCIe",
    sm_count=114,
    tensor_core_count=456,
    cuda_core_count=14592,
    tcu_fp16_tflops=756.0,
    tcu_tf32_tflops=378.0,
    cuda_fp32_tflops=51.2,
    mem_bandwidth_gbps=2000.0,
    l2_bandwidth_gbps=7000.0,
    l2_cache_bytes=50 * 1024 * 1024,
    kernel_launch_overhead_us=4.0,
    max_resident_warps=114 * 64,
    memory_bytes=80 * 1024**3,
)

#: NVIDIA GeForce RTX 4090 as described in the paper's Section 4 (512 TCUs,
#: 16384 CUDA cores, 24 GB).
RTX4090 = GPUSpec(
    name="NVIDIA GeForce RTX 4090",
    sm_count=128,
    tensor_core_count=512,
    cuda_core_count=16384,
    tcu_fp16_tflops=330.0,
    tcu_tf32_tflops=165.0,
    cuda_fp32_tflops=82.6,
    mem_bandwidth_gbps=1008.0,
    l2_bandwidth_gbps=5000.0,
    l2_cache_bytes=72 * 1024 * 1024,
    kernel_launch_overhead_us=3.0,
    max_resident_warps=128 * 48,
    memory_bytes=24 * 1024**3,
)

_DEVICES = {
    "h100": H100_PCIE,
    "h100_pcie": H100_PCIE,
    "rtx4090": RTX4090,
    "4090": RTX4090,
}


def get_device(name: str) -> GPUSpec:
    """Look up a device spec by a case-insensitive short name.

    Parameters
    ----------
    name:
        ``"h100"``, ``"h100_pcie"``, ``"rtx4090"`` or ``"4090"``.
    """
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    try:
        return _DEVICES[key]
    except KeyError as exc:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(set(_DEVICES))}"
        ) from exc


def available_devices() -> list[str]:
    """Names of the devices the simulator knows about."""
    return sorted({spec.name for spec in _DEVICES.values()})
