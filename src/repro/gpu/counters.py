"""Cost counters accumulated by simulated kernels.

Every simulated kernel (FlashSparse and every baseline) receives a
:class:`CostCounter` and records the hardware events it would generate on the
real device:

* ``mma`` invocations, keyed by operand shape and precision,
* CUDA-core fused multiply-adds (for the CUDA-core baselines),
* global-memory transactions of each size (32/64/128 bytes),
* bytes logically read / written (the paper's "data access cost"),
* shared-memory traffic and auxiliary integer work (e.g. TC-GNN's per-element
  position checks), which feed the performance model's overhead terms.

Counters are plain data: additive, comparable and serialisable, so that
benchmark harnesses can aggregate them across many matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

import numpy as np


@dataclass
class CostCounter:
    """Accumulates simulated hardware costs for one kernel invocation.

    All counts start at zero; kernels call the ``add_*`` methods while they
    execute (or while their analytic cost estimator runs).
    """

    #: MMA invocations keyed by ``(shape_name, precision)``.
    mma_invocations: Dict[tuple[str, str], int] = field(default_factory=dict)
    #: Scalar fused multiply-add operations on CUDA cores.
    cuda_fma: int = 0
    #: Global-memory load transactions keyed by transaction size in bytes.
    load_transactions: Dict[int, int] = field(default_factory=dict)
    #: Global-memory store transactions keyed by transaction size in bytes.
    store_transactions: Dict[int, int] = field(default_factory=dict)
    #: Bytes logically accessed (the paper's "data access cost"), reads.
    bytes_read: int = 0
    #: Bytes logically accessed, writes.
    bytes_written: int = 0
    #: Unique bytes read (compulsory DRAM traffic: the data footprint that has
    #: to come from device memory at least once; re-reads hit the L2 model).
    footprint_read_bytes: int = 0
    #: Unique bytes written (compulsory DRAM write-back traffic).
    footprint_write_bytes: int = 0
    #: Bytes moved through shared memory.
    shared_bytes: int = 0
    #: Auxiliary integer/index operations (position checks, modulo residue
    #: computations, ...) that the performance model charges to CUDA cores.
    index_ops: int = 0
    #: Number of thread blocks / warps launched, for occupancy modelling.
    warps_launched: int = 0
    #: Number of kernel launches represented by this counter.
    kernel_launches: int = 1

    # ------------------------------------------------------------------ adds
    def add_mma(self, shape_name: str, precision: str, count: int = 1) -> None:
        """Record ``count`` MMA invocations of the given shape/precision."""
        if count < 0:
            raise ValueError("MMA count must be non-negative")
        if count == 0:
            return
        key = (shape_name, precision)
        self.mma_invocations[key] = self.mma_invocations.get(key, 0) + int(count)

    def add_cuda_fma(self, count: int) -> None:
        """Record scalar FMA work executed on CUDA cores."""
        if count < 0:
            raise ValueError("FMA count must be non-negative")
        self.cuda_fma += int(count)

    def add_load(self, transaction_bytes: int, count: int = 1, useful_bytes: int | None = None) -> None:
        """Record ``count`` global load transactions of ``transaction_bytes``.

        ``useful_bytes`` is the number of bytes the kernel actually needed; it
        defaults to the full transaction size.  The difference is wasted
        bandwidth, which is how the non-coalesced thread mapping shows up.
        """
        if count < 0:
            raise ValueError("transaction count must be non-negative")
        if count:
            self.load_transactions[transaction_bytes] = (
                self.load_transactions.get(transaction_bytes, 0) + int(count)
            )
        if useful_bytes is None:
            useful_bytes = transaction_bytes * count
        self.bytes_read += int(useful_bytes)

    def add_store(self, transaction_bytes: int, count: int = 1, useful_bytes: int | None = None) -> None:
        """Record ``count`` global store transactions of ``transaction_bytes``."""
        if count < 0:
            raise ValueError("transaction count must be non-negative")
        if count:
            self.store_transactions[transaction_bytes] = (
                self.store_transactions.get(transaction_bytes, 0) + int(count)
            )
        if useful_bytes is None:
            useful_bytes = transaction_bytes * count
        self.bytes_written += int(useful_bytes)

    def add_load_bulk(self, transaction_bytes: int, counts, useful_bytes) -> None:
        """Vectorised :meth:`add_load`: sum per-block transaction/byte arrays.

        ``counts`` and ``useful_bytes`` are array-likes (one entry per block /
        window / whatever unit the caller batched over); the totals land in
        the same counter fields one ``add_load`` per entry would produce, so a
        closed-form cost pass over a block-width histogram yields bit-identical
        state to the per-block loop.
        """
        self.add_load(
            transaction_bytes,
            int(np.sum(counts, dtype=np.int64)),
            useful_bytes=int(np.sum(useful_bytes, dtype=np.int64)),
        )

    def add_store_bulk(self, transaction_bytes: int, counts, useful_bytes) -> None:
        """Vectorised :meth:`add_store`; see :meth:`add_load_bulk`."""
        self.add_store(
            transaction_bytes,
            int(np.sum(counts, dtype=np.int64)),
            useful_bytes=int(np.sum(useful_bytes, dtype=np.int64)),
        )

    def add_bytes_read(self, nbytes: int) -> None:
        """Record logically-read bytes without transaction bookkeeping."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        self.bytes_read += int(nbytes)

    def add_bytes_written(self, nbytes: int) -> None:
        """Record logically-written bytes without transaction bookkeeping."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        self.bytes_written += int(nbytes)

    def set_read_footprint(self, nbytes: int) -> None:
        """Record the unique bytes this kernel must read from DRAM."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        self.footprint_read_bytes = int(nbytes)

    def set_write_footprint(self, nbytes: int) -> None:
        """Record the unique bytes this kernel must write back to DRAM."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        self.footprint_write_bytes = int(nbytes)

    def add_shared_bytes(self, nbytes: int) -> None:
        """Record shared-memory traffic."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        self.shared_bytes += int(nbytes)

    def add_index_ops(self, count: int) -> None:
        """Record auxiliary integer work (position checks, residue maths)."""
        if count < 0:
            raise ValueError("op count must be non-negative")
        self.index_ops += int(count)

    def add_warps(self, count: int) -> None:
        """Record launched warps."""
        if count < 0:
            raise ValueError("warp count must be non-negative")
        self.warps_launched += int(count)

    # --------------------------------------------------------------- queries
    @property
    def total_mma(self) -> int:
        """Total MMA invocations across all shapes/precisions."""
        return sum(self.mma_invocations.values())

    @property
    def total_load_transactions(self) -> int:
        """Total number of global load transactions."""
        return sum(self.load_transactions.values())

    @property
    def total_store_transactions(self) -> int:
        """Total number of global store transactions."""
        return sum(self.store_transactions.values())

    @property
    def transaction_bytes_moved(self) -> int:
        """Bytes actually moved by load+store transactions (incl. waste)."""
        moved = 0
        for size, count in self.load_transactions.items():
            moved += size * count
        for size, count in self.store_transactions.items():
            moved += size * count
        return moved

    @property
    def data_access_bytes(self) -> int:
        """The paper's "data access cost": useful bytes read + written."""
        return self.bytes_read + self.bytes_written

    @property
    def footprint_bytes(self) -> int:
        """Unique bytes touched (compulsory DRAM traffic, reads + writes)."""
        return self.footprint_read_bytes + self.footprint_write_bytes

    def mma_flops(self, shapes: Mapping[str, tuple[int, int, int]] | None = None) -> int:
        """FLOPs executed on tensor cores (2*m*n*k per MMA).

        ``shapes`` maps shape names to ``(m, n, k)``; when omitted the shape
        name is parsed (names follow the ``m16n8k8`` convention).
        """
        total = 0
        for (shape_name, _), count in self.mma_invocations.items():
            if shapes and shape_name in shapes:
                m, n, k = shapes[shape_name]
            else:
                m, n, k = _parse_shape_name(shape_name)
            total += 2 * m * n * k * count
        return total

    # ------------------------------------------------------------ arithmetic
    def merge(self, other: "CostCounter") -> "CostCounter":
        """Return a new counter that is the sum of ``self`` and ``other``."""
        out = CostCounter()
        out += self
        out += other
        # kernel_launches: each operand counts its own launches.
        out.kernel_launches = self.kernel_launches + other.kernel_launches
        return out

    def __iadd__(self, other: "CostCounter") -> "CostCounter":
        for key, count in other.mma_invocations.items():
            self.mma_invocations[key] = self.mma_invocations.get(key, 0) + count
        self.cuda_fma += other.cuda_fma
        for size, count in other.load_transactions.items():
            self.load_transactions[size] = self.load_transactions.get(size, 0) + count
        for size, count in other.store_transactions.items():
            self.store_transactions[size] = self.store_transactions.get(size, 0) + count
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.footprint_read_bytes += other.footprint_read_bytes
        self.footprint_write_bytes += other.footprint_write_bytes
        self.shared_bytes += other.shared_bytes
        self.index_ops += other.index_ops
        self.warps_launched += other.warps_launched
        return self

    def __add__(self, other: "CostCounter") -> "CostCounter":
        return self.merge(other)

    # --------------------------------------------------------------- export
    def as_dict(self) -> dict:
        """Flat dictionary view, convenient for tabulation / JSON."""
        return {
            "total_mma": self.total_mma,
            "mma_invocations": {f"{s}/{p}": c for (s, p), c in sorted(self.mma_invocations.items())},
            "cuda_fma": self.cuda_fma,
            "load_transactions": dict(sorted(self.load_transactions.items())),
            "store_transactions": dict(sorted(self.store_transactions.items())),
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "data_access_bytes": self.data_access_bytes,
            "footprint_read_bytes": self.footprint_read_bytes,
            "footprint_write_bytes": self.footprint_write_bytes,
            "shared_bytes": self.shared_bytes,
            "index_ops": self.index_ops,
            "warps_launched": self.warps_launched,
            "kernel_launches": self.kernel_launches,
        }

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"CostCounter(mma={self.total_mma}, cuda_fma={self.cuda_fma}, "
            f"loads={self.total_load_transactions}, stores={self.total_store_transactions}, "
            f"data={self.data_access_bytes}B, index_ops={self.index_ops})"
        )


def _parse_shape_name(shape_name: str) -> tuple[int, int, int]:
    """Parse an ``m16n8k8``-style shape name into ``(m, n, k)``."""
    name = shape_name.lower()
    for prefix in ("wmma_", "mma_"):
        if name.startswith(prefix):
            name = name[len(prefix):]
    try:
        m_part, rest = name.split("n", 1)
        n_part, k_part = rest.split("k", 1)
        return int(m_part.lstrip("m")), int(n_part), int(k_part)
    except (ValueError, IndexError) as exc:
        raise ValueError(f"cannot parse MMA shape name {shape_name!r}") from exc


def sum_counters(counters: Iterable[CostCounter]) -> CostCounter:
    """Sum an iterable of counters into a fresh one.

    The resulting ``kernel_launches`` is the sum over the inputs (an empty
    iterable yields zero launches).
    """
    total = CostCounter(kernel_launches=0)
    for counter in counters:
        total += counter
        total.kernel_launches += counter.kernel_launches
    return total
