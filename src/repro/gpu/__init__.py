"""GPU / Tensor Core simulator substrate.

The paper's kernels are CUDA kernels issuing warp-level ``mma`` instructions
and coalesced global-memory loads.  This subpackage models exactly the pieces
of the hardware that FlashSparse's design reasons about:

* :mod:`repro.gpu.device` — device descriptions (H100 PCIe, RTX 4090) with
  the peak rates and memory bandwidths the performance model needs.
* :mod:`repro.gpu.mma` — the semantics and the per-thread register fragment
  layouts of the MMA / WMMA operand shapes used by FlashSparse and the
  baselines (``m16n8k8``/``m16n8k16`` FP16, ``m16n8k4``/``m16n8k8`` TF32 and
  WMMA ``m16n16k8`` TF32).
* :mod:`repro.gpu.memory` — a transaction-level model of global-memory
  coalescing (32/64/128-byte transactions) used to evaluate the
  memory-efficient thread mapping of Section 3.3.
* :mod:`repro.gpu.counters` — cost counters accumulated by every simulated
  kernel and consumed by :mod:`repro.perfmodel`.
"""

from repro.gpu.counters import CostCounter
from repro.gpu.device import GPUSpec, H100_PCIE, RTX4090, WARP_SIZE, get_device
from repro.gpu.mma import (
    MMAShape,
    MMA_M16N8K8_FP16,
    MMA_M16N8K16_FP16,
    MMA_M16N8K4_TF32,
    MMA_M16N8K8_TF32,
    WMMA_M16N16K8_TF32,
    mma_execute,
    FragmentLayout,
    layout_a,
    layout_b,
    layout_c,
    distribute_fragment,
    gather_fragment,
)
from repro.gpu.memory import (
    MemoryTransactionModel,
    WarpAccess,
    simulate_warp_load,
    transactions_for_tile_load,
)

__all__ = [
    "CostCounter",
    "GPUSpec",
    "H100_PCIE",
    "RTX4090",
    "WARP_SIZE",
    "get_device",
    "MMAShape",
    "MMA_M16N8K8_FP16",
    "MMA_M16N8K16_FP16",
    "MMA_M16N8K4_TF32",
    "MMA_M16N8K8_TF32",
    "WMMA_M16N16K8_TF32",
    "mma_execute",
    "FragmentLayout",
    "layout_a",
    "layout_b",
    "layout_c",
    "distribute_fragment",
    "gather_fragment",
    "MemoryTransactionModel",
    "WarpAccess",
    "simulate_warp_load",
    "transactions_for_tile_load",
]
