"""Sorted-segment reductions over indptr-style offsets (see package docstring).

Two segment layouts are supported:

* **offsets** — an indptr-style array of length ``n_segments + 1``;
  segment ``s`` owns ``data[offsets[s]:offsets[s + 1]]``.  This is the
  layout of CSR rows and ME-BCRS windows and the primary API here.
* **sorted ids** — an array assigning each element a segment id, with equal
  ids contiguous (:func:`segment_sum_runs`).  This is the layout a streaming
  consumer sees when it slices a block range out of a larger batch and only
  the segments intersecting the slice matter.

All reductions run along axis 0 and preserve trailing dimensions, so the
same calls serve per-edge scalars ``(nnz,)`` and per-block matrices
``(n_blocks, v, N)``.
"""

from __future__ import annotations

import numpy as np

#: Accumulation modes accepted by the reducing ops.
ACCUMULATE_MODES = ("native", "fp64")


def check_offsets(offsets: np.ndarray, total: int) -> np.ndarray:
    """Validate an indptr-style ``offsets`` array against ``total`` elements.

    Returns the validated int64 array.  ``offsets`` must start at 0, end at
    ``total`` and be non-decreasing — the invariants every CSR ``indptr``
    and window pointer in this codebase already satisfies.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.shape[0] < 1:
        raise ValueError("offsets must be a 1-D array of length n_segments + 1")
    if offsets[0] != 0:
        raise ValueError("offsets must start at 0")
    if offsets[-1] != total:
        raise ValueError(
            f"offsets must end at the data length ({total}), got {int(offsets[-1])}"
        )
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    return offsets


def segment_count(offsets: np.ndarray) -> np.ndarray:
    """Number of elements in each segment (``(n_segments,)`` int64)."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.shape[0] < 1:
        raise ValueError("offsets must be a 1-D array of length n_segments + 1")
    return np.diff(offsets)


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Segment id of every element (``(total,)`` int64) — the expand inverse.

    For a CSR ``indptr`` this is the classic "row of every nonzero" array;
    it is the broadcast companion of the reductions (``values[segment_ids]``
    expands one value per segment back to the element axis).
    """
    lengths = segment_count(offsets)
    return np.repeat(np.arange(lengths.shape[0], dtype=np.int64), lengths)


def _reduceat(
    ufunc: np.ufunc,
    data: np.ndarray,
    offsets: np.ndarray,
    fill,
    accumulate: str,
) -> np.ndarray:
    """Shared non-empty-segment ``reduceat`` + scatter skeleton."""
    if accumulate not in ACCUMULATE_MODES:
        raise ValueError(f"accumulate must be one of {ACCUMULATE_MODES}, got {accumulate!r}")
    data = np.asarray(data)
    offsets = check_offsets(offsets, data.shape[0])
    if accumulate == "fp64" and data.dtype != np.float64:
        data = data.astype(np.float64)
    lengths = np.diff(offsets)
    n_segments = lengths.shape[0]
    out = np.full((n_segments,) + data.shape[1:], fill, dtype=data.dtype)
    nonempty = lengths > 0
    if nonempty.any():
        # reduceat over the non-empty starts only: empty segments contribute
        # no elements, so consecutive non-empty starts delimit exactly the
        # right slices, and the repeated-index pitfall never arises.
        out[nonempty] = ufunc.reduceat(data, offsets[:-1][nonempty], axis=0)
    return out


def segment_sum(
    data: np.ndarray,
    offsets: np.ndarray,
    accumulate: str = "native",
) -> np.ndarray:
    """Per-segment sums along axis 0; empty segments sum to 0.

    ``accumulate="fp64"`` casts to float64 before reducing (and returns
    float64), bounding the association error of long segments far below
    FP32 resolution; ``"native"`` keeps the input dtype, in which case the
    association order is ``reduceat``'s (see the package docstring's
    numerical caveats).
    """
    return _reduceat(np.add, data, offsets, 0, accumulate)


def segment_max(
    data: np.ndarray,
    offsets: np.ndarray,
    empty_value: float = 0.0,
) -> np.ndarray:
    """Per-segment maxima along axis 0; empty segments yield ``empty_value``.

    Maxima involve no rounding, so the result is bit-identical to any
    per-segment loop regardless of association order.
    """
    return _reduceat(np.maximum, data, offsets, empty_value, "native")


def segment_min(
    data: np.ndarray,
    offsets: np.ndarray,
    empty_value: float = 0.0,
) -> np.ndarray:
    """Per-segment minima along axis 0; empty segments yield ``empty_value``.

    Like :func:`segment_max`, minima carry no round-off and agree
    bit-exactly with any per-segment loop.
    """
    return _reduceat(np.minimum, data, offsets, empty_value, "native")


def segment_mean(
    data: np.ndarray,
    offsets: np.ndarray,
    accumulate: str = "native",
) -> np.ndarray:
    """Per-segment means along axis 0; empty segments yield 0.

    The mean is the segment sum divided by the segment length; the division
    happens in the accumulation dtype (float64 under ``accumulate="fp64"``),
    so the only association sensitivity is the sum's (see
    :func:`segment_sum`).  Integer inputs are promoted to float64 — a mean
    is not generally representable in an integer dtype.
    """
    data = np.asarray(data)
    if not np.issubdtype(data.dtype, np.floating):
        data = data.astype(np.float64)
    sums = segment_sum(data, offsets, accumulate)
    lengths = segment_count(offsets)
    # Empty segments divide by 1 and keep the sum's 0 identity.
    denom = np.maximum(lengths, 1).astype(sums.dtype)
    return sums / denom.reshape((-1,) + (1,) * (sums.ndim - 1))


def segment_sum_runs(data: np.ndarray, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sums of the runs of equal consecutive ``ids`` along axis 0.

    ``ids`` assigns each element a segment id with equal ids contiguous
    (sorted-segment layout).  Returns ``(run_ids, run_sums)`` where
    ``run_ids`` holds each run's id in order of appearance.  This is the
    streaming-friendly reduction: a consumer slicing ``[lo:hi]`` out of a
    block batch reduces just that slice and accumulates ``run_sums`` into
    its output, so a segment spanning two slices is summed incrementally.
    """
    data = np.asarray(data)
    ids = np.asarray(ids, dtype=np.int64)
    if ids.ndim != 1 or ids.shape[0] != data.shape[0]:
        raise ValueError("ids must be 1-D and aligned with data along axis 0")
    if ids.shape[0] == 0:
        return ids[:0], data[:0]
    starts = np.flatnonzero(np.r_[True, ids[1:] != ids[:-1]])
    return ids[starts], np.add.reduceat(data, starts, axis=0)


def segment_matmul(
    data: np.ndarray,
    offsets: np.ndarray,
    weights,
):
    """Per-segment GEMM: segment ``s``'s rows are multiplied by weight ``s``.

    ``data`` is ``(total, K)``; ``offsets`` is the indptr-style segment
    layout; ``weights`` is one ``(K, N_s)`` matrix per segment — either a
    stacked ``(n_segments, K, N)`` array or a sequence of 2-D arrays whose
    widths ``N_s`` may differ (mixed-width GNN layer requests: each request
    class carries its own projection).  Returns the stacked ``(total, N)``
    array when every width agrees, else a list of per-segment
    ``(len_s, N_s)`` arrays.

    Batching
    --------
    This is the RGCN/typed-linear primitive (PyG's ``segment_matmul``):
    a per-segment Python loop issues one small GEMM per segment and is
    dominated by dispatch overhead.  Here segments are bucketed by
    ``(segment length, weight shape)`` and each bucket runs as **one**
    batched 3-D matmul — ``(g, L, K) @ (g, K, N)`` — with zero padding
    waste, so thousands of same-shaped segments cost a handful of BLAS
    calls.  Each segment's product is still an independent matmul, so the
    result is bit-identical to the per-segment loop (matmul association
    order per output element is unchanged by batching).
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("segment_matmul expects 2-D data (rows × features)")
    offsets = check_offsets(offsets, data.shape[0])
    lengths = np.diff(offsets)
    n_segments = lengths.shape[0]
    weights = [np.asarray(w) for w in weights]
    if len(weights) != n_segments:
        raise ValueError(
            f"expected {n_segments} weight matrices, got {len(weights)}"
        )
    k = data.shape[1]
    for s, w in enumerate(weights):
        if w.ndim != 2 or w.shape[0] != k:
            raise ValueError(
                f"weights[{s}] has shape {w.shape}, expected ({k}, N_{s})"
            )
    widths = [w.shape[1] for w in weights]
    uniform = len(set(widths)) <= 1

    out_dtype = np.result_type(data.dtype, *[w.dtype for w in weights]) if weights else data.dtype
    outputs: list[np.ndarray | None] = [None] * n_segments

    # Bucket by (length, width): every bucket is one batched matmul.
    buckets: dict[tuple, list[int]] = {}
    for s in range(n_segments):
        buckets.setdefault((int(lengths[s]), widths[s]), []).append(s)
    for (length, width), segs in buckets.items():
        if length == 0:
            for s in segs:
                outputs[s] = np.zeros((0, width), dtype=out_dtype)
            continue
        stacked = np.stack([data[offsets[s] : offsets[s] + length] for s in segs])
        w_stack = np.stack([weights[s] for s in segs]).astype(out_dtype, copy=False)
        prod = stacked.astype(out_dtype, copy=False) @ w_stack  # (g, L, N)
        for i, s in enumerate(segs):
            outputs[s] = prod[i]

    if not uniform:
        return outputs
    width = widths[0] if widths else 0
    out = np.empty((data.shape[0], width), dtype=out_dtype)
    for s in range(n_segments):
        out[offsets[s] : offsets[s + 1]] = outputs[s]
    return out


def segment_softmax(
    logits: np.ndarray,
    offsets: np.ndarray,
    out_dtype=np.float32,
) -> np.ndarray:
    """Per-segment softmax of a 1-D logits array (empty segments untouched).

    Matches the per-row reference computation of the GNN backends: the
    segment is shifted by its maximum and exponentiated in float64, the
    normaliser is a float64 segment sum, and the result is cast to
    ``out_dtype`` at the end — so the vectorized path agrees with the
    per-row float64 loop to well below FP32 round-off.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 1:
        raise ValueError("segment_softmax expects 1-D logits (one value per element)")
    offsets = check_offsets(offsets, logits.shape[0])
    lengths = np.diff(offsets)
    maxima = segment_max(logits, offsets, empty_value=0.0)
    shifted = logits - np.repeat(maxima, lengths)
    exps = np.exp(shifted)
    denom = segment_sum(exps, offsets)
    # Every non-empty segment has denom >= exp(0) = 1 for its max element;
    # the placeholder 1.0 on empty segments never divides a real element.
    denom = np.where(lengths > 0, denom, 1.0)
    return (exps / np.repeat(denom, lengths)).astype(out_dtype)


def segment_softmax_backward(
    softmax: np.ndarray,
    grad_out: np.ndarray,
    offsets: np.ndarray,
    out_dtype=np.float32,
) -> np.ndarray:
    """Gradient of :func:`segment_softmax` w.r.t. the logits.

    Implements ``s * (g - <g, s>_segment)`` with the inner product
    accumulated in float64 (the per-row oracle accumulates it in FP32, so
    the two agree to FP32 round-off — the vectorized path is the more
    accurate of the two).
    """
    softmax = np.asarray(softmax)
    grad_out = np.asarray(grad_out)
    if softmax.shape != grad_out.shape or softmax.ndim != 1:
        raise ValueError("softmax and grad_out must be equal-shape 1-D arrays")
    offsets = check_offsets(offsets, softmax.shape[0])
    lengths = np.diff(offsets)
    inner = segment_sum(
        softmax.astype(np.float64) * grad_out.astype(np.float64), offsets
    )
    return (softmax * (grad_out - np.repeat(inner, lengths))).astype(out_dtype)
