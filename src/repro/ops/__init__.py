"""Vectorized segment operations shared by every segment-shaped hot path.

Most of the per-element work in this codebase reduces to *segment
operations*: an array of values is partitioned into contiguous runs
(CSR rows, ME-BCRS row windows, TC-block ranges) and each run is reduced,
normalised or broadcast independently.  DGL exposes the same primitives as
first-class ``segment_reduce`` / ``edge_softmax`` kernels shared by every
sparse operator; this package plays that role here, replacing the per-row
Python loops that used to dominate a GNN training epoch.

The reduceat trick
------------------
All reductions are built on ``np.ufunc.reduceat`` over *sorted* segment
layouts.  Given an indptr-style ``offsets`` array (length ``n_segments + 1``,
``offsets[s]:offsets[s + 1]`` indexes segment ``s``), one call

    ``np.add.reduceat(data, starts, axis=0)``

computes every segment sum in C, where ``starts`` are the start offsets of
the *non-empty* segments only.  Filtering to non-empty segments sidesteps
the classic ``reduceat`` pitfall: a repeated index (what an empty segment
would produce) makes ``reduceat`` return ``data[start]`` instead of the
empty-sum identity.  The results are scattered back to the full segment
axis, so empty segments come out as the reduction's identity (0 for sums,
a caller-chosen fill for maxima) — exactly what the per-row loops produce
for isolated rows and empty row windows.

Numerical-association caveats
-----------------------------
Floating-point addition is not associative, and ``reduceat``'s association
order is an implementation detail (NumPy uses SIMD-chunked partial sums), so
segment sums can differ from a per-element Python loop — or from
``segment.sum()``'s pairwise order — in the last units of precision.
Concretely:

* on *integer-valued* float data every partial sum is exactly representable,
  so any association gives bit-identical results (the regime the property
  tests pin down exactly);
* on general float data the association error is bounded by
  ``O(len(segment) · eps)`` of the accumulation dtype;
* :func:`~repro.ops.segment.segment_softmax` and the float64-accumulating
  reductions (``accumulate="fp64"``) push that error to float64 scale —
  far below FP32 resolution — which is why the GNN backends' vectorized
  edge softmax agrees with the per-row reference oracle to FP32 round-off;
* max-based operations carry no round-off at all and agree bit-exactly.

Callers that need the exact association of a kernel's emulation loop (the
batched execution engine's window reduction) keep their data in FP32 and
accept the documented FP32-round-off tolerance of the engine contract.
"""

from repro.ops.segment import (
    check_offsets,
    segment_count,
    segment_ids,
    segment_matmul,
    segment_max,
    segment_mean,
    segment_min,
    segment_softmax,
    segment_softmax_backward,
    segment_sum,
    segment_sum_runs,
)

__all__ = [
    "check_offsets",
    "segment_count",
    "segment_ids",
    "segment_matmul",
    "segment_max",
    "segment_mean",
    "segment_min",
    "segment_softmax",
    "segment_softmax_backward",
    "segment_sum",
    "segment_sum_runs",
]
