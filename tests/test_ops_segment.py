"""Property tests for the vectorized segment-operations subsystem.

Every reduction is checked against a per-segment Python reference loop
across random segment layouts including empty segments, single-element
segments and all-empty inputs.  Agreement is asserted *exactly* wherever
floating-point association cannot bite — integer-valued float data (every
partial sum exactly representable), maxima (no rounding), counts and ids —
and to an accumulation-error bound on general float data, since
``reduceat``'s association order is an implementation detail.  The softmax
paths are additionally checked against the GNN backends' per-row oracle
semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ops import (
    check_offsets,
    segment_count,
    segment_ids,
    segment_max,
    segment_mean,
    segment_min,
    segment_softmax,
    segment_softmax_backward,
    segment_sum,
    segment_sum_runs,
)

#: (name, segment lengths) covering the layouts the ISSUE calls out.
LAYOUTS = {
    "plain": [3, 1, 4, 2],
    "leading-empty": [0, 0, 5, 1],
    "interior-empty": [2, 0, 0, 3, 0, 1],
    "trailing-empty": [4, 2, 0, 0],
    "all-single": [1, 1, 1, 1, 1],
    "one-segment": [7],
    "all-empty-input": [0, 0, 0],
    "no-segments": [],
}


def _offsets(lengths) -> np.ndarray:
    return np.concatenate([[0], np.cumsum(np.asarray(lengths, dtype=np.int64))])


def _random_layout(rng: np.random.Generator) -> np.ndarray:
    lengths = rng.integers(0, 6, size=int(rng.integers(1, 40)))
    return _offsets(lengths)


def _loop_sum(data: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment Python reference loop (sequential same-dtype accumulation)."""
    out = np.zeros((len(offsets) - 1,) + data.shape[1:], dtype=data.dtype)
    for s in range(len(offsets) - 1):
        acc = np.zeros(data.shape[1:], dtype=data.dtype)
        for i in range(offsets[s], offsets[s + 1]):
            acc = acc + data[i]
        out[s] = acc
    return out


def _integer_valued(rng: np.random.Generator, shape, dtype=np.float32) -> np.ndarray:
    """Small-integer float data: every partial sum is exactly representable,
    so the vectorized reduction must agree with the loop *bit for bit*."""
    return rng.integers(-100, 100, size=shape).astype(dtype)


# ---------------------------------------------------------------------------
# segment_sum / segment_max / segment_count / segment_ids
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(LAYOUTS))
@pytest.mark.parametrize("dtype", (np.float32, np.float64))
def test_segment_sum_matches_loop_exactly_on_integer_valued_data(name, dtype, rng):
    offsets = _offsets(LAYOUTS[name])
    data = _integer_valued(rng, int(offsets[-1]), dtype)
    np.testing.assert_array_equal(segment_sum(data, offsets), _loop_sum(data, offsets))


@pytest.mark.parametrize("trial", range(8))
def test_segment_sum_random_layouts(trial):
    rng = np.random.default_rng(1000 + trial)
    offsets = _random_layout(rng)
    exact = _integer_valued(rng, int(offsets[-1]))
    np.testing.assert_array_equal(segment_sum(exact, offsets), _loop_sum(exact, offsets))
    floats = rng.standard_normal(int(offsets[-1])).astype(np.float32)
    np.testing.assert_allclose(
        segment_sum(floats, offsets),
        _loop_sum(floats.astype(np.float64), offsets),
        atol=1e-4,
        rtol=1e-5,
    )


def test_segment_sum_multidimensional(rng):
    offsets = _offsets([2, 0, 3, 1])
    data = _integer_valued(rng, (6, 4, 5))
    result = segment_sum(data, offsets)
    assert result.shape == (4, 4, 5)
    np.testing.assert_array_equal(result, _loop_sum(data, offsets))
    assert not result[1].any()  # empty segment sums to the identity


def test_segment_sum_fp64_accumulation_tracks_float64_loop(rng):
    offsets = _offsets([500, 0, 3])
    data = rng.standard_normal(503).astype(np.float32)
    result = segment_sum(data, offsets, accumulate="fp64")
    assert result.dtype == np.float64
    expected = _loop_sum(data.astype(np.float64), offsets)
    # float64 association error over 500 elements sits far below FP32
    # resolution — the property the engine and softmax paths rely on.
    np.testing.assert_allclose(result, expected, rtol=1e-13)
    assert result.astype(np.float32).tolist() == expected.astype(np.float32).tolist()


def test_segment_sum_rejects_unknown_accumulate_mode():
    with pytest.raises(ValueError):
        segment_sum(np.ones(3), np.array([0, 3]), accumulate="fp128")


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_segment_max_matches_loop_and_fills_empties(name, rng):
    offsets = _offsets(LAYOUTS[name])
    data = rng.standard_normal(int(offsets[-1]))
    result = segment_max(data, offsets, empty_value=-123.0)
    for s in range(len(offsets) - 1):
        seg = data[offsets[s] : offsets[s + 1]]
        expected = seg.max() if seg.size else -123.0
        assert result[s] == expected  # max carries no round-off: exact


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_segment_count_and_ids_roundtrip(name):
    lengths = np.asarray(LAYOUTS[name], dtype=np.int64)
    offsets = _offsets(lengths)
    np.testing.assert_array_equal(segment_count(offsets), lengths)
    ids = segment_ids(offsets)
    assert ids.shape[0] == int(offsets[-1])
    np.testing.assert_array_equal(
        np.bincount(ids, minlength=lengths.shape[0]), lengths
    )
    assert np.all(np.diff(ids) >= 0)  # sorted-segment layout


def test_offsets_validation_rejects_malformed():
    data = np.ones(4)
    with pytest.raises(ValueError):
        segment_sum(data, np.array([1, 4]))  # does not start at 0
    with pytest.raises(ValueError):
        segment_sum(data, np.array([0, 3]))  # does not end at len(data)
    with pytest.raises(ValueError):
        segment_sum(data, np.array([0, 3, 2, 4]))  # decreasing
    with pytest.raises(ValueError):
        segment_sum(data, np.array([[0, 4]]))  # not 1-D
    np.testing.assert_array_equal(check_offsets([0, 2, 4], 4), [0, 2, 4])


# ---------------------------------------------------------------------------
# segment_min / segment_mean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_segment_min_matches_loop_and_fills_empties(name, rng):
    offsets = _offsets(LAYOUTS[name])
    data = rng.standard_normal(int(offsets[-1]))
    result = segment_min(data, offsets, empty_value=456.0)
    for s in range(len(offsets) - 1):
        seg = data[offsets[s] : offsets[s + 1]]
        expected = seg.min() if seg.size else 456.0
        assert result[s] == expected  # min carries no round-off: exact


def test_segment_min_is_negated_segment_max(rng):
    offsets = _random_layout(np.random.default_rng(13))
    data = rng.standard_normal(int(offsets[-1]))
    np.testing.assert_array_equal(
        segment_min(data, offsets, empty_value=-7.0),
        -segment_max(-data, offsets, empty_value=7.0),
    )


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_segment_mean_matches_loop_on_integer_valued_data(name, rng):
    # Integer-valued data with power-of-two-friendly sums still rounds at
    # the division, so compare against the same sum/length computation.
    offsets = _offsets(LAYOUTS[name])
    data = _integer_valued(rng, int(offsets[-1]))
    result = segment_mean(data, offsets)
    lengths = segment_count(offsets)
    # Same-dtype division of the exact sums: IEEE division is correctly
    # rounded, so the comparison is bit-exact.
    expected = _loop_sum(data, offsets) / np.maximum(lengths, 1).astype(data.dtype)
    np.testing.assert_array_equal(result, expected)
    assert not result[lengths == 0].any()  # empty segments mean to 0


@pytest.mark.parametrize("trial", range(4))
def test_segment_mean_random_layouts_track_float64_reference(trial):
    rng = np.random.default_rng(3000 + trial)
    offsets = _random_layout(rng)
    data = rng.standard_normal(int(offsets[-1])).astype(np.float32)
    expected = _loop_sum(data.astype(np.float64), offsets) / np.maximum(
        segment_count(offsets), 1
    )
    np.testing.assert_allclose(segment_mean(data, offsets), expected, atol=1e-5)
    fp64 = segment_mean(data, offsets, accumulate="fp64")
    assert fp64.dtype == np.float64
    np.testing.assert_allclose(fp64, expected, rtol=1e-13)


def test_segment_mean_multidimensional_and_integer_input(rng):
    offsets = _offsets([2, 0, 3])
    data = rng.integers(-5, 5, size=(5, 3, 2))  # int64 input: promoted
    result = segment_mean(data, offsets)
    assert result.shape == (3, 3, 2)
    assert np.issubdtype(result.dtype, np.floating)
    np.testing.assert_array_equal(result[0], data[:2].mean(axis=0))
    np.testing.assert_array_equal(result[2], data[2:].mean(axis=0))


# ---------------------------------------------------------------------------
# segment_sum_runs (sorted-ids layout, the streaming engine's reduction)
# ---------------------------------------------------------------------------
def test_segment_sum_runs_matches_offsets_reduction(rng):
    offsets = _offsets([3, 0, 2, 0, 4])
    data = rng.standard_normal((9, 2)).astype(np.float32)
    ids = segment_ids(offsets)
    run_ids, run_sums = segment_sum_runs(data, ids)
    np.testing.assert_array_equal(run_ids, [0, 2, 4])  # empty segments absent
    np.testing.assert_array_equal(run_sums, segment_sum(data, offsets)[run_ids])


def test_segment_sum_runs_incremental_slices_cover_split_runs(rng):
    """Slicing mid-run and accumulating run sums reproduces the full sums."""
    offsets = _offsets([4, 5, 1])
    data = rng.standard_normal(10).astype(np.float64)
    full = segment_sum(data, offsets)
    acc = np.zeros(3)
    for lo, hi in ((0, 3), (3, 7), (7, 10)):  # boundaries split both runs
        run_ids, run_sums = segment_sum_runs(data[lo:hi], segment_ids(offsets)[lo:hi])
        acc[run_ids] += run_sums
    np.testing.assert_allclose(acc, full, rtol=1e-15)


def test_segment_sum_runs_empty_input():
    run_ids, run_sums = segment_sum_runs(np.zeros((0, 3)), np.zeros(0, dtype=np.int64))
    assert run_ids.shape == (0,)
    assert run_sums.shape == (0, 3)


def test_segment_sum_runs_rejects_misaligned_ids():
    with pytest.raises(ValueError):
        segment_sum_runs(np.ones(4), np.zeros(3, dtype=np.int64))


# ---------------------------------------------------------------------------
# segment_softmax forward + backward
# ---------------------------------------------------------------------------
def _loop_softmax(logits: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """The GNN backends' per-row oracle: float64 shift/exp/normalise."""
    logits = np.asarray(logits, dtype=np.float64)
    out = np.zeros_like(logits)
    for s in range(len(offsets) - 1):
        lo, hi = int(offsets[s]), int(offsets[s + 1])
        if lo == hi:
            continue
        seg = logits[lo:hi] - logits[lo:hi].max()
        e = np.exp(seg)
        out[lo:hi] = e / e.sum()
    return out.astype(np.float32)


@pytest.mark.parametrize("name", sorted(LAYOUTS))
def test_segment_softmax_matches_per_row_oracle(name, rng):
    offsets = _offsets(LAYOUTS[name])
    logits = (rng.standard_normal(int(offsets[-1])) * 10).astype(np.float32)
    result = segment_softmax(logits, offsets)
    assert result.dtype == np.float32
    np.testing.assert_allclose(result, _loop_softmax(logits, offsets), atol=2e-7)


def test_segment_softmax_rows_sum_to_one(rng):
    offsets = _random_layout(np.random.default_rng(7))
    logits = rng.standard_normal(int(offsets[-1])) * 50  # large logits: stability
    result = segment_softmax(logits, offsets)
    sums = segment_sum(result.astype(np.float64), offsets)
    lengths = segment_count(offsets)
    np.testing.assert_allclose(sums[lengths > 0], 1.0, atol=1e-6)
    assert np.isfinite(result).all()


def test_segment_softmax_backward_matches_loop(rng):
    offsets = _offsets([3, 0, 5, 1, 0, 2])
    softmax = segment_softmax(rng.standard_normal(11), offsets)
    grad_out = rng.standard_normal(11).astype(np.float32)
    result = segment_softmax_backward(softmax, grad_out, offsets)
    expected = np.zeros(11, dtype=np.float32)
    for s in range(len(offsets) - 1):
        lo, hi = int(offsets[s]), int(offsets[s + 1])
        if lo == hi:
            continue
        sseg = softmax[lo:hi]
        gseg = grad_out[lo:hi]
        expected[lo:hi] = sseg * (gseg - float((gseg * sseg).sum()))
    np.testing.assert_allclose(result, expected, atol=1e-6)


def test_segment_softmax_backward_zero_grad_on_uniform_upstream(rng):
    """A constant upstream gradient is in the softmax's null space."""
    offsets = _offsets([4, 6])
    softmax = segment_softmax(rng.standard_normal(10), offsets)
    grad = segment_softmax_backward(softmax, np.full(10, 3.5, dtype=np.float32), offsets)
    np.testing.assert_allclose(grad, 0.0, atol=1e-6)


def test_segment_softmax_rejects_bad_shapes():
    with pytest.raises(ValueError):
        segment_softmax(np.ones((3, 2)), np.array([0, 3]))
    with pytest.raises(ValueError):
        segment_softmax_backward(np.ones(3), np.ones(4), np.array([0, 3]))
