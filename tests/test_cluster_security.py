"""Trusted data plane: handshake auth, TLS, payload integrity, recovery.

Protocol v2's security contract, end to end:

* the HELLO/CHALLENGE handshake admits the right token and rejects the
  wrong one — and a rejected peer never wedges the worker's accept loop;
* a VERSION=1 peer receives a *structured* reject frame it can parse, not
  a hang;
* TLS-wrapped clusters produce bit-identical results to plaintext ones;
* a corrupted frame — payload bit-flip or a lying checksum — surfaces as
  :class:`FrameIntegrityError`, is counted, and the request still
  completes **bit-identically** with zero failed shards (the corruption
  costs a retry, never numerics);
* transport byte accounting covers handshakes and rejected frames, and
  the oversized-declaration pre-scan names the offending descriptor.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from helpers import random_csr

from repro.cluster import ClusterScheduler
from repro.cluster.transport import (
    _PREFIX,
    MAGIC,
    VERSION,
    AuthenticationError,
    FrameIntegrityError,
    FrameTooLargeError,
    HandshakeError,
    RetryPolicy,
    TransportError,
    VersionMismatchError,
    client_handshake,
    make_client_ssl_context,
    recv_message,
    send_message,
    server_handshake,
)
from repro.cluster.worker import run_worker
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.sddmm_flash import VECTORS_PER_OUTPUT_BLOCK as FLASH_GROUP
from repro.kernels.sddmm_tcu16 import VECTORS_PER_OUTPUT_BLOCK as TCU16_GROUP
from repro.precision.types import Precision, quantize
from repro.serve.scheduler import ShardScheduler
from repro.testing import FaultPlan, loopback_tls_files, tls_available

TIMEOUT = 30
TOKEN = "test-cluster-secret"

_FORMATS = {
    "mebcrs": (MEBCRSMatrix, FLASH_GROUP),
    "sgt16": (SGT16Matrix, TCU16_GROUP),
}


def _workload(fmt_name="mebcrs", seed=21, n=9, rows=180, cols=170, density=0.06):
    cls, group = _FORMATS[fmt_name]
    csr = random_csr(rows, cols, density, seed=seed)
    fmt = cls.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    b_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    a_q = quantize(rng.standard_normal((rows, n)), Precision.FP16).astype(np.float32)
    ref = ShardScheduler(workers=1)
    base = ref.run_spmm(fmt, b_q, Precision.FP16)
    sbase = ref.run_sddmm(fmt, a_q, b_q, Precision.FP16, group)
    return csr, fmt, group, a_q, b_q, base, sbase


def _pair():
    a, b = socket.socketpair()
    a.settimeout(TIMEOUT)
    b.settimeout(TIMEOUT)
    return a, b


def _handshake_pair(client_token, server_token):
    """Run both handshake sides over a socketpair; returns (client, server)
    outcomes — a (sent, received, negotiated_version) tuple on success, the
    exception on failure."""
    a, b = _pair()
    out = {}

    def server():
        try:
            out["server"] = server_handshake(b, auth_token=server_token)
        except Exception as exc:  # noqa: BLE001 - recorded for assertions
            out["server"] = exc

    thread = threading.Thread(target=server)
    thread.start()
    try:
        out["client"] = client_handshake(a, auth_token=client_token)
    except Exception as exc:  # noqa: BLE001
        out["client"] = exc
    finally:
        # Mirror production: a client whose handshake failed hangs up at
        # once (the head's dial path closes on any handshake exception),
        # which is what unblocks a server still waiting on a hello.
        a.close()
    thread.join(TIMEOUT)
    b.close()
    return out["client"], out["server"]


# ---------------------------------------------------------------- handshake
def test_handshake_happy_path_counts_bytes():
    client, server = _handshake_pair(TOKEN, TOKEN)
    c_sent, c_received, c_version = client
    s_sent, s_received, s_version = server
    assert c_sent > 0 and c_received > 0
    # Byte totals mirror each other exactly: what one side sent, the
    # other received — the reconciliation the accounting satellite needs.
    assert (c_sent, c_received) == (s_received, s_sent)
    # Both ends agree on the negotiated wire version (here: both current).
    assert c_version == s_version == VERSION


def test_handshake_open_mode_without_token():
    client, server = _handshake_pair(None, None)
    assert isinstance(client, tuple) and isinstance(server, tuple)


def test_wrong_token_rejected_both_sides():
    client, server = _handshake_pair("wrong-" + TOKEN, TOKEN)
    assert isinstance(client, AuthenticationError)  # structured reject parsed
    assert isinstance(server, AuthenticationError)


def test_missing_token_fails_before_sending_credentials():
    client, server = _handshake_pair(None, TOKEN)
    assert isinstance(client, AuthenticationError)
    # The client saw ``auth_required`` in the challenge and bailed without
    # a hello; the server observes the hung-up stream as a handshake loss.
    assert isinstance(server, HandshakeError)


def test_version_mismatch_peer_gets_structured_reject_not_a_hang():
    """A peer speaking protocol VERSION=1 must read a parseable reject
    frame, written in *its* wire version — not block forever."""
    a, b = _pair()
    errs = {}

    def server():
        try:
            server_handshake(b)
        except Exception as exc:  # noqa: BLE001
            errs["server"] = exc

    thread = threading.Thread(target=server)
    thread.start()
    challenge, _, _ = recv_message(a)
    assert challenge["type"] == "challenge" and challenge["version"] == VERSION
    # Answer like a v1 peer: v1 prefix byte, v1 in the hello body.
    send_message(a, {"type": "hello", "version": 1}, version=1)
    reject, _, _ = recv_message(a)  # parseable, versioned, structured
    thread.join(TIMEOUT)
    assert reject["type"] == "reject"
    assert reject["reason"] == "version"
    assert reject["_version"] == 1  # written in the peer's wire version
    assert isinstance(errs["server"], VersionMismatchError)
    a.close(), b.close()


def test_legacy_peer_sending_tasks_directly_gets_protocol_reject():
    """A pre-handshake peer that ignores the challenge and opens with a
    task frame is told so, structurally."""
    a, b = _pair()
    errs = {}

    def server():
        try:
            server_handshake(b)
        except Exception as exc:  # noqa: BLE001
            errs["server"] = exc

    thread = threading.Thread(target=server)
    thread.start()
    recv_message(a)  # the challenge, ignored
    send_message(a, {"type": "ping"})
    reject, _, _ = recv_message(a)
    thread.join(TIMEOUT)
    assert reject["type"] == "reject" and reject["reason"] == "protocol"
    assert isinstance(errs["server"], HandshakeError)
    a.close(), b.close()


# ------------------------------------------------------------ worker listener
@pytest.fixture()
def auth_worker():
    """A token-guarded worker host in a daemon thread; yields its address."""
    box = {}
    ready = threading.Event()

    def announce(addr):
        box["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=run_worker,
        kwargs={
            "host": "127.0.0.1",
            "port": 0,
            "ready": announce,
            "auth_token": TOKEN,
            "handshake_timeout_s": TIMEOUT,
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(TIMEOUT), "worker never announced its address"
    yield box["addr"]
    conn = socket.create_connection(box["addr"], timeout=TIMEOUT)
    conn.settimeout(TIMEOUT)
    client_handshake(conn, auth_token=TOKEN)
    send_message(conn, {"type": "shutdown"})
    recv_message(conn)
    conn.close()
    thread.join(TIMEOUT)
    assert not thread.is_alive()


def test_worker_rejects_wrong_token_and_keeps_serving(auth_worker):
    conn = socket.create_connection(auth_worker, timeout=TIMEOUT)
    conn.settimeout(TIMEOUT)
    with pytest.raises(AuthenticationError):
        client_handshake(conn, auth_token="not-the-token")
    conn.close()
    # The listener survived the reject and serves the next (authorised)
    # connection, with the reject counted in its status frames.
    conn = socket.create_connection(auth_worker, timeout=TIMEOUT)
    conn.settimeout(TIMEOUT)
    client_handshake(conn, auth_token=TOKEN)
    send_message(conn, {"type": "ping"})
    header, _, _ = recv_message(conn)
    conn.close()
    assert header["type"] == "pong"
    assert header["security"]["auth_rejects"] == 1
    assert header["security"]["integrity_failures"] == 0


def test_worker_counts_garbage_handshake_and_keeps_serving(auth_worker):
    conn = socket.create_connection(auth_worker, timeout=TIMEOUT)
    conn.settimeout(TIMEOUT)
    recv_message(conn)  # the challenge
    conn.sendall(_PREFIX.pack(b"NOPE", VERSION, 0, 0))  # not our protocol
    assert conn.recv(1) == b""  # dropped, no hang
    conn.close()
    conn = socket.create_connection(auth_worker, timeout=TIMEOUT)
    conn.settimeout(TIMEOUT)
    client_handshake(conn, auth_token=TOKEN)
    send_message(conn, {"type": "ping"})
    header, _, _ = recv_message(conn)
    conn.close()
    assert header["security"]["handshake_failures"] == 1


def test_head_refuses_wrong_token_cluster_but_worker_survives():
    """A head with the wrong token cannot join — and its rejected dials
    don't cost the worker, which keeps serving the rightful head."""
    box = {}
    ready = threading.Event()

    def announce(addr):
        box["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=run_worker,
        kwargs={
            "host": "127.0.0.1",
            "port": 0,
            "ready": announce,
            "auth_token": TOKEN,
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(TIMEOUT)
    with pytest.raises(AuthenticationError):
        ClusterScheduler(
            addresses=[box["addr"]],
            auth_token="wrong-" + TOKEN,
            auto_readmit=False,
        )
    with ClusterScheduler(
        addresses=[box["addr"]], auth_token=TOKEN, auto_readmit=False
    ) as sched:
        csr, fmt, _, _, b_q, base, _ = _workload(seed=22)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
        # The worker-reported gauge carries the earlier reject into this
        # head's snapshot.
        assert snap["auth_rejects"] >= 1
        assert snap["task_failures"] == 0
    # The rightful head's close() sent the shutdown frame: worker exits.
    thread.join(TIMEOUT)
    assert not thread.is_alive()


# ------------------------------------------------------------------- TLS
needs_tls = pytest.mark.skipif(not tls_available(), reason="cryptography unavailable")


@needs_tls
def test_tls_round_trip_parity_vs_plaintext():
    csr, fmt, group, a_q, b_q, base, sbase = _workload(seed=23)
    cert, key = loopback_tls_files()
    with ClusterScheduler(hosts=2, tls_cert=cert, tls_key=key) as tls_sched:
        out = tls_sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        vals = tls_sched.run_sddmm(
            fmt, a_q, b_q, Precision.FP16, group, target_blocks=7, csr=csr
        )
        snap = tls_sched.stats_snapshot()
    np.testing.assert_array_equal(out, base)   # == plaintext single-host oracle
    np.testing.assert_array_equal(vals, sbase)
    assert snap["task_failures"] == 0 and snap["handshake_failures"] == 0


@needs_tls
@pytest.mark.parametrize("fmt_name", ["mebcrs", "sgt16"])
def test_auth_tls_cluster_kernel_format_parity_grid(fmt_name):
    """The acceptance grid: an auth+TLS cluster matches the single-host
    oracle bit-for-bit for both kernels in both formats."""
    csr, fmt, group, a_q, b_q, base, sbase = _workload(fmt_name, seed=24)
    cert, key = loopback_tls_files()
    with ClusterScheduler(
        hosts=2, auth_token=TOKEN, tls_cert=cert, tls_key=key
    ) as sched:
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        vals = sched.run_sddmm(
            fmt, a_q, b_q, Precision.FP16, group, target_blocks=7, csr=csr
        )
        snap = sched.stats_snapshot()
    np.testing.assert_array_equal(out, base)
    np.testing.assert_array_equal(vals, sbase)
    assert snap["task_failures"] == 0


@needs_tls
def test_plaintext_head_cannot_reach_tls_worker():
    """A non-TLS client against a TLS listener fails the TLS layer; the
    worker counts it and keeps serving TLS peers."""
    cert, key = loopback_tls_files()
    box = {}
    ready = threading.Event()

    def announce(addr):
        box["addr"] = addr
        ready.set()

    thread = threading.Thread(
        target=run_worker,
        kwargs={
            "host": "127.0.0.1",
            "port": 0,
            "ready": announce,
            "tls_cert": cert,
            "tls_key": key,
            "handshake_timeout_s": 2.0,
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(TIMEOUT)
    plain = socket.create_connection(box["addr"], timeout=TIMEOUT)
    plain.settimeout(TIMEOUT)
    # A plaintext frame prefix is not a TLS ClientHello: the worker's TLS
    # layer rejects the stream and drops us without wedging the accept loop.
    plain.sendall(_PREFIX.pack(MAGIC, VERSION, 0, 0))
    try:
        assert plain.recv(1) == b""  # closed on us, not hung
    except OSError:
        pass  # a reset counts as dropped too
    plain.close()
    # A TLS peer still gets through, and the failed negotiation was counted.
    ctx = make_client_ssl_context(cert)
    conn = ctx.wrap_socket(socket.create_connection(box["addr"], timeout=TIMEOUT))
    conn.settimeout(TIMEOUT)
    client_handshake(conn)
    send_message(conn, {"type": "ping"})
    header, _, _ = recv_message(conn)
    assert header["type"] == "pong"
    assert header["security"]["handshake_failures"] >= 1
    send_message(conn, {"type": "shutdown"})
    recv_message(conn)
    conn.close()
    thread.join(TIMEOUT)
    assert not thread.is_alive()


# ------------------------------------------------------- corruption recovery
def test_corrupted_result_frame_recovers_bit_identically():
    """The tentpole end-to-end: a result frame corrupted on the worker side
    fails its CRC at the head, the task is re-sent through the retry
    machinery, and the request completes bit-identically with zero failed
    shards."""
    csr, fmt, _, _, b_q, base, _ = _workload(seed=26)
    # scope=None: whichever host rendezvous routing picks, its first
    # result frame is the corrupted one.
    plan = FaultPlan(seed=3).corrupt_payload(nth=1, type="result")
    with ClusterScheduler(
        hosts=2,
        worker_fault_plan=plan,
        retry_policy=RetryPolicy(seed=0),
        speculation_delay_s=None,
    ) as sched:
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        snap = sched.stats_snapshot()
    np.testing.assert_array_equal(out, base)
    assert snap["integrity_failures"] >= 1
    assert snap["task_failures"] == 0
    # The failure is attributed to whichever host served the frame.
    assert any(h["integrity_failures"] >= 1 for h in snap["hosts"].values())
    assert snap["reconnects"] >= 1  # recovered through the retry machinery


def test_corrupted_task_frame_detected_by_worker_and_recovered():
    """The other direction: a frame corrupted head→worker is caught by
    the worker's CRC check (never computed on), costs the connection, and
    the head's resend completes the request exactly.  Under protocol v3
    the operand bytes travel in ``store_put`` frames (task frames carry
    keys only), so that is where the corruption is seeded."""
    csr, fmt, _, _, b_q, base, _ = _workload(seed=27)
    plan = FaultPlan(seed=5).corrupt_payload(nth=1, type="store_put")
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(seed=0),
        speculation_delay_s=None,
    ) as sched:
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        snap = sched.stats_snapshot()
    np.testing.assert_array_equal(out, base)
    # Detected on the worker side; the gauge travels back in status frames.
    assert snap["integrity_failures"] >= 1
    assert snap["task_failures"] == 0
    assert plan.fired_kinds().count("corrupt_payload") == 1


def test_lying_checksum_is_rejected_like_corruption():
    a, b = _pair()
    plan = FaultPlan(seed=11).corrupt_checksum(nth=1, type="task")
    wrapped = plan.wrap(a, scope="h0")
    payload = np.arange(64, dtype=np.float32)
    send_message(wrapped, {"type": "task"}, [payload])
    with pytest.raises(FrameIntegrityError, match="CRC32"):
        recv_message(b)
    assert plan.fired_kinds() == ["corrupt_checksum"]
    # The harness is frame-type aware: untargeted frames pass untouched.
    send_message(wrapped, {"type": "task"}, [payload])
    _, arrays, _ = recv_message(b)
    np.testing.assert_array_equal(arrays[0], payload)
    a.close(), b.close()


def test_corrupt_payload_targets_the_declared_buffer():
    a, b = _pair()
    plan = FaultPlan(seed=13).corrupt_payload(nth=1, type="task", buffer=1)
    wrapped = plan.wrap(a, scope="h0")
    first = np.arange(16, dtype=np.int64)
    second = np.ones(8, dtype=np.float32)
    send_message(wrapped, {"type": "task"}, [first, second])
    with pytest.raises(FrameIntegrityError, match="buffer 1"):
        recv_message(b)
    a.close(), b.close()


# --------------------------------------------------- accounting & size bugfix
def test_frame_too_large_pre_scan_names_offending_descriptor():
    """One huge descriptor hidden among small ones is rejected *before* the
    buffer loop allocates, by index — the recv_message bugfix."""
    a, b = _pair()
    small = {"dtype": "<f4", "shape": [8], "crc32": 0}
    huge = {"dtype": "<f4", "shape": [1 << 28], "crc32": 0}
    header = dict(type="task", arrays=[small, small, huge, small])
    import json

    raw = json.dumps(header, separators=(",", ":")).encode()
    a.sendall(_PREFIX.pack(MAGIC, VERSION, 4, len(raw)) + raw)
    with pytest.raises(FrameTooLargeError, match="descriptor 2") as info:
        recv_message(b, max_frame_bytes=1 << 20)
    # Rejected-frame bytes are reported for transport accounting.
    assert info.value.bytes_read == _PREFIX.size + len(raw)
    a.close(), b.close()


def test_handshake_bytes_counted_into_transport_totals():
    """Connecting alone (no tasks) must already move the byte counters:
    the handshake crossed the socket and the snapshot reconciles it."""
    with ClusterScheduler(hosts=1, auth_token=TOKEN, auto_readmit=False) as sched:
        snap = sched.stats_snapshot()
    assert snap["tasks_sent"] == 0
    assert snap["bytes_sent"] > 0
    assert snap["bytes_received"] > 0


def test_v2_frames_without_checksums_are_protocol_violations():
    a, b = _pair()
    import json

    header = {"type": "task", "arrays": [{"dtype": "<f4", "shape": [4]}]}
    raw = json.dumps(header, separators=(",", ":")).encode()
    a.sendall(_PREFIX.pack(MAGIC, VERSION, 1, len(raw)) + raw)
    with pytest.raises(TransportError, match="no checksum"):
        recv_message(b)
    a.close(), b.close()
