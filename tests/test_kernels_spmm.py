"""Tests for the FlashSparse SpMM kernel and the 16x1 baseline kernel."""

import numpy as np
import pytest

from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.common import FlashSparseConfig
from repro.kernels.spmm_flash import spmm_flash_cost, spmm_flash_execute
from repro.kernels.spmm_tcu16 import instruction_for, spmm_tcu16_cost, spmm_tcu16_execute
from repro.precision.types import Precision

from helpers import random_csr


def reference_spmm(csr, b):
    return np.asarray(csr.to_scipy().astype(np.float64) @ np.asarray(b, dtype=np.float64))


@pytest.mark.parametrize("precision", ["fp16", "tf32"])
@pytest.mark.parametrize("n_dense", [16, 40, 128])
def test_spmm_flash_matches_reference(small_csr, rng, precision, n_dense):
    b = rng.standard_normal((small_csr.n_cols, n_dense))
    result = spmm_flash_execute(small_csr, b, FlashSparseConfig(precision=precision))
    ref = reference_spmm(small_csr, b)
    np.testing.assert_allclose(result.values, ref, rtol=2e-2, atol=2e-2)
    assert result.values.shape == (small_csr.n_rows, n_dense)
    assert result.useful_flops == 2 * small_csr.nnz * n_dense


@pytest.mark.parametrize("coalesced", [True, False])
def test_spmm_flash_coalescing_does_not_change_values(medium_csr, rng, coalesced):
    b = rng.standard_normal((medium_csr.n_cols, 32))
    result = spmm_flash_execute(medium_csr, b, FlashSparseConfig(precision="fp16", coalesced=coalesced))
    ref = reference_spmm(medium_csr, b)
    np.testing.assert_allclose(result.values, ref, rtol=2e-2, atol=2e-2)


def test_spmm_flash_accepts_prebuilt_mebcrs(small_csr, rng):
    fmt = MEBCRSMatrix.from_csr(small_csr, precision="fp16")
    b = rng.standard_normal((small_csr.n_cols, 16))
    result = spmm_flash_execute(fmt, b, FlashSparseConfig(precision="fp16"))
    np.testing.assert_allclose(result.values, reference_spmm(small_csr, b), rtol=2e-2, atol=2e-2)


def test_spmm_flash_rejects_mismatched_format(small_csr, rng):
    fmt16 = SGT16Matrix.from_csr(small_csr)
    b = rng.standard_normal((small_csr.n_cols, 16))
    with pytest.raises(ValueError):
        spmm_flash_execute(fmt16, b, FlashSparseConfig(precision="fp16"))
    # k mismatch: tf32 format used with fp16 config.
    fmt_tf32 = MEBCRSMatrix.from_csr(small_csr, precision="tf32")
    with pytest.raises(ValueError):
        spmm_flash_execute(fmt_tf32, b, FlashSparseConfig(precision="fp16"))


def test_spmm_flash_rejects_wrong_b_shape(small_csr, rng):
    b = rng.standard_normal((small_csr.n_cols + 1, 16))
    with pytest.raises(ValueError):
        spmm_flash_execute(small_csr, b)
    with pytest.raises(ValueError):
        spmm_flash_execute(small_csr, rng.standard_normal(small_csr.n_cols))


def test_spmm_flash_requires_swap_and_transpose(small_csr, rng):
    config = FlashSparseConfig(precision="fp16", swap_and_transpose=False)
    with pytest.raises(ValueError):
        spmm_flash_execute(small_csr, rng.standard_normal((small_csr.n_cols, 16)), config)
    with pytest.raises(ValueError):
        spmm_flash_cost(small_csr, 16, config)


def test_config_rejects_fp32():
    with pytest.raises(ValueError):
        FlashSparseConfig(precision="fp32")


def test_config_vector_size_property():
    assert FlashSparseConfig(precision="fp16").vector_size == 8
    assert FlashSparseConfig(precision="fp16", swap_and_transpose=False).vector_size == 16


@pytest.mark.parametrize("precision", ["fp16", "tf32"])
@pytest.mark.parametrize("n_dense", [16, 48, 128])
def test_spmm_flash_cost_matches_execute(medium_csr, rng, precision, n_dense):
    """The analytic cost estimator reproduces the executed kernel's counters."""
    config = FlashSparseConfig(precision=precision)
    b = rng.standard_normal((medium_csr.n_cols, n_dense))
    executed = spmm_flash_execute(medium_csr, b, config)
    estimated = spmm_flash_cost(medium_csr, n_dense, config)
    assert estimated.as_dict() == executed.counter.as_dict()


def test_spmm_flash_mma_count_formula(medium_csr):
    config = FlashSparseConfig(precision="fp16")
    counter = spmm_flash_cost(medium_csr, 128, config)
    fmt = MEBCRSMatrix.from_csr(medium_csr, precision="fp16")
    assert counter.total_mma == fmt.num_tc_blocks * (128 // 16)
    assert ("m16n8k8", "fp16") in counter.mma_invocations


def test_spmm_flash_tf32_uses_m16n8k4(medium_csr):
    counter = spmm_flash_cost(medium_csr, 64, FlashSparseConfig(precision="tf32"))
    assert set(counter.mma_invocations) == {("m16n8k4", "tf32")}


def test_coalesced_mapping_halves_b_transactions(medium_csr):
    """Figure 15's mechanism: the coalesced mapping halves the B-load transactions."""
    coalesced = spmm_flash_cost(medium_csr, 64, FlashSparseConfig(precision="fp16", coalesced=True))
    direct = spmm_flash_cost(medium_csr, 64, FlashSparseConfig(precision="fp16", coalesced=False))
    assert direct.total_load_transactions > coalesced.total_load_transactions
    # Same useful bytes, same MMAs — only the transaction count differs.
    assert direct.bytes_read == coalesced.bytes_read
    assert direct.total_mma == coalesced.total_mma
    assert direct.transaction_bytes_moved > coalesced.transaction_bytes_moved


def test_tf32_coalescing_is_a_noop(medium_csr):
    coalesced = spmm_flash_cost(medium_csr, 64, FlashSparseConfig(precision="tf32", coalesced=True))
    direct = spmm_flash_cost(medium_csr, 64, FlashSparseConfig(precision="tf32", coalesced=False))
    assert coalesced.as_dict() == direct.as_dict()


def test_spmm_flash_footprint_bounded_by_bytes_read(medium_csr):
    counter = spmm_flash_cost(medium_csr, 128, FlashSparseConfig(precision="fp16"))
    assert 0 < counter.footprint_read_bytes <= counter.bytes_read
    assert counter.footprint_write_bytes == counter.bytes_written


def test_spmm_flash_cost_rejects_bad_n(medium_csr):
    with pytest.raises(ValueError):
        spmm_flash_cost(medium_csr, 0)


def test_spmm_flash_empty_matrix(rng):
    from repro.formats.csr import CSRMatrix

    empty = CSRMatrix(np.zeros(17, dtype=np.int64), np.zeros(0, np.int32), np.zeros(0), (16, 16))
    b = rng.standard_normal((16, 16))
    result = spmm_flash_execute(empty, b)
    np.testing.assert_array_equal(result.values, np.zeros((16, 16)))
    assert result.counter.total_mma == 0


# ---------------------------------------------------------------------------
# 16x1 baseline kernel
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("precision,api", [("fp16", "mma"), ("tf32", "mma"), ("tf32", "wmma")])
def test_spmm_tcu16_matches_reference(small_csr, rng, precision, api):
    b = rng.standard_normal((small_csr.n_cols, 40))
    config = FlashSparseConfig(precision=precision, swap_and_transpose=False)
    result = spmm_tcu16_execute(small_csr, b, config, api=api)
    np.testing.assert_allclose(result.values, reference_spmm(small_csr, b), rtol=2e-2, atol=2e-2)


@pytest.mark.parametrize("precision,api", [("fp16", "mma"), ("tf32", "mma"), ("tf32", "wmma")])
def test_spmm_tcu16_cost_matches_execute(medium_csr, rng, precision, api):
    config = FlashSparseConfig(precision=precision, swap_and_transpose=False)
    b = rng.standard_normal((medium_csr.n_cols, 48))
    executed = spmm_tcu16_execute(medium_csr, b, config, api=api)
    estimated = spmm_tcu16_cost(medium_csr, 48, config, api=api)
    assert estimated.as_dict() == executed.counter.as_dict()


def test_instruction_for_selection():
    assert instruction_for(Precision.TF32, "mma").name == "m16n8k8"
    assert instruction_for(Precision.FP16, "mma").name == "m16n8k8"
    assert instruction_for(Precision.TF32, "wmma").name == "m16n16k8"
    with pytest.raises(ValueError):
        instruction_for(Precision.FP16, "wmma")


def test_spmm_tcu16_rejects_8_row_format(small_csr, rng):
    fmt8 = MEBCRSMatrix.from_csr(small_csr, precision="fp16")
    with pytest.raises(ValueError):
        spmm_tcu16_execute(fmt8, rng.standard_normal((small_csr.n_cols, 16)))


def test_flash_uses_fewer_mma_than_16x1(medium_csr, skewed_csr):
    """Figure 1 / Figure 14: the 8x1 strategy needs fewer MMA invocations."""
    for csr in (medium_csr, skewed_csr):
        flash = spmm_flash_cost(csr, 128, FlashSparseConfig(precision="fp16"))
        v16 = spmm_tcu16_cost(csr, 128, FlashSparseConfig(precision="fp16", swap_and_transpose=False))
        assert flash.total_mma < v16.total_mma
        assert flash.data_access_bytes < v16.data_access_bytes


def test_flash_and_16x1_agree_numerically(medium_csr, rng):
    b = rng.standard_normal((medium_csr.n_cols, 32))
    flash = spmm_flash_execute(medium_csr, b, FlashSparseConfig(precision="fp16"))
    v16 = spmm_tcu16_execute(
        medium_csr, b, FlashSparseConfig(precision="fp16", swap_and_transpose=False)
    )
    np.testing.assert_allclose(flash.values, v16.values, rtol=2e-2, atol=2e-2)
