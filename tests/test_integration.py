"""Integration tests across subsystems: kernels + formats + perf model + GNN."""

import numpy as np
import pytest

from repro import FlashSparseMatrix, sddmm, spmm
from repro.baselines import KERNEL_BASELINES, get_baseline
from repro.datasets import make_graph, suitesparse_like_collection
from repro.gnn import estimate_epoch_time, make_backend, make_dataset
from repro.gnn.train import train_gcn_accuracy
from repro.gpu.device import H100_PCIE, RTX4090
from repro.kernels import (
    FLASH_SPMM_PROFILE,
    spmm_flash_cost,
    spmm_tcu16_cost,
)
from repro.kernels.common import FlashSparseConfig
from repro.perfmodel import estimate_time, geometric_mean, spmm_useful_flops

from helpers import random_csr


def test_attention_pipeline_sddmm_then_spmm(rng):
    """AGNN's operator pipeline through the public API: SDDMM -> softmax -> SpMM."""
    adj = random_csr(96, 96, 0.06, seed=21)
    features = rng.standard_normal((96, 32))
    att = sddmm(adj, features, features, precision="fp16")
    # Row-softmax the attention scores on the sparse pattern.
    att_csr = att.to_csr()
    logits = att_csr.to_scipy()
    dense_att = np.zeros_like(logits.toarray())
    arr = logits.toarray()
    mask = adj.to_dense() != 0
    for r in range(96):
        row_mask = mask[r]
        if row_mask.any():
            row = arr[r][row_mask]
            row = np.exp(row - row.max())
            dense_att[r][row_mask] = row / row.sum()
    aggregated = spmm(FlashSparseMatrix.from_dense(dense_att), features, precision="fp16")
    reference = dense_att @ features
    np.testing.assert_allclose(aggregated.values, reference, rtol=5e-2, atol=5e-2)


def test_spmm_speedup_shape_on_a_graph_standin():
    """Figure 11's qualitative shape on a single graph: FlashSparse leads all baselines."""
    graph = make_graph("reddit")
    n_dense = 128
    flash_counter = spmm_flash_cost(graph, n_dense, FlashSparseConfig(precision="fp16"))
    flash_time = estimate_time(flash_counter, RTX4090, FLASH_SPMM_PROFILE).total_time_s
    for name in KERNEL_BASELINES:
        baseline = get_baseline(name)
        time_s = estimate_time(baseline.spmm_cost(graph, n_dense), RTX4090, baseline.profile).total_time_s
        assert time_s > flash_time, f"{name} should be slower than FlashSparse on Reddit"


def test_speedup_ordering_dtc_vs_rode_vs_tcgnn():
    """DTC-SpMM beats TC-GNN; FlashSparse beats both (Section 4.1's narrative)."""
    graph = make_graph("ogbproducts")
    n_dense = 128
    flash = estimate_time(
        spmm_flash_cost(graph, n_dense, FlashSparseConfig(precision="fp16")),
        RTX4090,
        FLASH_SPMM_PROFILE,
    ).total_time_s
    dtc = get_baseline("DTC-SpMM")
    tcgnn = get_baseline("TC-GNN")
    t_dtc = estimate_time(dtc.spmm_cost(graph, n_dense), RTX4090, dtc.profile).total_time_s
    t_tcgnn = estimate_time(tcgnn.spmm_cost(graph, n_dense), RTX4090, tcgnn.profile).total_time_s
    assert flash < t_dtc < t_tcgnn


def test_ablation_vector_size_speedup_in_paper_range():
    """Figure 14: 8x1 vs 16x1 (same machinery) speedup lands in a plausible band."""
    speedups = []
    for name in ("reddit", "blog", "artist", "amazon"):
        graph = make_graph(name)
        flash = estimate_time(
            spmm_flash_cost(graph, 128, FlashSparseConfig(precision="fp16")),
            H100_PCIE,
            FLASH_SPMM_PROFILE,
        ).total_time_s
        v16 = estimate_time(
            spmm_tcu16_cost(graph, 128, FlashSparseConfig(precision="fp16", swap_and_transpose=False)),
            H100_PCIE,
            FLASH_SPMM_PROFILE,
        ).total_time_s
        speedups.append(v16 / flash)
    geo = geometric_mean(speedups)
    # The paper reports 1.89x geomean (up to 3.44x); accept a generous band.
    assert 1.2 <= geo <= 3.5


def test_coalescing_ablation_speedup_positive():
    """Figure 15: coalesced mapping is faster than the direct mapping.

    The gain shows on reuse-heavy matrices (Reddit); on small, low-degree
    graphs the kernel is bound by the compulsory footprint and the two
    mappings tie — the same reason the paper's average gain (1.18-1.34x) is
    far below the 2x transaction reduction.
    """
    graph = make_graph("reddit")
    coalesced = estimate_time(
        spmm_flash_cost(graph, 128, FlashSparseConfig(precision="fp16", coalesced=True)),
        RTX4090,
        FLASH_SPMM_PROFILE,
    ).total_time_s
    direct = estimate_time(
        spmm_flash_cost(graph, 128, FlashSparseConfig(precision="fp16", coalesced=False)),
        RTX4090,
        FLASH_SPMM_PROFILE,
    ).total_time_s
    assert 1.05 < direct / coalesced < 2.5
    # On a tiny low-degree graph the two mappings may tie but never invert.
    small = make_graph("ell")
    c_small = estimate_time(
        spmm_flash_cost(small, 128, FlashSparseConfig(precision="fp16", coalesced=True)),
        RTX4090,
        FLASH_SPMM_PROFILE,
    ).total_time_s
    d_small = estimate_time(
        spmm_flash_cost(small, 128, FlashSparseConfig(precision="fp16", coalesced=False)),
        RTX4090,
        FLASH_SPMM_PROFILE,
    ).total_time_s
    assert d_small >= c_small


def test_collection_sweep_runs_quickly_and_flash_wins_geomean():
    """A miniature Figure 11 sweep over the synthetic collection."""
    cases = suitesparse_like_collection(num_matrices=6, seed=0, include_graphs=False)
    rode = get_baseline("RoDe")
    speedups = []
    for case in cases:
        flash = estimate_time(
            spmm_flash_cost(case.matrix, 128, FlashSparseConfig(precision="fp16")),
            RTX4090,
            FLASH_SPMM_PROFILE,
        ).total_time_s
        base = estimate_time(rode.spmm_cost(case.matrix, 128), RTX4090, rode.profile).total_time_s
        speedups.append(base / flash)
    assert geometric_mean(speedups) > 1.0


def test_throughput_is_in_a_plausible_gflops_range():
    """Absolute GFLOPS of FlashSparse land in the paper's order of magnitude."""
    graph = make_graph("amazonproducts")
    counter = spmm_flash_cost(graph, 256, FlashSparseConfig(precision="fp16"))
    est = estimate_time(counter, RTX4090, FLASH_SPMM_PROFILE)
    useful = spmm_useful_flops(graph.nnz, 256)
    gflops = useful / est.total_time_s / 1e9
    # Paper: geometric-mean 4888 GFLOPS, up to 26 TFLOPS on RTX 4090.  The
    # scaled-down stand-ins land lower; require the right order of magnitude.
    assert 200 < gflops < 30_000


def test_end_to_end_gnn_training_and_estimation_combined():
    """Train a small GCN with the FlashSparse backend and estimate its epoch time."""
    dataset = make_dataset("ell")
    result = train_gcn_accuracy(dataset, "flashsparse-tf32", epochs=30, hidden=16, num_layers=2)
    assert result.test_accuracy > 0.6
    adj = dataset.normalized_adjacency()
    flash_est = estimate_epoch_time("gcn", adj, "flashsparse-tf32", H100_PCIE, hidden=128)
    dgl_est = estimate_epoch_time("gcn", adj, "dgl", H100_PCIE, hidden=128)
    assert flash_est.total_time_s < dgl_est.total_time_s


def test_backend_precision_does_not_change_training_outcome_much():
    dataset = make_dataset("questions")
    accs = {}
    for backend in ("flashsparse-fp16", "flashsparse-tf32", "dgl"):
        accs[backend] = train_gcn_accuracy(dataset, backend, epochs=30, hidden=16, num_layers=2).test_accuracy
    spread = max(accs.values()) - min(accs.values())
    assert spread < 0.06


def test_full_pipeline_from_scipy_to_device_estimate(rng):
    """The README quickstart path, end to end."""
    import scipy.sparse as sp

    adj = sp.random(256, 256, density=0.02, format="csr", random_state=0)
    matrix = FlashSparseMatrix.from_scipy(adj)
    dense = rng.standard_normal((256, 64))
    result = spmm(matrix, dense, precision="fp16", device="h100")
    np.testing.assert_allclose(result.values, adj @ dense, rtol=3e-2, atol=3e-2)
    assert result.estimate.total_time_s > 0
    assert result.counter.total_mma > 0
    assert result.gflops > 0
