"""Property tests for ``ops.segment_matmul`` against a per-segment loop oracle.

The contract is bit-identical agreement with the obvious per-segment loop:
bucketed batching stacks same-shaped segments into one 3-D matmul, which
leaves each segment's product association order unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ops import segment_matmul


def _loop_oracle(data, offsets, weights):
    return [
        np.asarray(data[offsets[s] : offsets[s + 1]]) @ np.asarray(weights[s])
        for s in range(len(weights))
    ]


def _random_segments(rng, n_segments, k, max_len=7, allow_empty=True):
    lengths = rng.integers(0 if allow_empty else 1, max_len + 1, size=n_segments)
    offsets = np.zeros(n_segments + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    data = rng.standard_normal((int(offsets[-1]), k)).astype(np.float32)
    return data, offsets


@pytest.mark.parametrize("seed", range(8))
def test_uniform_width_matches_loop_bitwise(seed):
    rng = np.random.default_rng(seed)
    n_segments = int(rng.integers(1, 12))
    k = int(rng.integers(1, 9))
    n = int(rng.integers(1, 9))
    data, offsets = _random_segments(rng, n_segments, k)
    weights = rng.standard_normal((n_segments, k, n)).astype(np.float32)
    out = segment_matmul(data, offsets, weights)
    assert isinstance(out, np.ndarray) and out.shape == (data.shape[0], n)
    for s, expected in enumerate(_loop_oracle(data, offsets, weights)):
        np.testing.assert_array_equal(out[offsets[s] : offsets[s + 1]], expected)


@pytest.mark.parametrize("seed", range(8))
def test_mixed_widths_match_loop_bitwise(seed):
    """Heterogeneous feature sizes: each segment has its own output width."""
    rng = np.random.default_rng(100 + seed)
    n_segments = int(rng.integers(2, 10))
    k = int(rng.integers(1, 9))
    data, offsets = _random_segments(rng, n_segments, k)
    weights = [
        rng.standard_normal((k, int(rng.integers(1, 10)))).astype(np.float32)
        for _ in range(n_segments)
    ]
    out = segment_matmul(data, offsets, weights)
    if len({w.shape[1] for w in weights}) == 1:
        # The rng may have drawn uniform widths: stacked result.
        out = [out[offsets[s] : offsets[s + 1]] for s in range(n_segments)]
    assert isinstance(out, list) and len(out) == n_segments
    for got, expected, w in zip(out, _loop_oracle(data, offsets, weights), weights):
        assert got.shape == (expected.shape[0], w.shape[1])
        np.testing.assert_array_equal(got, expected)


def test_empty_segments_produce_empty_products():
    data = np.ones((3, 2), np.float32)
    offsets = np.array([0, 0, 3, 3], dtype=np.int64)
    weights = [np.ones((2, 4), np.float32)] * 3
    out = segment_matmul(data, offsets, weights)
    np.testing.assert_array_equal(out, np.full((3, 4), 2.0, np.float32))


def test_zero_rows_total():
    data = np.zeros((0, 3), np.float32)
    offsets = np.array([0, 0, 0], dtype=np.int64)
    out = segment_matmul(data, offsets, [np.ones((3, 2), np.float32)] * 2)
    assert out.shape == (0, 2)


def test_dtype_promotion_float64_weights():
    rng = np.random.default_rng(7)
    data, offsets = _random_segments(rng, 4, 3, allow_empty=False)
    weights = rng.standard_normal((4, 3, 5))  # float64
    out = segment_matmul(data, offsets, weights)
    assert out.dtype == np.float64
    for s, expected in enumerate(_loop_oracle(data.astype(np.float64), offsets, weights)):
        np.testing.assert_allclose(out[offsets[s] : offsets[s + 1]], expected, rtol=1e-15)


def test_bucketing_groups_equal_shapes():
    """Many segments of equal (length, width) — the batched fast path —
    still agree bitwise with the loop."""
    rng = np.random.default_rng(11)
    n_segments, length, k, n = 64, 5, 8, 6
    offsets = np.arange(n_segments + 1, dtype=np.int64) * length
    data = rng.standard_normal((n_segments * length, k)).astype(np.float32)
    weights = rng.standard_normal((n_segments, k, n)).astype(np.float32)
    out = segment_matmul(data, offsets, weights)
    for s, expected in enumerate(_loop_oracle(data, offsets, weights)):
        np.testing.assert_array_equal(out[offsets[s] : offsets[s + 1]], expected)


def test_validation_errors():
    data = np.ones((4, 3), np.float32)
    offsets = np.array([0, 2, 4], dtype=np.int64)
    with pytest.raises(ValueError):  # wrong weight count
        segment_matmul(data, offsets, [np.ones((3, 2))])
    with pytest.raises(ValueError):  # inner-dimension mismatch
        segment_matmul(data, offsets, [np.ones((2, 2)), np.ones((3, 2))])
    with pytest.raises(ValueError):  # 1-D data
        segment_matmul(np.ones(4), offsets, [np.ones((3, 2))] * 2)
    with pytest.raises(ValueError):  # offsets do not cover the data
        segment_matmul(data, np.array([0, 2, 3]), [np.ones((3, 2))] * 2)
