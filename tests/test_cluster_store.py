"""Matrix push/pin (protocol v3): PinnedStore semantics + cluster recovery.

The store's contract, end to end:

* keys are content-addressed with a version component (the dynamic-graph
  invalidation hook) and namespaced by kind (CSR bundle vs. operand panel);
* the worker-side :class:`PinnedStore` is a byte-budgeted LRU whose
  eviction never touches an entry an in-flight task holds a refcount on;
* repeat cluster traffic ships a matrix's CSR buffers at most once per
  (host, content key) — task frames carry keys, not bytes;
* every degraded mode — eviction under a tiny budget, ``store_miss``,
  transport faults on the push itself, host failover, readmission — costs
  bytes or a retry, never a failed request, and results stay
  **bit-identical** to the single-host oracle;
* legacy v2 peers keep working with task-embedded operands after version
  negotiation, including inside a mixed-version cluster.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np
import pytest

from helpers import random_csr

from repro.cluster import ClusterScheduler, RetryPolicy
from repro.cluster.head import spawn_local_host
from repro.cluster.membership import HostHealth
from repro.cluster.store import (
    PinnedStore,
    StoreMissError,
    csr_store_key,
    make_store_key,
    operand_store_key,
)
from repro.formats.mebcrs import MEBCRSMatrix
from repro.precision.types import Precision, quantize
from repro.serve.scheduler import ShardScheduler
from repro.testing import FaultPlan

TIMEOUT = 120


def _workload(seed=70, n=13, rows=200, cols=180, density=0.06):
    csr = random_csr(rows, cols, density, seed=seed)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    b_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    base = ShardScheduler(workers=1).run_spmm(fmt, b_q, Precision.FP16)
    return csr, fmt, b_q, base


def _fork_ctx():
    return mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)


def _reap(process):
    if process.is_alive():
        process.terminate()
    process.join(10)


def _arr(value, length=10):
    return np.full(length, value, dtype=np.float64)  # 80 bytes per array


# ------------------------------------------------------------------ key schema
def test_store_key_schema_carries_version():
    assert make_store_key("csr", "abc", 0) == "csr/abc@0"
    assert csr_store_key("abc") == "csr/abc@0"
    # The version component is the cluster-wide invalidation hook: bumping
    # it re-keys the content without a new digest scheme.
    assert csr_store_key("abc", version=3) == "csr/abc@3"
    assert csr_store_key("abc", version=3) != csr_store_key("abc")


def test_operand_store_key_is_content_addressed():
    a = np.arange(12, dtype=np.float32)
    same = np.arange(12, dtype=np.float32)
    assert operand_store_key(a) == operand_store_key(same)
    assert operand_store_key(a).startswith("op/")
    # Content, dtype, shape and version all distinguish keys.
    assert operand_store_key(a) != operand_store_key(a + 1)
    assert operand_store_key(a) != operand_store_key(a.astype(np.float64))
    assert operand_store_key(a) != operand_store_key(a.reshape(3, 4))
    assert operand_store_key(a) != operand_store_key(a, version=1)


# ----------------------------------------------------------------- PinnedStore
def test_budget_overflow_evicts_lru_first():
    store = PinnedStore(budget_bytes=200)  # room for two 80-byte entries
    assert store.put("a", [_arr(1)]) == []
    assert store.put("b", [_arr(2)]) == []
    # Touch "a": it becomes MRU, so the next overflow evicts "b" first.
    store.acquire("a")
    store.release("a")
    assert store.put("c", [_arr(3)]) == ["b"]
    assert store.keys() == ["a", "c"]
    # Another overflow now takes "a" (LRU again after "c"'s arrival order
    # is accounted): strict least-recently-used order, oldest first.
    assert store.put("d", [_arr(4)]) == ["a"]
    assert store.keys() == ["c", "d"]
    stats = store.stats()
    assert stats["evictions"] == 2
    assert stats["pinned_bytes"] <= 200


def test_refcount_blocks_eviction_until_release():
    store = PinnedStore(budget_bytes=100)  # room for one entry
    store.put("held", [_arr(1)])
    bundles = store.acquire("held")
    np.testing.assert_array_equal(bundles[0][0], _arr(1))
    # Overflow while "held" is referenced: the store goes over budget
    # rather than pulling the buffer out from under the in-flight task.
    assert store.put("other", [_arr(2)]) == []
    assert "held" in store and "other" in store
    assert store.pinned_bytes > store.budget_bytes
    # Once released, the next put reclaims it.
    store.release("held")
    assert store.put("third", [_arr(3)]) == ["held", "other"]
    assert store.keys() == ["third"]


def test_acquire_miss_names_all_missing_and_takes_no_refcounts():
    store = PinnedStore(budget_bytes=1000)
    store.put("present", [_arr(1)])
    with pytest.raises(StoreMissError) as err:
        store.acquire("present", "gone-1", "gone-2")
    # Every missing key in one error, so the head re-pushes the full set
    # in one round instead of discovering misses one at a time.
    assert err.value.missing == ["gone-1", "gone-2"]
    # The failed acquire took no refcount on the present key: it is still
    # evictable (the all-or-nothing contract).
    store.put("big", [_arr(2, length=200)])
    assert "present" not in store


def test_put_replaces_in_place_keeping_refcount():
    store = PinnedStore(budget_bytes=1000)
    store.put("k", [_arr(1)])
    old = store.acquire("k")[0][0]
    store.put("k", [_arr(9)])  # replace while referenced
    np.testing.assert_array_equal(old, _arr(1))  # the task's view is stable
    np.testing.assert_array_equal(store.acquire("k")[0][0], _arr(9))
    store.release("k", "k")
    # Still one entry; the refcount survived the replacement, so the entry
    # was never evictable mid-flight.
    assert len(store) == 1


# ----------------------------------------------------------- wire-level saving
def test_repeat_traffic_ships_matrix_bytes_once_per_host():
    csr, fmt, b_q, base = _workload(seed=71)
    key = csr.content_key()
    with ClusterScheduler(hosts=1, speculation_delay_s=None) as sched:
        for _ in range(3):
            out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
            np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
    # One push per (host, key): the CSR bundle and the dense panel each
    # crossed the wire exactly once, every later reference was a ledger hit.
    assert snap["store_puts"] == 2
    assert snap["store_hits"] > 0
    assert snap["store_misses"] == 0
    assert snap["bytes_saved"] > 0
    assert snap["task_failures"] == 0
    # Split byte accounting: pushed bytes live under their own frame type,
    # and the (many) task frames collectively stay below the single push —
    # they carry keys, not operand buffers.
    by_type = snap["bytes_by_frame_type"]
    assert by_type["store_put"]["sent"] > 0
    assert by_type["task"]["sent"] < by_type["store_put"]["sent"]
    # The worker-reported gauges travel back in status frames.
    host_entry = next(iter(snap["hosts"].values()))
    assert host_entry["store"]["pinned_bytes"] > 0
    assert host_entry["store"]["entries"] == 2
    assert host_entry["store_puts"] == 2


def test_tiny_budget_store_miss_falls_back_without_failures():
    """A budget smaller than one bundle thrashes: push evicts push, tasks
    answer ``store_miss``, and after the bounded re-push budget the head
    embeds the operands — bytes are lost, the request never is."""
    csr, fmt, b_q, base = _workload(seed=72)
    with ClusterScheduler(
        hosts=2,
        store_bytes=1,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.01, seed=2),
        speculation_delay_s=None,
    ) as sched:
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
    assert snap["store_misses"] > 0
    assert snap["task_failures"] == 0
    assert snap["host_deaths"] == 0
    # The misses are visible per host too.
    assert any(h["store_misses"] > 0 for h in snap["hosts"].values())


def test_store_put_transport_fault_recovers_and_stays_exact():
    """A connection dropped mid-push (seeded via FaultPlan on the
    ``store_put`` frame) rides the normal SUSPECT → re-dial → resend
    machinery: the push repeats on the fresh connection."""
    csr, fmt, b_q, base = _workload(seed=73)
    key = csr.content_key()
    plan = FaultPlan(seed=3)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(seed=3),
        speculation_delay_s=None,
    ) as sched:
        victim = sched.affinity_host(key)
        plan.drop_connection(nth=1, type="store_put", scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
    assert plan.fired_kinds() == ["drop_connection"]
    assert snap["reconnects"] >= 1
    assert snap["task_failures"] == 0
    assert snap["store_puts"] >= 2  # the interrupted push was re-sent


def test_failover_after_push_re_pushes_to_fallback_host():
    """Kill the affinity host after it was pushed to: the shards fail over
    and the fallback host receives its own pushes (per-host ledgers), with
    the result bit-identical throughout."""
    csr, fmt, b_q, base = _workload(seed=74)
    key = csr.content_key()
    plan = FaultPlan(seed=4)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.01, seed=4),
        speculation_delay_s=None,
        auto_readmit=False,
    ) as sched:
        victim = sched.affinity_host(key)
        survivor = next(h for h in sched.hosts if h.host_id != victim.host_id)
        # Warm the victim: both bundles pushed there.
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        pushed_before = sched.stats_snapshot()["hosts"][victim.host_id]["store_puts"]
        assert pushed_before == 2
        # Kill it mid-request; the retry budget is exhausted by refusals.
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        plan.refuse_connect(2, scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
    assert snap["host_deaths"] == 1
    assert snap["failovers"] >= 1
    # The fallback host got the bytes pushed to *it* before its tasks ran.
    assert snap["hosts"][survivor.host_id]["store_puts"] == 2


def test_readmission_rewarm_ledger_from_reported_inventory():
    """A readmitted host's worker process survived the outage, so its
    pinned store is still warm: the warm-up pong's key inventory re-warms
    the head's ledger and repeat traffic needs **no** re-push."""
    csr, fmt, b_q, base = _workload(seed=75)
    key = csr.content_key()
    plan = FaultPlan(seed=5)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.01, seed=5),
        probe_interval_s=0.1,
        speculation_delay_s=None,
    ) as sched:
        victim = sched.affinity_host(key)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        assert sched.stats_snapshot()["hosts"][victim.host_id]["store_puts"] == 2
        # Kill the connection; one backoff re-dial and one probe dial are
        # refused, then the probe readmits.
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        plan.refuse_connect(2, scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        deadline = time.monotonic() + TIMEOUT
        while victim.state is not HostHealth.HEALTHY:
            assert time.monotonic() < deadline, "probe never readmitted the host"
            time.sleep(0.02)
        assert sched.affinity_host(key).host_id == victim.host_id
        hits_before = sched.stats_snapshot()["hosts"][victim.host_id]["store_hits"]
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        snap = sched.stats_snapshot()
    entry = snap["hosts"][victim.host_id]
    # No re-push after readmission: the ledger was re-warmed from the
    # worker's reported inventory, so the repeat request was all hits.
    assert entry["store_puts"] == 2
    assert entry["store_hits"] > hits_before
    assert snap["store_misses"] == 0


# -------------------------------------------------------------- mixed versions
def test_all_v2_cluster_embeds_operands_and_stays_exact():
    csr, fmt, b_q, base = _workload(seed=76)
    with ClusterScheduler(
        hosts=2, worker_protocol_version=2, speculation_delay_s=None
    ) as sched:
        for _ in range(2):
            out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
            np.testing.assert_array_equal(out, base)
        assert all(h.client.wire_version == 2 for h in sched.hosts)
        snap = sched.stats_snapshot()
    # Negotiated down to v2: no pushes, no references — every task frame
    # carried the operand bytes, exactly as before protocol v3.
    assert snap["store_puts"] == 0
    assert snap["store_hits"] == 0
    assert "store_put" not in snap["bytes_by_frame_type"]
    assert snap["task_failures"] == 0


def test_mixed_version_cluster_v2_and_v3_hosts_coexist():
    """One legacy (v2-capped) host joined to a v3 cluster: keys routed to
    it are served with embedded operands, keys routed to the v3 host are
    served by reference — both bit-identical, in the same cluster."""
    ctx = _fork_ctx()
    process, address = spawn_local_host(ctx, "legacy", protocol_version=2)
    try:
        with ClusterScheduler(hosts=1, speculation_delay_s=None) as sched:
            legacy = sched.add_host(address)
            assert legacy.client.wire_version == 2
            modern = next(h for h in sched.hosts if h.host_id != legacy.host_id)
            assert modern.client.wire_version >= 3
            # Find one workload routed to each host.
            routed = {}
            for seed in range(77, 99):
                csr, fmt, b_q, base = _workload(seed=seed)
                target = sched.affinity_host(csr.content_key()).host_id
                routed.setdefault(target, (csr, fmt, b_q, base))
                if len(routed) == 2:
                    break
            assert len(routed) == 2, "seeds never spread over both hosts"
            for csr, fmt, b_q, base in routed.values():
                out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
                np.testing.assert_array_equal(out, base)
            snap = sched.stats_snapshot()
        # The v3 host was pushed to; the legacy host never was.
        assert snap["hosts"][modern.host_id]["store_puts"] == 2
        assert snap["hosts"][legacy.host_id]["store_puts"] == 0
        assert snap["task_failures"] == 0
    finally:
        _reap(process)
