"""Tests for row-window / nonzero-vector partitioning."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.windows import partition_windows

from helpers import random_csr


def dense_reference_partition(dense: np.ndarray, vector_size: int):
    """Brute-force reference: nonzero vectors per window from the dense matrix."""
    n_rows, n_cols = dense.shape
    num_windows = -(-n_rows // vector_size)
    vectors = []
    for w in range(num_windows):
        block = dense[w * vector_size : (w + 1) * vector_size]
        cols = np.nonzero((block != 0).any(axis=0))[0]
        vectors.append(cols)
    return vectors


@pytest.mark.parametrize("vector_size", [8, 16])
def test_partition_matches_dense_reference(small_csr, vector_size):
    part = partition_windows(small_csr, vector_size)
    reference = dense_reference_partition(small_csr.to_dense(), vector_size)
    assert part.num_windows == len(reference)
    for w, cols in enumerate(reference):
        np.testing.assert_array_equal(part.window_columns(w), cols)


@pytest.mark.parametrize("vector_size", [8, 16])
def test_vector_counts_and_zero_fill(medium_csr, vector_size):
    part = partition_windows(medium_csr, vector_size)
    assert part.num_nonzero_vectors == part.vectors_per_window.sum()
    assert part.zero_fill == part.num_nonzero_vectors * vector_size - medium_csr.nnz
    assert part.zero_fill >= 0
    assert part.nnz == medium_csr.nnz


def test_smaller_vector_size_never_increases_zero_fill(medium_csr):
    """The motivation of Table 2: 8x1 stores no more zeros than 16x1."""
    fill8 = partition_windows(medium_csr, 8).zero_fill
    fill16 = partition_windows(medium_csr, 16).zero_fill
    assert fill8 <= fill16


def test_nnz_vector_of_entry_maps_each_nonzero_to_its_vector(small_csr):
    part = partition_windows(small_csr, 8)
    rows = np.repeat(np.arange(small_csr.n_rows), np.diff(small_csr.indptr).astype(int))
    cols = small_csr.indices
    for e in range(small_csr.nnz):
        vec = int(part.nnz_vector_of_entry[e])
        # The vector's column must equal the entry's column and its window must
        # contain the entry's row.
        assert part.vector_cols[vec] == cols[e]
        window = np.searchsorted(part.window_ptr, vec, side="right") - 1
        assert window == rows[e] // 8


def test_tc_block_counts(small_csr):
    part = partition_windows(small_csr, 8)
    for k in (4, 8):
        per_window = part.tc_blocks_per_window(k)
        expected = np.ceil(part.vectors_per_window / k).astype(int)
        np.testing.assert_array_equal(per_window, expected)
        assert part.num_tc_blocks(k) == expected.sum()


def test_padded_vectors(small_csr):
    part = partition_windows(small_csr, 8)
    for k in (4, 8):
        pads = part.padded_vectors(k)
        assert pads == int((part.tc_blocks_per_window(k) * k - part.vectors_per_window).sum())
        assert 0 <= pads <= part.num_tc_blocks(k) * (k - 1)


def test_window_row_range_clips_last_window():
    csr = random_csr(21, 16, 0.2, seed=5)
    part = partition_windows(csr, 8)
    assert part.num_windows == 3
    assert part.window_row_range(0) == (0, 8)
    assert part.window_row_range(2) == (16, 21)


def test_empty_matrix_partition():
    csr = CSRMatrix(np.zeros(9, dtype=np.int64), np.zeros(0, np.int32), np.zeros(0), (8, 8))
    part = partition_windows(csr, 8)
    assert part.num_windows == 1
    assert part.num_nonzero_vectors == 0
    assert part.zero_fill == 0
    assert part.window_columns(0).size == 0


def test_invalid_vector_size():
    csr = random_csr(8, 8, 0.5)
    with pytest.raises(ValueError):
        partition_windows(csr, 0)


def test_vector_size_mismatch_in_stats_raises(small_csr):
    from repro.formats.stats import vector_stats

    part = partition_windows(small_csr, 8)
    with pytest.raises(ValueError):
        vector_stats(part, 16)


def test_columns_sorted_within_window(medium_csr):
    part = partition_windows(medium_csr, 8)
    for w in range(part.num_windows):
        cols = part.window_columns(w)
        assert np.all(np.diff(cols) > 0)


def test_dense_matrix_single_window():
    dense = np.ones((8, 8))
    part = partition_windows(CSRMatrix.from_dense(dense), 8)
    assert part.num_windows == 1
    assert part.num_nonzero_vectors == 8
    assert part.zero_fill == 0
