"""Overload-safety regression suite for the serving frontend.

Covers the failure modes a server must survive when offered load exceeds
capacity or a component dies mid-flight:

* bounded admission (``max_queue_depth`` with the ``"reject"`` and
  ``"block"`` policies),
* request deadlines (queued work shed with ``ServeTimeoutError`` *before*
  execution),
* the dispatcher crash guard (a fault outside the per-group execution
  guard must fail every pending future, flip ``Server.healthy`` and fail
  fast on later submits — never strand a client),
* drain-aware shutdown (``close`` must not tear the scheduler's pool down
  under an in-flight batch; a bounded ``close`` surfaces the expiry
  instead of abandoning the drain),
* the scheduler's stats counters under concurrent snapshots, and
* LRU (not wholesale) eviction of the server's plan cache.

The dispatcher is blocked *deterministically* by wrapping the server's
``_execute_group`` with an event gate — no sleep-based races.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from helpers import random_csr

from repro.core.api import spmm
from repro.formats.cache import cached_mebcrs
from repro.serve import (
    DispatcherCrashedError,
    ServeTimeoutError,
    Server,
    ServerClosedError,
    ServerOverloadedError,
    ShardScheduler,
)

TIMEOUT = 120


@pytest.fixture()
def workload():
    csr = random_csr(120, 110, 0.08, seed=7)
    b = np.random.default_rng(7).standard_normal((110, 12))
    return csr, b


class _Gate:
    """Deterministic dispatcher block: the wrapped ``_execute_group`` signals
    ``entered`` and parks on ``release`` before running the real execution."""

    def __init__(self, server: Server):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._original = server._execute_group
        server._execute_group = self  # instance attribute shadows the method

    def __call__(self, group):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(TIMEOUT), "gate never released"
        self._original(group)


def _wait_until(predicate, timeout=TIMEOUT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError("condition not reached in time")


# ---------------------------------------------------------------- admission
def test_reject_policy_fails_fast_at_queue_cap(workload):
    csr, b = workload
    with Server(workers=1, max_queue_depth=2, admission="reject") as srv:
        gate = _Gate(srv)
        running = srv.submit_spmm(csr, b)  # drained immediately, parks at the gate
        gate.entered.wait(TIMEOUT)
        queued = [srv.submit_spmm(csr, b) for _ in range(2)]  # fills the queue
        with pytest.raises(ServerOverloadedError):
            srv.submit_spmm(csr, b)
        with pytest.raises(ServerOverloadedError):
            srv.submit_sddmm(csr, np.ones((120, 4)), np.ones((110, 4)))
        assert srv.snapshot().requests_rejected == 2
        gate.release.set()
        for fut in [running, *queued]:
            np.testing.assert_array_equal(fut.result(TIMEOUT).values, spmm(csr, b).values)
    snap = srv.snapshot()
    assert snap.requests_submitted == 3
    assert snap.requests_completed == 3
    assert snap.requests_rejected == 2
    assert snap.requests_shed == 2
    assert snap.in_flight == 0


def test_block_policy_parks_submitter_until_a_slot_frees(workload):
    csr, b = workload
    with Server(workers=1, max_queue_depth=1, admission="block") as srv:
        gate = _Gate(srv)
        first = srv.submit_spmm(csr, b)  # drained, parked at the gate
        gate.entered.wait(TIMEOUT)
        second = srv.submit_spmm(csr, b)  # occupies the single queue slot

        blocked_result = {}

        def blocked_submit():
            blocked_result["future"] = srv.submit_spmm(csr, b)

        t = threading.Thread(target=blocked_submit)
        t.start()
        time.sleep(0.1)
        assert t.is_alive(), "block-policy submitter should be parked at the full queue"
        gate.release.set()
        t.join(TIMEOUT)
        assert not t.is_alive()
        for fut in (first, second, blocked_result["future"]):
            np.testing.assert_array_equal(fut.result(TIMEOUT).values, spmm(csr, b).values)
    assert srv.snapshot().requests_completed == 3


def test_blocked_submitter_wakes_on_close(workload):
    csr, b = workload
    srv = Server(workers=1, max_queue_depth=1, admission="block")
    gate = _Gate(srv)
    first = srv.submit_spmm(csr, b)
    gate.entered.wait(TIMEOUT)
    srv.submit_spmm(csr, b)  # fills the queue

    outcome = {}

    def blocked_submit():
        try:
            outcome["future"] = srv.submit_spmm(csr, b)
        except ServerClosedError as exc:
            outcome["error"] = exc

    t = threading.Thread(target=blocked_submit)
    t.start()
    time.sleep(0.1)
    assert t.is_alive()
    gate.release.set()
    srv.close(wait=True)
    t.join(TIMEOUT)
    # The parked submitter either squeezed in before the close (its request
    # then drains) or was woken and refused — never left hanging.
    assert "future" in outcome or isinstance(outcome.get("error"), ServerClosedError)
    assert first.result(TIMEOUT) is not None


def test_admission_parameters_validated():
    with pytest.raises(ValueError):
        Server(workers=1, admission="drop-newest")
    with pytest.raises(ValueError):
        Server(workers=1, max_queue_depth=0)


# ----------------------------------------------------------------- deadlines
def test_deadline_sheds_queued_request_before_execution(workload):
    csr, b = workload
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        running = srv.submit_spmm(csr, b)
        gate.entered.wait(TIMEOUT)
        doomed = srv.submit_spmm(csr, b, timeout=0.05)
        alive = srv.submit_spmm(csr, b)  # no deadline: must still complete
        time.sleep(0.1)  # let the deadline lapse while the dispatcher is busy
        gate.release.set()
        with pytest.raises(ServeTimeoutError):
            doomed.result(TIMEOUT)
        np.testing.assert_array_equal(running.result(TIMEOUT).values, spmm(csr, b).values)
        np.testing.assert_array_equal(alive.result(TIMEOUT).values, spmm(csr, b).values)
        # The shed request never reached execution: the gate saw only the
        # two surviving engine passes.
        _wait_until(lambda: srv.snapshot().requests_completed == 2)
        assert gate.calls == 2
    snap = srv.snapshot()
    assert snap.requests_timed_out == 1
    assert snap.requests_completed == 2
    assert snap.in_flight == 0
    # The shed request's queue wait is recorded (the overload diagnostic).
    assert snap.queue_wait.count >= 1


def test_unexpired_deadline_completes_normally(workload):
    csr, b = workload
    with Server(workers=1) as srv:
        res = srv.submit_spmm(csr, b, timeout=30.0).result(TIMEOUT)
        np.testing.assert_array_equal(res.values, spmm(csr, b).values)
    assert srv.snapshot().requests_timed_out == 0


def test_cancelled_expired_request_dropped_without_poisoning_batch(workload):
    """A queued request that is client-cancelled *and* deadline-expired must
    be dropped at dispatch — executing it would ``set_result`` on a done
    future (``InvalidStateError``) and fail every co-batched request."""
    csr, b = workload
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        running = srv.submit_spmm(csr, b)
        gate.entered.wait(TIMEOUT)
        doomed = srv.submit_spmm(csr, b, timeout=0.05)
        sibling = srv.submit_spmm(csr, b)  # same matrix: batches with doomed
        assert doomed.cancel()  # never dispatched, so cancel succeeds
        time.sleep(0.1)  # deadline lapses while the dispatcher is parked
        gate.release.set()
        np.testing.assert_array_equal(running.result(TIMEOUT).values, spmm(csr, b).values)
        np.testing.assert_array_equal(sibling.result(TIMEOUT).values, spmm(csr, b).values)
        assert doomed.cancelled()
    # Dropped, not shed: its outcome was already settled by the client.
    assert srv.snapshot().requests_timed_out == 0


def test_nonpositive_timeout_rejected(workload):
    csr, b = workload
    with Server(workers=1) as srv:
        with pytest.raises(ValueError):
            srv.submit_spmm(csr, b, timeout=0.0)


# --------------------------------------------------------------- crash guard
def test_dispatcher_crash_fails_every_pending_future(workload):
    csr, b = workload
    srv = Server(workers=1)
    gate = _Gate(srv)
    running = srv.submit_spmm(csr, b)
    gate.entered.wait(TIMEOUT)
    pending = [srv.submit_spmm(csr, b) for _ in range(3)]

    boom = RuntimeError("injected grouping fault")

    def bad_group(requests):
        raise boom

    srv._group = bad_group  # fault *outside* the per-group execution guard
    gate.release.set()

    # The running request was already past grouping and resolves normally…
    np.testing.assert_array_equal(running.result(TIMEOUT).values, spmm(csr, b).values)
    # …every queued request resolves with the crash (cause attached), not a hang.
    for fut in pending:
        with pytest.raises(DispatcherCrashedError) as excinfo:
            fut.result(TIMEOUT)
        assert excinfo.value.__cause__ is boom
    _wait_until(lambda: not srv.healthy)
    with pytest.raises(DispatcherCrashedError):
        srv.submit_spmm(csr, b)
    snap = srv.snapshot()
    assert snap.requests_failed == 3
    assert snap.in_flight == 0
    assert snap.queue_depth == 0
    assert snap.meta["healthy"] is False
    srv.close()  # shutdown after a crash is clean and idempotent
    srv.close()


def test_metrics_fault_does_not_strand_futures(workload):
    """The ISSUE's exact scenario: a metrics call (not the engine) raising
    inside the dispatch loop must still resolve every future."""
    csr, b = workload
    srv = Server(workers=1)
    gate = _Gate(srv)
    running = srv.submit_spmm(csr, b)
    gate.entered.wait(TIMEOUT)
    pending = [srv.submit_spmm(csr, b) for _ in range(2)]
    srv.metrics.record_dequeued = None  # TypeError on the next drain
    gate.release.set()
    running.result(TIMEOUT)
    for fut in pending:
        with pytest.raises(DispatcherCrashedError):
            fut.result(TIMEOUT)
    _wait_until(lambda: not srv.healthy)
    srv.close()


# ------------------------------------------------------------------ shutdown
def test_close_does_not_yank_pool_under_inflight_batch(workload):
    csr, b = workload
    srv = Server(workers=2)
    gate = _Gate(srv)
    fut = srv.submit_spmm(csr, b)
    gate.entered.wait(TIMEOUT)
    # Bounded close while the batch is in flight: the expiry is surfaced,
    # the drain (and the pool) keep running.
    with pytest.raises(ServeTimeoutError):
        srv.close(wait=True, timeout=0.05)
    assert srv._dispatcher.is_alive()
    gate.release.set()
    srv.close(wait=True)  # now drains fully
    assert not srv._dispatcher.is_alive()
    # The in-flight batch finished against a live pool: exact result.
    np.testing.assert_array_equal(fut.result(TIMEOUT).values, spmm(csr, b).values)
    # Teardown is ordered: the pool is released only after the drain.
    assert srv.scheduler._pool is None


def test_close_nowait_still_tears_pool_down_after_drain(workload):
    csr, b = workload
    srv = Server(workers=1)
    futures = [srv.submit_spmm(csr, b) for _ in range(3)]
    srv.close(wait=False)  # returns immediately; the dispatcher owns teardown
    for fut in futures:
        np.testing.assert_array_equal(fut.result(TIMEOUT).values, spmm(csr, b).values)
    _wait_until(lambda: not srv._dispatcher.is_alive())
    assert srv.scheduler._pool is None


# ------------------------------------------------------------- stats / plans
def test_scheduler_stats_are_lock_guarded():
    sched = ShardScheduler(workers=1)
    threads = [
        threading.Thread(target=lambda: [sched._count("shards") for _ in range(2000)])
        for _ in range(8)
    ]
    stop = threading.Event()
    seen_bad = []

    def reader():
        while not stop.is_set():
            snap = sched.stats_snapshot()
            if set(snap) != {"shards", "retries", "fallbacks", "requests"} or any(
                not isinstance(v, int) or v < 0 for v in snap.values()
            ):
                seen_bad.append(snap)

    r = threading.Thread(target=reader)
    r.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    r.join()
    assert not seen_bad
    # No lost updates: the lock makes the read-modify-write atomic.
    assert sched.stats_snapshot()["shards"] == 8 * 2000


def test_server_snapshot_reads_scheduler_stats_safely(workload):
    csr, b = workload
    with Server(workers=1) as srv:
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                snap = srv.snapshot()
                assert snap.meta["scheduler"]["shards"] >= 0

        t = threading.Thread(target=hammer)
        t.start()
        for _ in range(10):
            srv.submit_spmm(csr, b).result(TIMEOUT)
        stop.set()
        t.join(TIMEOUT)
    assert srv.snapshot().meta["scheduler"]["requests"] == 10


def test_plan_cache_evicts_lru_not_wholesale():
    csr = random_csr(96, 96, 0.1, seed=3)
    srv = Server(workers=1)
    try:
        fmt = cached_mebcrs(csr, srv.precision, by_content=True)
        srv._plan_capacity = 4
        hot_key = ("spmm", id(fmt), 8, srv.hosts)
        hot_plan = srv._plan_for(fmt, "spmm", 8)
        # Seven cold widths overflow a capacity-4 cache; the hot key is
        # touched between insertions, so LRU must keep it.
        for width in (1, 2, 3, 4, 5, 6, 7):
            srv._plan_for(fmt, "spmm", width)
            assert srv._plan_for(fmt, "spmm", 8) is hot_plan
        assert len(srv._plans) <= 4
        assert hot_key in srv._plans
        # The coldest width was evicted; re-planning it is a fresh entry.
        assert ("spmm", id(fmt), 1, srv.hosts) not in srv._plans
    finally:
        srv.close()


def test_plan_cache_hot_key_survives_default_capacity_overflow():
    """Same property against the real capacity bound (no wholesale clear)."""
    csr = random_csr(64, 64, 0.1, seed=5)
    srv = Server(workers=1)
    try:
        fmt = cached_mebcrs(csr, srv.precision, by_content=True)
        hot_plan = srv._plan_for(fmt, "spmm", 16)
        for width in range(1, srv._plan_capacity + 10):
            if width == 16:
                continue
            srv._plan_for(fmt, "spmm", width)
            srv._plan_for(fmt, "spmm", 16)
        assert srv._plan_for(fmt, "spmm", 16) is hot_plan
        assert len(srv._plans) <= srv._plan_capacity
    finally:
        srv.close()
