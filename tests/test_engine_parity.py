"""Parity of the batched execution engine against the reference loops.

The contract (see :mod:`repro.kernels`): for every kernel, precision and
sparsity structure, ``engine="batched"`` must produce

* the same numeric values as ``engine="reference"`` up to FP32
  accumulation-order round-off, and
* *exactly* the same :class:`~repro.gpu.counters.CostCounter` state,
  field for field.

The structures below deliberately cover empty windows, residue (narrower
than ``k``) blocks, partial trailing windows, and dense widths that are not
multiples of the 16-column MMA tile.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.formats.blocked import BlockedVectorFormat
from repro.formats.cache import cached_mebcrs, clear_format_cache, format_cache_size
from repro.formats.csr import CSRMatrix
from repro.formats.mebcrs import MEBCRSMatrix
from repro.gpu.counters import CostCounter
from repro.kernels.common import FlashSparseConfig
from repro.kernels.sddmm_flash import sddmm_flash_execute
from repro.kernels.sddmm_tcu16 import sddmm_tcu16_execute
from repro.kernels.spmm_flash import spmm_flash_execute
from repro.kernels.spmm_tcu16 import spmm_tcu16_execute

PRECISIONS = ("fp16", "tf32")
#: Dense widths straddling the 16-column tile and 8/4-wide K chunks.
SPMM_WIDTHS = (1, 17, 48)
SDDMM_WIDTHS = (3, 20, 64)


def _matrix_with_empty_windows() -> CSRMatrix:
    """Rows 0-7 and 40-44 populated; windows in between completely empty."""
    dense = np.zeros((45, 30))
    rng = np.random.default_rng(5)
    dense[0:8, ::3] = rng.standard_normal((8, 10))
    dense[40:45, 1::7] = rng.standard_normal((5, 5))
    return CSRMatrix.from_dense(dense)


def _single_vector_matrix() -> CSRMatrix:
    """One nonzero: a single residue block of width 1 in a partial window."""
    dense = np.zeros((11, 9))
    dense[10, 4] = 2.5
    return CSRMatrix.from_dense(dense)


def _empty_matrix() -> CSRMatrix:
    return CSRMatrix(
        indptr=np.zeros(25, dtype=np.int64),
        indices=np.zeros(0, dtype=np.int32),
        data=np.zeros(0, dtype=np.float32),
        shape=(24, 18),
    )


MATRICES = {
    "medium": lambda: random_csr(120, 90, 0.06, seed=13),
    "skewed": lambda: random_csr(64, 200, 0.02, seed=2),
    "empty-windows": _matrix_with_empty_windows,
    "single-vector": _single_vector_matrix,
    "all-zero": _empty_matrix,
}


def _configs(precision: str, swap: bool) -> tuple[FlashSparseConfig, FlashSparseConfig]:
    batched = FlashSparseConfig(precision=precision, swap_and_transpose=swap, engine="batched")
    reference = FlashSparseConfig(precision=precision, swap_and_transpose=swap, engine="reference")
    return batched, reference


def _assert_counters_identical(batched: CostCounter, reference: CostCounter) -> None:
    assert batched.as_dict() == reference.as_dict()
    # as_dict() covers every field, but be explicit about the two dict-valued
    # counters since they are the easiest to get only approximately right.
    assert batched.mma_invocations == reference.mma_invocations
    assert batched.load_transactions == reference.load_transactions
    assert batched.store_transactions == reference.store_transactions


@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("name", sorted(MATRICES))
@pytest.mark.parametrize("n_dense", SPMM_WIDTHS)
def test_spmm_flash_engine_parity(name, precision, n_dense, rng):
    csr = MATRICES[name]()
    b = rng.standard_normal((csr.n_cols, n_dense))
    batched_cfg, reference_cfg = _configs(precision, swap=True)
    res_b = spmm_flash_execute(csr, b, batched_cfg)
    res_r = spmm_flash_execute(csr, b, reference_cfg)
    np.testing.assert_allclose(res_b.values, res_r.values, atol=1e-4, rtol=1e-4)
    _assert_counters_identical(res_b.counter, res_r.counter)
    assert res_b.meta["engine"] == "batched"
    assert res_r.meta["engine"] == "reference"


@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("name", sorted(MATRICES))
@pytest.mark.parametrize("n_dense", SPMM_WIDTHS)
def test_spmm_tcu16_engine_parity(name, precision, n_dense, rng):
    csr = MATRICES[name]()
    b = rng.standard_normal((csr.n_cols, n_dense))
    batched_cfg, reference_cfg = _configs(precision, swap=False)
    res_b = spmm_tcu16_execute(csr, b, batched_cfg)
    res_r = spmm_tcu16_execute(csr, b, reference_cfg)
    np.testing.assert_allclose(res_b.values, res_r.values, atol=1e-4, rtol=1e-4)
    _assert_counters_identical(res_b.counter, res_r.counter)


@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("name", sorted(MATRICES))
@pytest.mark.parametrize("k_dense", SDDMM_WIDTHS)
@pytest.mark.parametrize("scale_by_mask", (False, True))
def test_sddmm_flash_engine_parity(name, precision, k_dense, scale_by_mask, rng):
    csr = MATRICES[name]()
    a = rng.standard_normal((csr.n_rows, k_dense))
    b = rng.standard_normal((csr.n_cols, k_dense))
    batched_cfg, reference_cfg = _configs(precision, swap=True)
    res_b = sddmm_flash_execute(csr, a, b, batched_cfg, scale_by_mask=scale_by_mask)
    res_r = sddmm_flash_execute(csr, a, b, reference_cfg, scale_by_mask=scale_by_mask)
    np.testing.assert_allclose(
        res_b.output.vector_values, res_r.output.vector_values, atol=1e-4, rtol=1e-4
    )
    _assert_counters_identical(res_b.counter, res_r.counter)


@pytest.mark.parametrize("precision", PRECISIONS)
@pytest.mark.parametrize("name", sorted(MATRICES))
@pytest.mark.parametrize("k_dense", SDDMM_WIDTHS)
def test_sddmm_tcu16_engine_parity(name, precision, k_dense, rng):
    csr = MATRICES[name]()
    a = rng.standard_normal((csr.n_rows, k_dense))
    b = rng.standard_normal((csr.n_cols, k_dense))
    batched_cfg, reference_cfg = _configs(precision, swap=False)
    res_b = sddmm_tcu16_execute(csr, a, b, batched_cfg)
    res_r = sddmm_tcu16_execute(csr, a, b, reference_cfg)
    np.testing.assert_allclose(
        res_b.output.vector_values, res_r.output.vector_values, atol=1e-4, rtol=1e-4
    )
    _assert_counters_identical(res_b.counter, res_r.counter)


# ---------------------------------------------------------------------------
# Engine plumbing
# ---------------------------------------------------------------------------
def test_batched_is_the_default_engine():
    assert FlashSparseConfig().engine == "batched"


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        FlashSparseConfig(engine="warp-specialized")


def test_blocks_as_arrays_matches_per_block_accessors():
    csr = random_csr(70, 50, 0.08, seed=21)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    batch = fmt.blocks_as_arrays()
    assert batch.num_blocks == fmt.num_tc_blocks
    b = 0
    for w in range(fmt.num_windows):
        for blk in range(fmt.window_blocks(w)):
            cols = fmt.block_columns(w, blk)
            values = fmt.block_values(w, blk)
            width = cols.shape[0]
            assert batch.window_of_block[b] == w
            assert batch.widths[b] == width
            np.testing.assert_array_equal(batch.columns[b, :width], cols)
            np.testing.assert_allclose(
                batch.values[b, :, :width], np.asarray(values, dtype=np.float32)
            )
            # Padded lanes are zero-filled, exactly like the loop's registers.
            assert not batch.lane_valid[b, width:].any()
            assert not batch.values[b, :, width:].any()
            b += 1
    assert b == batch.num_blocks


def test_blocks_as_arrays_is_cached_per_group():
    csr = random_csr(40, 40, 0.1, seed=3)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    assert fmt.blocks_as_arrays() is fmt.blocks_as_arrays()
    assert fmt.blocks_as_arrays(16) is fmt.blocks_as_arrays(16)
    assert fmt.blocks_as_arrays(16) is not fmt.blocks_as_arrays()


def test_format_conversion_cache_reuses_translations():
    clear_format_cache()
    csr = random_csr(48, 48, 0.1, seed=9)
    first = cached_mebcrs(csr, "fp16")
    assert cached_mebcrs(csr, "fp16") is first
    assert cached_mebcrs(csr, "tf32") is not first
    assert format_cache_size() == 2
    # A structurally identical but distinct CSR object is translated afresh.
    other = CSRMatrix(csr.indptr.copy(), csr.indices.copy(), csr.data.copy(), csr.shape)
    assert cached_mebcrs(other, "fp16") is not first
    clear_format_cache()
    assert format_cache_size() == 0


def test_bulk_counter_updates_match_scalar_updates():
    widths = np.array([8, 8, 3, 1], dtype=np.int64)
    tx = -(-(8 * widths * 2) // 32)
    useful = 8 * widths * 2
    bulk = CostCounter()
    bulk.add_load_bulk(32, tx, useful)
    bulk.add_store_bulk(32, tx, useful)
    scalar = CostCounter()
    for t, u in zip(tx, useful):
        scalar.add_load(32, int(t), useful_bytes=int(u))
        scalar.add_store(32, int(t), useful_bytes=int(u))
    assert bulk.as_dict() == scalar.as_dict()


def test_sddmm_output_format_matches_reference_structure():
    csr = random_csr(56, 60, 0.07, seed=17)
    a = np.random.default_rng(1).standard_normal((56, 24))
    b = np.random.default_rng(2).standard_normal((60, 24))
    res = sddmm_flash_execute(csr, a, b, FlashSparseConfig(precision="fp16"))
    assert isinstance(res.output, BlockedVectorFormat)
    # Every stored nonzero position carries the sampled dot product.
    ref = sddmm_flash_execute(
        csr, a, b, FlashSparseConfig(precision="fp16", engine="reference")
    )
    np.testing.assert_allclose(
        res.output.to_dense(), ref.output.to_dense(), atol=1e-4, rtol=1e-4
    )
