"""Multi-host cluster scheduler: parity grid, affinity, failure recovery.

The headline contract mirrors the single-host scheduler's, one level up:
cluster execution is **bit-identical** to the single-process one-shot path
for both kernels, across formats (ME-BCRS and SGT16), shard counts and
host counts — through real worker-host subprocesses and a real TCP
transport — and a host killed mid-shard loses no request: its shards fail
over to the survivors and the result is still exact.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from helpers import random_csr

from repro.cluster import ClusterScheduler
from repro.core.api import spmm as api_spmm
from repro.formats.mebcrs import MEBCRSMatrix
from repro.formats.sgt16 import SGT16Matrix
from repro.kernels.sddmm_flash import VECTORS_PER_OUTPUT_BLOCK as FLASH_GROUP
from repro.kernels.sddmm_tcu16 import VECTORS_PER_OUTPUT_BLOCK as TCU16_GROUP
from repro.precision.types import Precision, quantize
from repro.serve.scheduler import ShardScheduler
from repro.serve.server import Server

TIMEOUT = 120

#: Shard-size grid: single-block shards, a prime straddling windows, and
#: larger-than-batch (single shard).
TARGETS = (1, 7, 10_000)

_FORMATS = {
    "mebcrs": (MEBCRSMatrix, FLASH_GROUP),
    "sgt16": (SGT16Matrix, TCU16_GROUP),
}


def _workload(fmt_name="mebcrs", seed=4, n=33, rows=300, cols=280, density=0.05):
    cls, group = _FORMATS[fmt_name]
    csr = random_csr(rows, cols, density, seed=seed)
    fmt = cls.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    b_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    a_q = quantize(rng.standard_normal((rows, n)), Precision.FP16).astype(np.float32)
    ref = ShardScheduler(workers=1)
    base = ref.run_spmm(fmt, b_q, Precision.FP16)
    sbase = ref.run_sddmm(fmt, a_q, b_q, Precision.FP16, group)
    return csr, fmt, group, a_q, b_q, base, sbase


# One two-host cluster per module: host spawn is the slow part.  The
# failure-injection tests that kill hosts build their own clusters.
@pytest.fixture(scope="module")
def cluster():
    with ClusterScheduler(hosts=2) as scheduler:
        yield scheduler


# -------------------------------------------------------------- parity grid
@pytest.mark.parametrize("fmt_name", ["mebcrs", "sgt16"])
@pytest.mark.parametrize("target", TARGETS)
def test_spmm_cluster_parity_grid(cluster, fmt_name, target):
    csr, fmt, _, _, b_q, base, _ = _workload(fmt_name)
    out = cluster.run_spmm(
        fmt, b_q, Precision.FP16, target_blocks=target, csr=csr
    )
    np.testing.assert_array_equal(out, base)


@pytest.mark.parametrize("fmt_name", ["mebcrs", "sgt16"])
@pytest.mark.parametrize("target", (1, 10_000))
def test_sddmm_cluster_parity_grid(cluster, fmt_name, target):
    csr, fmt, group, a_q, b_q, _, sbase = _workload(fmt_name)
    vals = cluster.run_sddmm(
        fmt, a_q, b_q, Precision.FP16, group, target_blocks=target, csr=csr
    )
    np.testing.assert_array_equal(vals, sbase)


def test_single_host_cluster_parity():
    csr, fmt, group, a_q, b_q, base, sbase = _workload(seed=9)
    with ClusterScheduler(hosts=1) as one:
        out = one.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        vals = one.run_sddmm(
            fmt, a_q, b_q, Precision.FP16, group, target_blocks=7, csr=csr
        )
        np.testing.assert_array_equal(vals, sbase)
        assert one.stats_snapshot()["inline_fallbacks"] == 0


def test_zero_host_cluster_degrades_to_in_parent():
    """A cluster with no worker hosts is the degenerate single-host setup:
    every shard runs in-parent, still bit-identically."""
    csr, fmt, group, a_q, b_q, base, sbase = _workload(seed=10)
    with ClusterScheduler(hosts=0) as none:
        out = none.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        vals = none.run_sddmm(
            fmt, a_q, b_q, Precision.FP16, group, target_blocks=7, csr=csr
        )
        np.testing.assert_array_equal(vals, sbase)
        snap = none.stats_snapshot()
        assert snap["inline_fallbacks"] == snap["shards"] > 0
        assert snap["tasks_sent"] == 0


def test_scale_by_mask_parity(cluster):
    csr, fmt, group, a_q, b_q, _, _ = _workload(seed=11)
    ref = ShardScheduler(workers=1).run_sddmm(
        fmt, a_q, b_q, Precision.FP16, group, scale_by_mask=True
    )
    vals = cluster.run_sddmm(
        fmt,
        a_q,
        b_q,
        Precision.FP16,
        group,
        scale_by_mask=True,
        target_blocks=5,
        csr=csr,
    )
    np.testing.assert_array_equal(vals, ref)


def test_degenerate_empty_matrix(cluster):
    empty_csr = random_csr(24, 18, 0.0, ensure_nonempty=False, seed=1)
    fmt = MEBCRSMatrix.from_csr(empty_csr, precision="fp16")
    out = cluster.run_spmm(
        fmt, np.ones((18, 5), np.float32), Precision.FP16, csr=empty_csr
    )
    assert out.shape == (24, 5) and not out.any()


def test_identity_derived_from_format_when_csr_omitted(cluster):
    """Direct callers may omit the CSR payload; the head reconstructs it
    from the blocked format and the result stays exact."""
    _, fmt, _, _, b_q, base, _ = _workload(seed=12)
    out = cluster.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7)
    np.testing.assert_array_equal(out, base)


# ---------------------------------------------------------------- affinity
def test_content_affinity_routes_repeats_to_one_host_and_hits_its_cache():
    csr, fmt, _, _, b_q, base, _ = _workload(seed=13)
    with ClusterScheduler(hosts=2) as fresh:
        key = csr.content_key()
        target = fresh.affinity_host(key)
        for _ in range(3):
            out = fresh.run_spmm(
                fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key
            )
            np.testing.assert_array_equal(out, base)
        snap = fresh.metrics.snapshot()
        per_host = snap["hosts"]
        # Every task went to the affinity host; the other host saw none.
        others = [h for h in per_host if h != target.host_id]
        assert per_host[target.host_id]["tasks_sent"] == snap["tasks_sent"] > 0
        for other in others:
            assert per_host[other]["tasks_sent"] == 0
        # The host's own translation cache dedups across tasks: one miss
        # (the first shard) and a hit for every later shard of the matrix.
        cache = fresh.metrics.remote_cache_stats()
        assert cache.misses == 1
        assert cache.hits == snap["tasks_sent"] - 1
        assert cache.hit_rate > 0.8


# ----------------------------------------------------------- host failures
def test_kill_host_mid_shard_fails_over_bit_identically():
    csr, fmt, _, _, b_q, base, _ = _workload(seed=14)
    key = csr.content_key()
    with ClusterScheduler(hosts=2) as fresh:
        victim = fresh.affinity_host(key)
        fresh.inject_task_delay_s = 1.0  # hold the shard in flight
        result = {}
        t = threading.Thread(
            target=lambda: result.update(
                out=fresh.run_spmm(
                    fmt, b_q, Precision.FP16, target_blocks=30, csr=csr, content_key=key
                )
            )
        )
        t.start()
        deadline = time.monotonic() + TIMEOUT
        while fresh.metrics.snapshot()["tasks_sent"] < 1:
            assert time.monotonic() < deadline, "no task ever reached the victim"
            time.sleep(0.01)
        victim.process.kill()  # SIGKILL: no goodbye, the socket just resets
        t.join(TIMEOUT)
        assert not t.is_alive(), "run_spmm hung after the host died"
        np.testing.assert_array_equal(result["out"], base)
        snap = fresh.stats_snapshot()
        assert snap["host_deaths"] == 1
        assert snap["failovers"] >= 1 and snap["shards_failed_over"] >= 1
        assert not victim.alive
        # The survivor keeps serving new requests.
        fresh.inject_task_delay_s = 0.0
        out2 = fresh.run_spmm(fmt, b_q, Precision.FP16, csr=csr, content_key=key)
        np.testing.assert_array_equal(out2, base)


def test_all_hosts_dead_falls_back_in_parent():
    csr, fmt, _, _, b_q, base, _ = _workload(seed=15)
    with ClusterScheduler(hosts=1) as fresh:
        fresh.hosts[0].process.kill()
        # Heartbeat or first-send failure flags the host; either way the
        # request must complete in-parent.
        out = fresh.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        assert fresh.stats_snapshot()["inline_fallbacks"] > 0


def test_idle_host_death_detected_by_heartbeat():
    csr, *_ = _workload(seed=16)
    with ClusterScheduler(
        hosts=2, heartbeat_interval_s=0.1, heartbeat_timeout_s=1.0
    ) as fresh:
        victim = fresh.affinity_host(csr.content_key())
        victim.process.kill()
        deadline = time.monotonic() + TIMEOUT
        while victim.alive and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not victim.alive, "heartbeat never declared the idle host dead"
        assert fresh.stats_snapshot()["host_deaths"] == 1
        assert len(fresh.live_hosts()) == 1


def test_worker_survives_head_disconnect_and_reconnect():
    """A head that vanishes mid-task (socket closed before the reply is
    read) must not kill the worker host: it goes back to accept and serves
    a reconnecting head from its still-warm cache."""
    import multiprocessing as mp
    import socket as socket_mod

    from repro.cluster.head import spawn_local_host
    from repro.cluster.transport import client_handshake, recv_message, send_message

    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)
    process, address = spawn_local_host(ctx, "reconnect-test")
    try:
        csr = random_csr(60, 50, 0.1, seed=30)
        task = {
            "type": "task",
            "task_id": 0,
            "op": "spmm",
            "fmt": "mebcrs",
            "precision": "fp16",
            "shape": list(csr.shape),
            "content_key": csr.content_key(),
            "lo": 0,
            "hi": 10**9,
            "w0": 0,
            "w1": 10**9,
            "delay_s": 0.3,
        }
        fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
        batch = fmt.blocks_as_arrays()
        task["hi"], task["w1"] = batch.num_blocks, fmt.num_windows
        b_q = np.ones((50, 4), np.float32)
        payload = [csr.indptr, csr.indices, csr.data, b_q]

        first = socket_mod.create_connection(address, timeout=10)
        first.settimeout(10)
        client_handshake(first)
        send_message(first, task, payload)
        first.close()  # vanish while the worker is still computing
        time.sleep(0.6)  # let the worker finish the task and hit the send
        assert process.is_alive(), "worker died on the reply-send failure"

        second = socket_mod.create_connection(address, timeout=10)
        second.settimeout(10)
        client_handshake(second)
        send_message(second, dict(task, delay_s=0.0), payload)
        header, arrays, _ = recv_message(second)
        assert header["type"] == "result"
        # The warm cache served the repeat: the first task's miss, this hit.
        assert header["cache"]["hits"] >= 1
        send_message(second, {"type": "shutdown"})
        recv_message(second)
        second.close()
    finally:
        if process.is_alive():
            process.terminate()
        process.join(10)


# ------------------------------------------------------- serving integration
def test_server_hosts_follow_explicit_addresses():
    """`cluster_options={"addresses": ...}` overrides the spawn count; the
    server's planner/concurrency host count must follow the hosts actually
    registered, not the (absent) spawn request."""
    import multiprocessing as mp

    from repro.cluster.head import spawn_local_host

    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)
    spawned = [spawn_local_host(ctx, f"ext-{i}") for i in range(2)]
    try:
        with Server(
            backend="cluster",
            cluster_options={"addresses": [addr for _, addr in spawned]},
        ) as srv:
            assert srv.hosts == 2
            assert srv.group_concurrency == 2
            assert len(srv.scheduler.hosts) == 2
            csr = random_csr(80, 70, 0.08, seed=31)
            b = np.random.default_rng(31).standard_normal((70, 8))
            np.testing.assert_array_equal(
                srv.submit_spmm(csr, b).result(TIMEOUT).values, api_spmm(csr, b).values
            )
    finally:
        for process, _ in spawned:
            if process.is_alive():
                process.terminate()
            process.join(10)



def test_cluster_backend_server_requests_are_bit_identical():
    csr = random_csr(200, 180, 0.06, seed=3)
    rng = np.random.default_rng(3)
    b = rng.standard_normal((180, 24))
    a = rng.standard_normal((200, 24))
    with Server(backend="cluster", hosts=2, device="rtx4090") as srv:
        futs = [srv.submit_spmm(csr, b) for _ in range(3)]
        sfut = srv.submit_sddmm(csr, a, b)
        ref = api_spmm(csr, b)
        for fut in futs:
            res = fut.result(TIMEOUT)
            np.testing.assert_array_equal(res.values, ref.values)
            assert res.counter == ref.counter
            assert res.meta["backend"] == "cluster"
        assert sfut.result(TIMEOUT) is not None
        snap = srv.snapshot()
        assert snap.requests_completed == 4
        assert snap.meta["scheduler"]["tasks_completed"] >= 1
    assert srv.snapshot().in_flight == 0


def test_server_survives_host_death_mid_shard():
    """ISSUE satellite: kill a worker host while its shard is in flight —
    the request completes bit-identically via re-dispatch, ClusterMetrics
    records the failover, and ``Server.healthy`` stays true."""
    csr = random_csr(260, 240, 0.06, seed=21)
    b = np.random.default_rng(21).standard_normal((240, 16))
    ref = api_spmm(csr, b)
    with Server(backend="cluster", hosts=2) as srv:
        # Warm one request through so the plan/translation are resident and
        # the kill window covers only the victim's in-flight shard.
        np.testing.assert_array_equal(
            srv.submit_spmm(csr, b).result(TIMEOUT).values, ref.values
        )
        victim = srv.scheduler.affinity_host(csr.content_key())
        srv.scheduler.inject_task_delay_s = 1.0
        sent_before = srv.scheduler.metrics.snapshot()["tasks_sent"]
        fut = srv.submit_spmm(csr, b)
        deadline = time.monotonic() + TIMEOUT
        while srv.scheduler.metrics.snapshot()["tasks_sent"] <= sent_before:
            assert time.monotonic() < deadline, "request never reached the host"
            time.sleep(0.01)
        victim.process.kill()
        res = fut.result(TIMEOUT)
        np.testing.assert_array_equal(res.values, ref.values)
        snap = srv.scheduler.stats_snapshot()
        assert snap["host_deaths"] == 1
        assert snap["failovers"] >= 1
        assert srv.healthy, "host death must not look like a server crash"
        srv.scheduler.inject_task_delay_s = 0.0
        # And the server keeps serving on the survivor.
        np.testing.assert_array_equal(
            srv.submit_spmm(csr, b).result(TIMEOUT).values, ref.values
        )
    final = srv.snapshot()
    assert final.requests_completed == 3
    assert final.requests_failed == 0
    assert final.in_flight == 0
