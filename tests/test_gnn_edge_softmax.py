"""Parity of the vectorized edge softmax against the per-row reference oracle.

``SparseBackend`` keeps the old per-row loops alive as
``reference_edge_softmax_forward`` / ``reference_edge_softmax_backward`` (and
runs them when ``edge_softmax_impl="reference"``); the default path is the
segment-ops subsystem.  Both must agree to FP32 round-off on every graph
shape, including graphs with isolated (edge-less) nodes.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import random_csr

from repro.formats.csr import CSRMatrix
from repro.gnn.backends import make_backend

GRAPHS = {
    "dense-ish": lambda: random_csr(60, 60, 0.15, seed=3),
    "sparse": lambda: random_csr(200, 200, 0.01, seed=5),
    "single-edge": lambda: random_csr(16, 16, 0.0, ensure_nonempty=True, seed=1),
}


def _graph_with_isolated_nodes() -> CSRMatrix:
    dense = np.zeros((30, 30))
    rng = np.random.default_rng(8)
    dense[::3, ::2] = rng.random((10, 15)) > 0.5  # rows 1,2,4,5,... isolated
    return CSRMatrix.from_dense(dense)


GRAPHS["isolated-nodes"] = _graph_with_isolated_nodes


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_forward_matches_reference_oracle(name, rng):
    backend = make_backend("flashsparse-fp16", GRAPHS[name]())
    logits = (rng.standard_normal(backend.adjacency.nnz) * 8).astype(np.float32)
    out, cache = backend.edge_softmax_forward(logits)
    ref = backend.reference_edge_softmax_forward(logits)
    assert out.dtype == ref.dtype == np.float32
    np.testing.assert_allclose(out, ref, atol=2e-7)
    np.testing.assert_array_equal(out, cache)


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_backward_matches_reference_oracle(name, rng):
    backend = make_backend("flashsparse-fp16", GRAPHS[name]())
    nnz = backend.adjacency.nnz
    softmax, _ = backend.edge_softmax_forward(rng.standard_normal(nnz))
    grad_out = rng.standard_normal(nnz).astype(np.float32)
    grad = backend.edge_softmax_backward(softmax, grad_out)
    ref = backend.reference_edge_softmax_backward(softmax, grad_out)
    # The vectorized path accumulates the inner product in float64, the
    # oracle in float32 — they agree to FP32 round-off.
    np.testing.assert_allclose(grad, ref, atol=1e-6, rtol=1e-5)


def test_forward_rows_are_normalised(rng):
    csr = GRAPHS["dense-ish"]()
    backend = make_backend("dgl", csr)
    out, _ = backend.edge_softmax_forward(rng.standard_normal(csr.nnz) * 40)
    for r in range(csr.n_rows):
        lo, hi = int(csr.indptr[r]), int(csr.indptr[r + 1])
        if lo < hi:
            assert abs(float(out[lo:hi].sum()) - 1.0) < 1e-5
            assert (out[lo:hi] >= 0).all()


def test_reference_impl_knob_runs_the_loops(rng):
    csr = GRAPHS["sparse"]()
    vec = make_backend("flashsparse-fp16", csr)
    ref = make_backend("flashsparse-fp16", csr)
    ref.edge_softmax_impl = "reference"
    logits = rng.standard_normal(csr.nnz)
    out_vec, _ = vec.edge_softmax_forward(logits)
    out_ref, _ = ref.edge_softmax_forward(logits)
    np.testing.assert_allclose(out_vec, out_ref, atol=2e-7)
    grad = rng.standard_normal(csr.nnz).astype(np.float32)
    np.testing.assert_allclose(
        vec.edge_softmax_backward(out_vec, grad),
        ref.edge_softmax_backward(out_ref, grad),
        atol=1e-6,
        rtol=1e-5,
    )
    assert vec.stats.edge_softmax_calls == ref.stats.edge_softmax_calls == 1


def test_unknown_impl_rejected():
    from repro.gnn.backends import SparseBackend
    from repro.precision.types import Precision

    with pytest.raises(ValueError):
        SparseBackend(
            name="x",
            adjacency=GRAPHS["single-edge"](),
            precision=Precision.FP32,
            edge_softmax_impl="gpu",
        )


def test_typoed_impl_rejected_at_dispatch_not_silently_vectorized(rng):
    """The knob is usually set post-construction; a typo must raise, not
    silently run the vectorized path (which would make parity vacuous)."""
    backend = make_backend("flashsparse-fp16", GRAPHS["single-edge"]())
    backend.edge_softmax_impl = "referece"
    logits = rng.standard_normal(backend.adjacency.nnz)
    with pytest.raises(ValueError):
        backend.edge_softmax_forward(logits)
    with pytest.raises(ValueError):
        backend.edge_softmax_backward(
            np.ones(backend.adjacency.nnz, dtype=np.float32),
            np.ones(backend.adjacency.nnz, dtype=np.float32),
        )


def test_training_epoch_unchanged_by_vectorized_softmax():
    """One AGNN step under both impls lands on the same loss/gradients."""
    from repro.gnn import autograd as ag
    from repro.gnn.autograd import Tensor
    from repro.gnn.models import AGNN

    csr = random_csr(48, 48, 0.1, seed=13)
    rng = np.random.default_rng(0)
    features = rng.standard_normal((48, 12)).astype(np.float32)
    labels = rng.integers(0, 3, size=48)

    losses = {}
    grads = {}
    for impl in ("vectorized", "reference"):
        backend = make_backend("flashsparse-fp16", csr)
        backend.edge_softmax_impl = impl
        model = AGNN(12, 8, 3, num_attention_layers=1, dropout=0.0, seed=7)
        log_probs = model(backend, Tensor(features))
        loss = ag.nll_loss(log_probs, labels)
        loss.backward()
        losses[impl] = float(loss.data)
        grads[impl] = [np.array(p.grad) for p in model.parameters()]

    assert losses["vectorized"] == pytest.approx(losses["reference"], abs=1e-6)
    for gv, gr in zip(grads["vectorized"], grads["reference"]):
        np.testing.assert_allclose(gv, gr, atol=1e-5, rtol=1e-4)
