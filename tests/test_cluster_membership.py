"""Live membership: runtime add/remove, probe-driven readmission.

The fleet is mutable while serving: ``add_host`` joins a running worker
and rendezvous routing folds it in, ``remove_host`` drains in-flight
shards before cutting the host loose, and the background
:class:`MembershipProbe` brings DEAD hosts back — readmission restores
their affinity keys *and* their still-warm translation caches.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from helpers import random_csr

from repro.cluster import ClusterScheduler, MembershipError, RetryPolicy
from repro.cluster.head import spawn_local_host
from repro.cluster.membership import HostHealth
from repro.core.api import spmm as api_spmm
from repro.formats.mebcrs import MEBCRSMatrix
from repro.precision.types import Precision, quantize
from repro.serve.scheduler import ShardScheduler
from repro.serve.server import Server
from repro.testing import FaultPlan

TIMEOUT = 120


def _workload(seed=50, n=17, rows=220, cols=200, density=0.06):
    csr = random_csr(rows, cols, density, seed=seed)
    fmt = MEBCRSMatrix.from_csr(csr, precision="fp16")
    rng = np.random.default_rng(seed)
    b_q = quantize(rng.standard_normal((cols, n)), Precision.FP16).astype(np.float32)
    base = ShardScheduler(workers=1).run_spmm(fmt, b_q, Precision.FP16)
    return csr, fmt, b_q, base


def _fork_ctx():
    return mp.get_context("fork" if "fork" in mp.get_all_start_methods() else None)


def _reap(process):
    if process.is_alive():
        process.terminate()
    process.join(10)


# ---------------------------------------------------------------- add_host
def test_add_host_joins_live_cluster_and_takes_traffic():
    csr, fmt, b_q, base = _workload(seed=51)
    ctx = _fork_ctx()
    process, address = spawn_local_host(ctx, "joiner")
    try:
        with ClusterScheduler(hosts=1) as sched:
            assert len(sched.hosts) == 1
            joined = sched.add_host(address)
            assert len(sched.hosts) == 2
            assert joined.state is HostHealth.HEALTHY
            # Distinct matrices spread over both hosts eventually; at
            # minimum the joined host is routable and requests stay exact.
            out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
            np.testing.assert_array_equal(out, base)
            snap = sched.stats_snapshot()
            assert snap["hosts_added"] == 1
            assert joined.host_id in snap["hosts"]
            with pytest.raises(MembershipError):
                sched.add_host(address, host_id=joined.host_id)
    finally:
        _reap(process)


def test_add_host_rejected_on_closed_cluster():
    sched = ClusterScheduler(hosts=0)
    sched.close()
    with pytest.raises(MembershipError):
        sched.add_host(("127.0.0.1", 1))


# ------------------------------------------------------------- remove_host
def test_remove_host_drains_in_flight_shards():
    """Removal with ``drain=True`` lets queued/in-flight shards finish on
    the leaving host: the caller sees an exact result and no host death."""
    csr, fmt, b_q, base = _workload(seed=52)
    key = csr.content_key()
    with ClusterScheduler(hosts=2) as sched:
        victim = sched.affinity_host(key)
        sched.inject_task_delay_s = 0.2  # keep shards in flight during removal
        result = {}
        t = threading.Thread(
            target=lambda: result.update(
                out=sched.run_spmm(
                    fmt, b_q, Precision.FP16, target_blocks=10_000, csr=csr, content_key=key
                )
            )
        )
        t.start()
        deadline = time.monotonic() + TIMEOUT
        while sched.metrics.snapshot()["tasks_sent"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        sched.remove_host(victim.host_id, drain=True)
        t.join(TIMEOUT)
        assert not t.is_alive()
        np.testing.assert_array_equal(result["out"], base)
        assert len(sched.hosts) == 1
        snap = sched.stats_snapshot()
        assert snap["hosts_removed"] == 1
        assert snap["host_deaths"] == 0, "a drained removal is not a death"
        assert snap["hosts"][victim.host_id]["state"] == "removed"
        # The survivor serves follow-up traffic.
        sched.inject_task_delay_s = 0.0
        out2 = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out2, base)
        with pytest.raises(MembershipError):
            sched.remove_host(victim.host_id)


# ------------------------------------------------------------- readmission
def test_dead_host_readmitted_by_probe_with_warm_cache():
    """DEAD → RECOVERING → HEALTHY: refusals first exhaust the retry
    policy (death) and then hold off the probe; once they run out the
    probe re-dials, warm-up pings, and readmits — and because the worker
    process never died, its translation cache still serves the matrix
    without a second miss."""
    csr, fmt, b_q, base = _workload(seed=53)
    key = csr.content_key()
    plan = FaultPlan(seed=6)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.01, seed=6),
        probe_interval_s=0.1,
    ) as sched:
        victim = sched.affinity_host(key)
        # Warm the victim's cache with one clean request.
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        misses_before = sched.stats_snapshot()["hosts"][victim.host_id]["cache"]["misses"]
        # Kill the connection; 1 backoff re-dial + 2 probe dials refused.
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        plan.refuse_connect(3, scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)  # failover covered the gap
        assert sched.stats_snapshot()["host_deaths"] == 1
        deadline = time.monotonic() + TIMEOUT
        while victim.state is not HostHealth.HEALTHY:
            assert time.monotonic() < deadline, "probe never readmitted the host"
            time.sleep(0.02)
        snap = sched.stats_snapshot()
        assert snap["hosts_readmitted"] == 1
        assert snap["probe_dials"] >= 1
        entry = snap["hosts"][victim.host_id]
        assert entry["state"] == "healthy"
        assert entry["transitions"].get("dead->recovering", 0) == 1
        assert entry["transitions"].get("recovering->healthy", 0) == 1
        assert entry["time_in_state"].get("dead", 0.0) > 0.0
        # Affinity is restored and the cache survived the outage: repeat
        # traffic for the key lands on the readmitted host without a new
        # translation miss.
        assert sched.affinity_host(key).host_id == victim.host_id
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr, content_key=key)
        np.testing.assert_array_equal(out, base)
        # (The failover run cost the *survivor* a miss; the victim's own
        # cache must not have lost the translation across the outage.)
        misses_after = sched.stats_snapshot()["hosts"][victim.host_id]["cache"]["misses"]
        assert misses_after == misses_before == 1


def test_auto_readmit_off_leaves_dead_hosts_dead():
    csr, fmt, b_q, base = _workload(seed=54)
    key = csr.content_key()
    plan = FaultPlan(seed=7)
    with ClusterScheduler(
        hosts=2,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=1, base_delay_s=0.01, seed=7),
        auto_readmit=False,
    ) as sched:
        victim = sched.affinity_host(key)
        plan.drop_connection(nth=1, type="task", scope=victim.host_id)
        plan.refuse_connect(1, scope=victim.host_id)
        out = sched.run_spmm(fmt, b_q, Precision.FP16, target_blocks=7, csr=csr)
        np.testing.assert_array_equal(out, base)
        assert sched.membership is None
        time.sleep(0.3)
        assert victim.state is HostHealth.DEAD
        # Manual readmission still works through the same entry point.
        assert sched.try_readmit(victim)
        assert victim.state is HostHealth.HEALTHY


# ------------------------------------------------------ server integration
def test_server_exposes_cluster_membership_surface():
    csr = random_csr(180, 160, 0.06, seed=55)
    b = np.random.default_rng(55).standard_normal((160, 12))
    ref = api_spmm(csr, b)
    ctx = _fork_ctx()
    process, address = spawn_local_host(ctx, "server-joiner")
    try:
        with Server(backend="cluster", hosts=1) as srv:
            np.testing.assert_array_equal(
                srv.submit_spmm(csr, b).result(TIMEOUT).values, ref.values
            )
            joined = srv.cluster.add_host(address)
            assert len(srv.cluster.hosts) == 2
            # Plans follow live membership: the per-host split re-plans
            # under the new host count instead of serving a stale cache.
            np.testing.assert_array_equal(
                srv.submit_spmm(csr, b).result(TIMEOUT).values, ref.values
            )
            srv.cluster.remove_host(joined.host_id, drain=True)
            assert len(srv.cluster.hosts) == 1
            np.testing.assert_array_equal(
                srv.submit_spmm(csr, b).result(TIMEOUT).values, ref.values
            )
            snap = srv.cluster.stats_snapshot()
            assert snap["hosts_added"] == 1 and snap["hosts_removed"] == 1
        assert srv.snapshot().requests_failed == 0
    finally:
        _reap(process)


def test_local_backend_has_no_cluster_surface():
    with Server(workers=1) as srv:
        with pytest.raises(ValueError):
            srv.cluster
