"""Tests for the cost counters."""

import pytest

from repro.gpu.counters import CostCounter, sum_counters, _parse_shape_name


def test_empty_counter_is_zero():
    c = CostCounter()
    assert c.total_mma == 0
    assert c.cuda_fma == 0
    assert c.total_load_transactions == 0
    assert c.total_store_transactions == 0
    assert c.data_access_bytes == 0
    assert c.footprint_bytes == 0


def test_add_mma_accumulates_by_shape_and_precision():
    c = CostCounter()
    c.add_mma("m16n8k8", "fp16", 3)
    c.add_mma("m16n8k8", "fp16", 2)
    c.add_mma("m16n8k4", "tf32", 1)
    assert c.total_mma == 6
    assert c.mma_invocations[("m16n8k8", "fp16")] == 5
    assert c.mma_invocations[("m16n8k4", "tf32")] == 1


def test_add_mma_negative_raises():
    with pytest.raises(ValueError):
        CostCounter().add_mma("m16n8k8", "fp16", -1)


def test_mma_flops_parses_shape_names():
    c = CostCounter()
    c.add_mma("m16n8k8", "fp16", 2)
    assert c.mma_flops() == 2 * 2 * 16 * 8 * 8


def test_parse_shape_name():
    assert _parse_shape_name("m16n8k8") == (16, 8, 8)
    assert _parse_shape_name("m16n16k8") == (16, 16, 8)
    with pytest.raises(ValueError):
        _parse_shape_name("bogus")


def test_add_load_tracks_transactions_and_useful_bytes():
    c = CostCounter()
    c.add_load(32, 4, useful_bytes=100)
    c.add_load(128, 1)
    assert c.load_transactions[32] == 4
    assert c.load_transactions[128] == 1
    assert c.bytes_read == 100 + 128
    assert c.transaction_bytes_moved == 4 * 32 + 128


def test_add_store_tracks_transactions_and_useful_bytes():
    c = CostCounter()
    c.add_store(32, 2, useful_bytes=40)
    assert c.total_store_transactions == 2
    assert c.bytes_written == 40


def test_negative_counts_rejected():
    c = CostCounter()
    with pytest.raises(ValueError):
        c.add_load(32, -1)
    with pytest.raises(ValueError):
        c.add_cuda_fma(-1)
    with pytest.raises(ValueError):
        c.add_index_ops(-1)
    with pytest.raises(ValueError):
        c.add_bytes_read(-1)
    with pytest.raises(ValueError):
        c.set_read_footprint(-1)


def test_merge_is_additive():
    a = CostCounter()
    a.add_mma("m16n8k8", "fp16", 1)
    a.add_load(32, 2)
    a.add_cuda_fma(10)
    b = CostCounter()
    b.add_mma("m16n8k8", "fp16", 2)
    b.add_store(32, 1)
    b.add_index_ops(5)
    merged = a + b
    assert merged.total_mma == 3
    assert merged.total_load_transactions == 2
    assert merged.total_store_transactions == 1
    assert merged.cuda_fma == 10
    assert merged.index_ops == 5
    assert merged.kernel_launches == 2
    # Operands unchanged.
    assert a.total_mma == 1
    assert b.total_mma == 2


def test_footprint_tracking():
    c = CostCounter()
    c.set_read_footprint(1000)
    c.set_write_footprint(200)
    assert c.footprint_bytes == 1200
    d = CostCounter()
    d.set_read_footprint(50)
    assert (c + d).footprint_bytes == 1250


def test_sum_counters():
    counters = []
    for i in range(3):
        c = CostCounter()
        c.add_mma("m16n8k8", "fp16", i + 1)
        counters.append(c)
    total = sum_counters(counters)
    assert total.total_mma == 6
    assert total.kernel_launches == 3


def test_sum_counters_empty():
    total = sum_counters([])
    assert total.total_mma == 0
    assert total.kernel_launches == 0


def test_as_dict_round_trips_key_fields():
    c = CostCounter()
    c.add_mma("m16n8k4", "tf32", 7)
    c.add_load(32, 3)
    c.add_store(32, 1)
    c.add_index_ops(9)
    d = c.as_dict()
    assert d["total_mma"] == 7
    assert d["mma_invocations"]["m16n8k4/tf32"] == 7
    assert d["load_transactions"][32] == 3
    assert d["index_ops"] == 9


def test_summary_is_a_string():
    c = CostCounter()
    c.add_mma("m16n8k8", "fp16", 1)
    assert "mma=1" in c.summary()
