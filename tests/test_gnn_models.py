"""Tests for GNN layers, models, backends, datasets and training."""

import numpy as np
import pytest

from repro.gnn import (
    AGNN,
    GCN,
    BACKEND_NAMES,
    TABLE8_DATASETS,
    estimate_epoch_time,
    evaluate_accuracy,
    make_backend,
    make_dataset,
    train_node_classifier,
)
from repro.gnn.autograd import Tensor
from repro.gnn.backends import SparseBackend
from repro.gnn.layers import AGNNLayer, GCNLayer, Linear
from repro.gnn.train import Adam, train_gcn_accuracy
from repro.gpu.device import RTX4090
from repro.precision.types import Precision

from helpers import random_csr


@pytest.fixture
def tiny_dataset():
    return make_dataset("cora", seed=7)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------
def test_backend_names_and_construction(tiny_dataset):
    adj = tiny_dataset.normalized_adjacency()
    for name in BACKEND_NAMES:
        backend = make_backend(name, adj)
        assert isinstance(backend, SparseBackend)
        assert backend.adjacency.nnz == adj.nnz
    with pytest.raises(KeyError):
        make_backend("bogus", adj)


def test_backend_precisions(tiny_dataset):
    adj = tiny_dataset.normalized_adjacency()
    assert make_backend("flashsparse-fp16", adj).precision is Precision.FP16
    assert make_backend("flashsparse-tf32", adj).precision is Precision.TF32
    assert make_backend("dgl", adj).precision is Precision.FP32
    assert make_backend("tcgnn", adj).precision is Precision.TF32


def test_backend_spmm_numerics(rng):
    adj = random_csr(32, 32, 0.2, seed=5)
    dense = rng.standard_normal((32, 8))
    ref = adj.to_dense() @ dense
    for name in ("flashsparse-fp16", "dgl"):
        backend = make_backend(name, adj)
        out = backend.spmm_forward(None, dense)
        np.testing.assert_allclose(out, ref, rtol=2e-2, atol=2e-2)
    assert backend.stats.spmm_calls > 0


def test_backend_cost_model_times(tiny_dataset):
    adj = tiny_dataset.normalized_adjacency()
    flash = make_backend("flashsparse-fp16", adj)
    dgl = make_backend("dgl", adj)
    t_flash = flash.spmm_time(128, RTX4090)
    t_dgl = dgl.spmm_time(128, RTX4090)
    assert t_flash > 0 and t_dgl > 0
    assert t_flash < t_dgl  # FlashSparse's SpMM is faster under the cost model
    assert flash.sddmm_time(32, RTX4090) > 0


# ---------------------------------------------------------------------------
# Layers and models
# ---------------------------------------------------------------------------
def test_linear_layer_shapes(rng):
    layer = Linear(6, 4, seed=0)
    out = layer(Tensor(rng.standard_normal((10, 6))))
    assert out.shape == (10, 4)
    assert len(layer.parameters()) == 2


def test_gcn_layer_aggregates_neighbours(rng):
    adj = random_csr(16, 16, 0.25, seed=3)
    backend = make_backend("dgl", adj)
    layer = GCNLayer(5, 3, seed=0)
    h = Tensor(rng.standard_normal((16, 5)))
    out = layer(backend, h)
    expected = adj.to_dense() @ (h.data @ layer.linear.weight.data + layer.linear.bias.data)
    np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-4)


def test_agnn_layer_output_shape_and_params(rng):
    adj = random_csr(20, 20, 0.3, seed=4)
    backend = make_backend("flashsparse-fp16", adj)
    layer = AGNNLayer()
    h = Tensor(rng.standard_normal((20, 6)))
    out = layer(backend, h)
    assert out.shape == (20, 6)
    assert len(layer.parameters()) == 1  # the scalar beta


def test_gcn_model_forward_and_parameters(tiny_dataset):
    backend = make_backend("flashsparse-fp16", tiny_dataset.normalized_adjacency())
    model = GCN(tiny_dataset.num_features, 16, tiny_dataset.num_classes, num_layers=3, seed=0)
    out = model(backend, Tensor(tiny_dataset.features))
    assert out.shape == (tiny_dataset.num_nodes, tiny_dataset.num_classes)
    np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, rtol=1e-4)
    assert model.num_spmm_per_forward == 3
    assert len(model.parameters()) == 6  # 3 layers x (W, b)
    with pytest.raises(ValueError):
        GCN(4, 4, 2, num_layers=1)


def test_agnn_model_forward(tiny_dataset):
    backend = make_backend("flashsparse-fp16", tiny_dataset.normalized_adjacency())
    model = AGNN(tiny_dataset.num_features, 8, tiny_dataset.num_classes, num_attention_layers=2, seed=0)
    out = model(backend, Tensor(tiny_dataset.features))
    assert out.shape == (tiny_dataset.num_nodes, tiny_dataset.num_classes)
    assert model.num_attention == 2
    with pytest.raises(ValueError):
        AGNN(4, 4, 2, num_attention_layers=0)


def test_model_train_eval_mode_toggles(tiny_dataset):
    model = GCN(tiny_dataset.num_features, 8, tiny_dataset.num_classes, seed=0)
    model.eval()
    assert not model.training
    assert all(not layer.training for layer in model.layers)
    model.train()
    assert model.training


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------
def test_table8_dataset_registry():
    assert set(TABLE8_DATASETS) == {"cora", "ell", "pubmed", "questions", "minesweeper"}


def test_make_dataset_structure(tiny_dataset):
    ds = tiny_dataset
    assert ds.features.shape == (ds.num_nodes, ds.num_features)
    assert ds.labels.shape == (ds.num_nodes,)
    assert ds.num_classes >= 2
    # Masks partition the nodes.
    total = ds.train_mask.astype(int) + ds.val_mask.astype(int) + ds.test_mask.astype(int)
    assert np.all(total == 1)


def test_make_dataset_unknown_raises():
    with pytest.raises(KeyError):
        make_dataset("citeseer")


def test_normalized_adjacency_rows(tiny_dataset):
    norm = tiny_dataset.normalized_adjacency()
    assert norm.shape == (tiny_dataset.num_nodes, tiny_dataset.num_nodes)
    dense = norm.to_dense()
    # Symmetric normalisation of a symmetrised pattern stays symmetric.
    np.testing.assert_allclose(dense, dense.T, rtol=1e-5, atol=1e-6)
    assert dense.max() <= 1.0 + 1e-6


def test_datasets_are_deterministic():
    a = make_dataset("pubmed")
    b = make_dataset("pubmed")
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_allclose(a.features, b.features)


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------
def test_adam_updates_parameters(rng):
    from repro.gnn.autograd import Parameter

    p = Parameter(np.ones(4))
    opt = Adam([p], lr=0.1)
    p.grad = np.ones(4, dtype=np.float32)
    opt.step()
    assert np.all(p.data < 1.0)
    opt.zero_grad()
    assert p.grad is None


def test_training_improves_accuracy(tiny_dataset):
    result = train_gcn_accuracy(tiny_dataset, "flashsparse-fp16", epochs=40, hidden=16, num_layers=2)
    assert result.epochs == 40
    assert result.test_accuracy > 0.5
    assert result.loss_history[-1] < result.loss_history[0]


def test_precisions_reach_comparable_accuracy(tiny_dataset):
    """Table 8: FP16 / TF32 training matches FP32 training accuracy."""
    acc = {}
    for backend in ("flashsparse-fp16", "flashsparse-tf32", "dgl"):
        acc[backend] = train_gcn_accuracy(
            tiny_dataset, backend, epochs=40, hidden=16, num_layers=2
        ).test_accuracy
    assert abs(acc["flashsparse-fp16"] - acc["dgl"]) < 0.05
    assert abs(acc["flashsparse-tf32"] - acc["dgl"]) < 0.05


def test_train_node_classifier_with_prepared_backend(tiny_dataset):
    backend = make_backend("flashsparse-fp16", tiny_dataset.normalized_adjacency())
    model = GCN(tiny_dataset.num_features, 8, tiny_dataset.num_classes, seed=1)
    result = train_node_classifier(model, tiny_dataset, backend, epochs=5)
    assert result.backend == "FlashSparse-FP16"
    assert 0.0 <= result.val_accuracy <= 1.0
    acc = evaluate_accuracy(model, backend, __import__("repro.gnn.autograd", fromlist=["Tensor"]).Tensor(tiny_dataset.features), tiny_dataset.labels, tiny_dataset.test_mask)
    assert 0.0 <= acc <= 1.0


def test_agnn_trains_without_error(tiny_dataset):
    model = AGNN(tiny_dataset.num_features, 8, tiny_dataset.num_classes, num_attention_layers=1, seed=0)
    result = train_node_classifier(model, tiny_dataset, "flashsparse-fp16", epochs=3)
    assert len(result.loss_history) == 3


# ---------------------------------------------------------------------------
# End-to-end estimation
# ---------------------------------------------------------------------------
def test_estimate_epoch_time_breakdown(tiny_dataset):
    adj = tiny_dataset.normalized_adjacency()
    est = estimate_epoch_time("gcn", adj, "flashsparse-fp16", RTX4090, hidden=128)
    assert est.total_time_s > 0
    assert est.total_time_s == pytest.approx(
        est.sparse_time_s + est.dense_time_s + est.overhead_time_s + est.preprocessing_time_s
    )
    with pytest.raises(ValueError):
        estimate_epoch_time("mlp", adj, "dgl", RTX4090)


def test_flashsparse_end_to_end_beats_frameworks(tiny_dataset):
    """Figure 16's shape: FlashSparse end-to-end epochs are faster than DGL/PyG."""
    adj = tiny_dataset.normalized_adjacency()
    for model_kind, hidden in (("gcn", 128), ("agnn", 32)):
        flash = estimate_epoch_time(model_kind, adj, "flashsparse-fp16", RTX4090, hidden=hidden)
        dgl = estimate_epoch_time(model_kind, adj, "dgl", RTX4090, hidden=hidden)
        pyg = estimate_epoch_time(model_kind, adj, "pyg", RTX4090, hidden=hidden)
        assert flash.total_time_s < dgl.total_time_s
        assert flash.total_time_s < pyg.total_time_s


def test_preprocessing_is_small_fraction(tiny_dataset):
    """Section 4.4: preprocessing is ~<1% of end-to-end time when amortised."""
    adj = tiny_dataset.normalized_adjacency()
    est = estimate_epoch_time("gcn", adj, "flashsparse-fp16", RTX4090, hidden=128)
    assert est.preprocessing_time_s < 0.05 * est.total_time_s
