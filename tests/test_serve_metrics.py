"""Concurrent-load invariant suite for :mod:`repro.serve.metrics`.

The accumulator is shared by submitter threads, the dispatch thread and
(under multi-process execution) result-resolution paths.  These tests
hammer it from many threads and assert the accounting identities hold at
every observable instant:

* ``in_flight == submitted - completed - failed - timed_out`` and
  ``queue_depth >= 0`` on every snapshot taken mid-flight,
* terminal outcomes reconcile exactly (``completed + failed + timed_out
  == submitted``, rejected tracked separately since rejected requests
  never enter the queue),
* the rejected / timed-out counters match what the futures of a real
  overloaded :class:`~repro.serve.Server` actually observed, and
* the queue-wait / execution latency split is populated and consistent
  with end-to-end latency.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from helpers import random_csr

from repro.serve import (
    ServeMetrics,
    ServeTimeoutError,
    Server,
    ServerOverloadedError,
)

TIMEOUT = 120


def test_invariants_hold_under_concurrent_submit_resolve():
    metrics = ServeMetrics()
    n_threads, per_thread = 8, 300
    violations = []
    stop = threading.Event()

    def observer():
        while not stop.is_set():
            snap = metrics.snapshot()
            if snap.queue_depth < 0:
                violations.append(("queue_depth", snap.queue_depth))
            if snap.in_flight < 0:
                violations.append(("in_flight", snap.in_flight))
            if snap.in_flight != (
                snap.requests_submitted
                - snap.requests_completed
                - snap.requests_failed
                - snap.requests_timed_out
            ):
                violations.append(("identity", snap))
            done = snap.requests_completed + snap.requests_failed + snap.requests_timed_out
            if done > snap.requests_submitted:
                violations.append(("overcount", snap))

    def worker(seed: int):
        rng = np.random.default_rng(seed)
        for i in range(per_thread):
            outcome = rng.integers(0, 4)
            if outcome == 3:
                metrics.record_rejected()  # never entered the queue
                continue
            metrics.record_submitted()
            metrics.record_dequeued()
            if outcome == 0:
                metrics.record_completed(0.001, queue_wait_s=0.0005, execution_s=0.0005)
            elif outcome == 1:
                metrics.record_failed(0.001)
            else:
                metrics.record_timed_out(0.001)

    obs = threading.Thread(target=observer)
    obs.start()
    threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    obs.join()

    assert not violations, violations[:5]
    snap = metrics.snapshot()
    total = n_threads * per_thread
    assert snap.requests_submitted + snap.requests_rejected == total
    assert (
        snap.requests_completed + snap.requests_failed + snap.requests_timed_out
        == snap.requests_submitted
    )
    assert snap.in_flight == 0
    assert snap.queue_depth == 0


def test_counters_reconcile_with_observed_future_outcomes():
    """Drive a real server into overload and check every counter against the
    outcome each future actually reported."""
    csr = random_csr(120, 110, 0.08, seed=9)
    b = np.random.default_rng(9).standard_normal((110, 8))
    release = threading.Event()
    entered = threading.Event()

    with Server(workers=1, max_queue_depth=3, admission="reject") as srv:
        original = srv._execute_group

        def gated(group):
            entered.set()
            assert release.wait(TIMEOUT)
            original(group)

        srv._execute_group = gated
        futures = []
        rejected = 0
        # First request occupies the dispatcher; the rest race admission.
        futures.append(srv.submit_spmm(csr, b))
        entered.wait(TIMEOUT)
        for i in range(8):
            try:
                timeout = 0.02 if i % 2 else None  # half carry a tight deadline
                futures.append(srv.submit_spmm(csr, b, timeout=timeout))
            except ServerOverloadedError:
                rejected += 1
        import time

        time.sleep(0.08)  # the tight deadlines lapse while the queue is full
        release.set()

        completed = failed = timed_out = 0
        for fut in futures:
            try:
                fut.result(TIMEOUT)
                completed += 1
            except ServeTimeoutError:
                timed_out += 1
            except Exception:
                failed += 1

    snap = srv.snapshot()
    assert rejected > 0, "admission never engaged — the test lost its race"
    assert snap.requests_rejected == rejected
    assert snap.requests_timed_out == timed_out
    assert snap.requests_completed == completed
    assert snap.requests_failed == failed
    assert snap.requests_submitted == len(futures)
    assert snap.requests_shed == rejected + timed_out
    assert snap.in_flight == 0
    assert snap.queue_depth == 0


def test_queue_wait_execution_split_consistent():
    csr = random_csr(200, 190, 0.06, seed=12)
    b = np.random.default_rng(12).standard_normal((190, 16))
    with Server(workers=1) as srv:
        for _ in range(6):
            srv.submit_spmm(csr, b).result(TIMEOUT)
        snap = srv.snapshot()
    assert snap.execution.count == 6
    assert snap.queue_wait.count == 6
    assert snap.execution.p50_s > 0.0
    assert snap.queue_wait.p50_s >= 0.0
    # Per-sample latency = wait + execution, so the percentile of the
    # end-to-end reservoir dominates the execution-only one.
    assert snap.latency_p50_s >= snap.execution.p50_s
    assert snap.latency_mean_s == pytest.approx(
        snap.queue_wait.mean_s + snap.execution.mean_s, rel=1e-6
    )
