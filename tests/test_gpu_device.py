"""Tests for the simulated device descriptions."""

import pytest

from repro.gpu.device import (
    H100_PCIE,
    RTX4090,
    TRANSACTION_SIZES,
    WARP_SIZE,
    available_devices,
    get_device,
)


def test_warp_size_is_32():
    assert WARP_SIZE == 32


def test_transaction_sizes_match_paper():
    # Section 3.3: NVIDIA GPUs support 32-, 64- and 128-byte transactions.
    assert TRANSACTION_SIZES == (32, 64, 128)


def test_h100_spec_matches_paper_description():
    # Section 4: 456 tensor cores, 14592 CUDA cores.
    assert H100_PCIE.tensor_core_count == 456
    assert H100_PCIE.cuda_core_count == 14592


def test_rtx4090_spec_matches_paper_description():
    # Section 4: 512 tensor cores, 16384 CUDA cores.
    assert RTX4090.tensor_core_count == 512
    assert RTX4090.cuda_core_count == 16384


def test_get_device_by_alias():
    assert get_device("h100") is H100_PCIE
    assert get_device("H100-PCIE") is H100_PCIE
    assert get_device("rtx4090") is RTX4090
    assert get_device("4090") is RTX4090


def test_get_device_unknown_raises():
    with pytest.raises(KeyError):
        get_device("a100")


def test_available_devices_lists_both():
    names = available_devices()
    assert any("H100" in n for n in names)
    assert any("4090" in n for n in names)


def test_peak_flops_properties_positive():
    for spec in (H100_PCIE, RTX4090):
        assert spec.tcu_fp16_flops > spec.tcu_tf32_flops > 0
        assert spec.cuda_fp32_flops > 0
        assert spec.mem_bandwidth_bps > 0
        assert spec.l2_bandwidth_bps > spec.mem_bandwidth_bps


def test_tcu_flops_lookup_by_precision():
    assert RTX4090.tcu_flops("fp16") == RTX4090.tcu_fp16_flops
    assert RTX4090.tcu_flops("tf32") == RTX4090.tcu_tf32_flops
    with pytest.raises(ValueError):
        RTX4090.tcu_flops("fp64")


def test_tcu_vs_cuda_ratio_exceeds_one():
    # TCUs deliver much higher matrix throughput than CUDA cores on both GPUs.
    assert H100_PCIE.tcu_vs_cuda_ratio("fp16") > 5
    assert RTX4090.tcu_vs_cuda_ratio("fp16") > 2


def test_h100_has_more_bandwidth_but_fewer_cuda_flops_than_4090():
    # The relationship the paper leans on: the TCU/CUDA gap is device-specific.
    assert H100_PCIE.mem_bandwidth_gbps > RTX4090.mem_bandwidth_gbps
    assert RTX4090.cuda_fp32_tflops > H100_PCIE.cuda_fp32_tflops


def test_gpu_spec_is_frozen():
    with pytest.raises(Exception):
        RTX4090.sm_count = 1  # type: ignore[misc]
