"""Tests for the shared utilities (tables, RNG, validation)."""

import numpy as np
import pytest

from repro.utils.random import DEFAULT_SEED, default_rng, seed_everything
from repro.utils.tables import format_table
from repro.utils.validation import check_dense_matrix, check_positive_int


def test_default_rng_accepts_none_int_and_generator():
    a = default_rng(None)
    b = default_rng(DEFAULT_SEED)
    assert a.random() == b.random()
    gen = np.random.default_rng(5)
    assert default_rng(gen) is gen


def test_default_rng_different_seeds_differ():
    assert default_rng(1).random() != default_rng(2).random()


def test_seed_everything_sets_numpy_global():
    seed_everything(123)
    first = np.random.rand()
    seed_everything(123)
    assert np.random.rand() == first


def test_format_table_alignment_and_title():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 123456.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    # All data lines share the same width.
    assert len(lines[3]) == len(lines[4])
    assert "123,456" in text


def test_format_table_float_rendering():
    text = format_table(["x"], [[0.12345], [3.14159], [12345.6]])
    assert "0.1234" in text or "0.1235" in text
    assert "3.14" in text
    assert "12,346" in text or "12,345" in text


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_check_positive_int():
    assert check_positive_int(5, "n") == 5
    assert check_positive_int(5.0, "n") == 5
    with pytest.raises(ValueError):
        check_positive_int(0, "n")
    with pytest.raises(ValueError):
        check_positive_int(-3, "n")


def test_check_dense_matrix_conversion_and_validation(rng):
    arr = rng.standard_normal((4, 3)).astype(np.float32)
    out = check_dense_matrix(arr, "b")
    assert out.dtype == np.float64
    assert out.flags["C_CONTIGUOUS"]
    with pytest.raises(ValueError):
        check_dense_matrix(rng.standard_normal(5), "b")
    with pytest.raises(ValueError):
        check_dense_matrix(arr, "b", n_rows=7)
    # Fortran-ordered input is made contiguous.
    f_ordered = np.asfortranarray(arr)
    assert check_dense_matrix(f_ordered, "b").flags["C_CONTIGUOUS"]
