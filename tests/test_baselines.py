"""Tests for the baseline registry, cost models and execute paths."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    GNN_FRAMEWORK_BASELINES,
    KERNEL_BASELINES,
    SDDMM_BASELINES,
    CudaCoreParams,
    cuda_sddmm_cost,
    cuda_spmm_cost,
    csr_sddmm_reference,
    csr_spmm_reference,
    get_baseline,
)
from repro.baselines.tcu import dtc_spmm_cost, tcgnn_sddmm_cost, tcgnn_spmm_cost
from repro.kernels.common import FlashSparseConfig
from repro.kernels.spmm_flash import spmm_flash_cost
from repro.kernels.spmm_tcu16 import spmm_tcu16_cost
from repro.precision.types import Precision

from helpers import random_csr


def test_registry_contains_all_table3_rows():
    """Table 3: every baseline the paper lists is registered."""
    expected = {
        "cuSPARSE",
        "Sputnik",
        "RoDe",
        "GE-SpMM",
        "GNNAdvisor",
        "DGL",
        "PyG",
        "DTC-SpMM",
        "TC-GNN",
    }
    assert set(BASELINES) == expected


def test_table3_precision_and_granularity():
    """Table 3: CUDA-core baselines are FP32; TCU baselines are TF32 at 16x1."""
    for name in ("cuSPARSE", "Sputnik", "RoDe", "GE-SpMM", "GNNAdvisor", "DGL", "PyG"):
        baseline = get_baseline(name)
        assert baseline.precision is Precision.FP32
        assert baseline.granularity == "CUDA cores"
    for name in ("DTC-SpMM", "TC-GNN"):
        baseline = get_baseline(name)
        assert baseline.precision is Precision.TF32
        assert baseline.granularity == "16x1 on TCU"


def test_kernel_and_sddmm_baseline_lists():
    assert set(KERNEL_BASELINES) <= set(BASELINES)
    assert set(SDDMM_BASELINES) == {"Sputnik", "RoDe", "TC-GNN"}
    assert set(GNN_FRAMEWORK_BASELINES) == {"DGL", "PyG", "TC-GNN"}
    for name in SDDMM_BASELINES:
        assert get_baseline(name).supports_sddmm


def test_get_baseline_case_insensitive():
    assert get_baseline("rode").name == "RoDe"
    assert get_baseline(" dtc-spmm ").name == "DTC-SpMM"
    with pytest.raises(KeyError):
        get_baseline("nonexistent")


def test_csr_spmm_reference(medium_csr, rng):
    b = rng.standard_normal((medium_csr.n_cols, 16)).astype(np.float32)
    out = csr_spmm_reference(medium_csr, b)
    np.testing.assert_allclose(out, medium_csr.to_dense() @ b, rtol=1e-4, atol=1e-4)


def test_csr_sddmm_reference(medium_csr, rng):
    a = rng.standard_normal((medium_csr.n_rows, 16)).astype(np.float32)
    b = rng.standard_normal((medium_csr.n_cols, 16)).astype(np.float32)
    out = csr_sddmm_reference(medium_csr, a, b)
    ref = (a @ b.T) * (medium_csr.to_dense() != 0)
    np.testing.assert_allclose(out.to_dense(), ref, rtol=1e-3, atol=1e-3)


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_every_baseline_spmm_cost_is_well_formed(name, medium_csr):
    counter = get_baseline(name).spmm_cost(medium_csr, 64)
    assert counter.data_access_bytes > 0
    assert counter.footprint_read_bytes > 0
    assert counter.footprint_read_bytes <= counter.bytes_read
    if get_baseline(name).granularity == "CUDA cores":
        assert counter.cuda_fma == medium_csr.nnz * 64
        assert counter.total_mma == 0
    else:
        assert counter.total_mma > 0
        assert counter.cuda_fma == 0


@pytest.mark.parametrize("name", sorted(BASELINES))
def test_every_baseline_spmm_execute_matches_reference(name, medium_csr, rng):
    baseline = get_baseline(name)
    b = rng.standard_normal((medium_csr.n_cols, 24))
    result = baseline.spmm_execute(medium_csr, b)
    ref = medium_csr.to_dense() @ b
    np.testing.assert_allclose(result.values, ref, rtol=2e-2, atol=2e-2)
    assert result.useful_flops == 2 * medium_csr.nnz * 24
    assert result.counter.data_access_bytes > 0


@pytest.mark.parametrize("name", sorted(SDDMM_BASELINES))
def test_sddmm_baselines_execute(name, medium_csr, rng):
    baseline = get_baseline(name)
    a = rng.standard_normal((medium_csr.n_rows, 16))
    b = rng.standard_normal((medium_csr.n_cols, 16))
    result = baseline.sddmm_execute(medium_csr, a, b)
    ref = (a @ b.T) * (medium_csr.to_dense() != 0)
    np.testing.assert_allclose(result.output.to_dense(), ref, rtol=2e-2, atol=2e-2)
    counter = baseline.sddmm_cost(medium_csr, 16)
    assert counter.data_access_bytes > 0


def test_cuda_core_cost_scales_with_n(medium_csr):
    params = CudaCoreParams(b_reuse=1.2, transaction_waste=1.0, index_ops_per_nnz=1.0)
    c64 = cuda_spmm_cost(medium_csr, 64, params)
    c128 = cuda_spmm_cost(medium_csr, 128, params)
    assert c128.cuda_fma == 2 * c64.cuda_fma
    assert c128.bytes_read > c64.bytes_read
    with pytest.raises(ValueError):
        cuda_spmm_cost(medium_csr, 0, params)
    with pytest.raises(ValueError):
        cuda_sddmm_cost(medium_csr, -1, params)


def test_cuda_core_params_validation():
    with pytest.raises(ValueError):
        CudaCoreParams(b_reuse=0.5, transaction_waste=1.0, index_ops_per_nnz=1.0)
    with pytest.raises(ValueError):
        CudaCoreParams(b_reuse=1.0, transaction_waste=0.9, index_ops_per_nnz=1.0)


def test_higher_reuse_lowers_b_traffic(medium_csr):
    low = cuda_spmm_cost(medium_csr, 64, CudaCoreParams(1.0, 1.0, 1.0))
    high = cuda_spmm_cost(medium_csr, 64, CudaCoreParams(2.0, 1.0, 1.0))
    assert high.bytes_read < low.bytes_read


def test_dtc_spmm_cost_is_the_16x1_tf32_kernel(medium_csr):
    dtc = dtc_spmm_cost(medium_csr, 64)
    plain = spmm_tcu16_cost(
        medium_csr, 64, FlashSparseConfig(precision="tf32", swap_and_transpose=False), api="mma"
    )
    assert dtc.total_mma == plain.total_mma
    assert dtc.data_access_bytes == plain.data_access_bytes
    assert ("m16n8k8", "tf32") in dtc.mma_invocations


def test_tcgnn_uses_wmma_and_position_checks(medium_csr):
    tcgnn = tcgnn_spmm_cost(medium_csr, 64)
    plain = spmm_tcu16_cost(
        medium_csr, 64, FlashSparseConfig(precision="tf32", swap_and_transpose=False), api="wmma"
    )
    assert ("m16n16k8", "tf32") in tcgnn.mma_invocations
    # Position checks add index work on top of the plain 16x1 kernel.
    assert tcgnn.index_ops > plain.index_ops
    sddmm = tcgnn_sddmm_cost(medium_csr, 32)
    assert sddmm.index_ops > 0


def test_flashsparse_dominates_baselines_on_counted_redundancy(medium_csr):
    """FlashSparse's MMA count and data access are below the 16x1 TCU baselines."""
    flash = spmm_flash_cost(medium_csr, 128, FlashSparseConfig(precision="fp16"))
    dtc = dtc_spmm_cost(medium_csr, 128)
    assert flash.total_mma < dtc.total_mma
    assert flash.data_access_bytes < dtc.data_access_bytes


def test_baseline_profiles_are_distinct_and_valid():
    names = {get_baseline(n).profile.name for n in BASELINES}
    assert len(names) == len(BASELINES)
    for n in BASELINES:
        profile = get_baseline(n).profile
        assert 0 < profile.tcu_efficiency <= 1
        assert 0 < profile.memory_efficiency <= 1
        assert profile.imbalance_factor >= 1
