"""Priority-aware dispatch and cost-aware load shedding.

The dispatcher is parked deterministically (the ``_execute_group`` gate of
the overload suite) so a backlog builds under contention; releasing the
gate then exposes the dispatch order: priority classes first, earliest
deadline first within a class, FIFO as the tie-break — and, with a
watermark set, the most expensive backlog entries shed before anything
executes.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from helpers import random_csr

from repro.core.api import spmm
from repro.serve import ServeShedError, Server

TIMEOUT = 120


class _Gate:
    """Deterministic dispatcher block (see ``test_serve_overload``)."""

    def __init__(self, server: Server):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self._original = server._execute_group
        server._execute_group = self

    def __call__(self, group):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(TIMEOUT), "gate never released"
        self._original(group)


def _distinct_workloads(n, rows=90, cols=80, width=8):
    """n distinct matrices (distinct content keys: no same-matrix batching)."""
    out = []
    for seed in range(n):
        csr = random_csr(rows, cols, 0.08, seed=100 + seed)
        b = np.random.default_rng(seed).standard_normal((cols, width))
        out.append((csr, b))
    return out


def _completion_order(futures_by_label):
    order = []
    lock = threading.Lock()
    for label, fut in futures_by_label.items():
        def record(f, label=label):
            with lock:
                order.append(label)
        fut.add_done_callback(record)
    return order


# ------------------------------------------------------------------ ordering
def test_priority_classes_override_fifo_under_contention():
    (m0, b0), (m1, b1), (m2, b2), (m3, b3) = _distinct_workloads(4)
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(m0, b0)  # drained immediately, parks at gate
        gate.entered.wait(TIMEOUT)
        futures = {
            "low": srv.submit_spmm(m1, b1, priority=0),
            "mid": srv.submit_spmm(m2, b2, priority=5),
            "high": srv.submit_spmm(m3, b3, priority=9),
        }
        order = _completion_order(futures)
        gate.release.set()
        for fut in futures.values():
            fut.result(TIMEOUT)
        blocker.result(TIMEOUT)
    assert order == ["high", "mid", "low"]


def test_edf_orders_within_a_priority_class():
    (m0, b0), (m1, b1), (m2, b2), (m3, b3) = _distinct_workloads(4)
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(m0, b0)
        gate.entered.wait(TIMEOUT)
        futures = {
            # Same class; deadlines 60s / 30s / none, submitted in the
            # *opposite* of their deadline order.
            "no_deadline": srv.submit_spmm(m1, b1, priority=3),
            "loose": srv.submit_spmm(m2, b2, priority=3, timeout=60.0),
            "tight": srv.submit_spmm(m3, b3, priority=3, timeout=30.0),
        }
        order = _completion_order(futures)
        gate.release.set()
        for fut in futures.values():
            fut.result(TIMEOUT)
        blocker.result(TIMEOUT)
    assert order == ["tight", "loose", "no_deadline"]


def test_fifo_tie_break_within_class_and_deadline():
    (m0, b0), (m1, b1), (m2, b2), (m3, b3) = _distinct_workloads(4)
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(m0, b0)
        gate.entered.wait(TIMEOUT)
        futures = {
            "first": srv.submit_spmm(m1, b1),
            "second": srv.submit_spmm(m2, b2),
            "third": srv.submit_spmm(m3, b3),
        }
        order = _completion_order(futures)
        gate.release.set()
        for fut in futures.values():
            fut.result(TIMEOUT)
        blocker.result(TIMEOUT)
    assert order == ["first", "second", "third"]


def test_late_high_priority_overtakes_waiting_backlog():
    """A high-priority request submitted *while* a group runs must execute
    before the lower-priority backlog that arrived earlier."""
    workloads = _distinct_workloads(4)
    (m0, b0), (m1, b1), (m2, b2), (m3, b3) = workloads
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(m0, b0)
        gate.entered.wait(TIMEOUT)
        futures = {}
        futures["early_low_1"] = srv.submit_spmm(m1, b1, priority=0)
        futures["early_low_2"] = srv.submit_spmm(m2, b2, priority=0)
        futures["late_high"] = srv.submit_spmm(m3, b3, priority=7)
        order = _completion_order(futures)
        gate.release.set()
        for fut in futures.values():
            fut.result(TIMEOUT)
        blocker.result(TIMEOUT)
    assert order[0] == "late_high"


def test_same_matrix_batching_survives_priority_ordering():
    """Same-key requests still coalesce into one engine pass when one of
    them leads the dispatch order."""
    (m0, b0), (m1, b1) = _distinct_workloads(2)
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(m0, b0)
        gate.entered.wait(TIMEOUT)
        high = srv.submit_spmm(m1, b1, priority=9)
        rider = srv.submit_spmm(m1, b1, priority=0)  # same matrix: rides along
        gate.release.set()
        ref = spmm(m1, b1).values
        np.testing.assert_array_equal(high.result(TIMEOUT).values, ref)
        np.testing.assert_array_equal(rider.result(TIMEOUT).values, ref)
        blocker.result(TIMEOUT)
        assert gate.calls == 2  # blocker + one coalesced pass
    assert srv.snapshot().requests_coalesced == 2


# ------------------------------------------------------------- cost shedding
def test_watermark_sheds_most_expensive_first():
    base = random_csr(90, 80, 0.08, seed=50)
    rng = np.random.default_rng(50)
    widths = {"tiny": 1, "huge": 64, "small": 2, "large": 48, "mid": 3}
    with Server(workers=1, shed_watermark=2) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(base, rng.standard_normal((80, 4)))
        gate.entered.wait(TIMEOUT)
        futures = {}
        for seed, (label, width) in enumerate(widths.items()):
            csr = random_csr(90, 80, 0.08, seed=200 + seed)
            futures[label] = srv.submit_spmm(csr, rng.standard_normal((80, width)))
        gate.release.set()
        # 5 pending over a watermark of 2: the 3 most expensive (by FLOPs ∝
        # width here) are shed, the cheap majority executes.
        for label in ("huge", "large", "mid"):
            with pytest.raises(ServeShedError):
                futures[label].result(TIMEOUT)
        for label in ("tiny", "small"):
            assert futures[label].result(TIMEOUT) is not None
        blocker.result(TIMEOUT)
    snap = srv.snapshot()
    assert snap.requests_cost_shed == 3
    assert snap.requests_shed == 3
    assert snap.requests_completed == 3  # blocker + tiny + small
    assert snap.in_flight == 0
    assert snap.queue_wait.count >= 3  # shed waits are the overload signal


def test_no_shedding_at_or_under_watermark():
    (m0, b0), (m1, b1), (m2, b2) = _distinct_workloads(3)
    with Server(workers=1, shed_watermark=2) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(m0, b0)
        gate.entered.wait(TIMEOUT)
        f1 = srv.submit_spmm(m1, b1)
        f2 = srv.submit_spmm(m2, b2)
        gate.release.set()
        assert f1.result(TIMEOUT) is not None
        assert f2.result(TIMEOUT) is not None
        blocker.result(TIMEOUT)
    assert srv.snapshot().requests_cost_shed == 0


def test_cancelled_unexpired_request_does_not_poison_its_batch():
    """A queued request that is client-cancelled (no deadline, so the shed
    passes keep it) must be skipped at result delivery — setting a result
    on the done future would fail every later sibling in the group."""
    (m0, b0), (m1, b1) = _distinct_workloads(2)
    with Server(workers=1) as srv:
        gate = _Gate(srv)
        blocker = srv.submit_spmm(m0, b0)
        gate.entered.wait(TIMEOUT)
        doomed = srv.submit_spmm(m1, b1)
        sibling = srv.submit_spmm(m1, b1)  # same matrix: batches with doomed
        assert doomed.cancel()  # never dispatched, so cancel succeeds
        gate.release.set()
        np.testing.assert_array_equal(
            sibling.result(TIMEOUT).values, spmm(m1, b1).values
        )
        blocker.result(TIMEOUT)
        assert doomed.cancelled()
    snap = srv.snapshot()
    assert snap.requests_failed == 0
    # The cancellation is a terminal outcome: the in-flight identity holds.
    assert snap.requests_cancelled == 1
    assert snap.in_flight == 0


def test_shed_watermark_validated():
    with pytest.raises(ValueError):
        Server(workers=1, shed_watermark=0)


def test_backend_and_hosts_validated():
    with pytest.raises(ValueError):
        Server(workers=1, backend="thundering-herd")
    with pytest.raises(ValueError):
        Server(workers=1, backend="local", hosts=2)
    with pytest.raises(ValueError):
        Server(backend="cluster", hosts=-1)
